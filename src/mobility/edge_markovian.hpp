// The two-state edge-Markovian dynamic graph process of Sec. II-B: if an
// edge exists at time i it dies at i+1 with probability p; if absent it
// appears with probability q. The process has stationary edge density
// q / (p + q) and was used by Clementi et al. [6] to bound the dynamic
// diameter (flooding time); experiment E2b reproduces that shape.
#pragma once

#include <cstddef>

#include "temporal/temporal_graph.hpp"
#include "util/rng.hpp"

namespace structnet {

struct EdgeMarkovianParams {
  std::size_t nodes = 64;
  TimeUnit horizon = 128;
  double death_probability = 0.5;   // p
  double birth_probability = 0.05;  // q
  /// Initial edge density; a negative value means "start at the
  /// stationary density q / (p + q)".
  double initial_density = -1.0;
};

/// Samples a time-evolving graph from the edge-Markovian process.
TemporalGraph edge_markovian_graph(const EdgeMarkovianParams& params,
                                   Rng& rng);

/// The process's stationary edge density q / (p + q).
double edge_markovian_stationary_density(double p, double q);

}  // namespace structnet
