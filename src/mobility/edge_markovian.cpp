#include "mobility/edge_markovian.hpp"

#include <cassert>
#include <vector>

namespace structnet {

double edge_markovian_stationary_density(double p, double q) {
  if (p + q <= 0.0) return 0.0;
  return q / (p + q);
}

TemporalGraph edge_markovian_graph(const EdgeMarkovianParams& params,
                                   Rng& rng) {
  const std::size_t n = params.nodes;
  const double p = params.death_probability;
  const double q = params.birth_probability;
  assert(p >= 0.0 && p <= 1.0 && q >= 0.0 && q <= 1.0);
  const double initial = params.initial_density < 0.0
                             ? edge_markovian_stationary_density(p, q)
                             : params.initial_density;

  TemporalGraph eg(n, params.horizon);
  // One Markov chain per vertex pair.
  std::vector<bool> alive(n * (n - 1) / 2);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    alive[i] = rng.bernoulli(initial);
  }
  for (TimeUnit t = 0; t < params.horizon; ++t) {
    std::size_t idx = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v, ++idx) {
        if (alive[idx]) eg.add_contact(u, v, t);
        alive[idx] = alive[idx] ? !rng.bernoulli(p) : rng.bernoulli(q);
      }
    }
  }
  return eg;
}

}  // namespace structnet
