// Contact extraction from trajectories, and the two macro-level measures
// Sec. II-B highlights: contact duration distribution and inter-contact
// time distribution.
#pragma once

#include <vector>

#include "mobility/mobility_models.hpp"
#include "temporal/temporal_graph.hpp"
#include "util/histogram.hpp"

namespace structnet {

/// Builds the time-evolving graph of a trajectory: (u, v) active during
/// time unit t iff the nodes are within `radius` at step t.
TemporalGraph contacts_from_trajectory(const Trajectory& trajectory,
                                       double radius);

/// Duration / inter-contact statistics extracted from an EG.
struct ContactStatistics {
  CountHistogram contact_duration;   // lengths of maximal active runs
  CountHistogram inter_contact_time; // gaps between consecutive runs
  std::size_t pair_count = 0;        // pairs that ever met
};

/// Scans every edge's label set for maximal runs of consecutive time
/// units (contact durations) and the gaps between runs (inter-contact
/// times).
ContactStatistics contact_statistics(const TemporalGraph& eg);

}  // namespace structnet
