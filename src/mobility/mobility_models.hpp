// Synthetic mobility models (survey [5] in the paper): random waypoint,
// random walk, and a community-based model. Each produces a discrete
// trajectory (positions per time step per node) inside the unit square;
// contact extraction into a TemporalGraph lives in contact_trace.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/geometry.hpp"
#include "util/rng.hpp"

namespace structnet {

/// positions[t][node] for t in [0, steps).
using Trajectory = std::vector<std::vector<Point2D>>;

struct RandomWaypointParams {
  std::size_t nodes = 50;
  std::size_t steps = 200;
  double min_speed = 0.005;  // distance per step
  double max_speed = 0.02;
  std::size_t max_pause = 5;  // steps paused at each waypoint
};

/// Classic random waypoint in the unit square: pick a waypoint uniformly,
/// move toward it at a uniform speed, pause, repeat.
Trajectory random_waypoint(const RandomWaypointParams& params, Rng& rng);

struct RandomWalkParams {
  std::size_t nodes = 50;
  std::size_t steps = 200;
  double step_length = 0.02;  // per-step displacement; direction uniform
};

/// Random walk with reflecting boundaries.
Trajectory random_walk(const RandomWalkParams& params, Rng& rng);

struct CommunityMobilityParams {
  std::size_t nodes = 50;
  std::size_t steps = 200;
  std::size_t communities = 4;    // home cells arranged on a grid
  double roam_probability = 0.1;  // chance per waypoint of leaving home
  double speed = 0.02;
};

/// Community-based mobility: each node has a home cell; waypoints are
/// drawn inside the home cell except with roam_probability, when the
/// waypoint is drawn anywhere. Produces the socially-clustered contact
/// patterns the paper's Sec. III-C assumes.
Trajectory community_mobility(const CommunityMobilityParams& params, Rng& rng,
                              std::vector<std::size_t>* home_of = nullptr);

}  // namespace structnet
