// Social-feature-driven contact traces (Sec. III-C, remapping domain).
//
// The paper (citing [21], validated on INFOCOM 2006 and MIT Reality
// Mining) observes that the contact frequency of two people decays with
// the distance between their social feature profiles. We do not have
// those proprietary traces, so this generator synthesizes traces obeying
// exactly that law: each person carries a feature profile (a mixed-radix
// address: gender, occupation, nationality, ...), and each pair meets per
// time unit with probability base * decay^HammingDistance. Inter-contact
// times are then geometric (the discrete exponential), matching the
// macro-level model Sec. II-B describes.
#pragma once

#include <cstddef>
#include <vector>

#include "temporal/temporal_graph.hpp"
#include "util/rng.hpp"

namespace structnet {

/// A person's feature profile: digit i in [0, radices[i]).
using SocialProfile = std::vector<std::size_t>;

/// Number of differing features (Hamming distance in F-space).
std::size_t feature_distance(const SocialProfile& a, const SocialProfile& b);

struct SocialTraceParams {
  std::size_t people = 60;
  TimeUnit horizon = 500;
  /// Feature alphabets, e.g. {2, 2, 3} = Fig. 6's gender x occupation x
  /// nationality cube.
  std::vector<std::size_t> radices{2, 2, 3};
  /// Per-time-unit meeting probability at feature distance 0.
  double base_rate = 0.2;
  /// Multiplicative decay per unit of feature distance (in (0, 1]).
  double decay = 0.35;
};

/// Uniformly random profiles for the population.
std::vector<SocialProfile> random_profiles(std::size_t people,
                                           const std::vector<std::size_t>& radices,
                                           Rng& rng);

/// Samples a contact trace in which P(contact of i,j in a time unit) =
/// base_rate * decay^feature_distance(i, j).
TemporalGraph social_contact_trace(const SocialTraceParams& params,
                                   const std::vector<SocialProfile>& profiles,
                                   Rng& rng);

/// Measured contact frequency (contacts per time unit) grouped by feature
/// distance; index d = average over pairs at distance d. Used to verify
/// the generated traces obey the distance law and to "uncover" the law
/// from a trace.
std::vector<double> contact_frequency_by_distance(
    const TemporalGraph& trace, const std::vector<SocialProfile>& profiles);

}  // namespace structnet
