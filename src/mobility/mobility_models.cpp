#include "mobility/mobility_models.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace structnet {

namespace {

/// Per-node waypoint walker shared by RWP and community mobility.
struct Walker {
  Point2D pos;
  Point2D target;
  double speed = 0.0;
  std::size_t pause_left = 0;

  void step(auto&& next_target, Rng& rng, double min_speed, double max_speed,
            std::size_t max_pause) {
    if (pause_left > 0) {
      --pause_left;
      return;
    }
    const double d = distance(pos, target);
    if (d <= speed) {
      pos = target;
      target = next_target();
      speed = rng.uniform(min_speed, max_speed);
      pause_left = max_pause == 0 ? 0 : rng.index(max_pause + 1);
      return;
    }
    pos.x += (target.x - pos.x) / d * speed;
    pos.y += (target.y - pos.y) / d * speed;
  }
};

}  // namespace

Trajectory random_waypoint(const RandomWaypointParams& params, Rng& rng) {
  assert(params.min_speed > 0.0 && params.max_speed >= params.min_speed);
  std::vector<Walker> walkers(params.nodes);
  auto anywhere = [&rng] { return Point2D{rng.uniform01(), rng.uniform01()}; };
  for (auto& w : walkers) {
    w.pos = anywhere();
    w.target = anywhere();
    w.speed = rng.uniform(params.min_speed, params.max_speed);
  }
  Trajectory traj(params.steps, std::vector<Point2D>(params.nodes));
  for (std::size_t t = 0; t < params.steps; ++t) {
    for (std::size_t i = 0; i < params.nodes; ++i) {
      traj[t][i] = walkers[i].pos;
      walkers[i].step(anywhere, rng, params.min_speed, params.max_speed,
                      params.max_pause);
    }
  }
  return traj;
}

Trajectory random_walk(const RandomWalkParams& params, Rng& rng) {
  std::vector<Point2D> pos(params.nodes);
  for (auto& p : pos) p = {rng.uniform01(), rng.uniform01()};
  Trajectory traj(params.steps, std::vector<Point2D>(params.nodes));
  constexpr double kTau = 6.283185307179586;
  for (std::size_t t = 0; t < params.steps; ++t) {
    for (std::size_t i = 0; i < params.nodes; ++i) {
      traj[t][i] = pos[i];
      const double angle = rng.uniform(0.0, kTau);
      double x = pos[i].x + params.step_length * std::cos(angle);
      double y = pos[i].y + params.step_length * std::sin(angle);
      // Reflecting boundaries.
      if (x < 0.0) x = -x;
      if (x > 1.0) x = 2.0 - x;
      if (y < 0.0) y = -y;
      if (y > 1.0) y = 2.0 - y;
      pos[i] = {std::clamp(x, 0.0, 1.0), std::clamp(y, 0.0, 1.0)};
    }
  }
  return traj;
}

Trajectory community_mobility(const CommunityMobilityParams& params, Rng& rng,
                              std::vector<std::size_t>* home_of) {
  assert(params.communities >= 1);
  // Home cells: a ceil(sqrt(c)) x ceil(sqrt(c)) grid of squares.
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(params.communities))));
  const double cell = 1.0 / static_cast<double>(side);
  auto cell_point = [&](std::size_t community) {
    const std::size_t cx = community % side;
    const std::size_t cy = community / side;
    return Point2D{
        (static_cast<double>(cx) + rng.uniform01()) * cell,
        (static_cast<double>(cy) + rng.uniform01()) * cell,
    };
  };

  std::vector<std::size_t> home(params.nodes);
  for (auto& h : home) h = rng.index(params.communities);
  if (home_of != nullptr) *home_of = home;

  std::vector<Walker> walkers(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) {
    walkers[i].pos = cell_point(home[i]);
    walkers[i].target = cell_point(home[i]);
    walkers[i].speed = params.speed;
  }
  Trajectory traj(params.steps, std::vector<Point2D>(params.nodes));
  for (std::size_t t = 0; t < params.steps; ++t) {
    for (std::size_t i = 0; i < params.nodes; ++i) {
      traj[t][i] = walkers[i].pos;
      auto next_target = [&] {
        if (rng.bernoulli(params.roam_probability)) {
          return Point2D{rng.uniform01(), rng.uniform01()};
        }
        return cell_point(home[i]);
      };
      walkers[i].step(next_target, rng, params.speed, params.speed, 0);
    }
  }
  return traj;
}

}  // namespace structnet
