#include "mobility/contact_trace.hpp"

#include <cassert>

#include "core/generators.hpp"

namespace structnet {

TemporalGraph contacts_from_trajectory(const Trajectory& trajectory,
                                       double radius) {
  if (trajectory.empty()) return {};
  const std::size_t n = trajectory[0].size();
  TemporalGraph eg(n, static_cast<TimeUnit>(trajectory.size()));
  for (TimeUnit t = 0; t < trajectory.size(); ++t) {
    assert(trajectory[t].size() == n);
    const Graph snap = unit_disk_graph(trajectory[t], radius);
    for (const Graph::Edge& e : snap.edges()) {
      eg.add_contact(e.u, e.v, t);
    }
  }
  return eg;
}

ContactStatistics contact_statistics(const TemporalGraph& eg) {
  ContactStatistics stats;
  for (const auto& edge : eg.edges()) {
    if (edge.labels.empty()) continue;
    ++stats.pair_count;
    std::size_t run = 1;
    for (std::size_t i = 1; i < edge.labels.size(); ++i) {
      if (edge.labels[i] == edge.labels[i - 1] + 1) {
        ++run;
      } else {
        stats.contact_duration.add(run);
        stats.inter_contact_time.add(edge.labels[i] - edge.labels[i - 1] - 1);
        run = 1;
      }
    }
    stats.contact_duration.add(run);
  }
  return stats;
}

}  // namespace structnet
