#include "mobility/social_contacts.hpp"

#include <cassert>
#include <cmath>

namespace structnet {

std::size_t feature_distance(const SocialProfile& a, const SocialProfile& b) {
  assert(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

std::vector<SocialProfile> random_profiles(
    std::size_t people, const std::vector<std::size_t>& radices, Rng& rng) {
  std::vector<SocialProfile> profiles(people, SocialProfile(radices.size()));
  for (auto& profile : profiles) {
    for (std::size_t f = 0; f < radices.size(); ++f) {
      profile[f] = rng.index(radices[f]);
    }
  }
  return profiles;
}

TemporalGraph social_contact_trace(const SocialTraceParams& params,
                                   const std::vector<SocialProfile>& profiles,
                                   Rng& rng) {
  const std::size_t n = profiles.size();
  assert(params.decay > 0.0 && params.decay <= 1.0);
  TemporalGraph eg(n, params.horizon);
  // Precompute pair probabilities, then sample runs of misses with the
  // geometric distribution so sparse pairs cost O(#contacts), not O(T).
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const std::size_t d = feature_distance(profiles[u], profiles[v]);
      const double p = params.base_rate *
                       std::pow(params.decay, static_cast<double>(d));
      if (p <= 0.0) continue;
      std::uint64_t t = rng.geometric(p);
      while (t < params.horizon) {
        eg.add_contact(u, v, static_cast<TimeUnit>(t));
        t += 1 + rng.geometric(p);
      }
    }
  }
  return eg;
}

std::vector<double> contact_frequency_by_distance(
    const TemporalGraph& trace, const std::vector<SocialProfile>& profiles) {
  const std::size_t n = profiles.size();
  const std::size_t features = profiles.empty() ? 0 : profiles[0].size();
  std::vector<double> contact_sum(features + 1, 0.0);
  std::vector<double> pair_count(features + 1, 0.0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const std::size_t d = feature_distance(profiles[u], profiles[v]);
      pair_count[d] += 1.0;
      const EdgeId e = trace.find_edge(u, v);
      if (e != kInvalidEdge) {
        contact_sum[d] += static_cast<double>(trace.edge(e).labels.size());
      }
    }
  }
  std::vector<double> freq(features + 1, 0.0);
  const double horizon = static_cast<double>(trace.horizon());
  for (std::size_t d = 0; d <= features; ++d) {
    if (pair_count[d] > 0.0 && horizon > 0.0) {
      freq[d] = contact_sum[d] / pair_count[d] / horizon;
    }
  }
  return freq;
}

}  // namespace structnet
