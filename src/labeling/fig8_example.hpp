// The paper's Fig. 8 static-labeling example, reconstructed.
//
// The figure is not recoverable from the text; the graph below is
// reconstructed to satisfy every statement made about it (with the
// paper's priority convention p(A) > p(B) > ... > p(F)):
//
//   * marking process: "all nodes except A are labeled black";
//   * CDS trimming: "B, C, and D are three black nodes remained";
//   * 3-color MIS: "A and B are colored black" in round 1 and "the final
//     MIS ... is A, B, and E";
//   * neighbor-designated DS: "A, B, and C are selected as DS (but not a
//     CDS or an IS)".
//
// Vertices A..F = 0..5; edges:
//   A-D, A-F, B-C, B-D, B-F, C-D, C-E, D-E, D-F, E-F.
#pragma once

#include "core/graph.hpp"

namespace structnet::fig8 {

inline constexpr VertexId A = 0;
inline constexpr VertexId B = 1;
inline constexpr VertexId C = 2;
inline constexpr VertexId D = 3;
inline constexpr VertexId E = 4;
inline constexpr VertexId F = 5;

Graph build();

}  // namespace structnet::fig8
