// CDS construction from an MIS (the paper's footnote 2: "MIS is
// frequently used to construct a minimal CDS using a small number of
// gateways to connect nodes in MIS"; in a UDG the MIS is at most 5x the
// minimum CDS, so the construction is a constant-factor approximation).
//
// Standard construction: an MIS is a dominating set, and in a connected
// graph any two "adjacent" MIS nodes are at most 3 hops apart; greedily
// adding the intermediate vertices of short connecting paths (the
// gateways) makes the set connected.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace structnet {

struct MisCdsResult {
  std::vector<bool> cds;          // MIS nodes + gateways
  std::size_t gateways = 0;       // vertices added to connect the MIS
};

/// Connects the given MIS into a CDS by adding gateway vertices along
/// BFS paths between MIS fragments. Requires g connected and `mis` a
/// dominating independent set (an MIS); the result is then a CDS.
MisCdsResult cds_from_mis(const Graph& g, const std::vector<bool>& mis);

}  // namespace structnet
