#include "labeling/static_labels.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace structnet {

std::vector<bool> marking_process(const Graph& g) {
  std::vector<bool> black(g.vertex_count(), false);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size() && !black[v]; ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!g.has_edge(nbrs[i], nbrs[j])) {
          black[v] = true;
          break;
        }
      }
    }
  }
  return black;
}

namespace {

/// True iff `candidates` (a subset of u's neighborhood) contains a
/// connected subset covering N(u). Because adding candidates never hurts
/// coverage and the connected component of the candidate-induced graph
/// that covers must be a single component, it suffices to check whether
/// some connected component of the candidate set covers N(u).
bool coverage_by_connected_subset(const Graph& g, VertexId u,
                                  const std::vector<VertexId>& candidates) {
  if (candidates.empty()) return false;
  // Components of the induced candidate subgraph.
  std::vector<int> comp(candidates.size(), -1);
  int next = 0;
  for (std::size_t s = 0; s < candidates.size(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    std::deque<std::size_t> queue{s};
    while (!queue.empty()) {
      const std::size_t x = queue.front();
      queue.pop_front();
      for (std::size_t y = 0; y < candidates.size(); ++y) {
        if (comp[y] == -1 && g.has_edge(candidates[x], candidates[y])) {
          comp[y] = next;
          queue.push_back(y);
        }
      }
    }
    ++next;
  }
  // Does some component cover all of N(u)?
  for (int c = 0; c < next; ++c) {
    bool covers = true;
    for (VertexId w : g.neighbors(u)) {
      bool covered = false;
      for (std::size_t i = 0; i < candidates.size() && !covered; ++i) {
        if (comp[i] != c) continue;
        covered = candidates[i] == w || g.has_edge(candidates[i], w);
      }
      if (!covered) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return false;
}

}  // namespace

std::vector<bool> trim_cds(const Graph& g, const std::vector<bool>& black,
                           std::span<const double> priority) {
  assert(black.size() == g.vertex_count());
  assert(priority.size() == g.vertex_count());
  std::vector<bool> out = black;
  for (VertexId u = 0; u < g.vertex_count(); ++u) {
    if (!black[u]) continue;
    std::vector<VertexId> candidates;
    for (VertexId w : g.neighbors(u)) {
      if (black[w] && priority[w] > priority[u]) candidates.push_back(w);
    }
    if (coverage_by_connected_subset(g, u, candidates)) out[u] = false;
  }
  return out;
}

MisResult distributed_mis(const Graph& g, std::span<const double> priority) {
  assert(priority.size() == g.vertex_count());
  enum class Color { kWhite, kBlack, kGray };
  std::vector<Color> color(g.vertex_count(), Color::kWhite);
  MisResult result;
  result.in_mis.assign(g.vertex_count(), false);

  auto any_white = [&] {
    return std::any_of(color.begin(), color.end(),
                       [](Color c) { return c == Color::kWhite; });
  };
  while (any_white()) {
    ++result.rounds;
    // Phase 1: white 1-hop priority maxima turn black (simultaneously).
    std::vector<VertexId> winners;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (color[v] != Color::kWhite) continue;
      bool is_max = true;
      for (VertexId w : g.neighbors(v)) {
        if (color[w] == Color::kWhite && priority[w] > priority[v]) {
          is_max = false;
          break;
        }
      }
      if (is_max) winners.push_back(v);
    }
    assert(!winners.empty() && "a global white maximum always exists");
    for (VertexId v : winners) {
      color[v] = Color::kBlack;
      result.in_mis[v] = true;
    }
    // Phase 2: white nodes adjacent to a black node leave the competition.
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (color[v] != Color::kWhite) continue;
      for (VertexId w : g.neighbors(v)) {
        if (color[w] == Color::kBlack) {
          color[v] = Color::kGray;
          break;
        }
      }
    }
  }
  return result;
}

std::vector<bool> neighbor_designated_ds(const Graph& g,
                                         std::span<const double> priority) {
  assert(priority.size() == g.vertex_count());
  std::vector<bool> selected(g.vertex_count(), false);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    VertexId winner = v;
    for (VertexId w : g.neighbors(v)) {
      if (priority[w] > priority[winner]) winner = w;
    }
    selected[winner] = true;
  }
  return selected;
}

bool is_dominating_set(const Graph& g, const std::vector<bool>& ds) {
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (ds[v]) continue;
    bool dominated = false;
    for (VertexId w : g.neighbors(v)) {
      if (ds[w]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

bool is_connected_dominating_set(const Graph& g, const std::vector<bool>& ds) {
  if (!is_dominating_set(g, ds)) return false;
  // Connectivity of the induced subgraph G[ds].
  VertexId start = kInvalidVertex;
  std::size_t total = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (ds[v]) {
      start = v;
      ++total;
    }
  }
  if (total <= 1) return true;
  std::vector<bool> seen(g.vertex_count(), false);
  std::deque<VertexId> queue{start};
  seen[start] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId w : g.neighbors(v)) {
      if (ds[w] && !seen[w]) {
        seen[w] = true;
        ++reached;
        queue.push_back(w);
      }
    }
  }
  return reached == total;
}

bool is_independent_set(const Graph& g, const std::vector<bool>& is) {
  for (const Graph::Edge& e : g.edges()) {
    if (is[e.u] && is[e.v]) return false;
  }
  return true;
}

bool is_maximal_independent_set(const Graph& g, const std::vector<bool>& is) {
  if (!is_independent_set(g, is)) return false;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (is[v]) continue;
    bool blocked = false;
    for (VertexId w : g.neighbors(v)) {
      if (is[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // v could be added: not maximal
  }
  return true;
}

std::vector<double> id_priorities(std::size_t n) {
  std::vector<double> p(n);
  for (std::size_t v = 0; v < n; ++v) {
    p[v] = static_cast<double>(n - v);
  }
  return p;
}

}  // namespace structnet
