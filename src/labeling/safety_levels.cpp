#include "labeling/safety_levels.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace structnet {

SafetyLevelCube::SafetyLevelCube(std::size_t dimensions,
                                 const std::vector<std::size_t>& faulty)
    : n_(dimensions) {
  assert(dimensions >= 1 && dimensions < 24);
  faulty_.assign(node_count(), false);
  for (std::size_t f : faulty) {
    assert(f < node_count());
    faulty_[f] = true;
  }
  stabilize();
}

std::size_t SafetyLevelCube::hamming(std::size_t a, std::size_t b) {
  return static_cast<std::size_t>(std::popcount(a ^ b));
}

void SafetyLevelCube::stabilize() {
  const std::size_t count = node_count();
  level_.assign(count, static_cast<std::uint32_t>(n_));
  decided_.assign(count, 0);
  for (std::size_t v = 0; v < count; ++v) {
    if (faulty_[v]) level_[v] = 0;
  }
  // Synchronous rounds; levels are monotonically non-increasing, so a
  // fixpoint is reached within n rounds (a level-i node decides in round
  // i, per the paper).
  std::vector<std::uint32_t> next(count);
  for (std::size_t round = 1; round <= n_; ++round) {
    next = level_;
    bool changed = false;
    for (std::size_t v = 0; v < count; ++v) {
      if (faulty_[v]) continue;
      std::vector<std::uint32_t> nbr(n_);
      for (std::size_t d = 0; d < n_; ++d) {
        nbr[d] = level_[v ^ (std::size_t{1} << d)];
      }
      std::sort(nbr.begin(), nbr.end());
      // Smallest k with l_k < k (then l_k = k - 1 holds automatically for
      // a sorted sequence); no such k => level n.
      std::uint32_t lvl = static_cast<std::uint32_t>(n_);
      for (std::size_t k = 0; k < n_; ++k) {
        if (nbr[k] < k) {
          lvl = static_cast<std::uint32_t>(k);
          break;
        }
      }
      if (lvl != level_[v]) {
        next[v] = lvl;
        decided_[v] = round;
        changed = true;
      }
    }
    level_.swap(next);
    if (!changed) break;
    rounds_ = round;
  }
}

std::size_t SafetyLevelCube::add_fault(std::size_t v) {
  assert(v < node_count());
  if (faulty_[v]) return 0;
  faulty_[v] = true;
  std::size_t changed = level_[v] != 0 ? 1 : 0;
  level_[v] = 0;
  decided_[v] = 0;
  // Levels can only drop. Propagate recomputation from v's neighbors
  // outwards; a node whose recomputed level is unchanged stops the wave.
  std::vector<std::size_t> frontier;
  for (std::size_t d = 0; d < n_; ++d) {
    frontier.push_back(v ^ (std::size_t{1} << d));
  }
  std::vector<std::uint32_t> nbr(n_);
  std::size_t guard = 0;
  while (!frontier.empty() && guard++ <= node_count() * n_) {
    std::vector<std::size_t> next;
    for (std::size_t u : frontier) {
      if (faulty_[u]) continue;
      for (std::size_t d = 0; d < n_; ++d) {
        nbr[d] = level_[u ^ (std::size_t{1} << d)];
      }
      std::sort(nbr.begin(), nbr.end());
      std::uint32_t lvl = static_cast<std::uint32_t>(n_);
      for (std::size_t k = 0; k < n_; ++k) {
        if (nbr[k] < k) {
          lvl = static_cast<std::uint32_t>(k);
          break;
        }
      }
      if (lvl < level_[u]) {
        level_[u] = lvl;
        ++changed;
        for (std::size_t d = 0; d < n_; ++d) {
          next.push_back(u ^ (std::size_t{1} << d));
        }
      }
    }
    frontier = std::move(next);
  }
  return changed;
}

std::size_t SafetyLevelCube::remove_fault(std::size_t v) {
  assert(v < node_count());
  if (!faulty_[v]) return 0;
  faulty_[v] = false;
  const std::vector<std::uint32_t> before = std::move(level_);
  stabilize();
  std::size_t changed = 0;
  for (std::size_t u = 0; u < node_count(); ++u) {
    changed += level_[u] != before[u];
  }
  return changed;
}

std::optional<std::vector<std::size_t>> SafetyLevelCube::route(
    std::size_t from, std::size_t to) const {
  assert(from < node_count() && to < node_count());
  if (faulty_[from] || faulty_[to]) return std::nullopt;
  std::vector<std::size_t> path{from};
  std::size_t cur = from;
  while (cur != to) {
    // Neighbors one bit closer to the destination ("preferred").
    std::size_t best = node_count();  // invalid
    std::uint32_t best_level = 0;
    std::size_t diff = cur ^ to;
    while (diff != 0) {
      const std::size_t bit = diff & (~diff + 1);
      diff ^= bit;
      const std::size_t w = cur ^ bit;
      if (faulty_[w]) continue;
      if (best == node_count() || level_[w] > best_level ||
          (level_[w] == best_level && w < best)) {
        best = w;
        best_level = level_[w];
      }
    }
    if (best == node_count()) return std::nullopt;  // all preferred faulty
    cur = best;
    path.push_back(cur);
  }
  return path;
}

SafetyLevelCube::BroadcastResult SafetyLevelCube::broadcast(
    std::size_t from) const {
  assert(from < node_count());
  BroadcastResult result;
  result.reached.assign(node_count(), false);
  if (faulty_[from]) return result;
  result.reached[from] = true;

  // Binomial-tree broadcast: a node holding dimension set S forwards
  // along each dimension of S, handing the child the strictly-later
  // dimensions; the order is chosen per node with the highest-safety
  // child first so low-safety children receive small subtrees.
  struct Item {
    std::size_t node;
    std::vector<std::size_t> dims;
  };
  std::vector<std::size_t> all_dims(n_);
  for (std::size_t d = 0; d < n_; ++d) all_dims[d] = d;
  std::vector<Item> stack{Item{from, all_dims}};
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    // Order this node's dimensions by child safety, descending, so that
    // low-safety (and faulty) children receive the smallest subtrees.
    std::sort(item.dims.begin(), item.dims.end(),
              [&](std::size_t a, std::size_t b) {
                const std::size_t ca = item.node ^ (std::size_t{1} << a);
                const std::size_t cb = item.node ^ (std::size_t{1} << b);
                if (level_[ca] != level_[cb]) return level_[ca] > level_[cb];
                return a < b;
              });
    for (std::size_t i = 0; i < item.dims.size(); ++i) {
      const std::size_t child = item.node ^ (std::size_t{1} << item.dims[i]);
      ++result.messages;
      if (faulty_[child] || result.reached[child]) continue;
      result.reached[child] = true;
      stack.push_back(
          Item{child, std::vector<std::size_t>(item.dims.begin() + i + 1,
                                               item.dims.end())});
    }
  }

  // Recovery sweep: subtrees assigned to a faulty child are stranded;
  // reached nodes flood any unreached non-faulty neighbor until closure
  // (this is the retransmission phase of fault-tolerant broadcast; with
  // safety-ordered subtrees it only fires near faults).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t v = 0; v < node_count(); ++v) {
      if (!result.reached[v]) continue;
      for (std::size_t d = 0; d < n_; ++d) {
        const std::size_t w = v ^ (std::size_t{1} << d);
        if (!faulty_[w] && !result.reached[w]) {
          result.reached[w] = true;
          ++result.messages;
          changed = true;
        }
      }
    }
  }
  return result;
}

}  // namespace structnet
