// Safety levels in a faulty n-dimensional binary hypercube (Wu '95 [32],
// Sec. IV-C): the paper's flagship hybrid distributed-and-localized
// labeling scheme.
//
// The safety level of a faulty node is 0. For a non-faulty node u with
// non-decreasing neighbor-level sequence (l_0, ..., l_{n-1}):
//   if (l_0, ..., l_{n-1}) >= (0, 1, ..., n-1), then l(u) = n;
//   otherwise l(u) = k for the k with
//   (l_0, ..., l_{k-1}) >= (0, ..., k-1) and l_k = k - 1.
// A node with level n is *safe*: it reaches every node via a shortest
// path. A node with level l reaches any node within l hops via a
// shortest path. Levels stabilize in at most n - 1 rounds; a level-i
// node is decided exactly in round i.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace structnet {

/// A faulty n-cube with safety levels.
class SafetyLevelCube {
 public:
  /// addresses are 0 .. 2^dimensions - 1; `faulty` lists faulty addresses.
  SafetyLevelCube(std::size_t dimensions, const std::vector<std::size_t>& faulty);

  std::size_t dimensions() const { return n_; }
  std::size_t node_count() const { return std::size_t{1} << n_; }
  bool is_faulty(std::size_t v) const { return faulty_[v]; }

  /// The stabilized safety level of a node (0 for faulty, n for safe).
  std::uint32_t level(std::size_t v) const { return level_[v]; }

  /// Number of synchronous rounds the iterative labeling used (<= n - 1
  /// per the paper).
  std::size_t rounds_used() const { return rounds_; }

  /// The round in which v's level was decided (level-i nodes decide in
  /// round i; level-n/safe nodes hold their initial value, reported as
  /// round 0).
  std::size_t decided_round(std::size_t v) const { return decided_[v]; }

  /// Safety-level-guided unicast: from each intermediate node, hop to the
  /// highest-level neighbor among those on a shortest path to `to`
  /// (addresses one bit closer). Returns the path (including endpoints)
  /// or std::nullopt when the greedy process hits only faulty options.
  /// Guaranteed to succeed when level(from) >= hamming(from, to).
  std::optional<std::vector<std::size_t>> route(std::size_t from,
                                                std::size_t to) const;

  /// Fault-tolerant broadcast from `from` using a binomial tree whose
  /// dimension order at each node prefers high-safety children. Returns
  /// the set of reached nodes and counts one message per tree edge.
  struct BroadcastResult {
    std::vector<bool> reached;
    std::size_t messages = 0;
  };
  BroadcastResult broadcast(std::size_t from) const;

  static std::size_t hamming(std::size_t a, std::size_t b);

  /// Dynamic fault injection: marks `v` faulty and restabilizes. Safety
  /// levels are monotone non-increasing under new faults, so the
  /// incremental recomputation touches only affected nodes; returns how
  /// many levels changed (v included). No-op returning 0 when v was
  /// already faulty.
  std::size_t add_fault(std::size_t v);

  /// Dynamic fault recovery: marks `v` healthy again and restabilizes.
  /// Unlike new faults, recoveries raise levels non-locally (a healed
  /// node can unlock whole regions), so this re-runs the synchronous
  /// stabilization (<= n - 1 rounds per the paper) rather than a local
  /// wave; returns how many levels changed (v included). No-op returning
  /// 0 when v was not faulty.
  std::size_t remove_fault(std::size_t v);

 private:
  void stabilize();

  std::size_t n_;
  std::vector<bool> faulty_;
  std::vector<std::uint32_t> level_;
  std::vector<std::size_t> decided_;
  std::size_t rounds_ = 0;
};

}  // namespace structnet
