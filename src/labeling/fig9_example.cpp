#include "labeling/fig9_example.hpp"

namespace structnet::fig9 {

std::vector<std::size_t> faulty_nodes() { return {0b1001, 0b1100, 0b0000}; }

}  // namespace structnet::fig9
