#include "labeling/mis_cds.hpp"

#include <cassert>
#include <deque>
#include <limits>

namespace structnet {

MisCdsResult cds_from_mis(const Graph& g, const std::vector<bool>& mis) {
  assert(mis.size() == g.vertex_count());
  MisCdsResult result;
  result.cds = mis;
  const std::size_t n = g.vertex_count();
  if (n == 0) return result;

  // Grow one connected "blob" of selected vertices: repeatedly BFS from
  // the blob through unselected vertices to the nearest selected vertex
  // outside it, then select the connecting path's interior (gateways).
  VertexId seed = kInvalidVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (result.cds[v]) {
      seed = v;
      break;
    }
  }
  if (seed == kInvalidVertex) return result;  // empty MIS: nothing to do

  std::vector<bool> in_blob(n, false);
  // The blob = connected component of selected vertices containing seed
  // (recomputed incrementally below).
  auto absorb_component = [&](VertexId from) {
    std::deque<VertexId> queue{from};
    in_blob[from] = true;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId w : g.neighbors(u)) {
        if (result.cds[w] && !in_blob[w]) {
          in_blob[w] = true;
          queue.push_back(w);
        }
      }
    }
  };
  absorb_component(seed);

  for (;;) {
    // BFS from the blob to the nearest selected-but-unblobbed vertex.
    constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> dist(n, kUnreached);
    std::vector<VertexId> parent(n, kInvalidVertex);
    std::deque<VertexId> queue;
    for (VertexId v = 0; v < n; ++v) {
      if (in_blob[v]) {
        dist[v] = 0;
        queue.push_back(v);
      }
    }
    VertexId target = kInvalidVertex;
    while (!queue.empty() && target == kInvalidVertex) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (VertexId w : g.neighbors(u)) {
        if (dist[w] != kUnreached) continue;
        dist[w] = dist[u] + 1;
        parent[w] = u;
        if (result.cds[w] && !in_blob[w]) {
          target = w;
          break;
        }
        queue.push_back(w);
      }
    }
    if (target == kInvalidVertex) break;  // MIS fully connected
    // Select the path's interior vertices as gateways.
    for (VertexId v = parent[target]; v != kInvalidVertex && !in_blob[v];
         v = parent[v]) {
      if (!result.cds[v]) {
        result.cds[v] = true;
        ++result.gateways;
      }
    }
    absorb_component(target);
  }
  return result;
}

}  // namespace structnet
