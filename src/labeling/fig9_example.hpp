// The paper's Fig. 9 safety-level example, reconstructed.
//
// Fig. 9 shows a 4-D cube with three faulty (black) nodes in which, en
// route from 1101 to 0001, node 1101 selects neighbor 0101 — whose
// safety level is 2 — over its other preferred neighbor 1001. The fault
// set below reproduces those facts exactly:
//
//   faults = { 1001, 1100, 0000 }
//
// With it: 1001 is faulty (level 0); 0001, 1101, 0100 and 1000 have at
// least two faulty neighbors each (level 1); 0101's sorted neighbor levels are
// (1, 1, 1, *) so its level is 2; and greedy safety routing 1101 -> 0001
// goes 1101 -> 0101 -> 0001, a shortest path.
#pragma once

#include <cstddef>
#include <vector>

namespace structnet::fig9 {

inline constexpr std::size_t kDimensions = 4;

/// The three faulty addresses {0b1001, 0b1100, 0b0000}.
std::vector<std::size_t> faulty_nodes();

}  // namespace structnet::fig9
