#include "labeling/dynamic_mis.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace structnet {

DynamicMis::DynamicMis(const Graph& g, Rng& rng)
    : DynamicMis(g, [&] {
        std::vector<double> p(g.vertex_count());
        for (double& x : p) x = rng.uniform01();
        return p;
      }()) {}

DynamicMis::DynamicMis(const Graph& g, std::vector<double> priority)
    : priority_(std::move(priority)) {
  assert(priority_.size() == g.vertex_count());
  adjacency_.resize(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(v));
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  in_mis_.assign(g.vertex_count(), false);
  removed_.assign(g.vertex_count(), false);
  // Initial greedy pass in descending priority order.
  std::vector<VertexId> order(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return priority_[a] > priority_[b];
  });
  for (VertexId v : order) in_mis_[v] = greedy_status(v);
}

bool DynamicMis::greedy_status(VertexId v) const {
  if (removed_[v]) return false;
  for (VertexId w : adjacency_[v]) {
    if (!removed_[w] && priority_[w] > priority_[v] && in_mis_[w]) {
      return false;
    }
  }
  return true;
}

std::size_t DynamicMis::repair(std::vector<VertexId> seeds) {
  // Max-heap on priority: a vertex's status depends only on
  // higher-priority vertices, so processing in descending priority order
  // recomputes each affected vertex at most once per enqueueing.
  auto cmp = [&](VertexId a, VertexId b) {
    return priority_[a] < priority_[b];
  };
  std::priority_queue<VertexId, std::vector<VertexId>, decltype(cmp)> queue(
      cmp, std::move(seeds));
  std::size_t work = 0;
  while (!queue.empty()) {
    const VertexId v = queue.top();
    queue.pop();
    ++work;
    const bool status = greedy_status(v);
    if (status == in_mis_[v]) continue;
    in_mis_[v] = status;
    for (VertexId w : adjacency_[v]) {
      if (!removed_[w] && priority_[w] < priority_[v]) queue.push(w);
    }
  }
  return work;
}

std::size_t DynamicMis::add_edge(VertexId u, VertexId v) {
  assert(u < vertex_count() && v < vertex_count() && u != v);
  assert(!removed_[u] && !removed_[v]);
  if (has_edge(u, v)) return 0;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  const VertexId lower = priority_[u] < priority_[v] ? u : v;
  return repair({lower});
}

std::size_t DynamicMis::remove_edge(VertexId u, VertexId v) {
  assert(u < vertex_count() && v < vertex_count());
  auto erase_from = [](std::vector<VertexId>& list, VertexId x) {
    const auto it = std::find(list.begin(), list.end(), x);
    if (it == list.end()) return false;
    list.erase(it);
    return true;
  };
  if (!erase_from(adjacency_[u], v)) return 0;
  erase_from(adjacency_[v], u);
  const VertexId lower = priority_[u] < priority_[v] ? u : v;
  return repair({lower});
}

VertexId DynamicMis::add_vertex(Rng& rng) {
  adjacency_.emplace_back();
  priority_.push_back(rng.uniform01());
  removed_.push_back(false);
  in_mis_.push_back(true);  // isolated vertex joins the MIS
  return static_cast<VertexId>(adjacency_.size() - 1);
}

std::size_t DynamicMis::remove_vertex(VertexId v) {
  assert(v < vertex_count() && !removed_[v]);
  std::vector<VertexId> neighbors = adjacency_[v];
  for (VertexId w : neighbors) {
    auto& list = adjacency_[w];
    list.erase(std::find(list.begin(), list.end(), v));
  }
  adjacency_[v].clear();
  removed_[v] = true;
  in_mis_[v] = false;
  std::vector<VertexId> seeds;
  for (VertexId w : neighbors) {
    if (!removed_[w]) seeds.push_back(w);
  }
  return repair(std::move(seeds));
}

std::size_t DynamicMis::restore_vertex(VertexId v) {
  assert(v < vertex_count() && removed_[v]);
  assert(adjacency_[v].empty());
  removed_[v] = false;
  in_mis_[v] = true;  // isolated vertex joins the MIS
  return 0;
}

bool DynamicMis::has_edge(VertexId u, VertexId v) const {
  const auto& list = adjacency_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

bool DynamicMis::verify() const {
  for (VertexId v = 0; v < vertex_count(); ++v) {
    if (removed_[v]) {
      if (in_mis_[v]) return false;
      continue;
    }
    if (in_mis_[v] != greedy_status(v)) return false;
  }
  return true;
}

}  // namespace structnet
