// Static labeling schemes of Sec. IV-A: each node is labeled a small
// number of times for a given topology.
//
//   * Marking process (Wu-Dai [22]): a node colors itself black when it
//     has two unconnected neighbors; all black nodes form a CDS.
//   * CDS trimming: a black node reverts to white when its neighborhood
//     is covered by a connected set of higher-priority black nodes.
//   * Distributed MIS (3 colors, log n rounds expected): a white node
//     that is the 1-hop priority maximum among white nodes turns black;
//     white nodes with a black neighbor turn gray; repeat.
//   * Neighbor-designated DS (1 round): every node selects the highest
//     priority node of its closed neighborhood; selected nodes form a DS.
//
// Priorities are supplied explicitly (higher value = higher priority); the
// paper's examples use p(A) > p(B) > ... which corresponds to
// priority[v] = n - v.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Self-determined marking: black iff the node has two neighbors that are
/// not connected to each other. Returns the black mask (the CDS).
std::vector<bool> marking_process(const Graph& g);

/// CDS trimming rule: black node u reverts to white when the set of its
/// *higher-priority black* neighbors contains a connected subset that
/// covers N(u). All reverts are evaluated against the input black set
/// simultaneously (the standard Wu-Dai Rule-k schedule); priority order
/// makes simultaneous application safe.
std::vector<bool> trim_cds(const Graph& g, const std::vector<bool>& black,
                           std::span<const double> priority);

/// Result of the 3-color distributed MIS computation.
struct MisResult {
  std::vector<bool> in_mis;  // black nodes
  std::size_t rounds = 0;
};

/// Synchronous 3-color MIS: expected O(log n) rounds under random
/// priorities; deterministic given the supplied priorities.
MisResult distributed_mis(const Graph& g, std::span<const double> priority);

/// Neighbor-designated dominating set: one round; every node nominates
/// the highest-priority member of its closed neighborhood.
std::vector<bool> neighbor_designated_ds(const Graph& g,
                                         std::span<const double> priority);

// ------------------------------------------------------------ verifiers

bool is_dominating_set(const Graph& g, const std::vector<bool>& ds);
bool is_connected_dominating_set(const Graph& g, const std::vector<bool>& ds);
bool is_independent_set(const Graph& g, const std::vector<bool>& is);
bool is_maximal_independent_set(const Graph& g, const std::vector<bool>& is);

/// Convenience: priority[v] = n - v, the paper's "p(A) > p(B) > ..." by
/// node id.
std::vector<double> id_priorities(std::size_t n);

}  // namespace structnet
