// Dynamic MIS maintenance under topology changes (Sec. IV-C, citing
// Censor-Hillel et al. [30]): when the MIS is the greedy one induced by
// uniformly random node priorities, an edge/node insertion or deletion
// costs O(1) adjustments in expectation, versus a full recomputation.
//
// The maintained set is the lexicographically-first MIS: v is in the MIS
// iff no higher-priority neighbor is. Repairs propagate only to vertices
// whose status actually flips, processed in priority order; the number of
// status recomputations is the "adjustment work" reported per update.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "util/rng.hpp"

namespace structnet {

class DynamicMis {
 public:
  /// Starts from g with independently drawn uniform priorities.
  DynamicMis(const Graph& g, Rng& rng);

  /// Starts from g with the supplied priorities (must be distinct).
  DynamicMis(const Graph& g, std::vector<double> priority);

  std::size_t vertex_count() const { return adjacency_.size(); }
  bool in_mis(VertexId v) const { return in_mis_[v]; }
  const std::vector<bool>& mis() const { return in_mis_; }
  double priority(VertexId v) const { return priority_[v]; }

  /// Each mutator returns the number of status recomputations the repair
  /// performed (the update cost the paper's discussion is about).
  std::size_t add_edge(VertexId u, VertexId v);
  std::size_t remove_edge(VertexId u, VertexId v);
  /// Adds an isolated vertex with a fresh random priority; returns its id.
  VertexId add_vertex(Rng& rng);
  /// Removes all edges of v and forces v out of consideration (status
  /// false, priority kept). Returns the repair cost.
  std::size_t remove_vertex(VertexId v);
  /// Reverses remove_vertex: v rejoins as an isolated vertex with its old
  /// priority (edges re-arrive as separate insertions). Returns the
  /// repair cost (0: an isolated vertex joins the MIS unconditionally).
  std::size_t restore_vertex(VertexId v);

  bool has_edge(VertexId u, VertexId v) const;

  /// Invariant check: the current set is the greedy MIS of the current
  /// graph restricted to live vertices.
  bool verify() const;

 private:
  bool greedy_status(VertexId v) const;
  std::size_t repair(std::vector<VertexId> seeds);

  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<double> priority_;
  std::vector<bool> in_mis_;
  std::vector<bool> removed_;
};

}  // namespace structnet
