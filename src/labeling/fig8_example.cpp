#include "labeling/fig8_example.hpp"

namespace structnet::fig8 {

Graph build() {
  Graph g(6);
  g.add_edge(A, D);
  g.add_edge(A, F);
  g.add_edge(B, C);
  g.add_edge(B, D);
  g.add_edge(B, F);
  g.add_edge(C, D);
  g.add_edge(C, E);
  g.add_edge(D, E);
  g.add_edge(D, F);
  g.add_edge(E, F);
  return g;
}

}  // namespace structnet::fig8
