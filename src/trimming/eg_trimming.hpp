// Structural trimming of time-evolving graphs (Sec. III-A).
//
// The paper's static trimming rule: node u can be trimmed if for any path
// w -i-> u -j-> v with i <= j there is a replacement path
// w -i'-> u_1 -> ... -> u_k -j'-> v with i' >= i and j' <= j (only the
// first and last labels are compared). To avoid circular replacement,
// every node carries a distinct priority p(u); u may only be replaced if
// every intermediate node on the replacement path has higher priority.
//
// Three granularities are provided, from coarse to fine:
//   * node trimming  — remove u entirely (all its links);
//   * link trimming  — w "ignores neighbor u": only paths starting with
//     the (w, u) link need replacements (the paper's Fig. 2 example:
//     A can ignore D);
//   * label trimming — remove a single time label from a link when doing
//     so provably preserves every pair's earliest completion time.
//
// The `MinimumHopPreserving` variant restricts replacement paths to at
// most one intermediate node, which also preserves minimum hop counts
// (paper: "we can require that each replacement path have, at most, one
// intermediate node").
#pragma once

#include <span>
#include <vector>

#include "temporal/temporal_graph.hpp"

namespace structnet {

enum class TrimVariant {
  kCompletionTimePreserving,  // replacement paths of any length
  kMinimumHopPreserving,      // replacement paths with <= 1 intermediate
};

/// True iff a replacement journey w -> v exists that avoids `banned`,
/// departs at label >= i, arrives (last label) <= j, and whose
/// intermediate vertices all have priority > priority[banned].
bool replacement_exists(const TemporalGraph& eg, VertexId w, VertexId banned,
                        VertexId v, TimeUnit i, TimeUnit j,
                        std::span<const double> priority, TrimVariant variant);

/// Localized variant (Sec. IV: each node knows only a k-hop horizon):
/// like can_ignore_neighbor, but replacement journeys may only relay
/// through vertices within `k` footprint-hops of `w` — the information a
/// k-hop-localized node actually possesses. k >= horizon diameter
/// recovers the global rule; small k trims less (the "price of being
/// near-sighted" [27], measured in bench_trimming).
bool can_ignore_neighbor_khop(const TemporalGraph& eg, VertexId w, VertexId u,
                              std::span<const double> priority,
                              std::uint32_t k,
                              TrimVariant variant =
                                  TrimVariant::kCompletionTimePreserving);

/// Link rule: true iff w can ignore its neighbor u — every 2-hop path
/// w -i-> u -j-> v (over all v in N(u) \ {w}, all label pairs i <= j) has
/// a replacement.
bool can_ignore_neighbor(const TemporalGraph& eg, VertexId w, VertexId u,
                         std::span<const double> priority,
                         TrimVariant variant =
                             TrimVariant::kCompletionTimePreserving);

/// Node rule: true iff u can be trimmed — every 2-hop path through u from
/// any neighbor w to any neighbor v has a replacement.
bool can_trim_node(const TemporalGraph& eg, VertexId u,
                   std::span<const double> priority,
                   TrimVariant variant =
                       TrimVariant::kCompletionTimePreserving);

/// True iff removing label t from link (u, v) preserves the earliest
/// completion time between *all* vertex pairs at *all* start times.
bool label_is_redundant(const TemporalGraph& eg, VertexId u, VertexId v,
                        TimeUnit t);

struct TrimResult {
  TemporalGraph trimmed;
  std::vector<VertexId> removed_nodes;        // node trimming
  std::vector<std::pair<VertexId, VertexId>> removed_links;  // link trimming
  std::size_t removed_labels = 0;             // label trimming
};

/// Greedy node trimming: scans vertices in increasing priority order and
/// removes each vertex that the node rule admits (re-evaluated against
/// the current graph, so removals compound).
TrimResult trim_nodes(const TemporalGraph& eg,
                      std::span<const double> priority,
                      TrimVariant variant =
                          TrimVariant::kCompletionTimePreserving);

/// Greedy link trimming: removes link (w, u) when BOTH directions are
/// ignorable under the link rule (the EG is undirected, so a link can
/// only be deleted when neither endpoint needs it) AND the endpoints
/// remain mutually reachable at every start time without it.
///
/// Guarantee: reachability between every pair at every start time is
/// preserved. Unlike node trimming, exact completion times are NOT
/// guaranteed for journeys that terminate at a trimmed link's endpoint —
/// the replacement rule only windows the first/last labels of *through*
/// traffic (see the LinkTrimMayDelayEndpointArrival test for the
/// canonical example).
TrimResult trim_links(const TemporalGraph& eg,
                      std::span<const double> priority,
                      TrimVariant variant =
                          TrimVariant::kCompletionTimePreserving);

/// Greedy label trimming: removes redundant labels one at a time until
/// none remains.
TrimResult trim_labels(const TemporalGraph& eg);

/// Verification helper: true iff for every pair of vertices alive in both
/// graphs and every start time, connectivity in `trimmed` matches
/// `original` (trimmed never loses a reachable pair). With
/// `check_completion`, earliest completion times must match exactly.
bool preserves_reachability(const TemporalGraph& original,
                            const TemporalGraph& trimmed,
                            const std::vector<bool>& alive,
                            bool check_completion);

}  // namespace structnet
