// Static trimming by localized topology control on unit-disk graphs
// (Sec. III-A, citing Santi's survey [10]).
//
// Both structures below are computable by each node from 1-hop position
// information, remove edges only (never nodes), and preserve connectivity
// of the underlying UDG:
//   * Gabriel graph: keep (u, v) iff no witness w lies strictly inside
//     the disk with diameter uv;
//   * Relative neighborhood graph (RNG): keep (u, v) iff no witness w is
//     strictly closer to both u and v than they are to each other.
// RNG is a subgraph of the Gabriel graph; both contain every MST.
#pragma once

#include <span>
#include <vector>

#include "core/geometry.hpp"
#include "core/graph.hpp"

namespace structnet {

/// Gabriel subgraph of a UDG given node positions. Witnesses are
/// restricted to common neighbors in g (the information a localized node
/// actually has).
Graph gabriel_graph(const Graph& g, std::span<const Point2D> positions);

/// Relative neighborhood subgraph of a UDG given node positions.
Graph relative_neighborhood_graph(const Graph& g,
                                  std::span<const Point2D> positions);

/// Average and maximum hop stretch of `sparse` w.r.t. `dense` over all
/// connected pairs (how much longer BFS paths get after trimming).
struct StretchReport {
  double average = 1.0;
  double maximum = 1.0;
  std::size_t pairs = 0;
};
StretchReport hop_stretch(const Graph& dense, const Graph& sparse);

}  // namespace structnet
