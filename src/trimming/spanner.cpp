#include "trimming/spanner.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "algo/shortest_paths.hpp"

namespace structnet {

std::vector<EdgeId> greedy_spanner(const Graph& g,
                                   std::span<const double> weights,
                                   double stretch) {
  assert(weights.size() == g.edge_count());
  assert(stretch > 1.0);
  std::vector<EdgeId> order(g.edge_count());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return weights[a] < weights[b]; });

  Graph spanner(g.vertex_count());
  std::vector<double> kept_weights;
  std::vector<EdgeId> kept;
  for (EdgeId e : order) {
    const auto& edge = g.edge(e);
    // Distance between the endpoints in the spanner built so far.
    const auto sp = dijkstra(spanner, kept_weights, edge.u);
    if (sp.distance[edge.v] > stretch * weights[e]) {
      spanner.add_edge(edge.u, edge.v);
      kept_weights.push_back(weights[e]);
      kept.push_back(e);
    }
  }
  return kept;
}

Graph subgraph_of_edges(const Graph& g, std::span<const EdgeId> edges) {
  Graph sub(g.vertex_count());
  for (EdgeId e : edges) sub.add_edge(g.edge(e).u, g.edge(e).v);
  return sub;
}

bool is_spanner(const Graph& g, std::span<const double> weights,
                const Graph& sub, std::span<const double> sub_weights,
                double stretch) {
  assert(g.vertex_count() == sub.vertex_count());
  for (VertexId s = 0; s < g.vertex_count(); ++s) {
    const auto dg = dijkstra(g, weights, s);
    const auto ds = dijkstra(sub, sub_weights, s);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (dg.distance[v] == kInfDistance) continue;
      if (ds.distance[v] > stretch * dg.distance[v] + 1e-9) return false;
    }
  }
  return true;
}

}  // namespace structnet
