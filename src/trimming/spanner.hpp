// Graph spanners (Sec. III-A: "subgraph distances closely resemble the
// distances in the original graph for designing the approximation
// algorithms for the graph problems" [8]).
//
// The classic greedy t-spanner: scan edges by increasing weight and keep
// an edge only when the spanner's current distance between its endpoints
// exceeds t times its weight. The result is a t-spanner: for every pair,
// d_spanner <= t * d_graph.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Edge ids of a greedy t-spanner (stretch > 1). O(m * (n log n + m)).
std::vector<EdgeId> greedy_spanner(const Graph& g,
                                   std::span<const double> weights,
                                   double stretch);

/// Builds the subgraph containing exactly the given edges of g.
Graph subgraph_of_edges(const Graph& g, std::span<const EdgeId> edges);

/// Verifies the spanner property: for every vertex pair,
/// d_sub(u, v) <= stretch * d_g(u, v) (weighted). O(n * m log n).
bool is_spanner(const Graph& g, std::span<const double> weights,
                const Graph& sub, std::span<const double> sub_weights,
                double stretch);

}  // namespace structnet
