// Probabilistic trimming (Sec. III-A): "In situations where link labels
// are not deterministically, but rather, probabilistically, known, it
// would be interesting to explore different probabilistic versions of
// the trimming rule."
//
// Model: every contact (u, v, t) exists independently with a known
// probability. The probabilistic link rule declares that w may ignore
// neighbor u at confidence level c when, over the distribution of
// realizations, the deterministic rule holds with probability >= c.
// Probabilities are estimated by Monte Carlo over sampled realizations
// (exact enumeration is exponential in the number of contacts).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "temporal/temporal_graph.hpp"
#include "temporal/weighted.hpp"
#include "trimming/eg_trimming.hpp"
#include "util/rng.hpp"

namespace structnet {

/// Contacts with existence probabilities: a WeightedTemporalGraph whose
/// weights are interpreted as P(contact exists).
using ProbabilisticTemporalGraph = WeightedTemporalGraph;

/// Samples one realization: each contact kept independently with its
/// probability.
TemporalGraph sample_realization(const ProbabilisticTemporalGraph& eg,
                                 Rng& rng);

/// Monte Carlo estimate of P(the deterministic link rule holds), i.e.
/// the probability that every realized 2-hop path w -> u -> v has a
/// realized replacement.
double ignore_neighbor_probability(const ProbabilisticTemporalGraph& eg,
                                   VertexId w, VertexId u,
                                   std::span<const double> priority,
                                   std::size_t samples, Rng& rng,
                                   TrimVariant variant =
                                       TrimVariant::kCompletionTimePreserving);

/// Probabilistic link rule: true iff the estimated probability is at
/// least `confidence`.
bool can_ignore_neighbor_probabilistic(
    const ProbabilisticTemporalGraph& eg, VertexId w, VertexId u,
    std::span<const double> priority, double confidence, std::size_t samples,
    Rng& rng,
    TrimVariant variant = TrimVariant::kCompletionTimePreserving);

/// Reachability degradation report for a probabilistic trim decision:
/// over sampled realizations, compares earliest completion between the
/// realization and the realization without the (w, u) link, over all
/// sources/start times. Returns the fraction of (realization, pair,
/// start) triples whose completion time got worse — the empirical "cost"
/// of ignoring the link.
double trim_degradation(const ProbabilisticTemporalGraph& eg, VertexId w,
                        VertexId u, std::size_t samples, Rng& rng);

}  // namespace structnet
