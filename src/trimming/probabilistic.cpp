#include "trimming/probabilistic.hpp"

#include <cassert>

#include "temporal/journeys.hpp"

namespace structnet {

TemporalGraph sample_realization(const ProbabilisticTemporalGraph& eg,
                                 Rng& rng) {
  TemporalGraph out(eg.vertex_count(), eg.horizon());
  for (const WeightedContact& c : eg.contacts()) {
    if (rng.bernoulli(c.weight)) out.add_contact(c.u, c.v, c.t);
  }
  return out;
}

double ignore_neighbor_probability(const ProbabilisticTemporalGraph& eg,
                                   VertexId w, VertexId u,
                                   std::span<const double> priority,
                                   std::size_t samples, Rng& rng,
                                   TrimVariant variant) {
  assert(samples > 0);
  std::size_t holds = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const TemporalGraph realization = sample_realization(eg, rng);
    holds += can_ignore_neighbor(realization, w, u, priority, variant);
  }
  return static_cast<double>(holds) / static_cast<double>(samples);
}

bool can_ignore_neighbor_probabilistic(const ProbabilisticTemporalGraph& eg,
                                       VertexId w, VertexId u,
                                       std::span<const double> priority,
                                       double confidence, std::size_t samples,
                                       Rng& rng, TrimVariant variant) {
  return ignore_neighbor_probability(eg, w, u, priority, samples, rng,
                                     variant) >= confidence;
}

double trim_degradation(const ProbabilisticTemporalGraph& eg, VertexId w,
                        VertexId u, std::size_t samples, Rng& rng) {
  assert(samples > 0);
  std::size_t worse = 0, total = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const TemporalGraph realization = sample_realization(eg, rng);
    const TemporalGraph trimmed = realization.without_edge(w, u);
    for (VertexId s = 0; s < realization.vertex_count(); ++s) {
      for (TimeUnit t0 = 0; t0 < realization.horizon(); ++t0) {
        const auto before = earliest_arrival(realization, s, t0);
        const auto after = earliest_arrival(trimmed, s, t0);
        for (VertexId v = 0; v < realization.vertex_count(); ++v) {
          ++total;
          worse += after.completion[v] > before.completion[v];
        }
      }
    }
  }
  return total ? static_cast<double>(worse) / static_cast<double>(total) : 0.0;
}

}  // namespace structnet
