#include "trimming/eg_trimming.hpp"

#include <algorithm>
#include <cassert>

#include "algo/traversal.hpp"
#include "temporal/journeys.hpp"

namespace structnet {

namespace {

/// Earliest completion of a journey w -> v that departs at or after
/// t_start, never touches `banned`, and relays only through vertices of
/// priority strictly greater than priority[banned] (and inside
/// `horizon_mask` when given — the k-hop information horizon). Returns
/// kNeverTime when no such journey exists.
TimeUnit constrained_completion(const TemporalGraph& eg, VertexId w,
                                VertexId v, VertexId banned, TimeUnit t_start,
                                std::span<const double> priority,
                                const std::vector<bool>* horizon_mask =
                                    nullptr) {
  const double floor_priority = priority[banned];
  std::vector<bool> have(eg.vertex_count(), false);
  have[w] = true;
  // Bucket edge ids by label once.
  std::vector<std::vector<EdgeId>> bucket(eg.horizon());
  for (EdgeId e = 0; e < eg.edge_count(); ++e) {
    for (TimeUnit t : eg.edge(e).labels) bucket[t].push_back(e);
  }
  auto can_relay = [&](VertexId x) {
    if (x == w) return true;
    if (priority[x] <= floor_priority) return false;
    return horizon_mask == nullptr || (*horizon_mask)[x];
  };
  for (TimeUnit t = t_start; t < eg.horizon(); ++t) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (EdgeId e : bucket[t]) {
        const auto& edge = eg.edge(e);
        if (edge.u == banned || edge.v == banned) continue;
        auto relax = [&](VertexId from, VertexId to) {
          if (have[from] && !have[to] && can_relay(from)) {
            have[to] = true;
            changed = true;
            return to == v;
          }
          return false;
        };
        if (relax(edge.u, edge.v) || relax(edge.v, edge.u)) return t;
      }
    }
  }
  return kNeverTime;
}

/// Minimum-hop variant: direct contact or a single allowed intermediate.
bool short_replacement_exists(const TemporalGraph& eg, VertexId w,
                              VertexId banned, VertexId v, TimeUnit i,
                              TimeUnit j, std::span<const double> priority) {
  // Direct w -> v with a label in [i, j].
  const EdgeId direct = eg.find_edge(w, v);
  if (direct != kInvalidEdge) {
    const auto& labels = eg.edge(direct).labels;
    const auto it = std::lower_bound(labels.begin(), labels.end(), i);
    if (it != labels.end() && *it <= j) return true;
  }
  // Two hops w -l1-> x -l2-> v with i <= l1 <= l2 <= j and x allowed.
  for (EdgeId e1 : eg.incident_edges(w)) {
    const VertexId x = eg.other_endpoint(e1, w);
    if (x == banned || x == v || priority[x] <= priority[banned]) continue;
    const auto& l1s = eg.edge(e1).labels;
    const auto it1 = std::lower_bound(l1s.begin(), l1s.end(), i);
    if (it1 == l1s.end() || *it1 > j) continue;
    const TimeUnit l1 = *it1;  // smallest feasible first label widens [l1,j]
    const EdgeId e2 = eg.find_edge(x, v);
    if (e2 == kInvalidEdge) continue;
    const auto& l2s = eg.edge(e2).labels;
    const auto it2 = std::lower_bound(l2s.begin(), l2s.end(), l1);
    if (it2 != l2s.end() && *it2 <= j) return true;
  }
  return false;
}

}  // namespace

bool replacement_exists(const TemporalGraph& eg, VertexId w, VertexId banned,
                        VertexId v, TimeUnit i, TimeUnit j,
                        std::span<const double> priority,
                        TrimVariant variant) {
  assert(priority.size() == eg.vertex_count());
  if (variant == TrimVariant::kMinimumHopPreserving) {
    return short_replacement_exists(eg, w, banned, v, i, j, priority);
  }
  const TimeUnit completion =
      constrained_completion(eg, w, v, banned, i, priority);
  return completion != kNeverTime && completion <= j;
}

namespace {

/// Shared engine for the link and node rules: checks every 2-hop path
/// w -i-> u -j-> v for a fixed (w, u) against the replacement predicate.
/// With a horizon mask, relays are confined to it (k-hop local rule).
bool all_paths_replaceable(const TemporalGraph& eg, VertexId w, VertexId u,
                           std::span<const double> priority,
                           TrimVariant variant,
                           const std::vector<bool>* horizon_mask = nullptr) {
  const EdgeId wu = eg.find_edge(w, u);
  if (wu == kInvalidEdge) return true;
  const auto& in_labels = eg.edge(wu).labels;
  for (EdgeId e : eg.incident_edges(u)) {
    const VertexId v = eg.other_endpoint(e, u);
    if (v == w) continue;
    const auto& out_labels = eg.edge(e).labels;
    for (TimeUnit i : in_labels) {
      // Only the tightest j (smallest label >= i) must be checked: a
      // replacement with last label <= j_min also serves every j > j_min.
      const auto it =
          std::lower_bound(out_labels.begin(), out_labels.end(), i);
      if (it == out_labels.end()) continue;
      if (variant == TrimVariant::kMinimumHopPreserving) {
        if (!replacement_exists(eg, w, u, v, i, *it, priority, variant)) {
          return false;
        }
        continue;
      }
      const TimeUnit completion = constrained_completion(
          eg, w, v, u, i, priority, horizon_mask);
      if (completion == kNeverTime || completion > *it) return false;
    }
  }
  return true;
}

}  // namespace

bool can_ignore_neighbor_khop(const TemporalGraph& eg, VertexId w, VertexId u,
                              std::span<const double> priority,
                              std::uint32_t k, TrimVariant variant) {
  const Graph footprint = eg.footprint();
  const auto nearby = k_hop_neighborhood(footprint, w, k);
  std::vector<bool> mask(eg.vertex_count(), false);
  for (VertexId x : nearby) mask[x] = true;
  return all_paths_replaceable(eg, w, u, priority, variant, &mask);
}

bool can_ignore_neighbor(const TemporalGraph& eg, VertexId w, VertexId u,
                         std::span<const double> priority,
                         TrimVariant variant) {
  return all_paths_replaceable(eg, w, u, priority, variant);
}

bool can_trim_node(const TemporalGraph& eg, VertexId u,
                   std::span<const double> priority, TrimVariant variant) {
  for (EdgeId e : eg.incident_edges(u)) {
    const VertexId w = eg.other_endpoint(e, u);
    if (!all_paths_replaceable(eg, w, u, priority, variant)) return false;
  }
  return true;
}

bool label_is_redundant(const TemporalGraph& eg, VertexId u, VertexId v,
                        TimeUnit t) {
  if (!eg.has_contact(u, v, t)) return false;
  const TemporalGraph pruned = eg.without_label(u, v, t);
  for (VertexId s = 0; s < eg.vertex_count(); ++s) {
    for (TimeUnit t0 = 0; t0 <= t; ++t0) {
      const auto before = earliest_arrival(eg, s, t0);
      const auto after = earliest_arrival(pruned, s, t0);
      if (before.completion != after.completion) return false;
    }
  }
  return true;
}

TrimResult trim_nodes(const TemporalGraph& eg,
                      std::span<const double> priority, TrimVariant variant) {
  assert(priority.size() == eg.vertex_count());
  TrimResult result;
  result.trimmed = eg;
  // Lowest-priority vertices are candidates first (they may be replaced
  // by anything above them).
  std::vector<VertexId> order(eg.vertex_count());
  for (VertexId v = 0; v < eg.vertex_count(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return priority[a] < priority[b];
  });
  for (VertexId u : order) {
    if (result.trimmed.incident_edges(u).empty()) continue;
    if (can_trim_node(result.trimmed, u, priority, variant)) {
      result.trimmed = result.trimmed.without_vertex(u);
      result.removed_nodes.push_back(u);
    }
  }
  return result;
}

TrimResult trim_links(const TemporalGraph& eg,
                      std::span<const double> priority, TrimVariant variant) {
  assert(priority.size() == eg.vertex_count());
  TrimResult result;
  result.trimmed = eg;
  // Deterministic scan over the original edge list; each removal is
  // re-validated against the current (already-trimmed) graph.
  //
  // The replacement rule protects every journey that uses the link as an
  // intermediate segment. Journeys that START or END on the link itself
  // are protected by the additional endpoint guard: after removal, the
  // two endpoints must still reach each other at every start time they
  // could before (their completion may degrade, but never connectivity;
  // this also rejects the degenerate pendant case where the rule holds
  // vacuously).
  for (const auto& edge : eg.edges()) {
    const VertexId w = edge.u;
    const VertexId u = edge.v;
    if (result.trimmed.find_edge(w, u) == kInvalidEdge) continue;
    if (!can_ignore_neighbor(result.trimmed, w, u, priority, variant) ||
        !can_ignore_neighbor(result.trimmed, u, w, priority, variant)) {
      continue;
    }
    const TemporalGraph candidate = result.trimmed.without_edge(w, u);
    bool endpoints_ok = true;
    for (TimeUnit t = 0; t < eg.horizon() && endpoints_ok; ++t) {
      if (is_connected_at(result.trimmed, w, u, t) &&
          !is_connected_at(candidate, w, u, t)) {
        endpoints_ok = false;
      }
      if (is_connected_at(result.trimmed, u, w, t) &&
          !is_connected_at(candidate, u, w, t)) {
        endpoints_ok = false;
      }
    }
    if (!endpoints_ok) continue;
    result.trimmed = candidate;
    result.removed_links.emplace_back(w, u);
  }
  return result;
}

TrimResult trim_labels(const TemporalGraph& eg) {
  TrimResult result;
  result.trimmed = eg;
  TemporalGraph& g = result.trimmed;
  // Local criterion: the label t on (u, v) is redundant when u and v are
  // already joined at time t through other edges of the same snapshot
  // (transmission is instantaneous within a unit, so the detour costs
  // nothing and every journey through the removed contact still works).
  //
  // Per-time-unit edge buckets keep each redundancy check to a BFS over
  // the edges active in that one unit; removals update the bucket in
  // place, so the whole pass is near-linear in the number of contacts.
  std::vector<std::vector<EdgeId>> bucket(g.horizon());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    for (TimeUnit t : g.edge(e).labels) bucket[t].push_back(e);
  }
  // Connectivity of u..v within one bucket, excluding edge `skip`.
  const auto connected_without = [&](TimeUnit t, EdgeId skip, VertexId u,
                                     VertexId v) {
    std::vector<VertexId> stack{u};
    std::vector<bool> seen(g.vertex_count(), false);
    seen[u] = true;
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      for (EdgeId e : bucket[t]) {
        if (e == skip) continue;
        const auto& edge = g.edge(e);
        VertexId y = kInvalidVertex;
        if (edge.u == x) {
          y = edge.v;
        } else if (edge.v == x) {
          y = edge.u;
        } else {
          continue;
        }
        if (y == v) return true;
        if (!seen[y]) {
          seen[y] = true;
          stack.push_back(y);
        }
      }
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (TimeUnit t = 0; t < g.horizon(); ++t) {
      for (std::size_t i = 0; i < bucket[t].size(); ++i) {
        const EdgeId e = bucket[t][i];
        const auto& edge = g.edge(e);
        if (connected_without(t, e, edge.u, edge.v)) {
          g.remove_label(edge.u, edge.v, t);
          bucket[t].erase(bucket[t].begin() +
                          static_cast<std::ptrdiff_t>(i));
          --i;
          ++result.removed_labels;
          changed = true;
        }
      }
    }
  }
  return result;
}

bool preserves_reachability(const TemporalGraph& original,
                            const TemporalGraph& trimmed,
                            const std::vector<bool>& alive,
                            bool check_completion) {
  assert(original.vertex_count() == trimmed.vertex_count());
  assert(alive.size() == original.vertex_count());
  for (VertexId s = 0; s < original.vertex_count(); ++s) {
    if (!alive[s]) continue;
    for (TimeUnit t0 = 0; t0 < original.horizon(); ++t0) {
      const auto before = earliest_arrival(original, s, t0);
      const auto after = earliest_arrival(trimmed, s, t0);
      for (VertexId v = 0; v < original.vertex_count(); ++v) {
        if (!alive[v]) continue;
        if (check_completion) {
          if (before.completion[v] != after.completion[v]) return false;
        } else {
          const bool was = before.completion[v] != kNeverTime;
          const bool is = after.completion[v] != kNeverTime;
          if (was && !is) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace structnet
