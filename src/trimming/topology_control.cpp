#include "trimming/topology_control.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "algo/traversal.hpp"

namespace structnet {

namespace {

/// Keeps the edges of g that pass `keep_edge(u, v)`.
template <typename Pred>
Graph filter_edges(const Graph& g, Pred&& keep_edge) {
  Graph out(g.vertex_count());
  for (const Graph::Edge& e : g.edges()) {
    if (keep_edge(e.u, e.v)) out.add_edge(e.u, e.v);
  }
  return out;
}

}  // namespace

Graph gabriel_graph(const Graph& g, std::span<const Point2D> positions) {
  assert(positions.size() == g.vertex_count());
  return filter_edges(g, [&](VertexId u, VertexId v) {
    const Point2D mid = midpoint(positions[u], positions[v]);
    const double r2 = squared_distance(positions[u], positions[v]) / 4.0;
    for (VertexId w : g.neighbors(u)) {
      if (w == v) continue;
      if (!g.has_edge(w, v)) continue;  // localized: only common neighbors
      if (squared_distance(positions[w], mid) < r2 - 1e-12) return false;
    }
    return true;
  });
}

Graph relative_neighborhood_graph(const Graph& g,
                                  std::span<const Point2D> positions) {
  assert(positions.size() == g.vertex_count());
  return filter_edges(g, [&](VertexId u, VertexId v) {
    const double duv = squared_distance(positions[u], positions[v]);
    for (VertexId w : g.neighbors(u)) {
      if (w == v) continue;
      if (!g.has_edge(w, v)) continue;
      if (squared_distance(positions[w], positions[u]) < duv - 1e-12 &&
          squared_distance(positions[w], positions[v]) < duv - 1e-12) {
        return false;
      }
    }
    return true;
  });
}

StretchReport hop_stretch(const Graph& dense, const Graph& sparse) {
  assert(dense.vertex_count() == sparse.vertex_count());
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  StretchReport report;
  report.average = 0.0;
  double sum = 0.0;
  for (VertexId s = 0; s < dense.vertex_count(); ++s) {
    const auto d0 = bfs_distances(dense, s);
    const auto d1 = bfs_distances(sparse, s);
    for (VertexId v = s + 1; v < dense.vertex_count(); ++v) {
      if (d0[v] == kUnreached || d0[v] == 0) continue;
      // Connectivity-preserving trimming keeps the pair reachable; guard
      // anyway so the report is usable on arbitrary subgraphs.
      if (d1[v] == kUnreached) continue;
      const double stretch =
          static_cast<double>(d1[v]) / static_cast<double>(d0[v]);
      sum += stretch;
      report.maximum = std::max(report.maximum, stretch);
      ++report.pairs;
    }
  }
  report.average = report.pairs ? sum / static_cast<double>(report.pairs) : 1.0;
  return report;
}

}  // namespace structnet
