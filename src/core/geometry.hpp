// 2-D geometry primitives for unit-disk graphs, mobility models, and
// geographic routing.
#pragma once

#include <cmath>

namespace structnet {

/// A point in the Euclidean plane.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D&, const Point2D&) = default;
};

inline double squared_distance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(squared_distance(a, b));
}

inline Point2D midpoint(const Point2D& a, const Point2D& b) {
  return {(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

}  // namespace structnet
