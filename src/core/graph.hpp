// Undirected simple graph with a stable edge list and adjacency lists.
//
// This is the base container for every static-graph algorithm in
// structnet. It is a value type: copy/move behave as expected and no
// hidden sharing occurs. Vertices are dense 0..n-1; parallel edges and
// self-loops are rejected in debug builds and ignored by `add_edge_unique`.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace structnet {

/// An undirected simple graph.
class Graph {
 public:
  /// An undirected edge; `u < v` is NOT enforced, order is as inserted.
  struct Edge {
    VertexId u = kInvalidVertex;
    VertexId v = kInvalidVertex;

    friend bool operator==(const Edge&, const Edge&) = default;
  };

  Graph() = default;
  /// Creates a graph with `n` isolated vertices.
  explicit Graph(std::size_t n) : adjacency_(n) {}

  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  /// Appends an isolated vertex; returns its id.
  VertexId add_vertex();

  /// Adds undirected edge (u, v). Requires u != v, both in range, and the
  /// edge not already present (checked in debug builds). Returns its id.
  EdgeId add_edge(VertexId u, VertexId v);

  /// Adds (u, v) only if absent and u != v. Returns the edge id, or
  /// kInvalidEdge when skipped. O(min degree).
  EdgeId add_edge_unique(VertexId u, VertexId v);

  /// True iff (u, v) is an edge. O(min degree).
  bool has_edge(VertexId u, VertexId v) const;

  /// Neighbors of `v` in insertion order.
  std::span<const VertexId> neighbors(VertexId v) const {
    return adjacency_[v];
  }

  std::size_t degree(VertexId v) const { return adjacency_[v].size(); }

  /// All edges in insertion order.
  std::span<const Edge> edges() const { return edges_; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Degree sequence (index = vertex).
  std::vector<std::size_t> degrees() const;

  /// Builds the subgraph induced by vertices where keep[v] is true.
  /// Kept vertices are renumbered densely preserving relative order;
  /// `old_to_new` (if non-null) receives the mapping (kInvalidVertex for
  /// dropped vertices).
  Graph induced_subgraph(const std::vector<bool>& keep,
                         std::vector<VertexId>* old_to_new = nullptr) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace structnet
