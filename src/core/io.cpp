#include "core/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace structnet {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (const Graph::Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
}

std::optional<Graph> read_edge_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  if (!(is >> n >> m)) return std::nullopt;
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    if (!(is >> u >> v)) return std::nullopt;
    if (u >= n || v >= n || u == v || g.has_edge(u, v)) return std::nullopt;
    g.add_edge(u, v);
  }
  return g;
}

void write_arc_list(std::ostream& os, const Digraph& g) {
  os << g.vertex_count() << ' ' << g.arc_count() << '\n';
  for (const Digraph::Arc& a : g.arcs()) {
    os << a.from << ' ' << a.to << '\n';
  }
}

std::optional<Digraph> read_arc_list(std::istream& is) {
  std::size_t n = 0, m = 0;
  if (!(is >> n >> m)) return std::nullopt;
  Digraph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    if (!(is >> u >> v)) return std::nullopt;
    if (u >= n || v >= n || u == v || g.has_arc(u, v)) return std::nullopt;
    g.add_arc(u, v);
  }
  return g;
}

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    os << "  " << v << ";\n";
  }
  for (const Graph::Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Digraph& g, const std::string& name) {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    os << "  " << v << ";\n";
  }
  for (const Digraph::Arc& a : g.arcs()) {
    os << "  " << a.from << " -> " << a.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace structnet
