// Fundamental identifier types shared by every structnet graph container.
#pragma once

#include <cstdint>
#include <limits>

namespace structnet {

/// Dense vertex identifier: vertices of an n-vertex graph are 0..n-1.
using VertexId = std::uint32_t;

/// Dense edge identifier into a graph's edge list.
using EdgeId = std::uint32_t;

/// Sentinel for "no vertex" (e.g. unreachable predecessor).
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "no edge".
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Discrete time unit used by temporal graphs and contact traces.
using TimeUnit = std::uint32_t;

/// Sentinel for "never" / unreachable in time.
inline constexpr TimeUnit kNeverTime = std::numeric_limits<TimeUnit>::max();

}  // namespace structnet
