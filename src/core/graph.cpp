#include "core/graph.hpp"

#include <algorithm>
#include <cassert>

namespace structnet {

VertexId Graph::add_vertex() {
  adjacency_.emplace_back();
  return static_cast<VertexId>(adjacency_.size() - 1);
}

EdgeId Graph::add_edge(VertexId u, VertexId v) {
  assert(u < vertex_count() && v < vertex_count());
  assert(u != v && "self-loops are not supported");
  assert(!has_edge(u, v) && "parallel edges are not supported");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back(Edge{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

EdgeId Graph::add_edge_unique(VertexId u, VertexId v) {
  if (u == v) return kInvalidEdge;
  assert(u < vertex_count() && v < vertex_count());
  if (has_edge(u, v)) return kInvalidEdge;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back(Edge{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  assert(u < vertex_count() && v < vertex_count());
  const auto& a = adjacency_[u].size() <= adjacency_[v].size()
                      ? adjacency_[u]
                      : adjacency_[v];
  const VertexId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(a.begin(), a.end(), target) != a.end();
}

std::vector<std::size_t> Graph::degrees() const {
  std::vector<std::size_t> d(vertex_count());
  for (std::size_t v = 0; v < vertex_count(); ++v) d[v] = adjacency_[v].size();
  return d;
}

Graph Graph::induced_subgraph(const std::vector<bool>& keep,
                              std::vector<VertexId>* old_to_new) const {
  assert(keep.size() == vertex_count());
  std::vector<VertexId> map(vertex_count(), kInvalidVertex);
  VertexId next = 0;
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (keep[v]) map[v] = next++;
  }
  Graph sub(next);
  for (const Edge& e : edges_) {
    if (keep[e.u] && keep[e.v]) sub.add_edge(map[e.u], map[e.v]);
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return sub;
}

}  // namespace structnet
