#include "core/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace structnet {

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
    }
    return g;
  }
  // Geometric skipping: O(m) expected instead of O(n^2).
  const double log_q = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t u = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = 1.0 - rng.uniform01();
    u += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
    while (u >= v && v < nn) {
      u -= v;
      ++v;
    }
    if (v < nn) {
      g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  assert(m >= 1 && n >= m + 1);
  Graph g(n);
  // `targets` holds one entry per edge endpoint: sampling uniformly from
  // it is sampling proportional to degree.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(2 * n * m);
  // Seed: clique on the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      g.add_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  std::vector<VertexId> chosen;
  for (VertexId v = static_cast<VertexId>(m + 1); v < n; ++v) {
    chosen.clear();
    while (chosen.size() < m) {
      const VertexId t = endpoint_pool[rng.index(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (VertexId t : chosen) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  assert(k >= 1 && 2 * k < n);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k; ++j) {
      const auto v = static_cast<VertexId>((u + j) % n);
      g.add_edge_unique(u, v);
    }
  }
  // Rewire each original lattice edge's far endpoint with probability beta.
  // We rebuild into a fresh graph to keep the edge list consistent.
  Graph rewired(n);
  for (const Graph::Edge& e : g.edges()) {
    VertexId u = e.u;
    VertexId v = e.v;
    if (rng.bernoulli(beta)) {
      // Try a handful of random endpoints; fall back to the original.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto w = static_cast<VertexId>(rng.index(n));
        if (w != u && !rewired.has_edge(u, w)) {
          v = w;
          break;
        }
      }
    }
    rewired.add_edge_unique(u, v);
  }
  return rewired;
}

Graph configuration_model(const std::vector<std::size_t>& degree_sequence,
                          Rng& rng) {
  std::vector<VertexId> stubs;
  for (std::size_t v = 0; v < degree_sequence.size(); ++v) {
    for (std::size_t i = 0; i < degree_sequence[v]; ++i) {
      stubs.push_back(static_cast<VertexId>(v));
    }
  }
  assert(stubs.size() % 2 == 0 && "degree sum must be even");
  rng.shuffle(stubs);
  Graph g(degree_sequence.size());
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.add_edge_unique(stubs[i], stubs[i + 1]);
  }
  return g;
}

std::vector<std::size_t> power_law_degree_sequence(std::size_t n, double alpha,
                                                   std::size_t k_min,
                                                   std::size_t k_max,
                                                   Rng& rng) {
  assert(k_min >= 1 && k_max >= k_min && alpha > 1.0);
  std::vector<std::size_t> deg(n);
  std::size_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.pareto(static_cast<double>(k_min), alpha);
    deg[i] = std::min<std::size_t>(static_cast<std::size_t>(x), k_max);
    sum += deg[i];
  }
  if (sum % 2 != 0) {
    ++deg[0];
  }
  return deg;
}

std::vector<Point2D> random_points(std::size_t n, Rng& rng) {
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform01();
    p.y = rng.uniform01();
  }
  return pts;
}

Graph unit_disk_graph(const std::vector<Point2D>& positions, double radius) {
  const std::size_t n = positions.size();
  Graph g(n);
  const double r2 = radius * radius;
  // Grid bucketing: expected O(n) for points in the unit square.
  const auto cells =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / radius));
  const double cell = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<VertexId>> bucket(cells * cells);
  auto cell_of = [&](const Point2D& p) {
    auto cx = std::min<std::size_t>(cells - 1,
                                    static_cast<std::size_t>(p.x / cell));
    auto cy = std::min<std::size_t>(cells - 1,
                                    static_cast<std::size_t>(p.y / cell));
    return cy * cells + cx;
  };
  for (VertexId v = 0; v < n; ++v) bucket[cell_of(positions[v])].push_back(v);
  for (VertexId u = 0; u < n; ++u) {
    const auto cu = cell_of(positions[u]);
    const auto cx = static_cast<std::int64_t>(cu % cells);
    const auto cy = static_cast<std::int64_t>(cu / cells);
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        const std::int64_t nx = cx + dx;
        const std::int64_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(cells) ||
            ny >= static_cast<std::int64_t>(cells)) {
          continue;
        }
        for (VertexId v : bucket[static_cast<std::size_t>(ny) * cells +
                                 static_cast<std::size_t>(nx)]) {
          if (v > u && squared_distance(positions[u], positions[v]) <= r2) {
            g.add_edge(u, v);
          }
        }
      }
    }
  }
  return g;
}

Graph random_geometric(std::size_t n, double radius, Rng& rng,
                       std::vector<Point2D>* positions) {
  auto pts = random_points(n, rng);
  Graph g = unit_disk_graph(pts, radius);
  if (positions != nullptr) *positions = std::move(pts);
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  assert(n >= 3);
  Graph g = path_graph(n);
  g.add_edge(static_cast<VertexId>(n - 1), 0);
  return g;
}

Graph star_graph(std::size_t leaves) {
  Graph g(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) g.add_edge(0, v);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph binary_hypercube(std::size_t dimensions) {
  assert(dimensions < 24);
  const std::size_t n = std::size_t{1} << dimensions;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t d = 0; d < dimensions; ++d) {
      const std::size_t w = v ^ (std::size_t{1} << d);
      if (w > v) g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
    }
  }
  return g;
}

std::size_t gh_vertex_count(const std::vector<std::size_t>& radices) {
  std::size_t n = 1;
  for (std::size_t r : radices) {
    assert(r >= 1);
    n *= r;
  }
  return n;
}

std::vector<std::size_t> gh_address(std::size_t v,
                                    const std::vector<std::size_t>& radices) {
  std::vector<std::size_t> addr(radices.size());
  for (std::size_t i = 0; i < radices.size(); ++i) {
    addr[i] = v % radices[i];
    v /= radices[i];
  }
  return addr;
}

std::size_t gh_vertex(const std::vector<std::size_t>& address,
                      const std::vector<std::size_t>& radices) {
  assert(address.size() == radices.size());
  std::size_t v = 0;
  std::size_t mult = 1;
  for (std::size_t i = 0; i < radices.size(); ++i) {
    assert(address[i] < radices[i]);
    v += address[i] * mult;
    mult *= radices[i];
  }
  return v;
}

Graph generalized_hypercube(const std::vector<std::size_t>& radices) {
  const std::size_t n = gh_vertex_count(radices);
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto addr = gh_address(v, radices);
    std::size_t mult = 1;
    for (std::size_t i = 0; i < radices.size(); ++i) {
      const std::size_t base = v - addr[i] * mult;  // digit i zeroed out
      for (std::size_t digit = 0; digit < radices[i]; ++digit) {
        if (digit == addr[i]) continue;
        const std::size_t w = base + digit * mult;
        if (w > v) {
          g.add_edge(static_cast<VertexId>(v), static_cast<VertexId>(w));
        }
      }
      mult *= radices[i];
    }
  }
  return g;
}

}  // namespace structnet
