#include "core/digraph.hpp"

#include <algorithm>
#include <cassert>

#include "core/graph.hpp"

namespace structnet {

VertexId Digraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

EdgeId Digraph::add_arc(VertexId from, VertexId to) {
  assert(from < vertex_count() && to < vertex_count());
  assert(from != to && "self-loops are not supported");
  assert(!has_arc(from, to) && "parallel arcs are not supported");
  out_[from].push_back(to);
  in_[to].push_back(from);
  arcs_.push_back(Arc{from, to});
  return static_cast<EdgeId>(arcs_.size() - 1);
}

EdgeId Digraph::add_arc_unique(VertexId from, VertexId to) {
  if (from == to) return kInvalidEdge;
  assert(from < vertex_count() && to < vertex_count());
  if (has_arc(from, to)) return kInvalidEdge;
  out_[from].push_back(to);
  in_[to].push_back(from);
  arcs_.push_back(Arc{from, to});
  return static_cast<EdgeId>(arcs_.size() - 1);
}

bool Digraph::has_arc(VertexId from, VertexId to) const {
  assert(from < vertex_count() && to < vertex_count());
  const auto& o = out_[from];
  return std::find(o.begin(), o.end(), to) != o.end();
}

Digraph Digraph::reversed() const {
  Digraph r(vertex_count());
  for (const Arc& a : arcs_) r.add_arc(a.to, a.from);
  return r;
}

Graph Digraph::to_undirected() const {
  Graph g(vertex_count());
  for (const Arc& a : arcs_) g.add_edge_unique(a.from, a.to);
  return g;
}

}  // namespace structnet
