#include "core/csr.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace structnet {

CsrGraph::CsrGraph(const Graph& g) {
  const std::size_t n = g.vertex_count();
  offsets_.assign(n + 1, 0);
  for (const Graph::Edge& e : g.edges()) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (std::size_t v = 1; v <= n; ++v) offsets_[v] += offsets_[v - 1];
  neighbors_.resize(2 * g.edge_count());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Graph::Edge& e : g.edges()) {
    neighbors_[cursor[e.u]++] = e.v;
    neighbors_[cursor[e.v]++] = e.u;
  }
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

std::vector<std::uint32_t> csr_bfs_distances(const CsrGraph& g,
                                             VertexId source) {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreached);
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace structnet
