// Graph generators: classic random families, deterministic families, and
// geometric graphs. All stochastic generators take an explicit Rng so
// results are reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "core/geometry.hpp"
#include "core/graph.hpp"
#include "util/rng.hpp"

namespace structnet {

// ---------------------------------------------------------------- random

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 edges present independently
/// with probability p.
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique of
/// m0 = m vertices, each new vertex attaches to m distinct existing
/// vertices chosen proportionally to degree. Produces a scale-free graph
/// with power-law exponent ~3.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta (avoiding duplicates/loops).
Graph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng);

/// Configuration model with the given degree sequence (sum must be even).
/// Self-loops and parallel edges produced by the stub matching are
/// discarded, so realized degrees can be slightly below the target —
/// standard practice for the "erased" configuration model.
Graph configuration_model(const std::vector<std::size_t>& degree_sequence,
                          Rng& rng);

/// Degree sequence of length n drawn from a discrete power law
/// P(k) ~ k^-alpha on [k_min, k_max]; the sum is made even by
/// incrementing one entry if needed.
std::vector<std::size_t> power_law_degree_sequence(std::size_t n, double alpha,
                                                   std::size_t k_min,
                                                   std::size_t k_max, Rng& rng);

// ------------------------------------------------------------- geometric

/// n points uniform in the unit square.
std::vector<Point2D> random_points(std::size_t n, Rng& rng);

/// Unit-disk graph over given positions: edge iff distance <= radius.
Graph unit_disk_graph(const std::vector<Point2D>& positions, double radius);

/// Random geometric graph: positions uniform in unit square + UDG edges.
/// Out-param positions (if non-null) receives the coordinates.
Graph random_geometric(std::size_t n, double radius, Rng& rng,
                       std::vector<Point2D>* positions = nullptr);

// --------------------------------------------------------- deterministic

Graph path_graph(std::size_t n);
Graph cycle_graph(std::size_t n);
/// Star: vertex 0 is the center with `leaves` leaves.
Graph star_graph(std::size_t leaves);
Graph complete_graph(std::size_t n);
/// rows x cols 4-connected grid.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// n-dimensional binary hypercube: 2^n vertices, edge iff addresses
/// differ in exactly one bit.
Graph binary_hypercube(std::size_t dimensions);

/// Generalized hypercube GH(radix_0, ..., radix_{k-1}): one vertex per
/// mixed-radix address; edge iff addresses differ in exactly one
/// coordinate (in that coordinate, all radix values are mutually
/// adjacent). The paper's Fig. 6 F-space is GH over feature alphabets.
Graph generalized_hypercube(const std::vector<std::size_t>& radices);

/// Mixed-radix address helpers for generalized hypercubes.
std::size_t gh_vertex_count(const std::vector<std::size_t>& radices);
std::vector<std::size_t> gh_address(std::size_t v,
                                    const std::vector<std::size_t>& radices);
std::size_t gh_vertex(const std::vector<std::size_t>& address,
                      const std::vector<std::size_t>& radices);

}  // namespace structnet
