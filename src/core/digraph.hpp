// Directed simple graph with both out- and in-adjacency maintained.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace structnet {

/// A directed simple graph (no parallel arcs, no self-loops).
class Digraph {
 public:
  struct Arc {
    VertexId from = kInvalidVertex;
    VertexId to = kInvalidVertex;

    friend bool operator==(const Arc&, const Arc&) = default;
  };

  Digraph() = default;
  explicit Digraph(std::size_t n) : out_(n), in_(n) {}

  std::size_t vertex_count() const { return out_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }

  VertexId add_vertex();

  /// Adds arc from -> to. Requires distinct in-range endpoints and the
  /// arc not already present (checked in debug builds).
  EdgeId add_arc(VertexId from, VertexId to);

  /// Adds the arc only when absent; returns kInvalidEdge when skipped.
  EdgeId add_arc_unique(VertexId from, VertexId to);

  bool has_arc(VertexId from, VertexId to) const;

  std::span<const VertexId> out_neighbors(VertexId v) const { return out_[v]; }
  std::span<const VertexId> in_neighbors(VertexId v) const { return in_[v]; }
  std::size_t out_degree(VertexId v) const { return out_[v].size(); }
  std::size_t in_degree(VertexId v) const { return in_[v].size(); }

  std::span<const Arc> arcs() const { return arcs_; }

  /// Returns the digraph with every arc reversed.
  Digraph reversed() const;

  /// Forgets orientation: returns the underlying undirected simple graph
  /// (antiparallel arc pairs collapse to one edge).
  class Graph to_undirected() const;

  friend bool operator==(const Digraph&, const Digraph&) = default;

 private:
  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  std::vector<Arc> arcs_;
};

}  // namespace structnet
