// Plain-text graph serialization: whitespace-separated edge lists with a
// leading vertex count, plus Graphviz DOT export for inspection.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/digraph.hpp"
#include "core/graph.hpp"

namespace structnet {

/// Writes `n m` on the first line then one `u v` pair per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the format produced by write_edge_list. Returns std::nullopt on
/// malformed input (bad counts, out-of-range vertices, duplicate edges).
std::optional<Graph> read_edge_list(std::istream& is);

/// Same format for digraphs (`u v` means arc u -> v).
void write_arc_list(std::ostream& os, const Digraph& g);
std::optional<Digraph> read_arc_list(std::istream& is);

/// Graphviz DOT text (undirected) for debugging / visual inspection.
std::string to_dot(const Graph& g, const std::string& name = "G");
std::string to_dot(const Digraph& g, const std::string& name = "G");

}  // namespace structnet
