// Compressed sparse row (CSR) view of a Graph: contiguous neighbor
// storage for cache-friendly traversal in hot loops (centrality sweeps,
// repeated BFS). Built once from a Graph; immutable afterwards.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  std::size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t edge_count() const { return neighbors_.size() / 2; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            offsets_[v + 1] - offsets_[v]};
  }
  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;   // n + 1 entries
  std::vector<VertexId> neighbors_;    // 2m entries, sorted per vertex
};

/// BFS hop distances over a CSR view (same semantics as
/// algo/traversal.hpp's bfs_distances; used by performance-sensitive
/// sweeps).
std::vector<std::uint32_t> csr_bfs_distances(const CsrGraph& g,
                                             VertexId source);

}  // namespace structnet
