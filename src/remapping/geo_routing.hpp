// Greedy geographic routing in the Euclidean plane (Sec. III-C) and
// workloads with non-convex holes where it gets stuck (Fig. 5 (a)).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/geometry.hpp"
#include "core/graph.hpp"
#include "util/rng.hpp"

namespace structnet {

/// Result of a greedy routing attempt.
struct GreedyRouteResult {
  bool delivered = false;
  std::vector<VertexId> path;        // visited nodes, source first
  VertexId stuck_at = kInvalidVertex;  // local minimum when !delivered
};

/// Euclidean greedy: repeatedly forward to the neighbor strictly closer
/// to the destination; fails at a local minimum (no closer neighbor).
GreedyRouteResult greedy_route_euclidean(const Graph& g,
                                         std::span<const Point2D> positions,
                                         VertexId source, VertexId target);

/// An axis-aligned rectangular hole (no nodes inside).
struct Hole {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  bool contains(const Point2D& p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
};

/// A standard non-convex obstacle: a U-shape opening to the right,
/// centered in the unit square (three rectangles). Greedy traffic moving
/// left across the square falls into the pocket.
std::vector<Hole> u_shaped_hole(double cx = 0.5, double cy = 0.5,
                                double size = 0.35, double thickness = 0.08);

/// Random geometric graph whose nodes avoid the given holes.
Graph random_geometric_with_holes(std::size_t n, double radius,
                                  std::span<const Hole> holes, Rng& rng,
                                  std::vector<Point2D>* positions);

}  // namespace structnet
