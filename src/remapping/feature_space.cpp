#include "remapping/feature_space.hpp"

#include <cassert>

namespace structnet {

FeatureSpace::FeatureSpace(std::vector<std::size_t> radices)
    : radices_(std::move(radices)) {
  node_count_ = gh_vertex_count(radices_);
}

std::size_t FeatureSpace::node_of(const SocialProfile& profile) const {
  return gh_vertex(profile, radices_);
}

SocialProfile FeatureSpace::profile_of(std::size_t node) const {
  return gh_address(node, radices_);
}

std::vector<SocialProfile> FeatureSpace::shortest_path(
    const SocialProfile& a, const SocialProfile& b) const {
  assert(a.size() == dimension() && b.size() == dimension());
  std::vector<SocialProfile> path{a};
  SocialProfile cur = a;
  for (std::size_t f = 0; f < dimension(); ++f) {
    if (cur[f] != b[f]) {
      cur[f] = b[f];
      path.push_back(cur);
    }
  }
  return path;
}

std::vector<std::vector<SocialProfile>> FeatureSpace::disjoint_paths(
    const SocialProfile& a, const SocialProfile& b) const {
  assert(a.size() == dimension() && b.size() == dimension());
  std::vector<std::size_t> differing;
  for (std::size_t f = 0; f < dimension(); ++f) {
    if (a[f] != b[f]) differing.push_back(f);
  }
  const std::size_t d = differing.size();
  std::vector<std::vector<SocialProfile>> paths;
  paths.reserve(d);
  // Path k corrects coordinates in the rotation starting at position k.
  // Intermediate nodes of path k agree with b exactly on a rotation
  // prefix and with a on the rest; distinct rotations produce distinct
  // "corrected sets", so no intermediate node repeats across paths.
  for (std::size_t k = 0; k < d; ++k) {
    std::vector<SocialProfile> path{a};
    SocialProfile cur = a;
    for (std::size_t step = 0; step < d; ++step) {
      const std::size_t f = differing[(k + step) % d];
      cur[f] = b[f];
      path.push_back(cur);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace structnet
