// Kleinberg's small-world lattice (paper introduction, citing [2]):
// an n x n grid where every node gets one long-range link to a node
// chosen with probability proportional to (lattice distance)^-r. When
// r = 2 (the inverse-square distribution), purely *localized* greedy
// routing — each node knows only its own links — finds polylogarithmic
// paths; for any other exponent greedy slows to a polynomial crawl.
// This is the paper's flagship example of a structural property enabling
// a localized solution, reproduced as experiment E0.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "util/rng.hpp"

namespace structnet {

/// A sampled small-world lattice instance.
class SmallWorldLattice {
 public:
  /// Builds a side x side torus grid plus one long-range link per node
  /// drawn with P(link to w) ~ d(v, w)^-exponent.
  SmallWorldLattice(std::size_t side, double exponent, Rng& rng);

  std::size_t side() const { return side_; }
  std::size_t node_count() const { return side_ * side_; }

  /// Manhattan distance on the torus.
  std::size_t lattice_distance(VertexId a, VertexId b) const;

  /// The long-range contact of v.
  VertexId long_link(VertexId v) const { return long_link_[v]; }

  /// One greedy decision: the neighbor (4 lattice neighbors + own long
  /// link) closest to the target in lattice distance.
  VertexId greedy_next_hop(VertexId current, VertexId target) const;

  /// Decentralized greedy routing: forward to the neighbor (4 lattice
  /// neighbors + own long link) closest to the target in lattice
  /// distance. Always delivers on a torus; returns the hop count.
  std::size_t greedy_route_hops(VertexId source, VertexId target) const;

  /// The underlying graph (lattice + long links) for structural queries.
  Graph graph() const;

 private:
  VertexId wrap(std::int64_t x, std::int64_t y) const;

  std::size_t side_;
  std::vector<VertexId> long_link_;
};

/// Average greedy hops over `trials` uniform source/target pairs.
double average_greedy_hops(const SmallWorldLattice& lattice,
                           std::size_t trials, Rng& rng);

}  // namespace structnet
