// Remapping representation: virtual coordinates with guaranteed-delivery
// greedy routing (Sec. III-C).
//
// The paper's examples — hyperbolic embeddings [19] and Ricci-flow
// conformal mapping [20] — assign every node a *virtual* coordinate under
// which plain greedy forwarding always succeeds, rescuing it from the
// non-convex holes that defeat Euclidean greedy (Fig. 5). We implement
// the same idea with a laptop-scale construction: a spanning-tree
// embedding. Each node's virtual coordinate is the label stack of its
// tree ancestors (DFS intervals + depth); the greedy metric is the exact
// tree distance, which any node can evaluate towards any target from its
// own label stack plus the target's (interval, depth) pair. Moving to
// the tree parent/child towards the target always decreases the metric,
// so greedy over *all* graph neighbors (tree edges + chords) strictly
// descends and always delivers, while chords provide shortcuts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.hpp"
#include "remapping/geo_routing.hpp"

namespace structnet {

/// Virtual coordinates from a BFS spanning tree of a connected graph.
class TreeEmbedding {
 public:
  /// Builds the embedding rooted at `root`. Requires g connected.
  TreeEmbedding(const Graph& g, VertexId root);

  /// Exact tree distance between x and the target, computed the way a
  /// node would: from x's own ancestor label stack and t's label only.
  std::uint32_t tree_distance(VertexId x, VertexId target) const;

  std::uint32_t depth(VertexId v) const { return depth_[v]; }
  VertexId parent(VertexId v) const { return parent_[v]; }
  VertexId root() const { return root_; }

  /// Greedy routing on the virtual coordinates over all graph neighbors.
  /// Always delivers on the graph the embedding was built from.
  GreedyRouteResult greedy_route(const Graph& g, VertexId source,
                                 VertexId target) const;

 private:
  bool is_ancestor(VertexId a, VertexId x) const {
    return in_[a] <= in_[x] && out_[x] <= out_[a];
  }

  VertexId root_;
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::uint32_t> in_;   // DFS entry index
  std::vector<std::uint32_t> out_;  // DFS exit index
};

}  // namespace structnet
