#include "remapping/small_world.hpp"

#include <cassert>
#include <cmath>

namespace structnet {

SmallWorldLattice::SmallWorldLattice(std::size_t side, double exponent,
                                     Rng& rng)
    : side_(side), long_link_(side * side) {
  assert(side >= 2);
  // Sample each node's long-range link by inverse-CDF over all other
  // nodes; O(n^2) construction, fine at experiment scale.
  const std::size_t n = node_count();
  std::vector<double> weight(n);
  for (VertexId v = 0; v < n; ++v) {
    double total = 0.0;
    for (VertexId w = 0; w < n; ++w) {
      if (w == v) {
        weight[w] = 0.0;
        continue;
      }
      const auto d = static_cast<double>(lattice_distance(v, w));
      weight[w] = std::pow(d, -exponent);
      total += weight[w];
    }
    double pick = rng.uniform(0.0, total);
    VertexId chosen = v == 0 ? 1 : 0;
    for (VertexId w = 0; w < n; ++w) {
      pick -= weight[w];
      if (pick <= 0.0 && w != v) {
        chosen = w;
        break;
      }
    }
    long_link_[v] = chosen;
  }
}

VertexId SmallWorldLattice::wrap(std::int64_t x, std::int64_t y) const {
  const auto s = static_cast<std::int64_t>(side_);
  x = ((x % s) + s) % s;
  y = ((y % s) + s) % s;
  return static_cast<VertexId>(y * s + x);
}

std::size_t SmallWorldLattice::lattice_distance(VertexId a, VertexId b) const {
  const auto s = static_cast<std::int64_t>(side_);
  const std::int64_t ax = a % s, ay = a / s;
  const std::int64_t bx = b % s, by = b / s;
  const std::int64_t dx = std::abs(ax - bx);
  const std::int64_t dy = std::abs(ay - by);
  return static_cast<std::size_t>(std::min(dx, s - dx) +
                                  std::min(dy, s - dy));
}

VertexId SmallWorldLattice::greedy_next_hop(VertexId current,
                                            VertexId target) const {
  const auto s = static_cast<std::int64_t>(side_);
  const std::int64_t x = current % s, y = current / s;
  const VertexId candidates[5] = {
      wrap(x + 1, y), wrap(x - 1, y), wrap(x, y + 1), wrap(x, y - 1),
      long_link_[current]};
  VertexId best = candidates[0];
  std::size_t best_d = lattice_distance(best, target);
  for (const VertexId c : candidates) {
    const std::size_t d = lattice_distance(c, target);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::size_t SmallWorldLattice::greedy_route_hops(VertexId source,
                                                 VertexId target) const {
  VertexId cur = source;
  std::size_t hops = 0;
  while (cur != target) {
    const VertexId next = greedy_next_hop(cur, target);
    // A lattice neighbor always strictly decreases Manhattan distance,
    // so progress is guaranteed.
    assert(lattice_distance(next, target) < lattice_distance(cur, target));
    cur = next;
    ++hops;
  }
  return hops;
}

Graph SmallWorldLattice::graph() const {
  const auto s = static_cast<std::int64_t>(side_);
  Graph g(node_count());
  for (VertexId v = 0; v < node_count(); ++v) {
    const std::int64_t x = v % s, y = v / s;
    g.add_edge_unique(v, wrap(x + 1, y));
    g.add_edge_unique(v, wrap(x, y + 1));
    g.add_edge_unique(v, long_link_[v]);
  }
  return g;
}

double average_greedy_hops(const SmallWorldLattice& lattice,
                           std::size_t trials, Rng& rng) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto s = static_cast<VertexId>(rng.index(lattice.node_count()));
    const auto t = static_cast<VertexId>(rng.index(lattice.node_count()));
    if (s == t) continue;
    total += static_cast<double>(lattice.greedy_route_hops(s, t));
    ++counted;
  }
  return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace structnet
