#include "remapping/geo_routing.hpp"

#include <cassert>

#include "core/generators.hpp"

namespace structnet {

GreedyRouteResult greedy_route_euclidean(const Graph& g,
                                         std::span<const Point2D> positions,
                                         VertexId source, VertexId target) {
  assert(positions.size() == g.vertex_count());
  GreedyRouteResult result;
  VertexId cur = source;
  result.path.push_back(cur);
  // A strictly decreasing distance cannot revisit a node, so the loop is
  // bounded by n anyway; the explicit bound guards degenerate input.
  for (std::size_t step = 0; step <= g.vertex_count(); ++step) {
    if (cur == target) {
      result.delivered = true;
      return result;
    }
    const double here = squared_distance(positions[cur], positions[target]);
    VertexId best = kInvalidVertex;
    double best_d = here;
    for (VertexId w : g.neighbors(cur)) {
      const double d = squared_distance(positions[w], positions[target]);
      if (d < best_d) {
        best_d = d;
        best = w;
      }
    }
    if (best == kInvalidVertex) {
      result.stuck_at = cur;  // local minimum: the non-convex hole bites
      return result;
    }
    cur = best;
    result.path.push_back(cur);
  }
  result.stuck_at = cur;
  return result;
}

std::vector<Hole> u_shaped_hole(double cx, double cy, double size,
                                double thickness) {
  const double h = size / 2.0;
  // Left wall + top and bottom arms; the pocket opens to the right.
  return {
      Hole{cx - h, cy - h, cx - h + thickness, cy + h},        // left wall
      Hole{cx - h, cy + h - thickness, cx + h, cy + h},        // top arm
      Hole{cx - h, cy - h, cx + h, cy - h + thickness},        // bottom arm
  };
}

Graph random_geometric_with_holes(std::size_t n, double radius,
                                  std::span<const Hole> holes, Rng& rng,
                                  std::vector<Point2D>* positions) {
  std::vector<Point2D> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    const Point2D p{rng.uniform01(), rng.uniform01()};
    bool blocked = false;
    for (const Hole& hole : holes) {
      if (hole.contains(p)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) pts.push_back(p);
  }
  Graph g = unit_disk_graph(pts, radius);
  if (positions != nullptr) *positions = std::move(pts);
  return g;
}

}  // namespace structnet
