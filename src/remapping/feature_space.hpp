// Remapping domain: the social feature space (Sec. III-C, Fig. 6).
//
// Grouping all individuals with identical feature profiles into one node
// and connecting nodes differing in exactly one feature yields a
// generalized hypercube — a *static, structured* F-space in which the
// routing problem of the *mobile, unstructured* contact space (M-space)
// becomes shortest-path routing. Links of the hypercube correspond to
// strong social links (one feature apart, most frequent contacts).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/generators.hpp"
#include "core/graph.hpp"
#include "mobility/social_contacts.hpp"

namespace structnet {

/// The feature space over the given alphabets.
class FeatureSpace {
 public:
  explicit FeatureSpace(std::vector<std::size_t> radices);

  const std::vector<std::size_t>& radices() const { return radices_; }
  std::size_t dimension() const { return radices_.size(); }
  std::size_t node_count() const { return node_count_; }

  /// F-space node of a profile (mixed-radix address).
  std::size_t node_of(const SocialProfile& profile) const;
  SocialProfile profile_of(std::size_t node) const;

  /// The generalized hypercube itself (Fig. 6 is GH over {2, 2, 3}).
  Graph hypercube() const { return generalized_hypercube(radices_); }

  /// Hamming distance between two F-space nodes (= shortest-path length
  /// in the generalized hypercube).
  std::size_t distance(const SocialProfile& a, const SocialProfile& b) const {
    return feature_distance(a, b);
  }

  /// One shortest path a -> b: corrects the differing coordinates in
  /// ascending coordinate order. Path includes both endpoints.
  std::vector<SocialProfile> shortest_path(const SocialProfile& a,
                                           const SocialProfile& b) const;

  /// d node-disjoint shortest paths between profiles at distance d,
  /// obtained by rotating the coordinate-correction order (the classic
  /// hypercube construction; the paper cites node-disjoint multipath as
  /// an F-space benefit). Intermediate nodes of distinct paths never
  /// coincide.
  std::vector<std::vector<SocialProfile>> disjoint_paths(
      const SocialProfile& a, const SocialProfile& b) const;

 private:
  std::vector<std::size_t> radices_;
  std::size_t node_count_ = 1;
};

}  // namespace structnet
