#include "remapping/tree_embedding.hpp"

#include <cassert>

#include "algo/traversal.hpp"

namespace structnet {

TreeEmbedding::TreeEmbedding(const Graph& g, VertexId root) : root_(root) {
  const std::size_t n = g.vertex_count();
  parent_ = bfs_tree(g, root);
  depth_.assign(n, 0);
  in_.assign(n, 0);
  out_.assign(n, 0);

  // Children lists of the BFS tree.
  std::vector<std::vector<VertexId>> children(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent_[v] != kInvalidVertex) {
      children[parent_[v]].push_back(static_cast<VertexId>(v));
      assert(v != root);
    }
  }
  // Iterative DFS for in/out intervals and depth.
  std::uint32_t clock = 0;
  struct Frame {
    VertexId v;
    std::size_t child = 0;
  };
  std::vector<Frame> stack{Frame{root}};
  in_[root] = clock++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.child < children[f.v].size()) {
      const VertexId c = children[f.v][f.child++];
      depth_[c] = depth_[f.v] + 1;
      in_[c] = clock++;
      stack.push_back(Frame{c});
    } else {
      out_[f.v] = clock++;
      stack.pop_back();
    }
  }
}

std::uint32_t TreeEmbedding::tree_distance(VertexId x, VertexId target) const {
  // Walk x's ancestor chain (the label stack a node stores) to the
  // deepest ancestor of x that is also an ancestor-or-self of target.
  VertexId a = x;
  while (!is_ancestor(a, target)) {
    a = parent_[a];
    assert(a != kInvalidVertex && "embedding covers a connected graph");
  }
  return (depth_[x] - depth_[a]) + (depth_[target] - depth_[a]);
}

GreedyRouteResult TreeEmbedding::greedy_route(const Graph& g, VertexId source,
                                              VertexId target) const {
  GreedyRouteResult result;
  VertexId cur = source;
  result.path.push_back(cur);
  for (std::size_t step = 0; step <= 2 * g.vertex_count(); ++step) {
    if (cur == target) {
      result.delivered = true;
      return result;
    }
    const std::uint32_t here = tree_distance(cur, target);
    VertexId best = kInvalidVertex;
    std::uint32_t best_d = here;
    for (VertexId w : g.neighbors(cur)) {
      const std::uint32_t d = tree_distance(w, target);
      if (d < best_d) {
        best_d = d;
        best = w;
      }
    }
    if (best == kInvalidVertex) {
      result.stuck_at = cur;
      return result;
    }
    cur = best;
    result.path.push_back(cur);
  }
  result.stuck_at = cur;
  return result;
}

}  // namespace structnet
