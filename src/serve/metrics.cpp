#include "serve/metrics.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "util/json_line.hpp"

namespace structnet {

void LatencyHistogram::add(std::uint64_t ns) {
  ++bucket_[obs::histogram_bucket(ns)];
  ++count_;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

LatencyHistogram LatencyHistogram::from_snapshot(
    const obs::HistogramSnapshot& s) {
  LatencyHistogram h;
  h.bucket_ = s.buckets;
  h.count_ = s.count;
  h.sum_ns_ = s.sum;
  h.max_ns_ = s.max;
  return h;
}

std::uint64_t LatencyHistogram::quantile_upper_ns(double q) const {
  // One implementation of the nearest-rank bound, shared with the
  // registry histograms (fixes the legacy floor-rank off-by-one, which
  // made p99 of exactly 100 samples report the 100th instead of the
  // 99th, and the saturated-bucket edge lie for clamped samples).
  return obs::histogram_quantile_upper(bucket_, count_, max_ns_, q);
}

std::string ServeStats::json(std::string_view label) const {
  JsonLineWriter line;
  line.field("bench", label)
      .field("submitted", submitted)
      .field("admitted", admitted)
      .field("shed_queue_full", shed_queue_full)
      .field("rejected_invalid", rejected_invalid)
      .field("rejected_shutdown", rejected_shutdown)
      .field("timed_out", timed_out)
      .field("executed", executed)
      .field("batches", batches)
      .field("lanes_packed", lanes_packed)
      .field("sweeps_saved", sweeps_saved)
      .field("csr_builds", csr_builds)
      .field("csr_reuses", csr_reuses)
      .field("csr_delta_appends", csr_delta_appends)
      .field("csr_compactions", csr_compactions)
      .field("graph_builds", graph_builds)
      .field("graph_reuses", graph_reuses)
      .field("health", to_string(health))
      .field("health_transitions", health_transitions)
      .field("update_faults", update_faults)
      .field("update_retries", update_retries)
      .field("update_failures", update_failures)
      .field("update_probes", update_probes)
      .field("rejected_read_only", rejected_read_only)
      .field("stale_served", stale_served)
      .field("cache_hits", cache_hits)
      .field("cache_misses", cache_misses)
      .field("cache_evictions", cache_evictions)
      .field("cache_invalidations", cache_invalidations)
      .field("cache_hit_ratio", cache_hit_ratio())
      .field("cache_bytes", std::uint64_t(cache_bytes))
      .field("cache_entries", std::uint64_t(cache_entries))
      .field("queue_depth", std::uint64_t(queue_depth))
      .field("max_queue_depth", std::uint64_t(max_queue_depth));
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    const LatencyHistogram& h = latency[k];
    if (h.count() == 0) continue;
    const std::string prefix(to_string(static_cast<QueryKind>(k)));
    line.field(prefix + "_count", h.count())
        .field(prefix + "_mean_us", h.mean_ns() / 1e3)
        .field(prefix + "_p99_us",
               static_cast<double>(h.quantile_upper_ns(0.99)) / 1e3);
  }
  return line.str();
}

void ServeStats::print(std::ostream& os) const {
  os << "serve: submitted=" << submitted << " admitted=" << admitted
     << " executed=" << executed << " batches=" << batches
     << " shed=" << shed_queue_full << " invalid=" << rejected_invalid
     << " timed_out=" << timed_out << "\n"
     << "cache: hits=" << cache_hits << " misses=" << cache_misses
     << " hit_ratio=" << cache_hit_ratio() << " evictions=" << cache_evictions
     << " invalidations=" << cache_invalidations << " bytes=" << cache_bytes
     << " entries=" << cache_entries << "\n"
     << "amortization: csr_builds=" << csr_builds
     << " csr_reuses=" << csr_reuses
     << " csr_delta_appends=" << csr_delta_appends
     << " csr_compactions=" << csr_compactions
     << " graph_builds=" << graph_builds
     << " graph_reuses=" << graph_reuses
     << " lanes_packed=" << lanes_packed
     << " sweeps_saved=" << sweeps_saved << "\n"
     << "health: state=" << to_string(health)
     << " transitions=" << health_transitions
     << " update_faults=" << update_faults
     << " retries=" << update_retries << " failures=" << update_failures
     << " probes=" << update_probes
     << " rejected_read_only=" << rejected_read_only
     << " stale_served=" << stale_served << "\n";
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    const LatencyHistogram& h = latency[k];
    if (h.count() == 0) continue;
    os << "latency[" << to_string(static_cast<QueryKind>(k))
       << "]: count=" << h.count() << " mean_us=" << h.mean_ns() / 1e3
       << " p99_us<=" << static_cast<double>(h.quantile_upper_ns(0.99)) / 1e3
       << " max_us=" << static_cast<double>(h.max_ns()) / 1e3 << "\n";
  }
}

}  // namespace structnet
