// Epoch-keyed LRU result cache of the serving layer.
//
// Key = (query fingerprint, DynamicGraph epoch). Because the epoch is
// strictly monotone over accepted events (see DynamicGraph::epoch), a
// key can never alias two graph states: entries stored at an older
// epoch are simply unreachable once the engine advances. The broker's
// stream-observer hook calls invalidate_before() on every accepted
// event so stale entries also stop occupying the byte budget, and the
// eviction policy (least-recently-used first) bounds resident bytes by
// the configured budget.
//
// The cache is not internally synchronized; the broker guards it with
// its own mutex (lookups/inserts happen under the serve lock).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/query.hpp"

namespace structnet {

class ResultCache {
 public:
  /// `byte_budget` bounds the estimated resident payload bytes; inserts
  /// evict least-recently-used entries until the budget holds.
  explicit ResultCache(std::size_t byte_budget = std::size_t{64} << 20)
      : budget_(byte_budget) {}

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;       // budget-driven LRU drops
    std::uint64_t invalidations = 0;   // epoch-advance drops
    std::size_t bytes = 0;             // current resident estimate
    std::size_t entries = 0;
  };

  /// The payload cached for (fingerprint, epoch), refreshing its LRU
  /// position; std::nullopt on miss. Hit/miss counters update.
  std::optional<QueryPayload> lookup(const std::string& fingerprint,
                                     std::uint64_t epoch);

  /// Caches a payload under (fingerprint, epoch), then evicts LRU
  /// entries until the byte budget holds (the new entry itself may be
  /// evicted when it alone exceeds the budget). Re-inserting an
  /// existing key refreshes its payload and LRU position.
  void insert(const std::string& fingerprint, std::uint64_t epoch,
              const QueryPayload& payload);

  /// Drops every entry with epoch < `epoch` — the engine advanced, so
  /// those keys can never be looked up again. O(1) when nothing is
  /// stale.
  void invalidate_before(std::uint64_t epoch);

  void clear();

  std::size_t byte_budget() const { return budget_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string key;  // fingerprint + '@' + epoch
    std::uint64_t epoch = 0;
    QueryPayload payload;
    std::size_t bytes = 0;
  };
  using Lru = std::list<Entry>;  // front = most recently used

  static std::string make_key(const std::string& fingerprint,
                              std::uint64_t epoch);
  void erase_entry(Lru::iterator it);

  std::size_t budget_;
  Lru lru_;
  std::unordered_map<std::string, Lru::iterator> index_;
  /// Smallest epoch present (0 when empty) — the invalidate fast path.
  std::uint64_t min_epoch_ = 0;
  Stats stats_;
};

}  // namespace structnet
