// Epoch-keyed LRU result cache of the serving layer.
//
// Key = (query fingerprint, DynamicGraph epoch). Because the epoch is
// strictly monotone over accepted events (see DynamicGraph::epoch), a
// key can never alias two graph states: entries stored at an older
// epoch are simply unreachable once the engine advances. The broker's
// stream-observer hook calls invalidate_before() on every accepted
// event so stale entries also stop occupying the byte budget, and the
// eviction policy (least-recently-used first) bounds resident bytes by
// the configured budget.
//
// Accounting contract: stats().bytes/entries always equal a full
// recount of the live entries (recount() — the regression tests churn
// overwrites/evictions/invalidations against it). Counters live in an
// obs::MetricsRegistry (the broker passes its own, so the registry
// snapshot and ServeStats read the same cells); a cache constructed
// without a registry owns a private one.
//
// The cache is not internally synchronized; the broker guards it with
// its own mutex (lookups/inserts happen under the serve lock).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace structnet {

class ResultCache {
 public:
  /// `byte_budget` bounds the estimated resident payload bytes; inserts
  /// evict least-recently-used entries until the budget holds. Metrics
  /// register into `registry` under `prefix` (e.g. "serve.cache" gives
  /// "serve.cache.hits"); with no registry the cache owns a private one.
  explicit ResultCache(std::size_t byte_budget = std::size_t{64} << 20,
                       obs::MetricsRegistry* registry = nullptr,
                       std::string_view prefix = "cache");

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;       // budget-driven LRU drops
    std::uint64_t invalidations = 0;   // epoch-advance drops
    std::size_t bytes = 0;             // current resident estimate
    std::size_t entries = 0;
  };

  /// The payload cached for (fingerprint, epoch), refreshing its LRU
  /// position; std::nullopt on miss. Hit/miss counters update.
  std::optional<QueryPayload> lookup(const std::string& fingerprint,
                                     std::uint64_t epoch);

  /// Caches a payload under (fingerprint, epoch), then evicts LRU
  /// entries until the byte budget holds (the new entry itself may be
  /// evicted when it alone exceeds the budget). Re-inserting an
  /// existing key refreshes its payload and LRU position.
  void insert(const std::string& fingerprint, std::uint64_t epoch,
              const QueryPayload& payload);

  /// Drops every entry with epoch < `epoch` — the engine advanced, so
  /// those keys can never be looked up again. O(1) when nothing is
  /// stale.
  void invalidate_before(std::uint64_t epoch);

  void clear();

  std::size_t byte_budget() const { return budget_; }

  /// Point-in-time counter/gauge values (reads the registry metrics).
  Stats stats() const;

  /// Recomputed resident footprint: payload_bytes() summed over every
  /// live entry plus the live entry count. The accounting invariant —
  /// recount() == {stats().bytes, stats().entries} after any operation
  /// sequence — is what the churn regression test asserts.
  struct Recount {
    std::size_t bytes = 0;
    std::size_t entries = 0;
  };
  Recount recount() const;

 private:
  struct Entry {
    std::string key;  // fingerprint + '@' + epoch
    std::uint64_t epoch = 0;
    QueryPayload payload;
    std::size_t bytes = 0;
  };
  using Lru = std::list<Entry>;  // front = most recently used

  static std::string make_key(const std::string& fingerprint,
                              std::uint64_t epoch);
  void erase_entry(Lru::iterator it);
  void publish_gauges();

  std::size_t budget_;
  Lru lru_;
  std::unordered_map<std::string, Lru::iterator> index_;
  std::size_t bytes_ = 0;  // authoritative resident estimate
  /// Lower-bound hint on the smallest epoch present (0 when empty) —
  /// the invalidate fast path. Evictions may leave it stale-low (the
  /// scan then just finds nothing), never stale-high.
  std::uint64_t min_epoch_ = 0;

  std::unique_ptr<obs::MetricsRegistry> owned_registry_;  // when none passed
  obs::MetricsRegistry* registry_;  // owned_registry_.get() or the caller's
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& inserts_;
  obs::Counter& evictions_;
  obs::Counter& invalidations_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

}  // namespace structnet
