// Broker self-healing: an explicit health state machine driven by
// update-path outcomes, so the serving layer degrades gracefully
// instead of going dark when graph updates start failing.
//
//               on_failure                consecutive >= threshold
//   Healthy ───────────────▶ Degraded ───────────────────────▶ ReadOnly
//      ▲  ▲                     │                                 │
//      │  └────── on_success ───┘              probe_due ▶ begin_probe
//      │                                                          │
//      │                on_success          on_failure            ▼
//      └─────────────────────────────── Recovering ◀──────── (watchdog)
//                                           │
//                                           └── on_failure ──▶ ReadOnly
//
//   * Healthy    — updates flow; queries serve fresh results.
//   * Degraded   — recent update failures, below the circuit threshold;
//                  updates still retry, results are annotated stale.
//   * ReadOnly   — the circuit breaker tripped: updates are refused
//                  outright (fast-fail, no retry burn) while queries
//                  keep serving the last good epoch, annotated stale.
//   * Recovering — a watchdog probe is in flight; its outcome either
//                  restores Healthy or re-opens the circuit.
//
// The monitor's transitions are externally synchronized (the broker
// drives it under its executor lock); state() is a lock-free atomic
// read so the serving path and stats snapshots never contend. Every
// transition lands in the owning metrics registry under
// "<prefix>.state" (gauge), "<prefix>.transitions", and a per-target
// counter "<prefix>.to_<state>".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"

namespace structnet {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kDegraded,
  kReadOnly,
  kRecovering,
};
inline constexpr std::size_t kHealthStateCount = 4;
std::string_view to_string(HealthState state);

struct HealthConfig {
  /// Consecutive update failures that trip the circuit to ReadOnly.
  std::size_t circuit_threshold = 3;
  /// Dwell time in ReadOnly before a watchdog probe is due; every
  /// further failure re-arms it.
  std::chrono::nanoseconds probe_backoff = std::chrono::milliseconds(10);
};

class HealthMonitor {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  HealthMonitor(HealthConfig config, obs::MetricsRegistry& registry,
                std::string_view prefix = "serve.health");

  /// Lock-free: safe from any thread, any time.
  HealthState state() const {
    return state_.load(std::memory_order_acquire);
  }

  // Transition drivers — externally synchronized.

  /// An update (or probe) succeeded: any state returns to Healthy and
  /// the failure streak resets.
  void on_success(TimePoint now);
  /// An update (or probe) failed: Healthy degrades, a streak at the
  /// circuit threshold trips ReadOnly, a failed probe re-opens the
  /// circuit. Each failure re-arms the probe backoff from `now`.
  void on_failure(TimePoint now);
  /// True when the circuit is open and has dwelt past probe_backoff.
  bool probe_due(TimePoint now) const;
  /// ReadOnly -> Recovering: the caller is about to attempt the probe
  /// (and will report it via on_success / on_failure).
  void begin_probe(TimePoint now);

  std::size_t consecutive_failures() const { return consecutive_failures_; }
  std::uint64_t transitions() const { return transitions_.value(); }
  const HealthConfig& config() const { return config_; }

 private:
  void transition(HealthState to, TimePoint now);

  HealthConfig config_;
  std::atomic<HealthState> state_{HealthState::kHealthy};
  std::size_t consecutive_failures_ = 0;
  TimePoint last_failure_{};
  obs::Gauge& state_gauge_;
  obs::Counter& transitions_;
  obs::Counter* to_state_[kHealthStateCount];
};

}  // namespace structnet
