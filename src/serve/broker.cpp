#include "serve/broker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "centrality/centrality.hpp"
#include "layering/nsf.hpp"
#include "parallel/parallel.hpp"
#include "temporal/temporal_centrality.hpp"

namespace structnet {

namespace {

/// Backtracks the via chain of the last earliest-arrival sweep into a
/// realized journey (same reconstruction journeys.cpp uses).
Journey journey_from_workspace(const TemporalWorkspace& ws, VertexId source,
                               VertexId target) {
  Journey j;
  VertexId cur = target;
  while (cur != source) {
    const JourneyHop hop = ws.via(cur);
    assert(hop.from != kInvalidVertex);
    j.hops.push_back(hop);
    cur = hop.from;
  }
  std::reverse(j.hops.begin(), j.hops.end());
  return j;
}

Strategy make_strategy(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kDirect:
      return direct_strategy();
    case RoutingStrategy::kEpidemic:
      return epidemic_strategy();
    case RoutingStrategy::kSprayAndWait:
      return spray_and_wait_strategy();
  }
  return direct_strategy();
}

/// Duration helper that can never go negative: a fake clock (or a
/// platform with a non-monotonic steady_clock bug) that hands back
/// to <= from yields 0, not a wrapped-around huge unsigned value.
std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return to <= from
             ? 0
             : static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(to -
                                                                        from)
                       .count());
}

/// Span names for the per-query kernel traces, indexed by QueryKind.
/// Literal pointers: the trace layer borrows, never copies, names.
constexpr const char* kKernelSpanName[kQueryKindCount] = {
    "serve.kernel.temporal_distances", "serve.kernel.fastest_journey",
    "serve.kernel.min_hop_journey",    "serve.kernel.nsf_report",
    "serve.kernel.centrality",         "serve.kernel.routing_trials",
};

}  // namespace

QueryBroker::Metrics::Metrics(obs::MetricsRegistry& r)
    : submitted(r.counter("serve.submitted")),
      admitted(r.counter("serve.admitted")),
      shed_queue_full(r.counter("serve.shed_queue_full")),
      rejected_invalid(r.counter("serve.rejected_invalid")),
      rejected_shutdown(r.counter("serve.rejected_shutdown")),
      timed_out(r.counter("serve.timed_out")),
      executed(r.counter("serve.executed")),
      batches(r.counter("serve.batches")),
      lanes_packed(r.counter("serve.lanes_packed")),
      sweeps_saved(r.counter("serve.sweeps_saved")),
      csr_builds(r.counter("serve.csr_builds")),
      csr_reuses(r.counter("serve.csr_reuses")),
      csr_delta_appends(r.counter("serve.csr_delta_appends")),
      csr_compactions(r.counter("serve.csr_compactions")),
      graph_builds(r.counter("serve.graph_builds")),
      graph_reuses(r.counter("serve.graph_reuses")),
      update_faults(r.counter("serve.update.faults")),
      update_retries(r.counter("serve.update.retries")),
      update_failures(r.counter("serve.update.failures")),
      update_probes(r.counter("serve.update.probes")),
      rejected_read_only(r.counter("serve.update.rejected_read_only")),
      stale_served(r.counter("serve.stale_served")),
      queue_depth(r.gauge("serve.queue_depth")),
      max_queue_depth(r.gauge("serve.max_queue_depth")),
      queue_wait_ns(r.histogram("serve.queue_wait_ns")) {
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    std::string name = "serve.latency.";
    name += to_string(static_cast<QueryKind>(k));
    latency[k] = &r.histogram(name);
  }
}

QueryBroker::QueryBroker(StreamEngine& engine, TemporalViewObserver* temporal,
                         BrokerConfig config)
    : engine_(engine),
      temporal_(temporal),
      config_(config),
      metrics_(registry_),
      health_(HealthConfig{config.circuit_threshold, config.probe_backoff},
              registry_),
      cache_(config.cache_bytes, &registry_, "serve.cache") {
  engine_.attach(this);
  if (temporal_ != nullptr && config_.delta_index) {
    // Attached after the temporal view (which the owner attached before
    // constructing the broker), so attach-time recompute() adopts the
    // view's current state and later events fold behind it. The observer
    // writes the same registry cells Metrics pinned above
    // (serve.csr_builds / serve.csr_delta_appends / serve.csr_compactions).
    delta_obs_.emplace(*temporal_, config_.csr_compact_ratio, &registry_,
                       "serve");
    engine_.attach(&*delta_obs_);
    delta_csr_ = &delta_obs_->index();
  }
}

QueryBroker::~QueryBroker() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;  // new submissions shed with kShutdown from here on
  }
  stop();  // drains the queue when the dispatcher was running
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) {
    QueryResult result;
    result.status = QueryStatus::kRejected;
    result.cause = RejectCause::kShutdown;
    p.promise.set_value(std::move(result));
  }
  metrics_.rejected_shutdown.add(leftovers.size());
  metrics_.queue_depth.set(0);
  if (delta_obs_) engine_.detach(&*delta_obs_);
  engine_.detach(this);
}

std::future<QueryResult> QueryBroker::submit(Query query,
                                             SubmitOptions options) {
  STRUCTNET_OBS_SPAN("serve.submit");
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  const Clock::time_point now = clock_now();

  RejectCause shed = RejectCause::kNone;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_) {
      shed = RejectCause::kShutdown;
    } else if (queue_.size() >= config_.max_queue) {
      shed = RejectCause::kQueueFull;  // backpressure: shed, never block
    } else {
      Pending p;
      p.query = std::move(query);
      p.promise = std::move(promise);
      p.submitted = now;
      p.has_deadline = options.deadline.count() > 0;
      p.deadline = now + options.deadline;
      queue_.push_back(std::move(p));
      max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
      metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      metrics_.max_queue_depth.set(
          static_cast<std::int64_t>(max_queue_depth_));
      queue_cv_.notify_one();
    }
  }

  metrics_.submitted.add();
  if (shed == RejectCause::kQueueFull) metrics_.shed_queue_full.add();
  if (shed == RejectCause::kShutdown) metrics_.rejected_shutdown.add();
  if (shed == RejectCause::kNone) metrics_.admitted.add();
  if (shed != RejectCause::kNone) {
    QueryResult result;
    result.status = QueryStatus::kRejected;
    result.cause = shed;
    promise.set_value(std::move(result));
  }
  return future;
}

std::optional<RejectCause> QueryBroker::validate(const Query& query) const {
  const bool temporal = query_is_temporal(query);
  if (temporal && temporal_ == nullptr) return RejectCause::kInvalidArgument;
  const std::size_t n = temporal ? temporal_->view().vertex_count()
                                 : engine_.graph().vertex_count();
  const auto in_range = [n](VertexId v) { return v < n; };
  bool ok = true;
  std::visit(
      [&](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, TemporalDistancesQuery>) {
          ok = in_range(q.source);
        } else if constexpr (std::is_same_v<T, FastestJourneyQuery> ||
                             std::is_same_v<T, MinHopJourneyQuery>) {
          ok = in_range(q.source) && in_range(q.target);
        } else if constexpr (std::is_same_v<T, NsfReportQuery>) {
          ok = std::isfinite(q.stop_fraction) && q.stop_fraction > 0.0 &&
               q.stop_fraction <= 1.0 && std::isfinite(q.ks_threshold) &&
               q.ks_threshold >= 0.0;
        } else if constexpr (std::is_same_v<T, CentralityQuery>) {
          ok = true;
        } else if constexpr (std::is_same_v<T, RoutingTrialsQuery>) {
          ok = in_range(q.source) && in_range(q.destination) &&
               std::isfinite(q.loss_probability);
        }
      },
      query);
  return ok ? std::nullopt : std::make_optional(RejectCause::kInvalidArgument);
}

QueryPayload QueryBroker::execute_payload(const Query& query,
                                          TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN(
      kKernelSpanName[static_cast<std::size_t>(kind_of(query))]);
  // Per-query kernels run serial (threads = 1): the batch is already
  // sharded across the pool one query per shard, and serial kernels
  // keep results trivially thread-count-invariant.
  //
  // Temporal kernels dispatch to whichever contact index the planner
  // maintains — the delta overlay (default) or the legacy per-epoch
  // TemporalCsr. Both expose the same iteration interface, and the
  // kernels are bit-identical across the two (see temporal_delta.hpp).
  const auto on_index = [this](auto&& kernel) -> decltype(auto) {
    return delta_csr_ != nullptr ? kernel(*delta_csr_) : kernel(*csr_);
  };
  return std::visit(
      [&](const auto& q) -> QueryPayload {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, TemporalDistancesQuery>) {
          on_index([&](const auto& index) {
            return csr_earliest_arrival(index, q.source, q.t_start, ws);
          });
          EarliestArrival ea = ws.to_earliest_arrival();
          return QueryPayload(std::move(ea.completion));
        } else if constexpr (std::is_same_v<T, FastestJourneyQuery>) {
          // Mirrors fastest_journey() exactly, minus the per-call CSR
          // build: one profile pass finds the span-minimal departure,
          // one earliest-arrival sweep materializes a journey.
          if (q.source == q.target) {
            return QueryPayload(std::optional<Journey>(Journey{}));
          }
          const auto fd = on_index([&](const auto& index) {
            return csr_fastest_departure(index, q.source, q.target, q.t_start,
                                         ws);
          });
          if (!fd) return QueryPayload(std::optional<Journey>());
          on_index([&](const auto& index) {
            return csr_earliest_arrival(index, q.source, fd->first, ws,
                                        q.target);
          });
          assert(ws.arrival(q.target) != kNeverTime);
          return QueryPayload(std::optional<Journey>(
              journey_from_workspace(ws, q.source, q.target)));
        } else if constexpr (std::is_same_v<T, MinHopJourneyQuery>) {
          return QueryPayload(on_index([&](const auto& index) {
            return csr_minimum_hop_journey(index, q.source, q.target,
                                           q.t_start, ws);
          }));
        } else if constexpr (std::is_same_v<T, NsfReportQuery>) {
          return QueryPayload(
              nsf_report(*graph_, q.stop_fraction, q.ks_threshold, 1));
        } else if constexpr (std::is_same_v<T, CentralityQuery>) {
          if (q.measure == CentralityMeasure::kTemporalCloseness) {
            // Reads the batch's contact index, not *graph_ (which the
            // planner may not have materialized for a temporal-only
            // batch). Internally an all-sources lane-packed sweep;
            // serial like every per-query kernel.
            return QueryPayload(on_index(
                [&](const auto& index) { return temporal_closeness(index, 1); }));
          }
          switch (q.measure) {
            case CentralityMeasure::kDegree:
              return QueryPayload(degree_centrality(*graph_));
            case CentralityMeasure::kCloseness:
              return QueryPayload(closeness_centrality(*graph_));
            case CentralityMeasure::kBetweenness:
              return QueryPayload(betweenness_centrality(*graph_));
            case CentralityMeasure::kClustering:
              return QueryPayload(clustering_coefficients(*graph_));
            case CentralityMeasure::kTemporalCloseness:
              break;  // handled above
          }
          return QueryPayload(degree_centrality(*graph_));
        } else {  // RoutingTrialsQuery
          SimulationFaults faults;
          faults.ttl = q.ttl;
          faults.loss_probability = q.loss_probability;
          faults.loss_seed = q.loss_seed;
          faults.plan = q.plan;
          faults.retry = q.retry;
          // The plan phase force-folded the delta for this batch, so the
          // base is the full current index.
          const TemporalCsr& index =
              delta_csr_ != nullptr ? delta_csr_->base() : *csr_;
          return QueryPayload(simulate_routing_trials(
              index, q.source, q.destination, q.t0, make_strategy(q.strategy),
              q.initial_copies, faults, q.trials, 1));
        }
      },
      query);
}

void QueryBroker::resolve(Pending& pending, QueryResult result,
                          Clock::time_point now) {
  if (result.status == QueryStatus::kOk) {
    metrics_.latency[static_cast<std::size_t>(kind_of(pending.query))]->record(
        elapsed_ns(pending.submitted, now));
  }
  pending.promise.set_value(std::move(result));
}

std::size_t QueryBroker::flush() {
  STRUCTNET_OBS_SPAN("serve.flush");
  std::lock_guard<std::mutex> exec_lk(exec_mu_);

  std::vector<Pending> batch;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    metrics_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  if (batch.empty()) return 0;

  const std::uint64_t epoch = engine_.graph().epoch();
  const Clock::time_point gate_now = clock_now();
  // Health observed once per batch: with the circuit open this epoch is
  // the last GOOD epoch (updates are failing), so every result in the
  // batch carries the same staleness annotation.
  const HealthState health = health_.state();
  const bool stale = health != HealthState::kHealthy;
  const auto annotate = [&](QueryResult& result) {
    result.health = health;
    result.stale = stale;
    if (stale && result.status == QueryStatus::kOk) {
      metrics_.stale_served.add();
    }
  };

  // Phase 1 — admission gate + cache, in submission order. Queries that
  // survive land on the execution list; in-batch duplicates of a
  // cacheable fingerprint execute once and alias the first instance.
  std::vector<std::size_t> exec;
  std::vector<std::string> exec_fp;
  std::vector<char> exec_cacheable;
  std::unordered_map<std::string, std::size_t> first_of;  // fp -> exec index
  std::vector<std::pair<std::size_t, std::size_t>> aliases;  // batch, exec
  bool need_csr = false, need_graph = false, need_full_csr = false;
  {
    STRUCTNET_OBS_SPAN("serve.admission");
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Pending& p = batch[i];
      metrics_.queue_wait_ns.record(elapsed_ns(p.submitted, gate_now));
      // A deadline that expires exactly at dequeue has no budget left:
      // classify at >= (the old > let a zero-remaining query through).
      if (!config_.deterministic && p.has_deadline &&
          gate_now >= p.deadline) {
        QueryResult result;
        result.status = QueryStatus::kTimedOut;
        metrics_.timed_out.add();
        resolve(p, std::move(result), gate_now);
        continue;
      }
      if (const auto cause = validate(p.query)) {
        QueryResult result;
        result.status = QueryStatus::kRejected;
        result.cause = *cause;
        metrics_.rejected_invalid.add();
        resolve(p, std::move(result), gate_now);
        continue;
      }
      const bool cacheable =
          config_.cache_bytes > 0 && query_cacheable(p.query);
      std::string fp = cacheable ? query_fingerprint(p.query) : std::string();
      if (cacheable) {
        // Batch dedup first: a duplicate of an earlier miss in this
        // batch waits for that execution instead of running (or probing
        // the cache — the first instance already missed) again, so
        // hit/miss counts don't depend on how submissions split into
        // batches.
        if (const auto it = first_of.find(fp); it != first_of.end()) {
          aliases.emplace_back(i, it->second);
          continue;
        }
        std::optional<QueryPayload> hit;
        {
          std::lock_guard<std::mutex> lk(serve_mu_);
          hit = cache_.lookup(fp, epoch);
        }
        if (hit) {
          QueryResult result;
          result.status = QueryStatus::kOk;
          result.epoch = epoch;
          result.from_cache = true;
          result.payload = std::move(*hit);
          annotate(result);
          resolve(p, std::move(result), clock_now());
          continue;
        }
        first_of.emplace(fp, exec.size());
      }
      need_csr = need_csr || query_is_temporal(p.query);
      need_graph = need_graph || !query_is_temporal(p.query);
      // Routing simulation runs against the full base index, so a batch
      // carrying one forces the delta planner to fold its overlay.
      need_full_csr = need_full_csr ||
                      std::holds_alternative<RoutingTrialsQuery>(p.query);
      exec.push_back(i);
      exec_fp.push_back(std::move(fp));
      exec_cacheable.push_back(cacheable ? 1 : 0);
    }
  }

  // Phase 2 — batch plan: ONE contact index and ONE materialized graph
  // per epoch, shared by every query in the batch (and reused across
  // batches while the epoch holds still).
  {
    STRUCTNET_OBS_SPAN("serve.plan");
    if (need_csr) {
      if (delta_obs_) {
        // Delta-advance planning: the observer has been folding accepted
        // contact events all along, so the merged index already sits at
        // this epoch. Only a fired compaction policy — or a routing
        // query, which simulates against the full base — pays a rebuild.
        STRUCTNET_OBS_SPAN("serve.plan.delta_advance");
        if (!delta_obs_->advance(need_full_csr)) metrics_.csr_reuses.add();
      } else if (!csr_valid_ || csr_epoch_ != epoch) {
        STRUCTNET_OBS_SPAN("serve.plan.csr_build");
        csr_.emplace(temporal_->view());
        csr_epoch_ = epoch;
        csr_valid_ = true;
        metrics_.csr_builds.add();
      } else {
        metrics_.csr_reuses.add();
      }
    }
    if (need_graph) {
      if (!graph_valid_ || graph_epoch_ != epoch) {
        STRUCTNET_OBS_SPAN("serve.plan.graph_build");
        graph_.emplace(engine_.graph().materialize());
        graph_epoch_ = epoch;
        graph_valid_ = true;
        metrics_.graph_builds.add();
      } else {
        metrics_.graph_reuses.add();
      }
    }
  }

  // Phase 2b — lane-pack plan (config.lane_pack): TemporalDistances
  // misses sharing a t_start become lanes of ONE multi-source sweep
  // (temporal/multi_source.hpp) instead of one scalar sweep each.
  // Grouping follows exec order and duplicate (source, t_start) pairs
  // share a lane, so the plan is a pure function of the batch — and
  // each lane's payload is bit-identical to the scalar kernel's, so
  // lane-packing never changes a result. Singleton groups stay scalar
  // (a 1-lane sweep saves nothing). Journey queries always take the
  // scalar path: they need the per-sweep hop reconstruction state.
  struct LaneBlock {
    TimeUnit t_start = 0;
    std::vector<VertexId> sources;                // lane l's source
    std::vector<std::vector<std::size_t>> fills;  // exec indices per lane
  };
  std::vector<LaneBlock> lane_blocks;
  std::vector<char> lane_filled(exec.size(), 0);
  if (config_.lane_pack && !exec.empty()) {
    STRUCTNET_OBS_SPAN("serve.plan.lane_pack");
    // t_start groups in first-appearance order (linear scans: both the
    // group count and the lane count are small by construction).
    std::vector<TimeUnit> group_key;
    std::vector<std::vector<std::size_t>> group_exec;
    for (std::size_t i = 0; i < exec.size(); ++i) {
      const auto* q =
          std::get_if<TemporalDistancesQuery>(&batch[exec[i]].query);
      if (q == nullptr) continue;
      std::size_t g = 0;
      while (g < group_key.size() && group_key[g] != q->t_start) ++g;
      if (g == group_key.size()) {
        group_key.push_back(q->t_start);
        group_exec.emplace_back();
      }
      group_exec[g].push_back(i);
    }
    std::size_t packed = 0;
    for (std::size_t g = 0; g < group_key.size(); ++g) {
      if (group_exec[g].size() < 2) continue;
      LaneBlock* block = nullptr;
      for (const std::size_t i : group_exec[g]) {
        const auto& q =
            std::get<TemporalDistancesQuery>(batch[exec[i]].query);
        std::size_t lane = 0;
        if (block != nullptr) {
          while (lane < block->sources.size() &&
                 block->sources[lane] != q.source) {
            ++lane;
          }
        }
        if (block == nullptr ||
            (lane == block->sources.size() &&
             lane == MultiSourceWorkspace::kMaxLanes)) {
          lane_blocks.emplace_back();
          block = &lane_blocks.back();
          block->t_start = group_key[g];
          lane = 0;
        }
        if (lane == block->sources.size()) {
          block->sources.push_back(q.source);
          block->fills.emplace_back();
          metrics_.lanes_packed.add();
        }
        block->fills[lane].push_back(i);
        lane_filled[i] = 1;
        ++packed;
      }
    }
    if (!lane_blocks.empty()) {
      metrics_.sweeps_saved.add(packed - lane_blocks.size());
    }
  }

  // Phase 3 — execute: lane blocks first (one sweep per shard), then
  // the remaining misses one query per shard. Shard boundaries are a
  // pure function of the batch, so any thread count computes the same
  // per-query results (see parallel/parallel.hpp).
  std::vector<QueryPayload> payloads(exec.size());
  if (!exec.empty()) {
    STRUCTNET_OBS_SPAN("serve.execute");
    const std::size_t slots = resolve_threads(config_.threads);
    if (workspaces_.size() < slots) workspaces_.resize(slots);
    if (!lane_blocks.empty()) {
      if (ms_workspaces_.size() < slots) ms_workspaces_.resize(slots);
      parallel_for_shards(
          0, lane_blocks.size(), /*grain=*/1, config_.threads,
          [&](std::size_t, std::size_t lo, std::size_t hi,
              std::size_t worker) {
            MultiSourceWorkspace& w = ms_workspaces_[worker];
            for (std::size_t b = lo; b < hi; ++b) {
              const LaneBlock& block = lane_blocks[b];
              const std::span<const VertexId> sources(block.sources.data(),
                                                      block.sources.size());
              {
                STRUCTNET_OBS_SPAN("serve.kernel.temporal_distances_batch");
                if (delta_csr_ != nullptr) {
                  csr_earliest_arrival_batch(*delta_csr_, sources,
                                             block.t_start, w);
                } else {
                  csr_earliest_arrival_batch(*csr_, sources, block.t_start,
                                             w);
                }
              }
              for (std::size_t l = 0; l < block.sources.size(); ++l) {
                // completion(l) is the exact bytes the scalar kernel's
                // payload would carry; duplicates copy, the last moves.
                std::vector<TimeUnit> row = w.completion(l);
                const std::vector<std::size_t>& fills = block.fills[l];
                for (std::size_t k = 0; k + 1 < fills.size(); ++k) {
                  payloads[fills[k]] = QueryPayload(row);
                }
                payloads[fills.back()] = QueryPayload(std::move(row));
              }
            }
          });
    }
    parallel_for_shards(
        0, exec.size(), /*grain=*/1, config_.threads,
        [&](std::size_t shard, std::size_t lo, std::size_t hi,
            std::size_t worker) {
          (void)shard;
          for (std::size_t i = lo; i < hi; ++i) {
            if (lane_filled[i]) continue;  // resolved by a lane block
            payloads[i] =
                execute_payload(batch[exec[i]].query, workspaces_[worker]);
          }
        });
  }

  {
    STRUCTNET_OBS_SPAN("serve.cache");
    // Phase 4 — cache fill + resolution, in submission order.
    for (std::size_t i = 0; i < exec.size(); ++i) {
      Pending& p = batch[exec[i]];
      const Clock::time_point now = clock_now();
      metrics_.executed.add();
      if (exec_cacheable[i]) {
        std::lock_guard<std::mutex> lk(serve_mu_);
        cache_.insert(exec_fp[i], epoch, payloads[i]);
      }
      if (!config_.deterministic && p.has_deadline && now >= p.deadline) {
        // Finished past the deadline: the caller asked not to wait this
        // long, so the (valid, now cached) payload is dropped.
        QueryResult result;
        result.status = QueryStatus::kTimedOut;
        metrics_.timed_out.add();
        resolve(p, std::move(result), now);
        continue;
      }
      QueryResult result;
      result.status = QueryStatus::kOk;
      result.epoch = epoch;
      result.payload = std::move(payloads[i]);
      annotate(result);
      resolve(p, std::move(result), now);
    }

    // Phase 5 — resolve in-batch duplicates from the freshly filled
    // cache (a lookup, so the hit is visible in the cache counters).
    for (const auto& [batch_idx, exec_idx] : aliases) {
      Pending& p = batch[batch_idx];
      const Clock::time_point now = clock_now();
      std::optional<QueryPayload> hit;
      {
        std::lock_guard<std::mutex> lk(serve_mu_);
        hit = cache_.lookup(exec_fp[exec_idx], epoch);
      }
      if (!config_.deterministic && p.has_deadline && now >= p.deadline) {
        QueryResult result;
        result.status = QueryStatus::kTimedOut;
        metrics_.timed_out.add();
        resolve(p, std::move(result), now);
        continue;
      }
      QueryResult result;
      result.status = QueryStatus::kOk;
      result.epoch = epoch;
      result.from_cache = hit.has_value();
      // A pathologically small budget can evict the entry before the
      // duplicate reads it back; recompute serially in that case.
      result.payload = hit ? std::move(*hit)
                           : execute_payload(p.query, workspaces_.front());
      annotate(result);
      resolve(p, std::move(result), now);
    }
  }

  metrics_.batches.add();
  return batch.size();
}

std::size_t QueryBroker::apply_events(std::span<const Event> events) {
  STRUCTNET_OBS_SPAN("serve.apply_events");
  std::lock_guard<std::mutex> exec_lk(exec_mu_);
  const Clock::time_point now = clock_now();

  if (health_.state() == HealthState::kReadOnly) {
    // Circuit open: fast-fail so callers never burn retries against a
    // known-bad path — unless the dwell elapsed, in which case this
    // very call doubles as the recovery probe.
    if (!health_.probe_due(now)) {
      metrics_.rejected_read_only.add();
      return 0;
    }
    health_.begin_probe(now);
    metrics_.update_probes.add();
  }

  // Bounded retry with exponential backoff over the pre-commit fault
  // seam. The seam sits BEFORE the engine mutates, so a retry can never
  // double-apply an event (node joins etc. are not idempotent).
  std::chrono::nanoseconds delay = config_.update_backoff_base;
  for (std::size_t attempt = 1;
       config_.update_fault_fn != nullptr && config_.update_fault_fn();
       ++attempt) {
    metrics_.update_faults.add();
    if (attempt >= std::max<std::size_t>(config_.update_max_attempts, 1)) {
      metrics_.update_failures.add();
      health_.on_failure(clock_now());
      // Wake the dispatcher: its watchdog owns the re-probe cadence.
      // The empty critical section orders the health store against the
      // dispatcher's predicate-check-then-block (both under queue_mu_):
      // without it the store + notify could land between the check and
      // the block and the wakeup would be lost.
      { std::lock_guard<std::mutex> lk(queue_mu_); }
      queue_cv_.notify_all();
      return 0;
    }
    metrics_.update_retries.add();
    if (delay.count() > 0) {
      if (config_.sleep_fn != nullptr) {
        config_.sleep_fn(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }
    delay = std::min(delay * std::max<std::uint32_t>(
                                 config_.update_backoff_factor, 1),
                     config_.update_backoff_cap);
  }

  try {
    const std::size_t accepted = engine_.apply_batch(events);
    health_.on_success(clock_now());
    return accepted;
  } catch (...) {
    // An exception out of the engine itself (WAL IO error, observer
    // failure) is not retryable in place: the batch may be partially
    // applied, so re-running it would double-apply the prefix. Record
    // the failure, degrade, and keep serving the last good epoch.
    metrics_.update_failures.add();
    health_.on_failure(clock_now());
    // Same store-then-notify fence as the retry-exhaustion path above.
    { std::lock_guard<std::mutex> lk(queue_mu_); }
    queue_cv_.notify_all();
    return 0;
  }
}

bool QueryBroker::probe() {
  STRUCTNET_OBS_SPAN("serve.probe");
  std::lock_guard<std::mutex> exec_lk(exec_mu_);
  const Clock::time_point now = clock_now();
  if (!health_.probe_due(now)) return false;
  health_.begin_probe(now);
  metrics_.update_probes.add();
  if (config_.update_fault_fn != nullptr && config_.update_fault_fn()) {
    metrics_.update_faults.add();
    health_.on_failure(clock_now());
    return false;
  }
  health_.on_success(clock_now());
  return true;
}

void QueryBroker::start() {
  std::lock_guard<std::mutex> lk(queue_mu_);
  if (dispatching_ || stopping_) return;
  dispatching_ = true;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void QueryBroker::stop() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    dispatching_ = false;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

bool QueryBroker::dispatching() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return dispatching_;
}

void QueryBroker::dispatch_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      const auto drain = [&] { return !dispatching_ || !queue_.empty(); };
      if (health_.state() == HealthState::kReadOnly) {
        // Watchdog mode: wake at the probe cadence even when no queries
        // arrive, so the circuit re-closes without external traffic.
        queue_cv_.wait_for(lk, health_.config().probe_backoff, drain);
      } else {
        // A circuit trip must also break the untimed wait (apply_events
        // notifies on failure): wait(pred) re-checks only its predicate,
        // so without the health clause a parked dispatcher would never
        // re-evaluate the branch above and the watchdog would starve.
        queue_cv_.wait(lk, [&] {
          return drain() || health_.state() == HealthState::kReadOnly;
        });
      }
      // Drain before exiting so stop() implies "all admitted queries
      // resolved".
      if (!dispatching_ && queue_.empty()) return;
    }
    if (health_.state() == HealthState::kReadOnly) probe();
    flush();
  }
}

std::size_t QueryBroker::queue_depth() const {
  std::lock_guard<std::mutex> lk(queue_mu_);
  return queue_.size();
}

ServeStats QueryBroker::stats() const {
  // Reconstructed from the registry metrics: ServeStats and a registry
  // snapshot read the same cells, so the two views agree value-for-value.
  ServeStats out;
  out.submitted = metrics_.submitted.value();
  out.admitted = metrics_.admitted.value();
  out.shed_queue_full = metrics_.shed_queue_full.value();
  out.rejected_invalid = metrics_.rejected_invalid.value();
  out.rejected_shutdown = metrics_.rejected_shutdown.value();
  out.timed_out = metrics_.timed_out.value();
  out.executed = metrics_.executed.value();
  out.batches = metrics_.batches.value();
  out.lanes_packed = metrics_.lanes_packed.value();
  out.sweeps_saved = metrics_.sweeps_saved.value();
  out.csr_builds = metrics_.csr_builds.value();
  out.csr_reuses = metrics_.csr_reuses.value();
  out.csr_delta_appends = metrics_.csr_delta_appends.value();
  out.csr_compactions = metrics_.csr_compactions.value();
  out.graph_builds = metrics_.graph_builds.value();
  out.graph_reuses = metrics_.graph_reuses.value();
  out.health = health_.state();
  out.health_transitions = health_.transitions();
  out.update_faults = metrics_.update_faults.value();
  out.update_retries = metrics_.update_retries.value();
  out.update_failures = metrics_.update_failures.value();
  out.update_probes = metrics_.update_probes.value();
  out.rejected_read_only = metrics_.rejected_read_only.value();
  out.stale_served = metrics_.stale_served.value();
  {
    std::lock_guard<std::mutex> lk(serve_mu_);
    const ResultCache::Stats c = cache_.stats();
    out.cache_hits = c.hits;
    out.cache_misses = c.misses;
    out.cache_evictions = c.evictions;
    out.cache_invalidations = c.invalidations;
    out.cache_bytes = c.bytes;
    out.cache_entries = c.entries;
  }
  for (std::size_t k = 0; k < kQueryKindCount; ++k) {
    out.latency[k] =
        LatencyHistogram::from_snapshot(metrics_.latency[k]->snapshot());
  }
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    out.queue_depth = queue_.size();
    out.max_queue_depth = max_queue_depth_;
  }
  return out;
}

void QueryBroker::on_event(const DynamicGraph& g, const Event& event,
                           const EventEffect& effect) {
  (void)event;
  (void)effect;
  // The engine advanced: entries below the new epoch can never be hit
  // again (epoch monotonicity), so release their bytes eagerly.
  std::lock_guard<std::mutex> lk(serve_mu_);
  cache_.invalidate_before(g.epoch());
}

void QueryBroker::recompute(const DynamicGraph& g) {
  // Attach-time synchronization: nothing derived to rebuild, but any
  // stale cache entries (attach after churn) are released.
  std::lock_guard<std::mutex> lk(serve_mu_);
  cache_.invalidate_before(g.epoch());
}

}  // namespace structnet
