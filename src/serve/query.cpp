#include "serve/query.hpp"

#include <cstdio>
#include <type_traits>

namespace structnet {

namespace {

/// Exact double spelling (hexfloat round-trips every finite value and
/// spells NaN/inf distinctly), so fingerprints never collide on "close
/// enough" parameters.
void append_double(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
}

}  // namespace

std::string_view to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTemporalDistances:
      return "temporal_distances";
    case QueryKind::kFastestJourney:
      return "fastest_journey";
    case QueryKind::kMinHopJourney:
      return "min_hop_journey";
    case QueryKind::kNsfReport:
      return "nsf_report";
    case QueryKind::kCentrality:
      return "centrality";
    case QueryKind::kRoutingTrials:
      return "routing_trials";
  }
  return "unknown";
}

std::string_view to_string(CentralityMeasure measure) {
  switch (measure) {
    case CentralityMeasure::kDegree:
      return "degree";
    case CentralityMeasure::kCloseness:
      return "closeness";
    case CentralityMeasure::kBetweenness:
      return "betweenness";
    case CentralityMeasure::kClustering:
      return "clustering";
    case CentralityMeasure::kTemporalCloseness:
      return "temporal_closeness";
  }
  return "unknown";
}

std::string_view to_string(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kDirect:
      return "direct";
    case RoutingStrategy::kEpidemic:
      return "epidemic";
    case RoutingStrategy::kSprayAndWait:
      return "spray_and_wait";
  }
  return "unknown";
}

std::string_view to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "ok";
    case QueryStatus::kRejected:
      return "rejected";
    case QueryStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

std::string_view to_string(RejectCause cause) {
  switch (cause) {
    case RejectCause::kNone:
      return "none";
    case RejectCause::kQueueFull:
      return "queue_full";
    case RejectCause::kInvalidArgument:
      return "invalid_argument";
    case RejectCause::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

QueryKind kind_of(const Query& query) {
  return static_cast<QueryKind>(query.index());
}

bool query_is_temporal(const Query& query) {
  switch (kind_of(query)) {
    case QueryKind::kTemporalDistances:
    case QueryKind::kFastestJourney:
    case QueryKind::kMinHopJourney:
    case QueryKind::kRoutingTrials:
      return true;
    case QueryKind::kNsfReport:
      return false;
    case QueryKind::kCentrality:
      // Classical measures read the static graph; temporal closeness
      // sweeps the contact index.
      return std::get<CentralityQuery>(query).measure ==
             CentralityMeasure::kTemporalCloseness;
  }
  return false;
}

std::string query_fingerprint(const Query& query) {
  std::string fp(to_string(kind_of(query)));
  const auto sep = [&fp] { fp += '|'; };
  std::visit(
      [&](const auto& q) {
        using T = std::decay_t<decltype(q)>;
        if constexpr (std::is_same_v<T, TemporalDistancesQuery>) {
          sep(), append_u64(fp, q.source);
          sep(), append_u64(fp, q.t_start);
        } else if constexpr (std::is_same_v<T, FastestJourneyQuery> ||
                             std::is_same_v<T, MinHopJourneyQuery>) {
          sep(), append_u64(fp, q.source);
          sep(), append_u64(fp, q.target);
          sep(), append_u64(fp, q.t_start);
        } else if constexpr (std::is_same_v<T, NsfReportQuery>) {
          sep(), append_double(fp, q.stop_fraction);
          sep(), append_double(fp, q.ks_threshold);
        } else if constexpr (std::is_same_v<T, CentralityQuery>) {
          sep(), fp += to_string(q.measure);
        } else if constexpr (std::is_same_v<T, RoutingTrialsQuery>) {
          sep(), append_u64(fp, q.source);
          sep(), append_u64(fp, q.destination);
          sep(), append_u64(fp, q.t0);
          sep(), fp += to_string(q.strategy);
          sep(), append_u64(fp, q.initial_copies);
          sep(), append_u64(fp, q.trials);
          sep(), append_u64(fp, q.ttl);
          sep(), append_double(fp, q.loss_probability);
          sep(), append_u64(fp, q.loss_seed);
          sep(), append_u64(fp, q.retry.max_attempts);
          sep(), append_u64(fp, q.retry.backoff_base);
          sep(), append_u64(fp, q.retry.backoff_factor);
          sep(), append_u64(fp, q.retry.backoff_cap);
        }
      },
      query);
  return fp;
}

bool query_cacheable(const Query& query) {
  if (const auto* rt = std::get_if<RoutingTrialsQuery>(&query)) {
    return rt->plan == nullptr;
  }
  return true;
}

namespace {

bool fits_equal(const std::vector<PowerLawFit>& a,
                const std::vector<PowerLawFit>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].alpha != b[i].alpha || a[i].ks != b[i].ks ||
        a[i].k_min != b[i].k_min || a[i].samples != b[i].samples) {
      return false;
    }
  }
  return true;
}

bool outcomes_equal(const std::vector<RoutingOutcome>& a,
                    const std::vector<RoutingOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].delivered != b[i].delivered ||
        a[i].delivery_time != b[i].delivery_time || a[i].hops != b[i].hops ||
        a[i].copies != b[i].copies ||
        a[i].transmissions != b[i].transmissions) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool payload_equal(const QueryPayload& a, const QueryPayload& b) {
  if (a.index() != b.index()) return false;
  return std::visit(
      [&](const auto& lhs) {
        using T = std::decay_t<decltype(lhs)>;
        const auto& rhs = std::get<T>(b);
        if constexpr (std::is_same_v<T, std::monostate>) {
          return true;
        } else if constexpr (std::is_same_v<T, NsfReport>) {
          return fits_equal(lhs.fits, rhs.fits) && lhs.sizes == rhs.sizes &&
                 lhs.exponent_stddev == rhs.exponent_stddev &&
                 lhs.all_scale_free == rhs.all_scale_free;
        } else if constexpr (std::is_same_v<T, RoutingTrialStats>) {
          return outcomes_equal(lhs.outcomes, rhs.outcomes) &&
                 lhs.delivered == rhs.delivered &&
                 lhs.delivery_ratio == rhs.delivery_ratio &&
                 lhs.mean_delivery_time == rhs.mean_delivery_time &&
                 lhs.mean_hops == rhs.mean_hops &&
                 lhs.mean_transmissions == rhs.mean_transmissions;
        } else {
          return lhs == rhs;  // vectors / optional<Journey> have exact ==
        }
      },
      a);
}

std::size_t payload_bytes(const QueryPayload& payload) {
  constexpr std::size_t kBase = 64;  // entry bookkeeping overhead
  return kBase + std::visit(
                     [](const auto& value) -> std::size_t {
                       using T = std::decay_t<decltype(value)>;
                       if constexpr (std::is_same_v<T, std::monostate>) {
                         return 0;
                       } else if constexpr (std::is_same_v<
                                                T, std::vector<TimeUnit>>) {
                         return value.size() * sizeof(TimeUnit);
                       } else if constexpr (std::is_same_v<
                                                T, std::optional<Journey>>) {
                         return sizeof(Journey) +
                                (value ? value->hops.size() * sizeof(JourneyHop)
                                       : 0);
                       } else if constexpr (std::is_same_v<T, NsfReport>) {
                         return sizeof(NsfReport) +
                                value.fits.size() * sizeof(PowerLawFit) +
                                value.sizes.size() * sizeof(std::size_t);
                       } else if constexpr (std::is_same_v<
                                                T, std::vector<double>>) {
                         return value.size() * sizeof(double);
                       } else {  // RoutingTrialStats
                         return sizeof(RoutingTrialStats) +
                                value.outcomes.size() * sizeof(RoutingOutcome);
                       }
                     },
                     payload);
}

}  // namespace structnet
