// Typed query vocabulary of the serving layer (serve/broker.hpp).
//
// A query is a plain value describing one analytic over the engine's
// current graph: temporal distances, fastest / minimum-hop journeys,
// the NSF report, a classical centrality, or a Monte-Carlo routing
// ensemble. Queries are values so they can be fingerprinted — the
// fingerprint plus the DynamicGraph epoch is the result-cache key, and
// two equal (fingerprint, epoch) pairs are guaranteed to have equal
// results (every kernel behind a query kind is deterministic in the
// query and the graph state).
//
// The one non-value field is RoutingTrialsQuery::plan, a borrowed
// FaultPlan: plan identity cannot be folded into a value fingerprint,
// so plan-bearing queries are executed but never cached
// (query_cacheable() == false).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/types.hpp"
#include "layering/nsf.hpp"
#include "serve/health.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/journeys.hpp"

namespace structnet {

/// Query kinds, in Query variant alternative order.
enum class QueryKind : std::uint8_t {
  kTemporalDistances = 0,
  kFastestJourney,
  kMinHopJourney,
  kNsfReport,
  kCentrality,
  kRoutingTrials,
};
inline constexpr std::size_t kQueryKindCount = 6;

/// Short stable name for metrics / JSON ("temporal_distances", ...).
std::string_view to_string(QueryKind kind);

/// Earliest completion times from `source` for all targets, departing
/// at or after `t_start` (temporal_distances over the engine's
/// temporal view). Payload: std::vector<TimeUnit>.
struct TemporalDistancesQuery {
  VertexId source = 0;
  TimeUnit t_start = 0;
};

/// Fastest (span-minimal) journey source -> target departing at or
/// after t_start. Payload: std::optional<Journey>.
struct FastestJourneyQuery {
  VertexId source = 0;
  VertexId target = 0;
  TimeUnit t_start = 0;
};

/// Minimum-hop journey source -> target departing at or after t_start.
/// Payload: std::optional<Journey>.
struct MinHopJourneyQuery {
  VertexId source = 0;
  VertexId target = 0;
  TimeUnit t_start = 0;
};

/// NSF verdict of the engine's current static graph (layering/nsf.hpp).
/// Payload: NsfReport.
struct NsfReportQuery {
  double stop_fraction = 0.5;
  double ks_threshold = 0.15;
};

/// Which centrality to compute. Payload: std::vector<double>.
/// The classical measures read the materialized static graph;
/// kTemporalCloseness reads the temporal view (an all-sources
/// lane-packed sweep over the batch's contact index, see
/// temporal/multi_source.hpp).
enum class CentralityMeasure : std::uint8_t {
  kDegree = 0,
  kCloseness,
  kBetweenness,
  kClustering,
  kTemporalCloseness,
};
std::string_view to_string(CentralityMeasure measure);

struct CentralityQuery {
  CentralityMeasure measure = CentralityMeasure::kDegree;
};

/// Stock DTN strategy for a routing ensemble (value-encodable subset of
/// sim/dtn_routing.hpp's Strategy callbacks).
enum class RoutingStrategy : std::uint8_t {
  kDirect = 0,
  kEpidemic,
  kSprayAndWait,
};
std::string_view to_string(RoutingStrategy strategy);

/// Monte-Carlo routing-trial ensemble over the engine's temporal view,
/// including the fault-injection knobs (all value-typed except `plan`).
/// Payload: RoutingTrialStats.
struct RoutingTrialsQuery {
  VertexId source = 0;
  VertexId destination = 0;
  TimeUnit t0 = 0;
  RoutingStrategy strategy = RoutingStrategy::kEpidemic;
  std::uint32_t initial_copies = 1;
  std::uint32_t trials = 1;
  // Fault knobs (mirror SimulationFaults, minus the plan pointer).
  TimeUnit ttl = kNeverTime;
  double loss_probability = 0.0;
  std::uint64_t loss_seed = 0;
  RetryPolicy retry;
  /// Optional composed fault schedule (borrowed; must outlive the
  /// query's execution). Makes the query uncacheable — see header note.
  const FaultPlan* plan = nullptr;
};

/// Alternative order must match QueryKind.
using Query =
    std::variant<TemporalDistancesQuery, FastestJourneyQuery, MinHopJourneyQuery,
                 NsfReportQuery, CentralityQuery, RoutingTrialsQuery>;

QueryKind kind_of(const Query& query);

/// True when the query reads the temporal view (needs a TemporalCsr);
/// false when it reads the materialized static graph.
bool query_is_temporal(const Query& query);

/// Canonical, collision-free byte encoding of the query value (doubles
/// rendered as hexfloats, so distinct values always encode distinctly).
/// The result-cache key is fingerprint + epoch.
std::string query_fingerprint(const Query& query);

/// False for queries whose identity is not a pure value (borrowed
/// FaultPlan); such queries always execute, bypassing the cache.
bool query_cacheable(const Query& query);

// ------------------------------------------------------------- results

enum class QueryStatus : std::uint8_t {
  kOk = 0,      // executed (or served from cache) at `epoch`
  kRejected,    // never executed — see RejectCause
  kTimedOut,    // deadline expired before (or during) execution
};
std::string_view to_string(QueryStatus status);

/// Why a query was rejected by admission control.
enum class RejectCause : std::uint8_t {
  kNone = 0,
  kQueueFull,         // bounded queue saturated: load was shed
  kInvalidArgument,   // vertex id out of range / no temporal view bound
  kShutdown,          // broker stopping; query never ran
};
std::string_view to_string(RejectCause cause);

/// Result payload, one alternative per QueryKind (monostate for
/// rejected / timed-out queries).
using QueryPayload =
    std::variant<std::monostate, std::vector<TimeUnit>, std::optional<Journey>,
                 NsfReport, std::vector<double>, RoutingTrialStats>;

struct QueryResult {
  QueryStatus status = QueryStatus::kRejected;
  RejectCause cause = RejectCause::kNone;
  /// Epoch the result is valid for (kOk results only).
  std::uint64_t epoch = 0;
  /// True when served from the result cache rather than executed.
  bool from_cache = false;
  /// Broker health observed at resolution. A non-Healthy broker keeps
  /// serving (graceful degradation), but callers can see that `epoch`
  /// is the last GOOD epoch, not necessarily the freshest stream state.
  HealthState health = HealthState::kHealthy;
  /// Staleness annotation: true iff health was not Healthy at flush —
  /// updates are failing, so the served epoch may lag the real world.
  bool stale = false;
  QueryPayload payload;
};

/// Exact (bit-identical for floating point) payload comparison — what
/// the churn equivalence tests assert between served and freshly
/// recomputed results.
bool payload_equal(const QueryPayload& a, const QueryPayload& b);

/// Estimated resident bytes of a payload, the unit of the result
/// cache's byte budget.
std::size_t payload_bytes(const QueryPayload& payload);

}  // namespace structnet
