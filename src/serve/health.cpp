#include "serve/health.hpp"

#include <string>

namespace structnet {

std::string_view to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kReadOnly:
      return "read_only";
    case HealthState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config,
                             obs::MetricsRegistry& registry,
                             std::string_view prefix)
    : config_(config),
      state_gauge_(registry.gauge(std::string(prefix) + ".state")),
      transitions_(registry.counter(std::string(prefix) + ".transitions")) {
  if (config_.circuit_threshold == 0) config_.circuit_threshold = 1;
  for (std::size_t s = 0; s < kHealthStateCount; ++s) {
    std::string name(prefix);
    name += ".to_";
    name += to_string(static_cast<HealthState>(s));
    to_state_[s] = &registry.counter(name);
  }
  state_gauge_.set(static_cast<std::int64_t>(HealthState::kHealthy));
}

void HealthMonitor::transition(HealthState to, TimePoint now) {
  (void)now;
  if (state() == to) return;
  state_.store(to, std::memory_order_release);
  state_gauge_.set(static_cast<std::int64_t>(to));
  transitions_.add();
  to_state_[static_cast<std::size_t>(to)]->add();
}

void HealthMonitor::on_success(TimePoint now) {
  consecutive_failures_ = 0;
  transition(HealthState::kHealthy, now);
}

void HealthMonitor::on_failure(TimePoint now) {
  ++consecutive_failures_;
  last_failure_ = now;  // re-arms the probe backoff
  if (consecutive_failures_ >= config_.circuit_threshold ||
      state() == HealthState::kRecovering) {
    // At the threshold — or a failed probe — the circuit (re-)opens.
    transition(HealthState::kReadOnly, now);
  } else {
    transition(HealthState::kDegraded, now);
  }
}

bool HealthMonitor::probe_due(TimePoint now) const {
  return state() == HealthState::kReadOnly &&
         now - last_failure_ >= config_.probe_backoff;
}

void HealthMonitor::begin_probe(TimePoint now) {
  if (state() != HealthState::kReadOnly) return;
  transition(HealthState::kRecovering, now);
}

}  // namespace structnet
