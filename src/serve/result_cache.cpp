#include "serve/result_cache.hpp"

#include <algorithm>

namespace structnet {

namespace {

std::string metric_name(std::string_view prefix, std::string_view leaf) {
  std::string name(prefix);
  name += '.';
  name += leaf;
  return name;
}

}  // namespace

ResultCache::ResultCache(std::size_t byte_budget,
                         obs::MetricsRegistry* registry,
                         std::string_view prefix)
    : budget_(byte_budget),
      owned_registry_(registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(registry != nullptr ? registry : owned_registry_.get()),
      hits_(registry_->counter(metric_name(prefix, "hits"))),
      misses_(registry_->counter(metric_name(prefix, "misses"))),
      inserts_(registry_->counter(metric_name(prefix, "inserts"))),
      evictions_(registry_->counter(metric_name(prefix, "evictions"))),
      invalidations_(registry_->counter(metric_name(prefix, "invalidations"))),
      bytes_gauge_(registry_->gauge(metric_name(prefix, "bytes"))),
      entries_gauge_(registry_->gauge(metric_name(prefix, "entries"))) {}

std::string ResultCache::make_key(const std::string& fingerprint,
                                  std::uint64_t epoch) {
  return fingerprint + '@' + std::to_string(epoch);
}

void ResultCache::publish_gauges() {
  bytes_gauge_.set(static_cast<std::int64_t>(bytes_));
  entries_gauge_.set(static_cast<std::int64_t>(lru_.size()));
}

std::optional<QueryPayload> ResultCache::lookup(const std::string& fingerprint,
                                                std::uint64_t epoch) {
  const auto it = index_.find(make_key(fingerprint, epoch));
  if (it == index_.end()) {
    misses_.add();
    return std::nullopt;
  }
  // Refresh recency: move the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.add();
  return it->second->payload;
}

void ResultCache::insert(const std::string& fingerprint, std::uint64_t epoch,
                         const QueryPayload& payload) {
  std::string key = make_key(fingerprint, epoch);
  if (const auto it = index_.find(key); it != index_.end()) {
    // Same-key overwrite: swap the byte charge atomically with the
    // payload so an eviction triggered below never double-counts.
    bytes_ -= it->second->bytes;
    it->second->payload = payload;
    it->second->bytes = payload_bytes(payload);
    bytes_ += it->second->bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    const std::size_t bytes = payload_bytes(payload);
    lru_.push_front(Entry{key, epoch, payload, bytes});
    index_.emplace(std::move(key), lru_.begin());
    bytes_ += bytes;
    min_epoch_ = lru_.size() == 1 ? epoch : std::min(min_epoch_, epoch);
  }
  inserts_.add();
  while (bytes_ > budget_ && !lru_.empty()) {
    erase_entry(std::prev(lru_.end()));
    evictions_.add();
  }
  publish_gauges();
}

void ResultCache::invalidate_before(std::uint64_t epoch) {
  if (lru_.empty() || min_epoch_ >= epoch) return;
  std::uint64_t min_left = ~std::uint64_t{0};
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch < epoch) {
      const auto doomed = it++;
      erase_entry(doomed);
      invalidations_.add();
    } else {
      min_left = std::min(min_left, it->epoch);
      ++it;
    }
  }
  min_epoch_ = lru_.empty() ? 0 : min_left;
  publish_gauges();
}

void ResultCache::clear() {
  lru_.clear();
  index_.clear();
  min_epoch_ = 0;
  bytes_ = 0;
  publish_gauges();
}

void ResultCache::erase_entry(Lru::iterator it) {
  bytes_ -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
  // An emptied cache holds no epoch, so the hint must not keep the old
  // minimum (a later insert at a smaller epoch would min() against it
  // and stay correct, but the reset keeps the fast path exact).
  if (lru_.empty()) min_epoch_ = 0;
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.inserts = inserts_.value();
  s.evictions = evictions_.value();
  s.invalidations = invalidations_.value();
  s.bytes = bytes_;
  s.entries = lru_.size();
  return s;
}

ResultCache::Recount ResultCache::recount() const {
  Recount r;
  for (const Entry& e : lru_) {
    r.bytes += payload_bytes(e.payload);
    ++r.entries;
  }
  return r;
}

}  // namespace structnet
