#include "serve/result_cache.hpp"

#include <algorithm>

namespace structnet {

std::string ResultCache::make_key(const std::string& fingerprint,
                                  std::uint64_t epoch) {
  return fingerprint + '@' + std::to_string(epoch);
}

std::optional<QueryPayload> ResultCache::lookup(const std::string& fingerprint,
                                                std::uint64_t epoch) {
  const auto it = index_.find(make_key(fingerprint, epoch));
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  // Refresh recency: move the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->payload;
}

void ResultCache::insert(const std::string& fingerprint, std::uint64_t epoch,
                         const QueryPayload& payload) {
  std::string key = make_key(fingerprint, epoch);
  if (const auto it = index_.find(key); it != index_.end()) {
    stats_.bytes -= it->second->bytes;
    it->second->payload = payload;
    it->second->bytes = payload_bytes(payload);
    stats_.bytes += it->second->bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    const std::size_t bytes = payload_bytes(payload);
    lru_.push_front(Entry{key, epoch, payload, bytes});
    index_.emplace(std::move(key), lru_.begin());
    stats_.bytes += bytes;
    min_epoch_ = lru_.size() == 1 ? epoch : std::min(min_epoch_, epoch);
  }
  ++stats_.inserts;
  while (stats_.bytes > budget_ && !lru_.empty()) {
    erase_entry(std::prev(lru_.end()));
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

void ResultCache::invalidate_before(std::uint64_t epoch) {
  if (lru_.empty() || min_epoch_ >= epoch) return;
  std::uint64_t min_left = ~std::uint64_t{0};
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->epoch < epoch) {
      const auto doomed = it++;
      erase_entry(doomed);
      ++stats_.invalidations;
    } else {
      min_left = std::min(min_left, it->epoch);
      ++it;
    }
  }
  min_epoch_ = lru_.empty() ? 0 : min_left;
  stats_.entries = lru_.size();
}

void ResultCache::clear() {
  lru_.clear();
  index_.clear();
  min_epoch_ = 0;
  stats_.bytes = 0;
  stats_.entries = 0;
}

void ResultCache::erase_entry(Lru::iterator it) {
  stats_.bytes -= it->bytes;
  index_.erase(it->key);
  lru_.erase(it);
}

}  // namespace structnet
