// Serving metrics: counters, gauges, and per-query-kind latency
// histograms, printable as one machine-readable JSON line in the same
// shape the bench binaries emit (util/json_line.hpp — grep stdout for
// lines starting with '{').
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace structnet {

/// Power-of-two latency histogram over nanoseconds: bucket i counts
/// samples with bit_width(ns) == i + 1 (i.e. ns in [2^i, 2^(i+1))),
/// bucket 0 also absorbing ns == 0, and the LAST bucket absorbing every
/// sample at or above 2^(kBuckets-1) (values saturate into it — they
/// are never dropped). 40 buckets cover ~18 minutes.
///
/// The bucket geometry is the obs layer's (obs::histogram_bucket), so a
/// registry histogram snapshot converts losslessly via from_snapshot().
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = obs::kHistogramBuckets;

  void add(std::uint64_t ns);

  /// A LatencyHistogram with exactly the counts of a registry histogram
  /// snapshot — how ServeStats materializes broker latency metrics.
  static LatencyHistogram from_snapshot(const obs::HistogramSnapshot& s);

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }
  /// Nearest-rank quantile upper bound: an upper bound (ns) on the
  /// sample at rank ceil(q * count), q in [0, 1]. Bounded by the bucket
  /// upper edge tightened by max_ns(); when the rank falls in the
  /// saturated last bucket the bound is max_ns() itself (the edge would
  /// under-report clamped samples). 0 when empty.
  std::uint64_t quantile_upper_ns(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return bucket_;
  }

 private:
  std::array<std::uint64_t, kBuckets> bucket_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// One snapshot of the broker's serving counters. Returned by value
/// from QueryBroker::stats(), so readers never race the serving path.
struct ServeStats {
  // Admission.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t timed_out = 0;

  // Execution.
  std::uint64_t executed = 0;
  std::uint64_t batches = 0;
  /// Lane-packed planning (BrokerConfig::lane_pack): TemporalDistances
  /// queries executed as lanes of shared multi-source sweeps, and the
  /// scalar sweeps those shared passes saved (packed queries - sweeps).
  std::uint64_t lanes_packed = 0;
  std::uint64_t sweeps_saved = 0;
  /// Per-epoch snapshot amortization: index/graph builds vs reuses.
  std::uint64_t csr_builds = 0;
  std::uint64_t csr_reuses = 0;
  /// Incremental index maintenance (delta mode): contact events folded
  /// into the overlay, and delta-into-base compactions (each compaction
  /// also counts as a build above).
  std::uint64_t csr_delta_appends = 0;
  std::uint64_t csr_compactions = 0;
  std::uint64_t graph_builds = 0;
  std::uint64_t graph_reuses = 0;

  // Self-healing update path (serve/health.hpp).
  HealthState health = HealthState::kHealthy;
  std::uint64_t health_transitions = 0;
  std::uint64_t update_faults = 0;
  std::uint64_t update_retries = 0;
  std::uint64_t update_failures = 0;
  std::uint64_t update_probes = 0;
  std::uint64_t rejected_read_only = 0;
  /// kOk results served while the broker was not Healthy (annotated
  /// stale: the epoch they carry is the last good one).
  std::uint64_t stale_served = 0;

  // Result cache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_invalidations = 0;
  std::size_t cache_bytes = 0;
  std::size_t cache_entries = 0;

  // Queue gauges.
  std::size_t queue_depth = 0;
  std::size_t max_queue_depth = 0;

  /// Submission-to-resolution latency per query kind (kOk and cache-hit
  /// resolutions only; rejected/timed-out queries are counted above).
  std::array<LatencyHistogram, kQueryKindCount> latency{};

  double cache_hit_ratio() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// One JSON line: {"bench": <label>, "submitted": ..., ...} with
  /// per-kind count / mean / p99 latency fields in microseconds — the
  /// same record shape the bench binaries emit, so BENCH trajectories
  /// can capture serving runs unchanged.
  std::string json(std::string_view label = "serve_stats") const;

  /// Human-readable multi-line summary.
  void print(std::ostream& os) const;
};

}  // namespace structnet
