// The query-serving front-end: a QueryBroker accepts typed queries
// against a StreamEngine-owned graph, batches them, executes batches on
// the parallel ThreadPool, and resolves futures — with an epoch-keyed
// result cache, admission control, and a metrics surface.
//
// Dataflow per flush():
//
//   submit() ----> bounded queue ----> [flush] deadline / validity gate
//                                         |        (Rejected / TimedOut)
//                                         v
//                                   result cache (fingerprint, epoch)
//                                     hit |   | miss
//                                         |   v
//                                         |  batch plan: delta-advance the
//                                         |  contact index (legacy mode:
//                                         |  ONE TemporalCsr per epoch)
//                                         |  + ONE materialized Graph per
//                                         |  epoch, shared by the batch
//                                         |   v
//                                         |  parallel_for over queries
//                                         v   v
//                                     futures resolve, cache fills
//
// Guarantees:
//
//   * Admission is non-blocking: a full queue sheds the query with a
//     typed Rejected(kQueueFull) result instead of blocking the caller,
//     so producers can never deadlock against the executor.
//   * Per-query deadlines are wall-clock: an expired query resolves
//     TimedOut — checked before execution (never starts) and after
//     (result discarded) — instead of blocking the batch.
//   * Determinism: with config.deterministic set, a fixed submission
//     order yields bit-identical results at ANY thread count. Batch
//     sharding comes from the parallel layer's fixed (range, grain)
//     split, every kernel behind a query kind is thread-count-invariant,
//     and cached payloads are the exact bytes an execution would have
//     produced; deterministic mode additionally disables the only
//     wall-clock-dependent behavior (deadline shedding).
//   * Epoch consistency: every query in a batch executes against the
//     same epoch E (the engine's epoch at flush), and the result says
//     so. The broker registers itself as a StreamObserver: each
//     accepted event invalidates cache entries below the new epoch.
//
// Threading contract: submit() is safe from any thread. flush() /
// apply_events() serialize on an internal executor lock; in dispatcher
// mode (start()/stop()) graph mutations MUST go through apply_events()
// so they cannot race a batch reading the engine.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/health.hpp"
#include "serve/metrics.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "stream/csr_observer.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"

namespace structnet {

struct BrokerConfig {
  /// Bounded admission queue; submissions beyond this are shed with
  /// Rejected(kQueueFull).
  std::size_t max_queue = 1024;
  /// Largest batch one flush executes (the rest stays queued).
  std::size_t max_batch = 256;
  /// Thread count for batch execution: 0 = default resolution
  /// (STRUCTNET_THREADS / hardware), 1 = serial.
  std::size_t threads = 0;
  /// Result-cache byte budget; 0 disables caching entirely.
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// Disables wall-clock deadline enforcement so a fixed submission
  /// order yields bit-identical results at any thread count.
  bool deterministic = false;
  /// Incremental contact-index maintenance: accepted contact events fold
  /// into a DeltaTemporalCsr overlay (via a DeltaCsrObserver the broker
  /// attaches behind the temporal view) and batch planning advances the
  /// delta instead of rebuilding the TemporalCsr on every epoch change.
  /// Off = legacy rebuild-on-epoch-change planning.
  bool delta_index = true;
  /// Delta/base size ratio beyond which planning folds the overlay into
  /// a fresh base (see DeltaTemporalCsr::needs_compaction).
  double csr_compact_ratio = 0.25;
  /// Lane-packed batch planning: TemporalDistances queries sharing a
  /// t_start are grouped (up to 64 distinct sources each) into ONE
  /// multi-source sweep per group instead of one scalar sweep per query
  /// (temporal/multi_source.hpp). Payloads are bit-identical to the
  /// scalar planner's; queries needing hop reconstruction (journeys)
  /// always take the scalar path. Off = one sweep per query.
  bool lane_pack = true;
  /// Clock seam: when set, every wall-clock read (submission stamps,
  /// deadline expiry, latency accounting) goes through this function
  /// instead of steady_clock::now(), so deadline classification is
  /// testable without sleeps. Null = the real monotonic clock.
  std::chrono::steady_clock::time_point (*now_fn)() = nullptr;

  // -- self-healing update path (serve/health.hpp)

  /// Bounded retry for transient update faults (RetryPolicy shape):
  /// attempts per apply_events call, first-retry backoff, exponential
  /// growth, and a cap on any single delay.
  std::size_t update_max_attempts = 3;
  std::chrono::nanoseconds update_backoff_base = std::chrono::microseconds(50);
  std::uint32_t update_backoff_factor = 2;
  std::chrono::nanoseconds update_backoff_cap = std::chrono::milliseconds(5);
  /// Consecutive exhausted updates that trip the circuit to ReadOnly.
  std::size_t circuit_threshold = 3;
  /// Dwell time in ReadOnly before the watchdog re-probes the path.
  std::chrono::nanoseconds probe_backoff = std::chrono::milliseconds(10);
  /// Fault seam: checked before each update attempt; returning true
  /// means "the update path is failing right now" (a stand-in for WAL
  /// IO errors, full disks, ...). The seam sits BEFORE the engine
  /// mutates, so retries never double-apply events. Null = never fails.
  bool (*update_fault_fn)() = nullptr;
  /// Sleep seam for retry backoff; null = std::this_thread::sleep_for.
  void (*sleep_fn)(std::chrono::nanoseconds) = nullptr;
};

struct SubmitOptions {
  /// Wall-clock budget measured from submission; zero = no deadline.
  std::chrono::nanoseconds deadline{0};
};

class QueryBroker final : public StreamObserver {
 public:
  /// `temporal` is the engine observer whose TemporalGraph view serves
  /// temporal queries (may be null: temporal queries then reject).
  /// Neither reference is owned; both must outlive the broker. The
  /// broker attaches itself to the engine for cache invalidation and
  /// detaches in the destructor.
  QueryBroker(StreamEngine& engine, TemporalViewObserver* temporal,
              BrokerConfig config = {});
  ~QueryBroker() override;
  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  /// Enqueues a query; never blocks. The future resolves on a later
  /// flush (or immediately when shed / shutting down).
  std::future<QueryResult> submit(Query query, SubmitOptions options = {});

  /// Executes one batch (up to config.max_batch queued queries, in
  /// submission order) on the calling thread + pool. Returns the number
  /// of queries resolved. Safe to call concurrently with submit();
  /// serialized against apply_events() and the dispatcher.
  std::size_t flush();

  /// Applies graph events through the engine under the executor lock,
  /// so updates serialize with batch execution (the required mutation
  /// path while the dispatcher runs). Returns accepted events.
  ///
  /// Self-healing: transient faults (config.update_fault_fn) are
  /// retried up to update_max_attempts with exponential backoff; an
  /// exhausted update fails the health monitor (Healthy -> Degraded,
  /// and ReadOnly once circuit_threshold consecutive updates fail).
  /// While ReadOnly, updates fast-fail (return 0) without touching the
  /// engine — except when the probe backoff has elapsed, in which case
  /// the call doubles as the recovery probe. An exception escaping the
  /// engine itself (e.g. a WAL IO error) also counts as a failure and
  /// is swallowed: queries must keep serving the last good epoch.
  std::size_t apply_events(std::span<const Event> events);

  /// Watchdog probe: when the circuit is open and the backoff has
  /// elapsed, re-tests the update path (ReadOnly -> Recovering ->
  /// Healthy or back). Returns true when the probe ran and succeeded.
  /// The background dispatcher calls this on its own; exposed for
  /// dispatcherless (manual flush) serving loops.
  bool probe();

  /// Lock-free health read; stale/health annotations on results carry
  /// the same value observed at flush time.
  HealthState health() const { return health_.state(); }

  /// Starts / stops the background dispatcher thread, which flushes
  /// whenever the queue is non-empty. stop() drains the queue before
  /// returning. Idempotent.
  void start();
  void stop();
  bool dispatching() const;

  std::size_t queue_depth() const;
  const BrokerConfig& config() const { return config_; }

  /// Consistent snapshot of all serving metrics (includes cache stats
  /// and queue gauges). Reconstructed from the metrics registry, so it
  /// matches metrics() value-for-value.
  ServeStats stats() const;

  /// The broker-owned metrics registry backing every serving counter,
  /// gauge, and latency histogram (including the result cache's, under
  /// "serve.cache.*"). Snapshot/emit_json are safe while serving.
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // StreamObserver: the engine's epoch/invalidation hook.
  std::string_view name() const override { return "serve"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  void recompute(const DynamicGraph& g) override;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Query query;
    std::promise<QueryResult> promise;
    Clock::time_point submitted;
    Clock::time_point deadline;  // meaningful iff has_deadline
    bool has_deadline = false;
  };

  /// Pinned references into registry_, resolved once at construction so
  /// the serving hot path never takes the registry lock.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry& r);
    obs::Counter& submitted;
    obs::Counter& admitted;
    obs::Counter& shed_queue_full;
    obs::Counter& rejected_invalid;
    obs::Counter& rejected_shutdown;
    obs::Counter& timed_out;
    obs::Counter& executed;
    obs::Counter& batches;
    obs::Counter& lanes_packed;
    obs::Counter& sweeps_saved;
    obs::Counter& csr_builds;
    obs::Counter& csr_reuses;
    obs::Counter& csr_delta_appends;
    obs::Counter& csr_compactions;
    obs::Counter& graph_builds;
    obs::Counter& graph_reuses;
    obs::Counter& update_faults;
    obs::Counter& update_retries;
    obs::Counter& update_failures;
    obs::Counter& update_probes;
    obs::Counter& rejected_read_only;
    obs::Counter& stale_served;
    obs::Gauge& queue_depth;
    obs::Gauge& max_queue_depth;
    obs::Histogram& queue_wait_ns;
    std::array<obs::Histogram*, kQueryKindCount> latency{};
  };

  Clock::time_point clock_now() const {
    return config_.now_fn != nullptr ? config_.now_fn() : Clock::now();
  }

  void dispatch_loop();
  /// Validity gate: nullopt when servable, else the reject cause.
  std::optional<RejectCause> validate(const Query& query) const;
  /// Executes one query against the epoch-shared snapshots.
  QueryPayload execute_payload(const Query& query, TemporalWorkspace& ws);
  void resolve(Pending& pending, QueryResult result, Clock::time_point now);

  StreamEngine& engine_;
  TemporalViewObserver* temporal_;
  const BrokerConfig config_;

  // -- admission queue (queue_mu_)
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::size_t max_queue_depth_ = 0;  // high-water mark
  bool stopping_ = false;
  bool dispatching_ = false;
  std::thread dispatcher_;

  // -- executor state: only touched under exec_mu_
  std::mutex exec_mu_;
  std::optional<TemporalCsr> csr_;        // legacy same-epoch contact index
  std::uint64_t csr_epoch_ = 0;
  bool csr_valid_ = false;
  /// Delta-maintained contact index (config.delta_index): the observer
  /// folds accepted contact events as they stream in, so planning only
  /// compacts (never rebuilds per epoch). delta_csr_ aliases its index
  /// and doubles as the "delta mode on" flag in execute_payload.
  std::optional<DeltaCsrObserver> delta_obs_;
  const DeltaTemporalCsr* delta_csr_ = nullptr;
  std::optional<Graph> graph_;            // shared same-epoch static graph
  std::uint64_t graph_epoch_ = 0;
  bool graph_valid_ = false;
  std::vector<TemporalWorkspace> workspaces_;  // one per worker slot
  /// Multi-source scratch for lane-packed plans, pooled per worker slot
  /// exactly like workspaces_.
  std::vector<MultiSourceWorkspace> ms_workspaces_;

  // -- metrics + cache. Counters/gauges/histograms are lock-free
  //    registry metrics; serve_mu_ only guards the cache *structure*
  //    (acquired after exec_mu_ / queue_mu_, never the other way
  //    around). Declaration order matters: cache_ registers its
  //    counters into registry_.
  obs::MetricsRegistry registry_;
  Metrics metrics_;
  /// Update-path health. Transitions happen under exec_mu_; reads are
  /// lock-free (flush annotations, stats, the dispatcher watchdog).
  HealthMonitor health_;
  mutable std::mutex serve_mu_;
  ResultCache cache_;
};

}  // namespace structnet
