// Connected components (undirected) and strongly connected components
// (directed, Tarjan).
#pragma once

#include <vector>

#include "core/digraph.hpp"
#include "core/graph.hpp"

namespace structnet {

/// Component label per vertex (labels are dense, 0-based, in order of
/// first discovery).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

/// True iff g is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Mask selecting the vertices of the largest connected component.
std::vector<bool> largest_component_mask(const Graph& g);

/// Strongly connected component label per vertex (Tarjan, iterative).
/// Labels are dense and in reverse topological order of the condensation.
std::vector<std::uint32_t> strongly_connected_components(const Digraph& g);

/// Mask selecting the vertices of the largest SCC.
std::vector<bool> largest_scc_mask(const Digraph& g);

}  // namespace structnet
