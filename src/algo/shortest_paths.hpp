// Weighted shortest paths: Dijkstra (non-negative weights) and
// Bellman-Ford with explicit round counting.
//
// The paper (Sec. IV) repeatedly uses Bellman-Ford as the canonical
// dynamic-labeling / distributed-routing example, so the Bellman-Ford here
// reports the number of relaxation rounds until a fixpoint — that count is
// the "convergence time" metric benched in E10.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  std::vector<double> distance;   // kInfDistance when unreachable
  std::vector<VertexId> parent;   // kInvalidVertex for source/unreachable
};

/// Dijkstra over an undirected graph with one non-negative weight per
/// edge (indexed by EdgeId, so weights.size() == g.edge_count()).
ShortestPaths dijkstra(const Graph& g, std::span<const double> weights,
                       VertexId source);

/// Unweighted shortest paths (all weights 1) via BFS, in the same result
/// shape as dijkstra for interchangeability.
ShortestPaths unweighted_shortest_paths(const Graph& g, VertexId source);

/// Bellman-Ford result including convergence diagnostics.
struct BellmanFordResult {
  ShortestPaths paths;
  std::uint32_t rounds = 0;       // synchronous rounds until no change
  bool negative_cycle = false;
};

/// Synchronous Bellman-Ford: in each round every vertex relaxes using its
/// neighbors' previous-round estimates (exactly the distributed
/// distance-vector schedule). Supports negative edge weights; detects
/// reachable negative cycles.
BellmanFordResult bellman_ford(const Graph& g, std::span<const double> weights,
                               VertexId source);

/// Reconstructs the path source -> target from a parent array; empty when
/// unreachable. The returned path includes both endpoints.
std::vector<VertexId> extract_path(std::span<const VertexId> parent,
                                   VertexId source, VertexId target);

}  // namespace structnet
