#include "algo/maxflow.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace structnet {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
constexpr std::int64_t kInfFlow = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

std::size_t FlowNetwork::add_arc(VertexId u, VertexId v,
                                 std::int64_t capacity) {
  assert(u < vertex_count() && v < vertex_count());
  assert(capacity >= 0);
  const std::size_t id = arcs_.size();
  arcs_.push_back(Arc{v, capacity, capacity});
  arcs_.push_back(Arc{u, 0, 0});
  head_[u].push_back(id);
  head_[v].push_back(id + 1);
  return id;
}

std::int64_t FlowNetwork::flow_on(std::size_t arc) const {
  assert(arc % 2 == 0 && arc < arcs_.size());
  return arcs_[arc].cap0 - arcs_[arc].residual;
}

void FlowNetwork::reset_flow() {
  for (std::size_t i = 0; i < arcs_.size(); i += 2) {
    arcs_[i].residual = arcs_[i].cap0;
    arcs_[i + 1].residual = 0;
  }
}

bool FlowNetwork::bfs_levels(VertexId source, VertexId sink) {
  level_.assign(vertex_count(), kUnreached);
  std::deque<VertexId> queue{source};
  level_[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (std::size_t a : head_[u]) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && level_[arc.to] == kUnreached) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[sink] != kUnreached;
}

std::int64_t FlowNetwork::dinic_dfs(VertexId v, VertexId sink,
                                    std::int64_t pushed) {
  if (v == sink || pushed == 0) return pushed;
  for (std::size_t& i = iter_[v]; i < head_[v].size(); ++i) {
    const std::size_t a = head_[v][i];
    Arc& arc = arcs_[a];
    if (arc.residual <= 0 || level_[arc.to] != level_[v] + 1) continue;
    const std::int64_t got =
        dinic_dfs(arc.to, sink, std::min(pushed, arc.residual));
    if (got > 0) {
      arc.residual -= got;
      arcs_[a ^ 1].residual += got;
      return got;
    }
  }
  return 0;
}

std::int64_t FlowNetwork::max_flow_dinic(VertexId source, VertexId sink) {
  assert(source != sink);
  std::int64_t flow = 0;
  phases_ = 0;
  while (bfs_levels(source, sink)) {
    ++phases_;
    iter_.assign(vertex_count(), 0);
    while (const std::int64_t pushed = dinic_dfs(source, sink, kInfFlow)) {
      flow += pushed;
    }
  }
  return flow;
}

std::int64_t FlowNetwork::run_mpm_phase(VertexId source, VertexId sink) {
  const std::size_t n = vertex_count();
  // An arc u -> v is "layered" iff it has residual capacity and advances
  // exactly one BFS level. The layered network is a destination-oriented
  // DAG with BFS levels as node heights.
  auto layered = [&](std::size_t a, VertexId from) {
    const Arc& arc = arcs_[a];
    return arc.residual > 0 && level_[from] != kUnreached &&
           level_[arc.to] != kUnreached && level_[arc.to] == level_[from] + 1;
  };

  std::vector<bool> alive(n, false);
  for (VertexId v = 0; v < n; ++v) {
    alive[v] = level_[v] != kUnreached && level_[v] <= level_[sink];
  }
  std::vector<std::int64_t> in_pot(n, 0), out_pot(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    for (std::size_t a : head_[u]) {
      if (layered(a, u) && alive[arcs_[a].to]) {
        out_pot[u] += arcs_[a].residual;
        in_pot[arcs_[a].to] += arcs_[a].residual;
      }
    }
  }
  in_pot[source] = kInfFlow;
  out_pot[sink] = kInfFlow;
  auto potential = [&](VertexId v) { return std::min(in_pot[v], out_pot[v]); };

  // Vertices bucketed by level for ordered forward/backward sweeps.
  const std::uint32_t sink_level = level_[sink];
  std::vector<std::vector<VertexId>> by_level(sink_level + 1);
  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) by_level[level_[v]].push_back(v);
  }

  std::vector<std::int64_t> excess(n, 0);
  std::int64_t phase_flow = 0;
  for (;;) {
    VertexId r = kInvalidVertex;
    std::int64_t best = kInfFlow + 1;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && potential(v) < best) {
        best = potential(v);
        r = v;
      }
    }
    if (r == kInvalidVertex) break;

    if (best == 0) {
      // Delete r and retract its residual contributions from neighbors.
      alive[r] = false;
      for (std::size_t a : head_[r]) {
        if (layered(a, r) && alive[arcs_[a].to]) {
          in_pot[arcs_[a].to] -= arcs_[a].residual;
        }
        // The twin arc a^1 stores the direction (arcs_[a].to) -> r.
        const VertexId from = arcs_[a].to;
        if (alive[from] && layered(a ^ 1, from)) {
          out_pot[from] -= arcs_[a ^ 1].residual;
        }
      }
      if (r == source || r == sink) break;
      continue;
    }

    // Route exactly p = potential(r) units: forward r -> sink by
    // increasing level, then backward r -> source by decreasing level.
    const std::int64_t p = best;
    auto push_arc = [&](std::size_t a, VertexId from, std::int64_t amount) {
      Arc& arc = arcs_[a];
      arc.residual -= amount;
      arcs_[a ^ 1].residual += amount;
      out_pot[from] -= amount;
      in_pot[arc.to] -= amount;
      excess[from] -= amount;
      excess[arc.to] += amount;
    };

    excess[r] = p;
    for (std::uint32_t lvl = level_[r]; lvl < sink_level; ++lvl) {
      for (VertexId u : by_level[lvl]) {
        if (!alive[u] || excess[u] <= 0) continue;
        for (std::size_t a : head_[u]) {
          if (excess[u] <= 0) break;
          if (!layered(a, u) || !alive[arcs_[a].to]) continue;
          push_arc(a, u, std::min(excess[u], arcs_[a].residual));
        }
        assert(excess[u] == 0 && "potential invariant violated (forward)");
      }
    }
    assert(excess[sink] == p);
    excess[sink] = 0;

    // Backward: excess[] now holds *demand* that must be pulled from the
    // source side; pulling over from -> u satisfies demand at u and moves
    // it to `from`.
    auto pull_arc = [&](std::size_t fa, VertexId from, VertexId u,
                        std::int64_t amount) {
      Arc& arc = arcs_[fa];  // from -> u
      arc.residual -= amount;
      arcs_[fa ^ 1].residual += amount;
      out_pot[from] -= amount;
      in_pot[u] -= amount;
      excess[u] -= amount;
      excess[from] += amount;
    };
    excess[r] = p;
    for (std::uint32_t lvl = level_[r]; lvl > 0; --lvl) {
      for (VertexId u : by_level[lvl]) {
        if (!alive[u] || excess[u] <= 0) continue;
        for (std::size_t a : head_[u]) {
          if (excess[u] <= 0) break;
          // Incoming layered arc (arcs_[a].to) -> u is stored at a^1.
          const VertexId from = arcs_[a].to;
          if (!alive[from] || !layered(a ^ 1, from)) continue;
          const std::int64_t amount =
              std::min(excess[u], arcs_[a ^ 1].residual);
          if (amount > 0) pull_arc(a ^ 1, from, u, amount);
        }
        assert(excess[u] == 0 && "potential invariant violated (backward)");
      }
    }
    assert(excess[source] == p);
    excess[source] = 0;

    phase_flow += p;
  }
  return phase_flow;
}

std::int64_t FlowNetwork::max_flow_mpm(VertexId source, VertexId sink) {
  assert(source != sink);
  std::int64_t flow = 0;
  phases_ = 0;
  while (bfs_levels(source, sink)) {
    ++phases_;
    flow += run_mpm_phase(source, sink);
  }
  return flow;
}

std::vector<bool> FlowNetwork::min_cut_source_side(VertexId source) const {
  std::vector<bool> side(vertex_count(), false);
  std::deque<VertexId> queue{source};
  side[source] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (std::size_t a : head_[u]) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && !side[arc.to]) {
        side[arc.to] = true;
        queue.push_back(arc.to);
      }
    }
  }
  return side;
}

std::vector<std::uint32_t> FlowNetwork::residual_levels(VertexId source) const {
  std::vector<std::uint32_t> level(vertex_count(), kUnreached);
  std::deque<VertexId> queue{source};
  level[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (std::size_t a : head_[u]) {
      const Arc& arc = arcs_[a];
      if (arc.residual > 0 && level[arc.to] == kUnreached) {
        level[arc.to] = level[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level;
}

}  // namespace structnet
