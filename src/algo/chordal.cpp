#include "algo/chordal.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "algo/components.hpp"

namespace structnet {

std::vector<VertexId> lex_bfs_order(const Graph& g) {
  const std::size_t n = g.vertex_count();
  // Simple O(n^2) partition-free variant: each unvisited vertex carries a
  // label (list of visit positions of its visited neighbors, descending);
  // repeatedly pick the unvisited vertex with the lexicographically
  // largest label.
  std::vector<std::vector<std::uint32_t>> label(n);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    VertexId best = kInvalidVertex;
    for (std::size_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      if (best == kInvalidVertex || label[v] > label[best]) {
        best = static_cast<VertexId>(v);
      }
    }
    visited[best] = true;
    order.push_back(best);
    const auto pos = static_cast<std::uint32_t>(n - step);  // descending
    for (VertexId w : g.neighbors(best)) {
      if (!visited[w]) label[w].push_back(pos);
    }
  }
  return order;
}

bool is_perfect_elimination_ordering(const Graph& g,
                                     const std::vector<VertexId>& order) {
  const std::size_t n = g.vertex_count();
  assert(order.size() == n);
  std::vector<std::uint32_t> pos(n);
  for (std::uint32_t i = 0; i < n; ++i) pos[order[i]] = i;
  // For each v, let S = later neighbors; it suffices to check that the
  // earliest member u of S is adjacent to every other member of S
  // (classic PEO verification).
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    VertexId u = kInvalidVertex;
    std::uint32_t best_pos = 0;
    std::vector<VertexId> later;
    for (VertexId w : g.neighbors(v)) {
      if (pos[w] > i) {
        later.push_back(w);
        if (u == kInvalidVertex || pos[w] < best_pos) {
          u = w;
          best_pos = pos[w];
        }
      }
    }
    for (VertexId w : later) {
      if (w != u && !g.has_edge(u, w)) return false;
    }
  }
  return true;
}

bool is_chordal(const Graph& g) {
  auto order = lex_bfs_order(g);
  std::reverse(order.begin(), order.end());
  return is_perfect_elimination_ordering(g, order);
}

std::vector<std::vector<VertexId>> chordal_maximal_cliques(const Graph& g) {
  const std::size_t n = g.vertex_count();
  auto order = lex_bfs_order(g);
  std::reverse(order.begin(), order.end());  // PEO
  assert(is_perfect_elimination_ordering(g, order));
  std::vector<std::uint32_t> pos(n);
  for (std::uint32_t i = 0; i < n; ++i) pos[order[i]] = i;

  // Candidate cliques: {v} + later neighbors of v, for each v in PEO.
  std::vector<std::vector<VertexId>> candidates;
  candidates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    std::vector<VertexId> clique{v};
    for (VertexId w : g.neighbors(v)) {
      if (pos[w] > i) clique.push_back(w);
    }
    std::sort(clique.begin(), clique.end());
    candidates.push_back(std::move(clique));
  }
  // Keep only the maximal ones (a candidate is non-maximal iff it is a
  // subset of another candidate).
  auto subset_of = [](const std::vector<VertexId>& a,
                      const std::vector<VertexId>& b) {
    return a.size() <= b.size() &&
           std::includes(b.begin(), b.end(), a.begin(), a.end());
  };
  std::vector<std::vector<VertexId>> maximal;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      if (subset_of(candidates[i], candidates[j]) &&
          (candidates[i].size() < candidates[j].size() || i > j)) {
        dominated = true;
      }
    }
    if (!dominated) maximal.push_back(candidates[i]);
  }
  return maximal;
}

std::optional<bool> is_interval_graph(const Graph& g,
                                      std::size_t max_cliques) {
  if (!is_chordal(g)) return false;
  const auto cliques = chordal_maximal_cliques(g);
  const std::size_t k = cliques.size();
  if (k <= 2) return true;
  if (k > max_cliques || k > 24) return std::nullopt;

  // membership[v] = bitmask of cliques containing v.
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> membership(n, 0);
  for (std::size_t c = 0; c < k; ++c) {
    for (VertexId v : cliques[c]) {
      membership[v] |= (1u << c);
    }
  }

  // DP over (placed subset, last clique): a state is feasible iff some
  // consecutive-so-far arrangement places exactly `subset` ending in
  // `last`. Transition subset+C is legal iff every vertex shared between C
  // and the subset is also in `last` (otherwise its run restarts).
  const std::size_t full = (std::size_t{1} << k) - 1;
  // shared_ok[c][d] : precomputed mask of vertices in both c and d is not
  // needed; we need, per candidate next clique c and state (S, last):
  //   (union_of_members(S) & members(c)) ⊆ members(last)
  // Track per-state nothing extra: union over S of membership is
  // determined by S. Precompute member masks per clique over vertices?
  // Vertices can be many; instead precompute for each pair (c, d) the set
  // of vertices in both, and for each clique c the set of vertices, and
  // test via: for every vertex v in c, (membership[v] & S) != 0 implies
  // (membership[v] >> last) & 1.
  std::vector<std::vector<char>> reachable(
      full + 1, std::vector<char>(k, 0));
  for (std::size_t c = 0; c < k; ++c) {
    reachable[std::size_t{1} << c][c] = 1;
  }
  for (std::size_t s = 1; s <= full; ++s) {
    for (std::size_t last = 0; last < k; ++last) {
      if (!reachable[s][last]) continue;
      for (std::size_t c = 0; c < k; ++c) {
        if (s & (std::size_t{1} << c)) continue;
        bool ok = true;
        for (VertexId v : cliques[c]) {
          const std::uint32_t m = membership[v];
          if ((m & s) != 0 && ((m >> last) & 1u) == 0) {
            ok = false;
            break;
          }
        }
        if (ok) reachable[s | (std::size_t{1} << c)][c] = 1;
      }
    }
  }
  for (std::size_t last = 0; last < k; ++last) {
    if (reachable[full][last]) return true;
  }
  return false;
}

}  // namespace structnet
