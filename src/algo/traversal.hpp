// Breadth/depth-first traversal and k-hop neighborhood extraction.
//
// k-hop neighborhoods are the "local horizon" every localized algorithm
// in the paper assumes (Sec. IV): a node knows the topology within k hops
// for a small constant k.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// BFS hop distances from `source`; unreachable vertices get kNeverTime
/// cast to distance (std::numeric_limits<std::uint32_t>::max()).
std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source);

/// BFS predecessor tree from `source`; kInvalidVertex for the source and
/// unreachable vertices.
std::vector<VertexId> bfs_tree(const Graph& g, VertexId source);

/// Vertices in BFS visit order from `source` (only the reachable ones).
std::vector<VertexId> bfs_order(const Graph& g, VertexId source);

/// Vertices in iterative DFS preorder from `source`.
std::vector<VertexId> dfs_preorder(const Graph& g, VertexId source);

/// All vertices within `k` hops of `center` (including the center),
/// sorted ascending.
std::vector<VertexId> k_hop_neighborhood(const Graph& g, VertexId center,
                                         std::uint32_t k);

/// Eccentricity of `v` (max BFS distance to any reachable vertex).
std::uint32_t eccentricity(const Graph& g, VertexId v);

/// Exact diameter over the largest connected component (0 for empty).
/// O(n * m); intended for the moderate sizes used in experiments.
std::uint32_t diameter(const Graph& g);

}  // namespace structnet
