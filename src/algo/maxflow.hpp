// Maximum flow: Dinic's algorithm and the Malhotra–Pramodh-Kumar–
// Maheshwari (MPM) O(|V|^3) algorithm the paper cites ([17]) as the
// height-based destination-oriented-DAG application (Sec. III-B).
//
// Both algorithms run phases over the same layered ("level") network,
// which is itself a destination-oriented DAG: levels play the role of the
// node heights discussed in the paper, and all flow moves along arcs
// oriented from higher to lower BFS level.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace structnet {

/// A flow network over dense vertices with integer capacities.
///
/// Arcs are stored with their residual twins at paired indices (2k, 2k+1),
/// the standard residual-graph representation.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t n) : head_(n) {}

  std::size_t vertex_count() const { return head_.size(); }

  /// Adds a directed arc u -> v with the given capacity. Returns the arc
  /// index (its residual twin is index+1).
  std::size_t add_arc(VertexId u, VertexId v, std::int64_t capacity);

  /// Flow currently assigned to the arc returned by add_arc.
  std::int64_t flow_on(std::size_t arc) const;
  std::int64_t capacity_of(std::size_t arc) const { return arcs_[arc].cap0; }

  /// Resets all flow to zero (keeps topology and capacities).
  void reset_flow();

  /// Max flow via Dinic. Also usable as a correctness oracle for MPM.
  std::int64_t max_flow_dinic(VertexId source, VertexId sink);

  /// Max flow via MPM node-potential phases; O(|V|^3).
  std::int64_t max_flow_mpm(VertexId source, VertexId sink);

  /// Number of level-network phases the last max_flow_* call ran: each
  /// phase rebuilds the BFS "heights" and pushes a blocking flow — the
  /// rounds of height adjustment the paper's Sec. III-B describes.
  std::size_t last_phase_count() const { return phases_; }

  /// Minimum s-t cut (source side) for the current flow; call after one of
  /// the max_flow_* methods.
  std::vector<bool> min_cut_source_side(VertexId source) const;

  /// BFS levels of the current residual graph (kNeverTime = unreachable).
  /// Exposed because the levels form the "heights" of the layered DAG.
  std::vector<std::uint32_t> residual_levels(VertexId source) const;

 private:
  struct Arc {
    VertexId to;
    std::int64_t residual;  // remaining capacity
    std::int64_t cap0;      // original capacity (0 for residual twins)
  };

  bool bfs_levels(VertexId source, VertexId sink);
  std::int64_t dinic_dfs(VertexId v, VertexId sink, std::int64_t pushed);
  std::int64_t run_mpm_phase(VertexId source, VertexId sink);

  std::vector<std::vector<std::size_t>> head_;  // arc indices per vertex
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> level_;
  std::vector<std::size_t> iter_;
  std::size_t phases_ = 0;
};

}  // namespace structnet
