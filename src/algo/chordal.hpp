// Chordal-graph machinery: Lex-BFS, perfect elimination orderings, maximal
// cliques of chordal graphs, and exact interval-graph recognition.
//
// The paper (Sec. II-A) leans on the fact that every interval graph is
// chordal ("time is linear, not circular"): a C4 or larger chordless cycle
// certifies that a graph cannot be an interval graph. These routines make
// that reasoning executable and are exercised in the E1 experiments.
#pragma once

#include <optional>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Lexicographic BFS order of all vertices (ties broken by smallest id).
/// For chordal graphs, the *reverse* of this order is a perfect
/// elimination ordering.
std::vector<VertexId> lex_bfs_order(const Graph& g);

/// True iff `order` (a permutation of all vertices) is a perfect
/// elimination ordering of g: eliminating vertices in order, each vertex's
/// not-yet-eliminated neighbors form a clique.
bool is_perfect_elimination_ordering(const Graph& g,
                                     const std::vector<VertexId>& order);

/// True iff g is chordal (every cycle of length >= 4 has a chord).
bool is_chordal(const Graph& g);

/// Maximal cliques of a *chordal* graph, derived from a perfect
/// elimination ordering. Precondition: is_chordal(g). Each clique is
/// sorted ascending; at most n cliques.
std::vector<std::vector<VertexId>> chordal_maximal_cliques(const Graph& g);

/// Exact interval-graph recognition via the clique-consecutiveness
/// characterization: g is interval iff it is chordal and its maximal
/// cliques admit a linear order where, for every vertex, the cliques
/// containing it are consecutive.
///
/// The consecutive-arrangement search is a subset DP that is exponential
/// in the number of maximal cliques; std::nullopt is returned when that
/// number exceeds `max_cliques` (default 18) instead of running forever.
std::optional<bool> is_interval_graph(const Graph& g,
                                      std::size_t max_cliques = 18);

}  // namespace structnet
