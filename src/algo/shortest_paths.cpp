#include "algo/shortest_paths.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "algo/traversal.hpp"

namespace structnet {

namespace {

/// (neighbor, weight) adjacency built from the edge list.
std::vector<std::vector<std::pair<VertexId, double>>> weighted_adjacency(
    const Graph& g, std::span<const double> weights) {
  assert(weights.size() == g.edge_count());
  std::vector<std::vector<std::pair<VertexId, double>>> adj(g.vertex_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    adj[edge.u].emplace_back(edge.v, weights[e]);
    adj[edge.v].emplace_back(edge.u, weights[e]);
  }
  return adj;
}

}  // namespace

ShortestPaths dijkstra(const Graph& g, std::span<const double> weights,
                       VertexId source) {
  assert(source < g.vertex_count());
  for (double w : weights) {
    assert(w >= 0.0 && "dijkstra requires non-negative weights");
    (void)w;
  }
  const auto adj = weighted_adjacency(g, weights);
  ShortestPaths out;
  out.distance.assign(g.vertex_count(), kInfDistance);
  out.parent.assign(g.vertex_count(), kInvalidVertex);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  out.distance[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > out.distance[u]) continue;  // stale entry
    for (const auto& [v, w] : adj[u]) {
      const double nd = d + w;
      if (nd < out.distance[v]) {
        out.distance[v] = nd;
        out.parent[v] = u;
        pq.emplace(nd, v);
      }
    }
  }
  return out;
}

ShortestPaths unweighted_shortest_paths(const Graph& g, VertexId source) {
  const auto dist = bfs_distances(g, source);
  const auto parent = bfs_tree(g, source);
  ShortestPaths out;
  out.distance.resize(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    out.distance[v] = dist[v] == std::numeric_limits<std::uint32_t>::max()
                          ? kInfDistance
                          : static_cast<double>(dist[v]);
  }
  out.parent = parent;
  return out;
}

BellmanFordResult bellman_ford(const Graph& g, std::span<const double> weights,
                               VertexId source) {
  assert(source < g.vertex_count());
  const auto adj = weighted_adjacency(g, weights);
  BellmanFordResult r;
  r.paths.distance.assign(g.vertex_count(), kInfDistance);
  r.paths.parent.assign(g.vertex_count(), kInvalidVertex);
  r.paths.distance[source] = 0.0;

  const std::size_t n = g.vertex_count();
  std::vector<double> prev;
  for (std::size_t round = 0; round < n; ++round) {
    prev = r.paths.distance;
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      for (const auto& [u, w] : adj[v]) {
        if (prev[u] == kInfDistance) continue;
        const double nd = prev[u] + w;
        if (nd < r.paths.distance[v]) {
          r.paths.distance[v] = nd;
          r.paths.parent[v] = u;
          changed = true;
        }
      }
    }
    if (!changed) break;
    ++r.rounds;
    if (round + 1 == n) {
      // Still changing after n-1 productive rounds => negative cycle.
      r.negative_cycle = true;
    }
  }
  return r;
}

std::vector<VertexId> extract_path(std::span<const VertexId> parent,
                                   VertexId source, VertexId target) {
  std::vector<VertexId> path;
  VertexId cur = target;
  while (cur != kInvalidVertex) {
    path.push_back(cur);
    if (cur == source) break;
    cur = parent[cur];
  }
  if (path.empty() || path.back() != source) return {};
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace structnet
