#include "algo/mst.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

namespace structnet {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --sets_;
  return true;
}

std::vector<EdgeId> kruskal_mst(const Graph& g,
                                std::span<const double> weights) {
  assert(weights.size() == g.edge_count());
  std::vector<EdgeId> order(g.edge_count());
  std::iota(order.begin(), order.end(), EdgeId{0});
  std::sort(order.begin(), order.end(),
            [&](EdgeId a, EdgeId b) { return weights[a] < weights[b]; });
  UnionFind uf(g.vertex_count());
  std::vector<EdgeId> tree;
  for (EdgeId e : order) {
    if (uf.unite(g.edge(e).u, g.edge(e).v)) tree.push_back(e);
  }
  return tree;
}

std::vector<EdgeId> prim_mst(const Graph& g, std::span<const double> weights,
                             VertexId root) {
  assert(weights.size() == g.edge_count());
  assert(root < g.vertex_count());
  // incident edge ids per vertex
  std::vector<std::vector<EdgeId>> incident(g.vertex_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    incident[g.edge(e).u].push_back(e);
    incident[g.edge(e).v].push_back(e);
  }
  std::vector<bool> in_tree(g.vertex_count(), false);
  using Item = std::pair<double, EdgeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  auto absorb = [&](VertexId v) {
    in_tree[v] = true;
    for (EdgeId e : incident[v]) pq.emplace(weights[e], e);
  };
  absorb(root);
  std::vector<EdgeId> tree;
  while (!pq.empty()) {
    const auto [w, e] = pq.top();
    pq.pop();
    (void)w;
    const auto& edge = g.edge(e);
    const bool iu = in_tree[edge.u];
    const bool iv = in_tree[edge.v];
    if (iu && iv) continue;
    tree.push_back(e);
    absorb(iu ? edge.v : edge.u);
  }
  return tree;
}

double total_weight(std::span<const EdgeId> edges,
                    std::span<const double> weights) {
  double sum = 0.0;
  for (EdgeId e : edges) sum += weights[e];
  return sum;
}

}  // namespace structnet
