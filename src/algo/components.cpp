#include "algo/components.hpp"

#include <algorithm>
#include <limits>

namespace structnet {

namespace {
constexpr std::uint32_t kNoLabel = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> label(g.vertex_count(), kNoLabel);
  std::uint32_t next = 0;
  std::vector<VertexId> stack;
  for (std::size_t s = 0; s < g.vertex_count(); ++s) {
    if (label[s] != kNoLabel) continue;
    stack.push_back(static_cast<VertexId>(s));
    label[s] = next;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.neighbors(u)) {
        if (label[v] == kNoLabel) {
          label[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t component_count(const Graph& g) {
  const auto label = connected_components(g);
  std::uint32_t max_label = 0;
  bool any = false;
  for (std::uint32_t l : label) {
    max_label = std::max(max_label, l);
    any = true;
  }
  return any ? max_label + 1 : 0;
}

bool is_connected(const Graph& g) { return component_count(g) <= 1; }

std::vector<bool> largest_component_mask(const Graph& g) {
  const auto label = connected_components(g);
  std::vector<std::size_t> size;
  for (std::uint32_t l : label) {
    if (l >= size.size()) size.resize(l + 1, 0);
    ++size[l];
  }
  std::uint32_t best = 0;
  for (std::uint32_t l = 0; l < size.size(); ++l) {
    if (size[l] > size[best]) best = l;
  }
  std::vector<bool> mask(g.vertex_count(), false);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    mask[v] = !size.empty() && label[v] == best;
  }
  return mask;
}

std::vector<std::uint32_t> strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> scc(n, kNoLabel);
  std::vector<std::uint32_t> index(n, kNoLabel);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;          // Tarjan stack
  std::uint32_t next_index = 0;
  std::uint32_t next_scc = 0;

  // Iterative DFS: frame = (vertex, next out-neighbor position).
  struct Frame {
    VertexId v;
    std::size_t child;
  };
  std::vector<Frame> frames;

  for (std::size_t s = 0; s < n; ++s) {
    if (index[s] != kNoLabel) continue;
    frames.push_back(Frame{static_cast<VertexId>(s), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const VertexId v = f.v;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      const auto outs = g.out_neighbors(v);
      bool descended = false;
      while (f.child < outs.size()) {
        const VertexId w = outs[f.child++];
        if (index[w] == kNoLabel) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // All children done: close v.
      if (lowlink[v] == index[v]) {
        for (;;) {
          const VertexId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc[w] = next_scc;
          if (w == v) break;
        }
        ++next_scc;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const VertexId parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return scc;
}

std::vector<bool> largest_scc_mask(const Digraph& g) {
  const auto label = strongly_connected_components(g);
  std::vector<std::size_t> size;
  for (std::uint32_t l : label) {
    if (l >= size.size()) size.resize(l + 1, 0);
    ++size[l];
  }
  std::uint32_t best = 0;
  for (std::uint32_t l = 0; l < size.size(); ++l) {
    if (size[l] > size[best]) best = l;
  }
  std::vector<bool> mask(g.vertex_count(), false);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    mask[v] = !size.empty() && label[v] == best;
  }
  return mask;
}

}  // namespace structnet
