// Bridges and articulation points (Tarjan low-link): the structurally
// irreplaceable elements of a graph. Trimming can never remove a bridge
// without disconnecting something — these are the fast negative oracle
// for any link-removal rule.
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace structnet {

struct CutStructure {
  std::vector<EdgeId> bridges;              // edge ids, ascending
  std::vector<VertexId> articulation_points;  // ascending
};

/// Computes all bridges and articulation points (iterative DFS, O(n+m)).
CutStructure find_cut_structure(const Graph& g);

/// Convenience: mask of bridge edges.
std::vector<bool> bridge_mask(const Graph& g);

}  // namespace structnet
