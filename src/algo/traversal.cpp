#include "algo/traversal.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "algo/components.hpp"

namespace structnet {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexId source) {
  assert(source < g.vertex_count());
  std::vector<std::uint32_t> dist(g.vertex_count(), kUnreached);
  std::deque<VertexId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<VertexId> bfs_tree(const Graph& g, VertexId source) {
  assert(source < g.vertex_count());
  std::vector<VertexId> parent(g.vertex_count(), kInvalidVertex);
  std::vector<bool> seen(g.vertex_count(), false);
  std::deque<VertexId> queue{source};
  seen[source] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

std::vector<VertexId> bfs_order(const Graph& g, VertexId source) {
  assert(source < g.vertex_count());
  std::vector<VertexId> order;
  std::vector<bool> seen(g.vertex_count(), false);
  std::deque<VertexId> queue{source};
  seen[source] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (VertexId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return order;
}

std::vector<VertexId> dfs_preorder(const Graph& g, VertexId source) {
  assert(source < g.vertex_count());
  std::vector<VertexId> order;
  std::vector<bool> seen(g.vertex_count(), false);
  std::vector<VertexId> stack{source};
  while (!stack.empty()) {
    const VertexId u = stack.back();
    stack.pop_back();
    if (seen[u]) continue;
    seen[u] = true;
    order.push_back(u);
    // Push in reverse so the first neighbor is visited first.
    const auto nbrs = g.neighbors(u);
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      if (!seen[*it]) stack.push_back(*it);
    }
  }
  return order;
}

std::vector<VertexId> k_hop_neighborhood(const Graph& g, VertexId center,
                                         std::uint32_t k) {
  const auto dist = bfs_distances(g, center);
  std::vector<VertexId> out;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] <= k) out.push_back(static_cast<VertexId>(v));
  }
  return out;
}

std::uint32_t eccentricity(const Graph& g, VertexId v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreached) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  if (g.vertex_count() == 0) return 0;
  const auto keep = largest_component_mask(g);
  std::uint32_t best = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (keep[v]) best = std::max(best, eccentricity(g, static_cast<VertexId>(v)));
  }
  return best;
}

}  // namespace structnet
