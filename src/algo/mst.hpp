// Minimum spanning trees (Kruskal and Prim) plus the union-find helper.
//
// Structural trimming (Sec. III-A) lists "inclusion of a minimum spanning
// tree" as a basic property a trimmed subgraph may be required to keep;
// the verifiers in src/trimming use these.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Disjoint-set union with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x);
  /// Returns true when the two sets were merged (false if already same).
  bool unite(std::size_t a, std::size_t b);
  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t set_count() const { return sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

/// Edge ids of a minimum spanning forest (Kruskal). One tree per
/// connected component; |result| = n - #components.
std::vector<EdgeId> kruskal_mst(const Graph& g, std::span<const double> weights);

/// Edge ids of the minimum spanning tree of the component containing
/// `root` (Prim with a binary heap).
std::vector<EdgeId> prim_mst(const Graph& g, std::span<const double> weights,
                             VertexId root);

/// Total weight of the given edge set.
double total_weight(std::span<const EdgeId> edges,
                    std::span<const double> weights);

}  // namespace structnet
