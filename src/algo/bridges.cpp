#include "algo/bridges.hpp"

#include <algorithm>

namespace structnet {

CutStructure find_cut_structure(const Graph& g) {
  const std::size_t n = g.vertex_count();
  // Incident edge ids per vertex so the entry edge (not the parent
  // vertex) can be skipped — robust even though Graph forbids parallels.
  std::vector<std::vector<EdgeId>> incident(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    incident[g.edge(e).u].push_back(e);
    incident[g.edge(e).v].push_back(e);
  }
  auto other = [&](EdgeId e, VertexId v) {
    const auto& edge = g.edge(e);
    return edge.u == v ? edge.v : edge.u;
  };

  // Pass 1: iterative DFS forest. `order` lists non-root vertices with
  // every parent before its children; parent_edge[v] is the tree edge
  // into v.
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<bool> is_articulation(n, false);
  struct Frame {
    VertexId v;
    EdgeId via;
    std::size_t child;
  };
  for (VertexId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    std::size_t root_children = 0;
    std::vector<Frame> stack{Frame{root, kInvalidEdge, 0}};
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.child >= incident[f.v].size()) {
        stack.pop_back();
        continue;
      }
      const EdgeId e = incident[f.v][f.child++];
      if (e == f.via) continue;
      const VertexId w = other(e, f.v);
      if (seen[w]) continue;
      seen[w] = true;
      parent_edge[w] = e;
      if (f.v == root) ++root_children;
      order.push_back(w);
      stack.push_back(Frame{w, e, 0});
    }
    if (root_children >= 2) is_articulation[root] = true;
  }

  // Discovery stamps consistent with the forest: parents before
  // children (roots first, then visitation order).
  std::vector<std::uint32_t> disc(n, 0);
  std::uint32_t timer = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (parent_edge[v] == kInvalidEdge) disc[v] = timer++;
  }
  for (VertexId v : order) disc[v] = timer++;

  // Pass 2: low-links bottom-up (children close before parents in
  // reverse order).
  std::vector<std::uint32_t> low(n);
  for (VertexId v = 0; v < n; ++v) low[v] = disc[v];
  CutStructure out;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    for (const EdgeId e : incident[v]) {
      if (e == parent_edge[v]) continue;
      const VertexId w = other(e, v);
      if (parent_edge[w] == e) {
        low[v] = std::min(low[v], low[w]);   // tree child of v
      } else {
        low[v] = std::min(low[v], disc[w]);  // back/cross edge
      }
    }
    const VertexId p = other(parent_edge[v], v);
    if (low[v] > disc[p]) out.bridges.push_back(parent_edge[v]);
    // Non-root parent with a child that cannot climb above it.
    if (parent_edge[p] != kInvalidEdge && low[v] >= disc[p]) {
      is_articulation[p] = true;
    }
  }
  std::sort(out.bridges.begin(), out.bridges.end());
  for (VertexId v = 0; v < n; ++v) {
    if (is_articulation[v]) out.articulation_points.push_back(v);
  }
  return out;
}

std::vector<bool> bridge_mask(const Graph& g) {
  std::vector<bool> mask(g.edge_count(), false);
  for (EdgeId e : find_cut_structure(g).bridges) mask[e] = true;
  return mask;
}

}  // namespace structnet
