// Versioned dynamic graph: the mutable "current" view of the stream.
//
// Every accepted event bumps an epoch counter and is appended to a delta
// log, so a snapshot handle is O(1) to take — it is just (owner, epoch).
// Materialising a snapshot replays the delta log copy-on-read: the graph
// keeps one cached replay state and rolls it forward by the log suffix,
// so repeated reads of advancing epochs cost O(delta), not O(history).
//
// Vertex ids are stable for the lifetime of the graph: a leaving node
// keeps its id (marked dead) and may later revive via NodeJoin(id).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"
#include "stream/event.hpp"

namespace structnet {

class DynamicGraph;

/// Why a submitted event was rejected. kNone marks accepted events; the
/// rest form the per-reason taxonomy StreamEngine counts.
enum class RejectReason : std::uint8_t {
  kNone = 0,        // accepted
  kUnknownVertex,   // an endpoint id beyond vertex_count()
  kDeadVertex,      // an endpoint departed and was not revived
  kSelfLoop,        // u == v
  kDuplicateEdge,   // EdgeInsert of an edge already present
  kMissingEdge,     // EdgeDelete of an edge not present
  kAlreadyAlive,    // NodeJoin revival target is alive (or a gap id)
};
inline constexpr std::size_t kRejectReasonCount = 7;

/// Short stable name for logs / bench JSON ("none", "unknown_vertex", ...).
std::string_view to_string(RejectReason reason);

/// What an accepted event actually did, in normalized form. Observers
/// receive this alongside the event so they never re-derive effects
/// (e.g. which edges a NodeLeave dropped) from mutated state.
struct EventEffect {
  bool accepted = false;
  /// Why the event was rejected (kNone when accepted).
  RejectReason reject = RejectReason::kNone;
  /// NodeJoin: the id the node received (fresh or revived).
  VertexId vertex = kInvalidVertex;
  /// NodeLeave: the incident edges that were removed, in adjacency order.
  std::vector<Graph::Edge> removed_edges;
};

/// O(1) handle to the graph as of a fixed epoch. Valid while the owning
/// DynamicGraph is alive; materialising costs O(delta since the cached
/// replay state) on the owner's shared cache.
class GraphSnapshot {
 public:
  GraphSnapshot() = default;
  std::uint64_t epoch() const { return epoch_; }
  /// The static graph at this epoch (dead vertices present but isolated).
  Graph materialize() const;

 private:
  friend class DynamicGraph;
  GraphSnapshot(const DynamicGraph* owner, std::uint64_t epoch)
      : owner_(owner), epoch_(epoch) {}
  const DynamicGraph* owner_ = nullptr;
  std::uint64_t epoch_ = 0;
};

class DynamicGraph {
 public:
  DynamicGraph() = default;
  /// Starts from a static graph (epoch 0); all vertices alive.
  explicit DynamicGraph(const Graph& g);
  /// Starts from `n` isolated alive vertices (epoch 0).
  explicit DynamicGraph(std::size_t n);

  std::size_t vertex_count() const { return adjacency_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  std::size_t edge_count() const { return edge_count_; }
  bool alive(VertexId v) const { return alive_[v]; }
  const std::vector<VertexId>& neighbors(VertexId v) const {
    return adjacency_[v];
  }
  std::size_t degree(VertexId v) const { return adjacency_[v].size(); }
  bool has_edge(VertexId u, VertexId v) const;

  /// Number of accepted events so far (== current epoch), served from a
  /// dedicated counter so hot paths (serving-layer cache keys, observer
  /// invalidation hooks) never touch the log container.
  ///
  /// Monotonicity guarantee: the epoch starts at 0, every ACCEPTED event
  /// advances it by exactly one, and rejected events leave it (and the
  /// graph) untouched — so epoch() is strictly monotone over accepted
  /// events and two reads returning the same value bracket an interval
  /// with no graph change. The serve-layer result cache relies on this:
  /// a (query fingerprint, epoch) key can never alias two different
  /// graph states. apply() asserts the counter stays in lock-step with
  /// the event log.
  std::uint64_t epoch() const { return epoch_; }
  /// The normalized log of accepted events (index = epoch at application).
  const std::vector<Event>& log() const { return log_; }

  /// Validates and applies one event. Rejected events (dangling ids,
  /// duplicate edges, dead endpoints, ...) leave the graph and the epoch
  /// untouched and return effect.accepted == false.
  EventEffect apply(const Event& event);

  /// O(1) snapshot of the current epoch.
  GraphSnapshot snapshot() const { return GraphSnapshot(this, epoch()); }
  /// O(1) snapshot of any past epoch (at <= epoch()). snapshot_at(0) is
  /// the initial state — what a checkpoint stores alongside the log.
  GraphSnapshot snapshot_at(std::uint64_t at) const {
    return GraphSnapshot(this, at);
  }
  /// The current static graph (== snapshot().materialize()).
  Graph materialize() const { return materialize_at(epoch()); }

  /// Total log events replayed by materializations so far — the replay
  /// work metric the snapshot-cache regression tests bound.
  std::uint64_t replayed_events() const { return replayed_; }

 private:
  friend class GraphSnapshot;
  Graph materialize_at(std::uint64_t epoch) const;

  std::vector<std::vector<VertexId>> adjacency_;
  std::vector<bool> alive_;
  std::size_t alive_count_ = 0;
  std::size_t edge_count_ = 0;
  std::vector<Event> log_;
  /// == log_.size(); kept separately as the epoch() fast path.
  std::uint64_t epoch_ = 0;

  /// Replay state for snapshot materialisation: the adjacency as of
  /// `epoch`, rolled forward on demand (copy-on-read).
  struct ReplayCache {
    std::uint64_t epoch = 0;
    std::vector<std::vector<VertexId>> adjacency;
    std::vector<bool> alive;
  };
  /// Epoch-0 state, the base every replay can restart from.
  ReplayCache initial_;
  mutable ReplayCache cache_;
  /// Second checkpoint, pinned at the target of the last backward read.
  /// Interleaved old/new snapshot reads (old epoch A, new epoch B) cost
  /// O(state copy) for A and O(B - A) replay for B instead of replaying
  /// the whole history from epoch 0 on every backward read.
  mutable ReplayCache pinned_;
  mutable std::uint64_t replayed_ = 0;
};

}  // namespace structnet
