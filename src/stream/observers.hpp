// Stream observers: existing structures rewired to update incrementally.
//
//  * CoreObserver       — degree/core tracker feeding NSF membership
//                         (layering/nsf.hpp). Insertions use the
//                         traversal algorithm (candidates limited to the
//                         root subcore, promoted by at most one level);
//                         deletions/leaves relax downward to the unique
//                         core fixpoint, so both paths are exact.
//  * MisObserver        — labeling/dynamic_mis.hpp driven by the event
//                         stream (expected O(1) adjustments per update).
//  * SafetyLevelObserver— labeling/safety_levels.hpp on a hypercube id
//                         space: NodeLeave = fault (localized downward
//                         wave), NodeJoin = recovery (restabilization).
//  * TemporalViewObserver — appends contacts into a
//                         temporal/temporal_graph.hpp view and lazily
//                         invalidates a cached trimmed view.
//
// Every observer's recompute() rebuilds from scratch and lands in the
// exact state the incremental path maintains, which is what the churn
// equivalence tests assert.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "labeling/dynamic_mis.hpp"
#include "labeling/safety_levels.hpp"
#include "stream/observer.hpp"
#include "temporal/temporal_graph.hpp"
#include "trimming/eg_trimming.hpp"
#include "util/rng.hpp"

namespace structnet {

/// Incremental degree / core-number tracker feeding NSF membership.
class CoreObserver : public StreamObserver {
 public:
  explicit CoreObserver(double stop_fraction = 0.5)
      : stop_fraction_(stop_fraction) {}

  std::string_view name() const override { return "core"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  void recompute(const DynamicGraph& g) override;

  const std::vector<std::uint32_t>& cores() const { return core_; }
  std::uint32_t core(VertexId v) const { return core_[v]; }
  /// Current NSF membership (core_membership of the live cores).
  std::vector<bool> nsf_members(const DynamicGraph& g) const;

  /// Total vertices touched by incremental repairs (the update cost).
  std::uint64_t work() const { return work_; }

 private:
  void insert_repair(const DynamicGraph& g, VertexId u, VertexId v);
  void settle_down(const DynamicGraph& g, std::vector<VertexId> seeds);

  double stop_fraction_;
  std::vector<std::uint32_t> core_;
  std::uint64_t work_ = 0;
  // Scratch for insert_repair (generation-stamped to avoid clears).
  std::vector<std::uint64_t> seen_;
  std::vector<std::uint32_t> support_;
  std::vector<bool> evicted_;
  std::uint64_t generation_ = 0;
};

/// labeling/dynamic_mis.hpp as a stream observer.
class MisObserver : public StreamObserver {
 public:
  explicit MisObserver(std::uint64_t priority_seed = 7)
      : rng_(priority_seed) {}

  std::string_view name() const override { return "mis"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  /// Rebuilds the greedy MIS from the materialized graph, reusing the
  /// priorities already drawn (so incremental == recompute exactly).
  void recompute(const DynamicGraph& g) override;

  const DynamicMis& mis() const { return *mis_; }
  bool in_mis(VertexId v) const { return mis_->in_mis(v); }

  /// Total status recomputations the repairs performed.
  std::uint64_t work() const { return work_; }

 private:
  Rng rng_;
  std::optional<DynamicMis> mis_;
  std::uint64_t work_ = 0;
};

/// labeling/safety_levels.hpp on a hypercube id space: vertex ids are
/// cube addresses; NodeLeave(v) = fault at v, NodeJoin(v) = recovery.
/// Edge and contact events are ignored (the cube topology is fixed).
class SafetyLevelObserver : public StreamObserver {
 public:
  explicit SafetyLevelObserver(std::size_t dimensions)
      : dimensions_(dimensions), cube_(dimensions, {}) {}

  std::string_view name() const override { return "safety"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  void recompute(const DynamicGraph& g) override;

  const SafetyLevelCube& cube() const { return cube_; }

  /// Total level changes applied by incremental restabilizations.
  std::uint64_t work() const { return work_; }

 private:
  std::size_t dimensions_;
  SafetyLevelCube cube_;
  std::uint64_t work_ = 0;
};

/// Appends contact events into a TemporalGraph and keeps a lazily
/// recomputed trimmed view (trimming/eg_trimming.hpp): any mutation
/// invalidates the cache; trimmed() rebuilds it on the next read.
class TemporalViewObserver : public StreamObserver {
 public:
  TemporalViewObserver(std::size_t n, TimeUnit horizon);

  std::string_view name() const override { return "temporal"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  /// Rebuilds the view from the accumulated contact log.
  void recompute(const DynamicGraph& g) override;

  const TemporalGraph& view() const { return view_; }
  const std::vector<Contact>& contact_log() const { return log_; }
  /// Contacts whose time fell outside the horizon (dropped, counted).
  std::uint64_t out_of_horizon() const { return out_of_horizon_; }

  /// The trimmed view (node-trimming rule, priority = vertex id),
  /// recomputed only when the underlying view changed since last read.
  const TrimResult& trimmed() const;
  bool trim_cache_valid() const { return trim_cache_.has_value(); }

 private:
  TemporalGraph view_;
  std::vector<Contact> log_;
  std::vector<double> priority_;
  std::uint64_t out_of_horizon_ = 0;
  mutable std::optional<TrimResult> trim_cache_;
};

}  // namespace structnet
