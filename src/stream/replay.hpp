// Replay drivers: turn the repo's offline dynamic-graph sources —
// mobility contact traces and edge-Markovian snapshot sequences — into
// totally-ordered event streams the engine can absorb, and feed them in
// (optionally batched) while collecting acceptance statistics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mobility/mobility_models.hpp"
#include "stream/engine.hpp"
#include "stream/event.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

/// One ContactAdd per (edge, label) of the EG, ordered by time then edge
/// insertion order — the natural stream a contact logger would emit.
std::vector<Event> contact_events(const TemporalGraph& eg);

/// Structural diff stream of the EG's snapshot sequence: EdgeInsert for
/// every edge of G_0, then per time unit t >= 1 an EdgeDelete for each
/// edge leaving G_{t-1} and an EdgeInsert for each edge entering G_t.
/// This is how an edge-Markovian sequence becomes insert/delete churn.
std::vector<Event> snapshot_edge_events(const TemporalGraph& eg);

/// Contact stream of a mobility trajectory: nodes within `radius` at
/// step t are in contact during time unit t (mobility/contact_trace.hpp).
std::vector<Event> trajectory_events(const Trajectory& trajectory,
                                     double radius);

struct ReplayStats {
  std::size_t events = 0;
  std::size_t accepted = 0;
  std::size_t batches = 0;
};

/// Feeds `events` into the engine in batches of `batch_size` (each batch
/// triggers one on_batch_end). batch_size 0 is treated as 1.
ReplayStats replay(StreamEngine& engine, std::span<const Event> events,
                   std::size_t batch_size = 1);

}  // namespace structnet
