// Observer interface of the streaming engine.
//
// Observers subscribe to the engine and maintain a derived structure
// (cores, labels, MIS, temporal views, ...) incrementally, one event at
// a time. Every observer must also offer a `recompute()` path that
// rebuilds its structure from scratch off the current graph: tests use
// it to assert incremental == from-scratch after arbitrary churn, and
// benchmarks use it as the naive baseline.
#pragma once

#include <string_view>

#include "stream/dynamic_graph.hpp"
#include "stream/event.hpp"

namespace structnet {

class StreamObserver {
 public:
  virtual ~StreamObserver() = default;

  virtual std::string_view name() const = 0;

  /// Called after the graph applied an accepted event. `effect` carries
  /// the normalized consequences (assigned join id, edges a leave
  /// dropped); `g` is already in its post-event state.
  virtual void on_event(const DynamicGraph& g, const Event& event,
                        const EventEffect& effect) = 0;

  /// Called once after each apply_batch() completes.
  virtual void on_batch_end(const DynamicGraph& g) { (void)g; }

  /// Rebuilds the derived structure from scratch off the current graph.
  /// Post-condition: observable state equals what the incremental path
  /// would have produced for the same history.
  virtual void recompute(const DynamicGraph& g) = 0;
};

}  // namespace structnet
