#include "stream/observers.hpp"

#include <algorithm>
#include <cassert>

#include "layering/nsf.hpp"

namespace structnet {

// ---------------------------------------------------------------- core

void CoreObserver::recompute(const DynamicGraph& g) {
  core_ = core_numbers(g.materialize());
  seen_.assign(g.vertex_count(), 0);
  support_.assign(g.vertex_count(), 0);
  evicted_.assign(g.vertex_count(), false);
  generation_ = 0;
}

std::vector<bool> CoreObserver::nsf_members(const DynamicGraph& g) const {
  std::vector<bool> alive(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) alive[v] = g.alive(v);
  return core_membership(core_, alive, stop_fraction_);
}

void CoreObserver::on_event(const DynamicGraph& g, const Event& event,
                            const EventEffect& effect) {
  switch (event.kind) {
    case EventKind::kEdgeInsert:
      insert_repair(g, event.u, event.v);
      break;
    case EventKind::kEdgeDelete:
      settle_down(g, {event.u, event.v});
      break;
    case EventKind::kNodeJoin:
      if (effect.vertex == core_.size()) {
        core_.push_back(0);
        seen_.push_back(0);
        support_.push_back(0);
        evicted_.push_back(false);
      }
      // A revived vertex is isolated: its core is already 0.
      break;
    case EventKind::kNodeLeave: {
      // The graph already dropped the incident edges; relax the departed
      // vertex and every former neighbor down to the new fixpoint.
      std::vector<VertexId> seeds{event.u};
      for (const Graph::Edge& e : effect.removed_edges) seeds.push_back(e.v);
      settle_down(g, std::move(seeds));
      break;
    }
    case EventKind::kContactAdd:
    case EventKind::kContactRelabel:
      break;
  }
}

// Traversal insertion (Sarıyüce et al. style): after inserting (u, v),
// only vertices in the subcore of the lower endpoint can gain one level.
// We BFS the subcore (expanding only vertices whose optimistic support
// exceeds r), then evict candidates whose support cannot stay above r;
// the cascade's survivors are exactly the vertices whose core becomes
// r + 1.
void CoreObserver::insert_repair(const DynamicGraph& g, VertexId u,
                                 VertexId v) {
  const std::uint32_t r = std::min(core_[u], core_[v]);
  ++generation_;
  std::vector<VertexId> stack;
  std::vector<VertexId> candidates;
  const auto visit = [&](VertexId w) {
    if (seen_[w] == generation_) return;
    seen_[w] = generation_;
    std::uint32_t s = 0;
    for (VertexId x : g.neighbors(w)) s += core_[x] >= r;
    support_[w] = s;
    evicted_[w] = false;
    candidates.push_back(w);
    if (s > r) stack.push_back(w);  // may promote: worth expanding
  };
  if (core_[u] == r) visit(u);
  if (core_[v] == r) visit(v);
  while (!stack.empty()) {
    const VertexId w = stack.back();
    stack.pop_back();
    for (VertexId x : g.neighbors(w)) {
      if (core_[x] == r) visit(x);
    }
  }
  work_ += candidates.size();

  std::vector<VertexId> queue;
  for (VertexId w : candidates) {
    if (support_[w] <= r) {
      evicted_[w] = true;
      queue.push_back(w);
    }
  }
  while (!queue.empty()) {
    const VertexId w = queue.back();
    queue.pop_back();
    for (VertexId x : g.neighbors(w)) {
      if (core_[x] == r && seen_[x] == generation_ && !evicted_[x]) {
        if (--support_[x] <= r) {
          evicted_[x] = true;
          queue.push_back(x);
        }
      }
    }
  }
  for (VertexId w : candidates) {
    if (!evicted_[w]) core_[w] = r + 1;
  }
}

// Downward relaxation: core numbers are the greatest fixpoint of
// "core(v) <= #neighbors with core >= core(v)". Deletions only lower
// cores, so starting from the (upper-bound) old values and decrementing
// any violating vertex until none remains lands exactly on the new core
// numbers — including multi-level drops after a NodeLeave.
void CoreObserver::settle_down(const DynamicGraph& g,
                               std::vector<VertexId> seeds) {
  std::vector<VertexId>& stack = seeds;
  while (!stack.empty()) {
    const VertexId w = stack.back();
    stack.pop_back();
    const std::uint32_t c = core_[w];
    if (c == 0) continue;
    ++work_;
    std::uint32_t s = 0;
    for (VertexId x : g.neighbors(w)) {
      if (core_[x] >= c && ++s >= c) break;
    }
    if (s >= c) continue;
    core_[w] = c - 1;
    stack.push_back(w);  // may need to drop further
    for (VertexId x : g.neighbors(w)) {
      if (core_[x] == c) stack.push_back(x);
    }
  }
}

// ----------------------------------------------------------------- mis

void MisObserver::recompute(const DynamicGraph& g) {
  std::vector<double> priority;
  priority.reserve(g.vertex_count());
  const std::size_t known = mis_ ? mis_->vertex_count() : 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    priority.push_back(v < known ? mis_->priority(static_cast<VertexId>(v))
                                 : rng_.uniform01());
  }
  mis_.emplace(g.materialize(), std::move(priority));
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!g.alive(v)) mis_->remove_vertex(v);  // isolated: zero repair cost
  }
}

void MisObserver::on_event(const DynamicGraph& g, const Event& event,
                           const EventEffect& effect) {
  (void)g;
  switch (event.kind) {
    case EventKind::kEdgeInsert:
      work_ += mis_->add_edge(event.u, event.v);
      break;
    case EventKind::kEdgeDelete:
      work_ += mis_->remove_edge(event.u, event.v);
      break;
    case EventKind::kNodeJoin:
      if (effect.vertex == mis_->vertex_count()) {
        mis_->add_vertex(rng_);
      } else {
        work_ += mis_->restore_vertex(effect.vertex);
      }
      break;
    case EventKind::kNodeLeave:
      work_ += mis_->remove_vertex(event.u);
      break;
    case EventKind::kContactAdd:
    case EventKind::kContactRelabel:
      break;
  }
}

// -------------------------------------------------------------- safety

void SafetyLevelObserver::recompute(const DynamicGraph& g) {
  std::vector<std::size_t> faults;
  const std::size_t limit = std::min(cube_.node_count(), g.vertex_count());
  for (std::size_t v = 0; v < limit; ++v) {
    if (!g.alive(static_cast<VertexId>(v))) faults.push_back(v);
  }
  cube_ = SafetyLevelCube(dimensions_, faults);
}

void SafetyLevelObserver::on_event(const DynamicGraph& g, const Event& event,
                                   const EventEffect& effect) {
  (void)g;
  switch (event.kind) {
    case EventKind::kNodeLeave:
      if (event.u < cube_.node_count()) work_ += cube_.add_fault(event.u);
      break;
    case EventKind::kNodeJoin:
      if (effect.vertex < cube_.node_count()) {
        work_ += cube_.remove_fault(effect.vertex);
      }
      break;
    default:
      break;  // the cube topology is fixed; edges/contacts are moot
  }
}

// ------------------------------------------------------------ temporal

TemporalViewObserver::TemporalViewObserver(std::size_t n, TimeUnit horizon)
    : view_(n, horizon) {
  priority_.resize(n);
  for (std::size_t v = 0; v < n; ++v) priority_[v] = static_cast<double>(v);
}

void TemporalViewObserver::recompute(const DynamicGraph& g) {
  const std::size_t n = std::max(view_.vertex_count(), g.vertex_count());
  view_ = TemporalGraph::from_contacts(n, view_.horizon(), log_);
  priority_.resize(n);
  for (std::size_t v = 0; v < n; ++v) priority_[v] = static_cast<double>(v);
  trim_cache_.reset();
}

void TemporalViewObserver::on_event(const DynamicGraph& g, const Event& event,
                                    const EventEffect& effect) {
  switch (event.kind) {
    case EventKind::kContactAdd:
      if (event.time >= view_.horizon()) {
        ++out_of_horizon_;
        return;
      }
      if (view_.has_contact(event.u, event.v, event.time)) return;
      view_.add_contact(event.u, event.v, event.time);
      log_.push_back(Contact{event.u, event.v, event.time});
      trim_cache_.reset();
      break;
    case EventKind::kContactRelabel: {
      if (event.new_time >= view_.horizon()) {
        ++out_of_horizon_;  // rejected: relabeling out of the horizon
        return;
      }
      if (!view_.remove_label(event.u, event.v, event.time)) {
        // The old contact never existed: degrade to a plain add.
        on_event(g, Event::contact_add(event.u, event.v, event.new_time),
                 effect);
        return;
      }
      view_.add_contact(event.u, event.v, event.new_time);
      // Replace the log entry in place so a from-scratch rebuild creates
      // edge records in the same first-touch order as the incremental
      // path (which keeps the edge record alive across the relabel).
      const auto it = std::find(log_.begin(), log_.end(),
                                Contact{event.u, event.v, event.time});
      const auto rit = std::find(log_.begin(), log_.end(),
                                 Contact{event.v, event.u, event.time});
      assert(it != log_.end() || rit != log_.end());
      (it != log_.end() ? *it : *rit).t = event.new_time;
      trim_cache_.reset();
      break;
    }
    case EventKind::kNodeJoin:
      if (effect.vertex >= view_.vertex_count()) {
        // Growing the id space re-bases the view off the contact log.
        view_ = TemporalGraph::from_contacts(effect.vertex + std::size_t{1},
                                             view_.horizon(), log_);
        priority_.push_back(static_cast<double>(effect.vertex));
        trim_cache_.reset();
      }
      break;
    case EventKind::kNodeLeave:
      // Temporal views keep history; a departed node's past contacts
      // remain valid journeys. Nothing to do.
      break;
    case EventKind::kEdgeInsert:
    case EventKind::kEdgeDelete:
      break;
  }
}

const TrimResult& TemporalViewObserver::trimmed() const {
  if (!trim_cache_) trim_cache_ = trim_nodes(view_, priority_);
  return *trim_cache_;
}

}  // namespace structnet
