#include "stream/csr_observer.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"

namespace structnet {

DeltaCsrObserver::DeltaCsrObserver(const TemporalViewObserver& view,
                                   double compact_ratio,
                                   obs::MetricsRegistry* registry,
                                   std::string_view prefix)
    : view_(view), compact_ratio_(compact_ratio) {
  if (registry != nullptr) {
    const std::string p(prefix);
    appends_counter_ = &registry->counter(p + ".csr_delta_appends");
    compactions_counter_ = &registry->counter(p + ".csr_compactions");
    builds_counter_ = &registry->counter(p + ".csr_builds");
  }
}

void DeltaCsrObserver::count_appends(std::uint64_t n) {
  if (n == 0) return;
  appends_ += n;
  if (appends_counter_ != nullptr) appends_counter_->add(n);
}

void DeltaCsrObserver::rebase_from_view(bool is_compaction) {
  index_.rebase(view_.view());
  ++builds_;
  if (builds_counter_ != nullptr) builds_counter_->add();
  if (is_compaction) {
    ++compactions_;
    if (compactions_counter_ != nullptr) compactions_counter_->add();
  }
}

void DeltaCsrObserver::recompute(const DynamicGraph&) {
  rebase_from_view(/*is_compaction=*/false);
}

void DeltaCsrObserver::on_event(const DynamicGraph&, const Event& event,
                                const EventEffect& effect) {
  switch (event.kind) {
    case EventKind::kContactAdd: {
      if (event.time >= index_.horizon()) return;  // view drops it too
      index_.grow_vertices(std::max(event.u, event.v) + std::size_t{1});
      count_appends(index_.add_contact(event.u, event.v, event.time) ? 1 : 0);
      break;
    }
    case EventKind::kContactRelabel: {
      // Mirrors the view exactly: an out-of-horizon new label rejects
      // the whole relabel (the old contact stays); a missing old label
      // degrades to a plain (deduped) add of the new one.
      if (event.new_time >= index_.horizon()) return;
      index_.grow_vertices(std::max(event.u, event.v) + std::size_t{1});
      std::uint64_t ops = 0;
      if (index_.remove_contact(event.u, event.v, event.time)) ++ops;
      if (index_.add_contact(event.u, event.v, event.new_time)) ++ops;
      count_appends(ops);
      break;
    }
    case EventKind::kNodeJoin:
      // The view rebases itself off its contact log in first-touch
      // order, which preserves every existing edge id — so the delta
      // only needs the wider vertex space.
      index_.grow_vertices(effect.vertex + std::size_t{1});
      break;
    case EventKind::kNodeLeave:
    case EventKind::kEdgeInsert:
    case EventKind::kEdgeDelete:
      break;  // temporal views keep history; plain edges carry no label
  }
}

bool DeltaCsrObserver::advance(bool force_full_base) {
  const bool compact = index_.needs_compaction(compact_ratio_) ||
                       (force_full_base && !index_.delta_empty());
  if (!compact) return false;
  STRUCTNET_OBS_SPAN("temporal.delta_compact");
  rebase_from_view(/*is_compaction=*/true);
  return true;
}

}  // namespace structnet
