// Event vocabulary of the streaming dynamic-graph engine.
//
// A stream is a totally-ordered sequence of events over an evolving
// socially-rich network. Structural events (edge insert/delete, node
// join/leave) mutate the current adjacency; contact events (add /
// relabel) describe temporal activity and flow to temporal observers
// without touching the static view. Events are plain values so they can
// be logged, replayed, diffed, and batched freely.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace structnet {

enum class EventKind : std::uint8_t {
  kEdgeInsert,      // edge (u, v) appears in the current graph
  kEdgeDelete,      // edge (u, v) disappears from the current graph
  kContactAdd,      // (u, v) active during time unit `time`
  kContactRelabel,  // contact (u, v, time) moves to time unit `new_time`
  kNodeJoin,        // a node joins (fresh id) or a departed node revives
  kNodeLeave,       // node u departs; its incident edges are dropped
};

/// One timeless, totally-ordered stream event. Unused fields keep their
/// defaults; use the factories below rather than aggregate-initialising.
struct Event {
  EventKind kind = EventKind::kEdgeInsert;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  TimeUnit time = 0;      // ContactAdd label / ContactRelabel old label
  TimeUnit new_time = 0;  // ContactRelabel new label

  static Event edge_insert(VertexId u, VertexId v) {
    return {EventKind::kEdgeInsert, u, v, 0, 0};
  }
  static Event edge_delete(VertexId u, VertexId v) {
    return {EventKind::kEdgeDelete, u, v, 0, 0};
  }
  static Event contact_add(VertexId u, VertexId v, TimeUnit t) {
    return {EventKind::kContactAdd, u, v, t, 0};
  }
  static Event contact_relabel(VertexId u, VertexId v, TimeUnit old_t,
                               TimeUnit new_t) {
    return {EventKind::kContactRelabel, u, v, old_t, new_t};
  }
  /// Joins a brand-new node (id assigned by the graph) when `who` is
  /// kInvalidVertex, otherwise revives the departed node `who`.
  static Event node_join(VertexId who = kInvalidVertex) {
    return {EventKind::kNodeJoin, who, kInvalidVertex, 0, 0};
  }
  static Event node_leave(VertexId who) {
    return {EventKind::kNodeLeave, who, kInvalidVertex, 0, 0};
  }

  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace structnet
