#include "stream/dynamic_graph.hpp"

#include <algorithm>
#include <cassert>

namespace structnet {

namespace {

/// Ordered erase of `x` from `list`; returns false when absent. Order
/// preservation matters: snapshot replay must reproduce the exact same
/// adjacency (and hence the same materialized Graph) as the live path.
bool erase_neighbor(std::vector<VertexId>& list, VertexId x) {
  const auto it = std::find(list.begin(), list.end(), x);
  if (it == list.end()) return false;
  list.erase(it);
  return true;
}

/// Applies one already-validated event to a bare adjacency state. Shared
/// by the live path and snapshot replay so both evolve identically.
void apply_to_state(std::vector<std::vector<VertexId>>& adjacency,
                    std::vector<bool>& alive, const Event& e) {
  switch (e.kind) {
    case EventKind::kEdgeInsert:
      adjacency[e.u].push_back(e.v);
      adjacency[e.v].push_back(e.u);
      break;
    case EventKind::kEdgeDelete:
      erase_neighbor(adjacency[e.u], e.v);
      erase_neighbor(adjacency[e.v], e.u);
      break;
    case EventKind::kNodeJoin:
      // The log stores the resolved id: == size for a fresh node,
      // < size for a revival.
      if (e.u == adjacency.size()) {
        adjacency.emplace_back();
        alive.push_back(true);
      } else {
        alive[e.u] = true;
      }
      break;
    case EventKind::kNodeLeave:
      for (VertexId w : adjacency[e.u]) erase_neighbor(adjacency[w], e.u);
      adjacency[e.u].clear();
      alive[e.u] = false;
      break;
    case EventKind::kContactAdd:
    case EventKind::kContactRelabel:
      break;  // temporal-only; no adjacency effect
  }
}

}  // namespace

std::string_view to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kUnknownVertex:
      return "unknown_vertex";
    case RejectReason::kDeadVertex:
      return "dead_vertex";
    case RejectReason::kSelfLoop:
      return "self_loop";
    case RejectReason::kDuplicateEdge:
      return "duplicate_edge";
    case RejectReason::kMissingEdge:
      return "missing_edge";
    case RejectReason::kAlreadyAlive:
      return "already_alive";
  }
  return "unknown";
}

DynamicGraph::DynamicGraph(const Graph& g) {
  adjacency_.resize(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(v));
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  alive_.assign(g.vertex_count(), true);
  alive_count_ = g.vertex_count();
  edge_count_ = g.edge_count();
  initial_ = ReplayCache{0, adjacency_, alive_};
  cache_ = initial_;
  pinned_ = initial_;
}

DynamicGraph::DynamicGraph(std::size_t n) : DynamicGraph(Graph(n)) {}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  if (adjacency_[u].size() > adjacency_[v].size()) std::swap(u, v);
  const auto& list = adjacency_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

EventEffect DynamicGraph::apply(const Event& event) {
  EventEffect effect;
  const std::size_t n = vertex_count();
  Event logged = event;
  const auto reject = [&](RejectReason why) {
    effect.reject = why;
    return effect;
  };
  // Endpoint validity collapsed to a reason: unknown id beats dead beats
  // self loop, checked u-then-v, so every reject has one stable cause.
  const auto endpoint_reject = [&](VertexId u, VertexId v) {
    if (u >= n || v >= n) return RejectReason::kUnknownVertex;
    if (!alive_[u] || !alive_[v]) return RejectReason::kDeadVertex;
    if (u == v) return RejectReason::kSelfLoop;
    return RejectReason::kNone;
  };

  switch (event.kind) {
    case EventKind::kEdgeInsert: {
      const RejectReason why = endpoint_reject(event.u, event.v);
      if (why != RejectReason::kNone) return reject(why);
      if (has_edge(event.u, event.v)) {
        return reject(RejectReason::kDuplicateEdge);
      }
      ++edge_count_;
      break;
    }
    case EventKind::kEdgeDelete:
      if (event.u >= n || event.v >= n) {
        return reject(RejectReason::kUnknownVertex);
      }
      if (!has_edge(event.u, event.v)) {
        return reject(RejectReason::kMissingEdge);
      }
      --edge_count_;
      break;
    case EventKind::kContactAdd:
    case EventKind::kContactRelabel: {
      const RejectReason why = endpoint_reject(event.u, event.v);
      if (why != RejectReason::kNone) return reject(why);
      break;
    }
    case EventKind::kNodeJoin:
      if (event.u == kInvalidVertex || event.u == n) {
        logged.u = static_cast<VertexId>(n);  // fresh id, normalized
      } else if (event.u < n && !alive_[event.u]) {
        logged.u = event.u;  // revival
      } else if (event.u < n) {
        return reject(RejectReason::kAlreadyAlive);
      } else {
        return reject(RejectReason::kUnknownVertex);  // gap beyond fresh id
      }
      effect.vertex = logged.u;
      ++alive_count_;
      break;
    case EventKind::kNodeLeave:
      if (event.u >= n) return reject(RejectReason::kUnknownVertex);
      if (!alive_[event.u]) return reject(RejectReason::kDeadVertex);
      for (VertexId w : adjacency_[event.u]) {
        effect.removed_edges.push_back(Graph::Edge{event.u, w});
      }
      edge_count_ -= effect.removed_edges.size();
      --alive_count_;
      break;
  }

  apply_to_state(adjacency_, alive_, logged);
  log_.push_back(logged);
  ++epoch_;  // exactly one bump per accepted event (monotonicity guarantee)
  assert(epoch_ == log_.size());
  effect.accepted = true;
  return effect;
}

Graph DynamicGraph::materialize_at(std::uint64_t epoch) const {
  assert(epoch <= log_.size());
  const bool backward = cache_.epoch > epoch;
  if (backward) {
    // Restart from the pinned checkpoint when it is at or below the
    // target instead of replaying the whole history from epoch 0.
    cache_ = pinned_.epoch <= epoch ? pinned_ : initial_;
  }
  while (cache_.epoch < epoch) {
    apply_to_state(cache_.adjacency, cache_.alive, log_[cache_.epoch]);
    ++cache_.epoch;
    ++replayed_;
  }
  if (backward) {
    // Pin the old epoch just read: the next backward read of it is a
    // state copy and the next forward read replays only the delta.
    pinned_ = cache_;
  }
  Graph g(cache_.adjacency.size());
  for (VertexId v = 0; v < cache_.adjacency.size(); ++v) {
    for (VertexId w : cache_.adjacency[v]) {
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph GraphSnapshot::materialize() const {
  assert(owner_ != nullptr);
  return owner_->materialize_at(epoch_);
}

}  // namespace structnet
