// The streaming engine: a DynamicGraph plus an observer registry.
//
// apply() validates/applies one event and fans it out to every attached
// observer; apply_batch() applies a span of events and then signals
// on_batch_end once, which is what batching-aware observers (lazy cache
// invalidation, deferred fixups) key off. Rejected events are counted
// per RejectReason and NOT delivered to observers, so observers only
// ever see events the graph actually absorbed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/dynamic_graph.hpp"
#include "stream/observer.hpp"

namespace structnet {

class StreamEngine {
 public:
  StreamEngine() = default;
  explicit StreamEngine(DynamicGraph graph) : graph_(std::move(graph)) {}

  DynamicGraph& graph() { return graph_; }
  const DynamicGraph& graph() const { return graph_; }

  /// The graph's current epoch (see DynamicGraph::epoch for the
  /// monotonicity guarantee) — the version key the serving layer caches
  /// results under.
  std::uint64_t epoch() const { return graph_.epoch(); }

  /// Registers an observer (not owned; must outlive the engine or be
  /// detached first). The observer is synchronized to the current graph
  /// via its recompute() path on attach.
  void attach(StreamObserver* observer);
  void detach(StreamObserver* observer);
  std::size_t observer_count() const { return observers_.size(); }

  /// Applies one event; returns whether the graph accepted it.
  bool apply(const Event& event);

  /// Rebuilds every attached observer from scratch against the current
  /// graph — the equivalence sweep the churn tests run after incremental
  /// maintenance. Observers are independent, so the sweep fans one shard
  /// per observer across the parallel layer (`threads`: 0 = default,
  /// 1 = serial; identical results at any thread count). Returns the
  /// number of observers refreshed.
  std::size_t recompute_all(std::size_t threads = 0);

  /// Applies a batch in order; returns the number of accepted events and
  /// fires on_batch_end on every observer afterwards.
  std::size_t apply_batch(std::span<const Event> events);

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Per-reason reject counts, indexed by RejectReason (slot kNone is
  /// always 0; the other slots sum to rejected()).
  const std::array<std::uint64_t, kRejectReasonCount>& reject_counts() const {
    return reject_counts_;
  }
  std::uint64_t rejected(RejectReason why) const {
    return reject_counts_[static_cast<std::size_t>(why)];
  }

  /// Overwrites the acceptance statistics. Rejected events never enter
  /// the graph log, so a restored engine cannot re-derive them — the
  /// checkpoint reader (fault/checkpoint.hpp) carries them explicitly.
  void restore_counters(
      std::uint64_t accepted, std::uint64_t rejected,
      const std::array<std::uint64_t, kRejectReasonCount>& reject_counts);

 private:
  DynamicGraph graph_;
  std::vector<StreamObserver*> observers_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::array<std::uint64_t, kRejectReasonCount> reject_counts_{};
};

}  // namespace structnet
