#include "stream/replay.hpp"

#include <algorithm>

#include "mobility/contact_trace.hpp"

namespace structnet {

std::vector<Event> contact_events(const TemporalGraph& eg) {
  std::vector<Event> events;
  for (const Contact& c : eg.contacts()) {
    events.push_back(Event::contact_add(c.u, c.v, c.t));
  }
  return events;
}

std::vector<Event> snapshot_edge_events(const TemporalGraph& eg) {
  std::vector<Event> events;
  if (eg.horizon() == 0) return events;
  for (const auto& e : eg.edges()) {
    if (std::binary_search(e.labels.begin(), e.labels.end(), TimeUnit{0})) {
      events.push_back(Event::edge_insert(e.u, e.v));
    }
  }
  for (TimeUnit t = 1; t < eg.horizon(); ++t) {
    for (const auto& e : eg.edges()) {
      const bool before =
          std::binary_search(e.labels.begin(), e.labels.end(), t - 1);
      const bool now = std::binary_search(e.labels.begin(), e.labels.end(), t);
      if (before && !now) events.push_back(Event::edge_delete(e.u, e.v));
      if (!before && now) events.push_back(Event::edge_insert(e.u, e.v));
    }
  }
  return events;
}

std::vector<Event> trajectory_events(const Trajectory& trajectory,
                                     double radius) {
  return contact_events(contacts_from_trajectory(trajectory, radius));
}

ReplayStats replay(StreamEngine& engine, std::span<const Event> events,
                   std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  ReplayStats stats;
  stats.events = events.size();
  for (std::size_t begin = 0; begin < events.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, events.size() - begin);
    stats.accepted += engine.apply_batch(events.subspan(begin, count));
    ++stats.batches;
  }
  return stats;
}

}  // namespace structnet
