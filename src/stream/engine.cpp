#include "stream/engine.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel.hpp"

namespace structnet {

void StreamEngine::attach(StreamObserver* observer) {
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observer->recompute(graph_);
  observers_.push_back(observer);
}

void StreamEngine::detach(StreamObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it != observers_.end()) observers_.erase(it);
}

bool StreamEngine::apply(const Event& event) {
  STRUCTNET_OBS_SPAN("stream.apply");
  static obs::Counter& accepted_ctr =
      obs::MetricsRegistry::global().counter("stream.events_accepted");
  static obs::Counter& rejected_ctr =
      obs::MetricsRegistry::global().counter("stream.events_rejected");
  const EventEffect effect = graph_.apply(event);
  if (!effect.accepted) {
    ++rejected_;
    ++reject_counts_[static_cast<std::size_t>(effect.reject)];
    rejected_ctr.add();
    return false;
  }
  ++accepted_;
  accepted_ctr.add();
  for (StreamObserver* obs : observers_) obs->on_event(graph_, event, effect);
  return true;
}

std::size_t StreamEngine::recompute_all(std::size_t threads) {
  STRUCTNET_OBS_SPAN("stream.recompute_all");
  if (observers_.empty()) return 0;
  static obs::Counter& recomputes =
      obs::MetricsRegistry::global().counter("stream.observer_recomputes");
  recomputes.add(observers_.size());
  // Warm the snapshot cache to the current epoch first: once warmed,
  // concurrent materialize() calls from observer recomputes only read
  // the cached replay state (no replay, no cache mutation).
  graph_.materialize();
  parallel_for(
      0, observers_.size(), /*grain=*/1,
      [&](std::size_t i) { observers_[i]->recompute(graph_); }, threads);
  return observers_.size();
}

void StreamEngine::restore_counters(
    std::uint64_t accepted, std::uint64_t rejected,
    const std::array<std::uint64_t, kRejectReasonCount>& reject_counts) {
  accepted_ = accepted;
  rejected_ = rejected;
  reject_counts_ = reject_counts;
}

std::size_t StreamEngine::apply_batch(std::span<const Event> events) {
  STRUCTNET_OBS_SPAN("stream.apply_batch");
  std::size_t ok = 0;
  for (const Event& e : events) ok += apply(e);
  for (StreamObserver* obs : observers_) obs->on_batch_end(graph_);
  return ok;
}

}  // namespace structnet
