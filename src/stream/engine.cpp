#include "stream/engine.hpp"

#include <algorithm>

namespace structnet {

void StreamEngine::attach(StreamObserver* observer) {
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    return;
  }
  observer->recompute(graph_);
  observers_.push_back(observer);
}

void StreamEngine::detach(StreamObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it != observers_.end()) observers_.erase(it);
}

bool StreamEngine::apply(const Event& event) {
  const EventEffect effect = graph_.apply(event);
  if (!effect.accepted) {
    ++rejected_;
    return false;
  }
  ++accepted_;
  for (StreamObserver* obs : observers_) obs->on_event(graph_, event, effect);
  return true;
}

std::size_t StreamEngine::apply_batch(std::span<const Event> events) {
  std::size_t ok = 0;
  for (const Event& e : events) ok += apply(e);
  for (StreamObserver* obs : observers_) obs->on_batch_end(graph_);
  return ok;
}

}  // namespace structnet
