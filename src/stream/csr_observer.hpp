// DeltaCsrObserver: keeps a DeltaTemporalCsr current against the event
// stream, so query planners track the engine incrementally instead of
// rebuilding a TemporalCsr from the temporal view on every epoch
// change.
//
// It shadows the TemporalViewObserver it is constructed over: accepted
// contact events fold into the delta with the exact same semantics the
// view applies to its TemporalGraph (horizon filter, duplicate dedupe,
// relabel = remove old + add new with degrade-to-add when the old label
// is missing, NodeJoin grows the vertex space), so the merged index is
// always bit-identical to TemporalCsr(view.view()). Attach it AFTER the
// view observer — attach() synchronizes it via recompute(), which
// rebases off the view's current graph.
//
// advance() is the planner hook: it absorbs the delta into a fresh base
// when the size-ratio compaction policy fires (or when the caller needs
// a current full base, e.g. for routing simulation) and reports whether
// a compaction happened. Counters (<prefix>.csr_delta_appends /
// <prefix>.csr_compactions / <prefix>.csr_builds) land in the registry
// the owner provides — the QueryBroker passes its own registry with
// prefix "serve" so they surface next to the serving metrics.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics.hpp"
#include "stream/observer.hpp"
#include "stream/observers.hpp"
#include "temporal/temporal_delta.hpp"

namespace structnet {

class DeltaCsrObserver : public StreamObserver {
 public:
  /// `view` must outlive the observer and be attached to the same
  /// engine ahead of it. The index starts empty; attach() (via
  /// recompute()) adopts the view's current state.
  explicit DeltaCsrObserver(const TemporalViewObserver& view,
                            double compact_ratio = 0.25,
                            obs::MetricsRegistry* registry = nullptr,
                            std::string_view prefix = "temporal");

  std::string_view name() const override { return "csr_delta"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  /// Rebases the index off the tracked view (counted as a base build,
  /// not a compaction — this is the attach/recompute_all path).
  void recompute(const DynamicGraph& g) override;

  /// The live merged index (valid after attach).
  const DeltaTemporalCsr& index() const { return index_; }

  /// Planner hook: compacts when the ratio policy fires, or when the
  /// caller requires a current full base (`force_full_base`) and the
  /// delta is non-empty. Returns true iff a compaction ran.
  bool advance(bool force_full_base = false);

  std::uint64_t delta_appends() const { return appends_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t builds() const { return builds_; }

 private:
  void count_appends(std::uint64_t n);
  void rebase_from_view(bool is_compaction);

  const TemporalViewObserver& view_;
  DeltaTemporalCsr index_;
  double compact_ratio_;
  std::uint64_t appends_ = 0, compactions_ = 0, builds_ = 0;
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* compactions_counter_ = nullptr;
  obs::Counter* builds_counter_ = nullptr;
};

}  // namespace structnet
