// View inconsistency under mobility (Sec. IV-C): "both neighborhood
// information exchanges and asynchronous Hello message exchanges cause
// delays, which will generate inconsistent neighborhood and location
// information."
//
// We quantify the damage: structures (marking CDS, MIS) are computed
// from a snapshot `delay` time units old and then evaluated against the
// current snapshot of a dynamic graph. The report aggregates, over all
// evaluation times, how often the stale structure still dominates /
// stays independent / stays connected.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

struct StaleViewReport {
  double domination_rate = 0.0;   // avg fraction of vertices still dominated
  double connectivity_rate = 0.0; // fraction of times the CDS stayed connected
  double independence_rate = 0.0; // fraction of times the MIS stayed independent
  double maximality_rate = 0.0;   // fraction of times the MIS stayed maximal
  std::size_t evaluations = 0;
};

/// For every time t in [delay, horizon): compute the trimmed marking CDS
/// and the 3-color MIS (with the given priorities) on snapshot(t - delay)
/// and evaluate them on snapshot(t).
StaleViewReport evaluate_stale_structures(const TemporalGraph& dynamic_graph,
                                          TimeUnit delay,
                                          std::span<const double> priority);

}  // namespace structnet
