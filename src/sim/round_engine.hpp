// Synchronous message-passing round engine (the LOCAL model of Sec. IV):
// every node runs the same handler once per round, reading the messages
// sent to it in the previous round and sending messages to neighbors for
// the next one. Distributed and localized labeling schemes execute on
// this engine; benches read its round and message counters.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Synchronous network over a static graph.
///
/// State: per-node algorithm state. Msg: message payload type.
template <typename State, typename Msg>
class SyncNetwork {
 public:
  /// A received message with its sender.
  struct Envelope {
    VertexId from;
    Msg payload;
  };

  /// The per-round node handler: may inspect/mutate its state, read its
  /// inbox, and send messages via the provided send function
  /// (send(neighbor, msg); sending to non-neighbors is forbidden).
  using Handler = std::function<void(
      VertexId self, State& state, std::span<const Envelope> inbox,
      const std::function<void(VertexId, Msg)>& send)>;

  SyncNetwork(const Graph& g, std::vector<State> initial)
      : graph_(g), state_(std::move(initial)), inbox_(g.vertex_count()) {
    assert(state_.size() == g.vertex_count());
  }

  /// Executes one synchronous round with the given handler.
  void step(const Handler& handler) {
    std::vector<std::vector<Envelope>> next_inbox(graph_.vertex_count());
    for (VertexId v = 0; v < graph_.vertex_count(); ++v) {
      auto send = [&](VertexId to, Msg msg) {
        assert(graph_.has_edge(v, to) && "can only message neighbors");
        next_inbox[to].push_back(Envelope{v, std::move(msg)});
        ++messages_;
      };
      handler(v, state_[v], inbox_[v], send);
    }
    inbox_ = std::move(next_inbox);
    ++rounds_;
  }

  /// Runs until `quiescent` returns true (checked after each round) or
  /// max_rounds is hit. Returns true when quiescence was reached.
  bool run_until(const Handler& handler,
                 const std::function<bool(const SyncNetwork&)>& quiescent,
                 std::size_t max_rounds) {
    for (std::size_t r = 0; r < max_rounds; ++r) {
      step(handler);
      if (quiescent(*this)) return true;
    }
    return false;
  }

  const Graph& graph() const { return graph_; }
  const State& state(VertexId v) const { return state_[v]; }
  State& state(VertexId v) { return state_[v]; }
  std::span<const State> states() const { return state_; }
  std::size_t rounds() const { return rounds_; }
  std::size_t messages() const { return messages_; }
  /// True iff no message is currently in flight.
  bool idle() const {
    for (const auto& box : inbox_) {
      if (!box.empty()) return false;
    }
    return true;
  }

 private:
  const Graph& graph_;
  std::vector<State> state_;
  std::vector<std::vector<Envelope>> inbox_;
  std::size_t rounds_ = 0;
  std::size_t messages_ = 0;
};

/// Distributed BFS labeling on the round engine: every node learns its
/// hop distance from the root; returns (distances, rounds, messages).
/// Serves as both a reference algorithm and an engine self-test.
struct DistributedBfsResult {
  std::vector<std::uint32_t> distance;  // UINT32_MAX when unreached
  std::size_t rounds = 0;
  std::size_t messages = 0;
};
DistributedBfsResult distributed_bfs(const Graph& g, VertexId root);

}  // namespace structnet
