#include "sim/local_protocols.hpp"

#include <algorithm>
#include <cassert>

#include "sim/round_engine.hpp"

namespace structnet {

LocalProtocolResult distributed_marking(const Graph& g) {
  struct NodeState {
    bool sent = false;
    bool black = false;
    std::vector<std::pair<VertexId, std::vector<VertexId>>> heard;
  };
  using Msg = std::vector<VertexId>;  // the sender's neighbor list
  SyncNetwork<NodeState, Msg> net(g, std::vector<NodeState>(g.vertex_count()));

  // Round 1: everyone broadcasts its neighbor list. Round 2: decide.
  const auto handler =
      [&](VertexId self, NodeState& s,
          std::span<const SyncNetwork<NodeState, Msg>::Envelope> inbox,
          const std::function<void(VertexId, Msg)>& send) {
        for (const auto& env : inbox) {
          s.heard.emplace_back(env.from,
                               std::vector<VertexId>(env.payload.begin(),
                                                     env.payload.end()));
        }
        if (!s.sent) {
          s.sent = true;
          const auto nbrs = net.graph().neighbors(self);
          Msg list(nbrs.begin(), nbrs.end());
          for (VertexId w : nbrs) send(w, list);
        } else if (!s.heard.empty() && !s.black) {
          // 2-hop info is in: mark iff two neighbors are unconnected.
          for (std::size_t i = 0; i < s.heard.size() && !s.black; ++i) {
            for (std::size_t j = i + 1; j < s.heard.size(); ++j) {
              const VertexId b = s.heard[j].first;
              const auto& list_a = s.heard[i].second;
              if (std::find(list_a.begin(), list_a.end(), b) ==
                  list_a.end()) {
                s.black = true;
                break;
              }
            }
          }
        }
      };
  net.run_until(
      handler,
      [](const SyncNetwork<NodeState, Msg>& n) { return n.idle(); },
      4);

  LocalProtocolResult result;
  result.selected.resize(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    result.selected[v] = net.state(v).black;
  }
  result.rounds = net.rounds();
  result.messages = net.messages();
  return result;
}

LocalProtocolResult distributed_mis_protocol(
    const Graph& g, std::span<const double> priority) {
  assert(priority.size() == g.vertex_count());
  enum class Color : std::uint8_t { kWhite, kBlack, kGray };

  // Each "super-round" is two engine rounds: (1) whites that are local
  // priority maxima among white neighbors color themselves black and
  // announce; (2) whites hearing a black neighbor turn gray. A node
  // learns neighbors' whiteness implicitly: a neighbor is white until it
  // announced black (grays never block anyone).
  //
  // To decide local maximality a node must know which neighbors are
  // still white; we track that via announcements of both black AND gray
  // transitions.
  struct Msg2 {
    bool black = false;  // false = "I turned gray"
  };
  struct NodeState2 {
    Color color = Color::kWhite;
    std::vector<bool> neighbor_white;  // indexed by position in adjacency
    bool pending_black = false;
  };
  std::vector<NodeState2> init(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    init[v].neighbor_white.assign(g.degree(v), true);
  }
  SyncNetwork<NodeState2, Msg2> net2(g, std::move(init));

  auto neighbor_index = [&](VertexId self, VertexId w) {
    const auto nbrs = g.neighbors(self);
    return static_cast<std::size_t>(
        std::find(nbrs.begin(), nbrs.end(), w) - nbrs.begin());
  };

  bool done = false;
  std::size_t super_rounds = 0;
  while (!done && super_rounds < g.vertex_count() + 2) {
    ++super_rounds;
    // Phase 1: competition.
    net2.step([&](VertexId self, NodeState2& s,
                  std::span<const SyncNetwork<NodeState2, Msg2>::Envelope>
                      inbox,
                  const std::function<void(VertexId, Msg2)>& send) {
      for (const auto& env : inbox) {
        s.neighbor_white[neighbor_index(self, env.from)] = false;
        if (env.payload.black && s.color == Color::kWhite) {
          s.color = Color::kGray;
          // Announce grayness next phase (handled below by checking
          // color changes); simplest: send immediately here.
          for (VertexId w : g.neighbors(self)) send(w, Msg2{false});
        }
      }
      if (s.color != Color::kWhite) return;
      bool is_max = true;
      const auto nbrs = g.neighbors(self);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (s.neighbor_white[i] && priority[nbrs[i]] > priority[self]) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        s.color = Color::kBlack;
        for (VertexId w : nbrs) send(w, Msg2{true});
      }
    });
    // Termination: no white nodes remain.
    done = true;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      if (net2.state(v).color == Color::kWhite) {
        done = false;
        break;
      }
    }
  }
  // Drain in-flight messages so gray transitions settle (no-op handler
  // effectively; the loop above already consumed them each step).

  LocalProtocolResult result;
  result.selected.resize(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    result.selected[v] = net2.state(v).color == Color::kBlack;
  }
  result.rounds = net2.rounds();
  result.messages = net2.messages();
  return result;
}

LocalProtocolResult neighbor_designated_protocol(
    const Graph& g, std::span<const double> priority) {
  assert(priority.size() == g.vertex_count());
  struct NodeState {
    bool nominated = false;
    bool voted = false;
  };
  struct Msg {};  // "you are my winner"
  SyncNetwork<NodeState, Msg> net(g, std::vector<NodeState>(g.vertex_count()));
  const auto handler =
      [&](VertexId self, NodeState& s,
          std::span<const SyncNetwork<NodeState, Msg>::Envelope> inbox,
          const std::function<void(VertexId, Msg)>& send) {
        if (!inbox.empty()) s.nominated = true;
        if (s.voted) return;
        s.voted = true;
        VertexId winner = self;
        for (VertexId w : net.graph().neighbors(self)) {
          if (priority[w] > priority[winner]) winner = w;
        }
        if (winner == self) {
          s.nominated = true;  // self-nomination needs no message
        } else {
          send(winner, Msg{});
        }
      };
  net.run_until(
      handler, [](const SyncNetwork<NodeState, Msg>& n) { return n.idle(); },
      3);
  LocalProtocolResult result;
  result.selected.resize(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    result.selected[v] = net.state(v).nominated;
  }
  result.rounds = net.rounds();
  result.messages = net.messages();
  return result;
}

}  // namespace structnet
