#include "sim/stale_views.hpp"

#include <cassert>

#include "labeling/static_labels.hpp"

namespace structnet {

namespace {

/// Fraction of non-set vertices with a set neighbor in g (isolated
/// vertices count as dominated — there is nothing to cover them with).
double domination_fraction(const Graph& g, const std::vector<bool>& set) {
  std::size_t covered = 0, total = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (set[v] || g.degree(v) == 0) continue;
    ++total;
    for (VertexId w : g.neighbors(v)) {
      if (set[w]) {
        ++covered;
        break;
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace

StaleViewReport evaluate_stale_structures(const TemporalGraph& dynamic_graph,
                                          TimeUnit delay,
                                          std::span<const double> priority) {
  assert(priority.size() == dynamic_graph.vertex_count());
  StaleViewReport report;
  double dom = 0.0;
  std::size_t conn = 0, indep = 0, maximal = 0;
  for (TimeUnit t = delay; t < dynamic_graph.horizon(); ++t) {
    const Graph stale = dynamic_graph.snapshot(t - delay);
    const Graph now = dynamic_graph.snapshot(t);
    // The deployed structure is the *trimmed* CDS — the small backbone a
    // system would actually run on (the raw marking set is so large that
    // staleness barely dents it).
    const auto cds = trim_cds(stale, marking_process(stale), priority);
    const auto mis = distributed_mis(stale, priority).in_mis;
    dom += domination_fraction(now, cds);
    conn += is_connected_dominating_set(now, cds);
    indep += is_independent_set(now, mis);
    maximal += is_maximal_independent_set(now, mis);
    ++report.evaluations;
  }
  if (report.evaluations > 0) {
    const auto n = static_cast<double>(report.evaluations);
    report.domination_rate = dom / n;
    report.connectivity_rate = static_cast<double>(conn) / n;
    report.independence_rate = static_cast<double>(indep) / n;
    report.maximality_rate = static_cast<double>(maximal) / n;
  }
  return report;
}

}  // namespace structnet
