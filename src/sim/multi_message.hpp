// Multi-message DTN workloads with buffer contention: N concurrent
// messages share per-node buffers of capacity B; a transfer to a full
// buffer is dropped (drop-tail). The classic DTN trade-off the
// single-message simulator cannot show — replication strategies choke on
// small buffers while frugal single-copy strategies sail through.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/dtn_routing.hpp"
#include "temporal/temporal_graph.hpp"
#include "util/rng.hpp"

namespace structnet {

/// One message of the workload.
struct MessageSpec {
  VertexId source = kInvalidVertex;
  VertexId destination = kInvalidVertex;
  TimeUnit created = 0;
};

/// Aggregate outcome of a multi-message run.
struct WorkloadOutcome {
  std::size_t delivered = 0;
  std::size_t total = 0;
  double average_delay = 0.0;      // over delivered messages
  std::size_t transmissions = 0;   // all successful handovers/copies
  std::size_t drops = 0;           // transfers refused by full buffers
  std::vector<bool> message_delivered;  // per message

  double delivery_ratio() const {
    return total ? static_cast<double>(delivered) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Runs every message through the trace simultaneously under the given
/// strategy (consulted per message; `copies_held` carries that message's
/// budget at the holder). Each node buffers at most `buffer_capacity`
/// message copies (0 = unlimited); its own originated messages always
/// fit. Delivered copies leave the buffers immediately.
WorkloadOutcome simulate_workload(const TemporalGraph& trace,
                                  const std::vector<MessageSpec>& messages,
                                  const Strategy& strategy,
                                  std::size_t initial_copies,
                                  std::size_t buffer_capacity);

/// Draws one random workload: `count` messages with uniform distinct
/// source/destination pairs and uniform creation times in
/// [0, horizon / 2] (so every message has trace left to traverse).
std::vector<MessageSpec> random_workload(const TemporalGraph& trace,
                                         std::size_t count, Rng& rng);

/// Aggregate over Monte-Carlo workload replicas.
struct WorkloadEnsemble {
  std::vector<WorkloadOutcome> outcomes;  // one per replica, replica order
  double mean_delivery_ratio = 0.0;
  double mean_delay = 0.0;          // mean of per-replica average delays
  double mean_transmissions = 0.0;  // per replica
  double mean_drops = 0.0;          // per replica
};

/// Runs `replicas` independent random workloads of `messages_per_replica`
/// messages each. Replica i draws its workload from a child Rng split
/// from `seed` (derive_seed(seed, i)), so every replica is a fixed
/// function of (seed, i): results are reproducible run-to-run and
/// bit-identical at any thread count. `threads`: 0 = default
/// (STRUCTNET_THREADS / hardware), 1 = serial. The strategy is invoked
/// concurrently across replicas and must be thread-safe (all stock
/// strategies are).
WorkloadEnsemble simulate_workload_ensemble(
    const TemporalGraph& trace, std::size_t messages_per_replica,
    std::size_t replicas, std::uint64_t seed, const Strategy& strategy,
    std::size_t initial_copies, std::size_t buffer_capacity,
    std::size_t threads = 0);

}  // namespace structnet
