// Multi-message DTN workloads with buffer contention: N concurrent
// messages share per-node buffers of capacity B; a transfer to a full
// buffer is dropped (drop-tail). The classic DTN trade-off the
// single-message simulator cannot show — replication strategies choke on
// small buffers while frugal single-copy strategies sail through.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/dtn_routing.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

/// One message of the workload.
struct MessageSpec {
  VertexId source = kInvalidVertex;
  VertexId destination = kInvalidVertex;
  TimeUnit created = 0;
};

/// Aggregate outcome of a multi-message run.
struct WorkloadOutcome {
  std::size_t delivered = 0;
  std::size_t total = 0;
  double average_delay = 0.0;      // over delivered messages
  std::size_t transmissions = 0;   // all successful handovers/copies
  std::size_t drops = 0;           // transfers refused by full buffers
  std::vector<bool> message_delivered;  // per message

  double delivery_ratio() const {
    return total ? static_cast<double>(delivered) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Runs every message through the trace simultaneously under the given
/// strategy (consulted per message; `copies_held` carries that message's
/// budget at the holder). Each node buffers at most `buffer_capacity`
/// message copies (0 = unlimited); its own originated messages always
/// fit. Delivered copies leave the buffers immediately.
WorkloadOutcome simulate_workload(const TemporalGraph& trace,
                                  const std::vector<MessageSpec>& messages,
                                  const Strategy& strategy,
                                  std::size_t initial_copies,
                                  std::size_t buffer_capacity);

}  // namespace structnet
