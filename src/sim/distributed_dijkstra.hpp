// Distributed Dijkstra by root coordination (Sec. IV): "each leaf node
// will report to the root its distance information at each round of
// relaxation. The root will inform whichever leaf node corresponds to
// the shortest path... Back-and-forth propagation between the root and
// the leaves is not efficient because it requires multiple rounds of
// information exchanges."
//
// This simulator grows the shortest-path tree one vertex at a time, and
// charges the true synchronous cost of each growth step: a convergecast
// up the current tree (its depth in rounds, one message per tree edge)
// plus a unicast of the decision back down. The totals quantify exactly
// the inefficiency the paper calls out, next to Bellman-Ford's
// eccentricity-bound rounds (see bench_dynamic_labels).
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

struct DistributedDijkstraResult {
  std::vector<double> distance;   // same as centralized Dijkstra
  std::vector<VertexId> parent;
  std::size_t rounds = 0;         // synchronous message rounds consumed
  std::size_t messages = 0;       // point-to-point messages sent
  std::size_t expansions = 0;     // tree-growth steps (n-1 when connected)
};

/// Simulates root-coordinated Dijkstra over non-negative edge weights.
DistributedDijkstraResult distributed_dijkstra(const Graph& g,
                                               std::span<const double> weights,
                                               VertexId root);

}  // namespace structnet
