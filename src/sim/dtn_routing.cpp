#include "sim/dtn_routing.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "fault/fault_plan.hpp"
#include "parallel/parallel.hpp"
#include "util/rng.hpp"

namespace structnet {

namespace {

/// Per-directed-pair retransmit state under a FaultPlan.
struct PairRetry {
  std::size_t attempts = 0;
  TimeUnit next_allowed = 0;  // kNeverTime once the pair gave up
};

/// Backoff delay after the pair's k-th consecutive failure (k >= 1):
/// min(base * factor^(k-1), cap), saturating instead of overflowing.
TimeUnit backoff_delay(const RetryPolicy& retry, std::size_t failures) {
  const TimeUnit factor = std::max<TimeUnit>(retry.backoff_factor, 1);
  TimeUnit delay = retry.backoff_base;
  for (std::size_t i = 1; i < failures; ++i) {
    if (factor > 1 && delay > retry.backoff_cap / factor) {
      return retry.backoff_cap;
    }
    delay *= factor;
  }
  return std::min(delay, retry.backoff_cap);
}

std::uint64_t pair_slot(VertexId holder, VertexId other) {
  return (static_cast<std::uint64_t>(holder) << 32) | other;
}

}  // namespace

RoutingOutcome simulate_routing(const TemporalGraph& trace, VertexId source,
                                VertexId destination, TimeUnit t0,
                                const Strategy& strategy,
                                std::size_t initial_copies,
                                const SimulationFaults& faults) {
  return simulate_routing(TemporalCsr(trace), source, destination, t0,
                          strategy, initial_copies, faults);
}

RoutingOutcome simulate_routing(const TemporalCsr& trace, VertexId source,
                                VertexId destination, TimeUnit t0,
                                const Strategy& strategy,
                                std::size_t initial_copies,
                                const SimulationFaults& faults) {
  assert(source < trace.vertex_count() && destination < trace.vertex_count());
  RoutingOutcome outcome;
  if (source == destination) {
    outcome.delivered = true;
    outcome.delivery_time = t0;
    return outcome;
  }
  Rng loss_rng(faults.loss_seed);
  const FaultPlan* plan = faults.plan;
  // Retransmit state per directed (holder, receiver) pair; populated only
  // when a plan-induced handover failure occurs.
  std::unordered_map<std::uint64_t, PairRetry> retry_state;
  const TimeUnit deadline =
      faults.ttl == kNeverTime || t0 > kNeverTime - faults.ttl
          ? kNeverTime
          : t0 + faults.ttl;
  const std::size_t n = trace.vertex_count();
  std::vector<bool> has(n, false);
  // budget semantics: 0 = unbounded (epidemic), otherwise spray budget.
  std::vector<std::size_t> budget(n, 0);
  std::vector<std::size_t> hops(n, 0);
  has[source] = true;
  budget[source] = initial_copies;

  for (TimeUnit t = t0; t < trace.horizon(); ++t) {
    if (deadline != kNeverTime && t >= deadline) break;  // message expired
    // The per-unit edge span is in trace (edge id) order, matching the
    // bucketed-contact order the TemporalGraph walk used.
    const auto unit = trace.edges_at(t);
    // Instantaneous transmission: re-scan the unit's contacts until no
    // transfer fires (bounded: each pass moves/copies at least once).
    bool progressed = true;
    std::size_t passes = 0;
    while (progressed && passes <= unit.size() + 1) {
      progressed = false;
      ++passes;
      for (const EdgeId e : unit) {
        if (plan != nullptr &&
            !plan->link_up(trace.edge_u(e), trace.edge_v(e), t)) {
          continue;  // outage / blackout: the contact never happens
        }
        const std::pair<VertexId, VertexId> directions[] = {
            {trace.edge_u(e), trace.edge_v(e)},
            {trace.edge_v(e), trace.edge_u(e)}};
        for (const auto& [holder, other] : directions) {
          if (!has[holder] || has[other]) continue;
          if (faults.loss_probability > 0.0 &&
              loss_rng.bernoulli(faults.loss_probability)) {
            continue;  // the radio handover failed; copy stays put
          }
          PairRetry* pair = nullptr;
          if (plan != nullptr) {
            const auto it = retry_state.find(pair_slot(holder, other));
            if (it != retry_state.end()) {
              if (t < it->second.next_allowed) continue;  // backing off
              pair = &it->second;
            }
          }
          // The loss draw is a pure function of (seed, {u, v}, t), so a
          // failed attempt cannot succeed at the same t: retries wait at
          // least one unit even with no backoff configured.
          const bool lost =
              plan != nullptr && plan->transmission_lost(holder, other, t);
          const auto attempt_failed = [&] {
            ++outcome.transmissions;  // the radio attempt is still burned
            PairRetry& state =
                pair != nullptr ? *pair : retry_state[pair_slot(holder, other)];
            ++state.attempts;
            if (faults.retry.max_attempts != 0 &&
                state.attempts >= faults.retry.max_attempts) {
              state.next_allowed = kNeverTime;  // pair gave up for good
              return;
            }
            const TimeUnit delay = std::max<TimeUnit>(
                backoff_delay(faults.retry, state.attempts), 1);
            state.next_allowed =
                t > kNeverTime - delay ? kNeverTime : t + delay;
          };
          const auto attempt_succeeded = [&] {
            if (pair != nullptr) retry_state.erase(pair_slot(holder, other));
          };
          if (other == destination) {
            if (lost) {
              attempt_failed();
              continue;
            }
            outcome.delivered = true;
            outcome.delivery_time = t;
            outcome.hops = hops[holder] + 1;
            ++outcome.transmissions;
            return outcome;
          }
          const ForwardDecision d =
              strategy(holder, other, t, budget[holder]);
          switch (d) {
            case ForwardDecision::kSkip:
              break;
            case ForwardDecision::kCopy: {
              if (budget[holder] == 0) {  // unbounded replication
                if (lost) {
                  attempt_failed();
                  break;
                }
                attempt_succeeded();
                has[other] = true;
                budget[other] = 0;
                hops[other] = hops[holder] + 1;
                ++outcome.copies;
                ++outcome.transmissions;
                progressed = true;
              } else if (budget[holder] > 1) {  // binary spray
                if (lost) {
                  attempt_failed();
                  break;
                }
                attempt_succeeded();
                const std::size_t give = budget[holder] / 2;
                budget[holder] -= give;
                has[other] = true;
                budget[other] = give;
                hops[other] = hops[holder] + 1;
                ++outcome.copies;
                ++outcome.transmissions;
                progressed = true;
              }
              break;
            }
            case ForwardDecision::kMove: {
              if (lost) {
                attempt_failed();
                break;
              }
              attempt_succeeded();
              has[holder] = false;
              has[other] = true;
              budget[other] = budget[holder];
              hops[other] = hops[holder] + 1;
              ++outcome.transmissions;
              progressed = true;
              break;
            }
          }
        }
      }
    }
  }
  return outcome;
}

RoutingTrialStats simulate_routing_trials(
    const TemporalGraph& trace, VertexId source, VertexId destination,
    TimeUnit t0, const Strategy& strategy, std::size_t initial_copies,
    const SimulationFaults& faults, std::size_t trials,
    std::size_t threads) {
  // Build the contact index once; every replica walks the same CSR
  // instead of re-bucketing the trace per trial.
  const TemporalCsr csr(trace);
  return simulate_routing_trials(csr, source, destination, t0, strategy,
                                 initial_copies, faults, trials, threads);
}

RoutingTrialStats simulate_routing_trials(
    const TemporalCsr& csr, VertexId source, VertexId destination,
    TimeUnit t0, const Strategy& strategy, std::size_t initial_copies,
    const SimulationFaults& faults, std::size_t trials,
    std::size_t threads) {
  RoutingTrialStats stats;
  stats.outcomes.resize(trials);
  // Each trial writes only its own slot; the per-trial loss seed is a
  // pure function of (faults.loss_seed, trial), so the schedule cannot
  // change any replica's draw sequence.
  parallel_for(
      0, trials, /*grain=*/1,
      [&](std::size_t trial) {
        SimulationFaults f = faults;
        f.loss_seed = derive_seed(faults.loss_seed, trial);
        FaultPlan trial_plan;
        if (faults.plan != nullptr) {
          // Same schedule, decorrelated loss draws per replica.
          trial_plan = faults.plan->split(trial);
          f.plan = &trial_plan;
        }
        stats.outcomes[trial] = simulate_routing(
            csr, source, destination, t0, strategy, initial_copies, f);
      },
      threads);
  double delay = 0.0, hops = 0.0, transmissions = 0.0;
  for (const RoutingOutcome& o : stats.outcomes) {
    transmissions += static_cast<double>(o.transmissions);
    if (!o.delivered) continue;
    ++stats.delivered;
    delay += static_cast<double>(o.delivery_time);
    hops += static_cast<double>(o.hops);
  }
  if (trials > 0) {
    stats.delivery_ratio =
        static_cast<double>(stats.delivered) / static_cast<double>(trials);
    stats.mean_transmissions = transmissions / static_cast<double>(trials);
  }
  if (stats.delivered > 0) {
    stats.mean_delivery_time = delay / static_cast<double>(stats.delivered);
    stats.mean_hops = hops / static_cast<double>(stats.delivered);
  }
  return stats;
}

Strategy direct_strategy() {
  return [](VertexId, VertexId, TimeUnit, std::size_t) {
    return ForwardDecision::kSkip;
  };
}

Strategy epidemic_strategy() {
  return [](VertexId, VertexId, TimeUnit, std::size_t) {
    return ForwardDecision::kCopy;
  };
}

Strategy spray_and_wait_strategy() {
  return [](VertexId, VertexId, TimeUnit, std::size_t copies_held) {
    return copies_held > 1 ? ForwardDecision::kCopy : ForwardDecision::kSkip;
  };
}

Strategy greedy_metric_strategy(std::vector<double> metric) {
  return [metric = std::move(metric)](VertexId holder, VertexId contact,
                                      TimeUnit, std::size_t) {
    return metric[contact] < metric[holder] ? ForwardDecision::kMove
                                            : ForwardDecision::kSkip;
  };
}

Strategy forwarding_set_strategy(
    std::function<bool(VertexId, VertexId, TimeUnit)> in_set) {
  return [in_set = std::move(in_set)](VertexId holder, VertexId contact,
                                      TimeUnit t, std::size_t) {
    return in_set(holder, contact, t) ? ForwardDecision::kMove
                                      : ForwardDecision::kSkip;
  };
}

Strategy copy_varying_strategy(std::vector<double> metric,
                               double slack_per_copy) {
  return [metric = std::move(metric), slack_per_copy](
             VertexId holder, VertexId contact, TimeUnit,
             std::size_t copies_held) {
    if (copies_held <= 1) {
      // Last copy: hold for the destination (wait phase).
      return ForwardDecision::kSkip;
    }
    const double slack =
        slack_per_copy * static_cast<double>(copies_held - 1);
    return metric[contact] < metric[holder] + slack ? ForwardDecision::kCopy
                                                    : ForwardDecision::kSkip;
  };
}

UtilityForwarding::UtilityForwarding(std::vector<double> meet_probability,
                                     std::size_t n, VertexId destination,
                                     double u0, double decay_rate,
                                     TimeUnit horizon)
    : n_(n),
      destination_(destination),
      u0_(u0),
      decay_(decay_rate),
      horizon_(horizon),
      meet_(std::move(meet_probability)) {
  assert(meet_.size() == n_ * n_);
  // Backward induction with one-step lookahead; meetings within one unit
  // are treated as independent and relay gains add (a standard
  // approximation for sparse contact processes).
  value_.assign((static_cast<std::size_t>(horizon_) + 1) * n_, 0.0);
  auto v = [&](VertexId x, TimeUnit t) -> double& {
    return value_[static_cast<std::size_t>(t) * n_ + x];
  };
  for (TimeUnit tt = horizon_; tt-- > 0;) {
    const double u_now = utility_at(tt);
    v(destination_, tt) = u_now;
    for (VertexId x = 0; x < n_; ++x) {
      if (x == destination_) continue;
      const double p_xd = meet_[x * n_ + destination_];
      const double cont = v(x, tt + 1);
      double gain = 0.0;
      for (VertexId c = 0; c < n_; ++c) {
        if (c == x || c == destination_) continue;
        const double improvement = v(c, tt + 1) - cont;
        if (improvement > 0.0) gain += meet_[x * n_ + c] * improvement;
      }
      v(x, tt) = p_xd * u_now + (1.0 - p_xd) * std::min(cont + gain, u_now);
    }
  }
}

double UtilityForwarding::utility_at(TimeUnit t) const {
  return std::max(u0_ - decay_ * static_cast<double>(t), 0.0);
}

double UtilityForwarding::value(VertexId x, TimeUnit t) const {
  if (t > horizon_) t = horizon_;
  return value_[static_cast<std::size_t>(t) * n_ + x];
}

std::vector<VertexId> UtilityForwarding::forwarding_set(VertexId u,
                                                        TimeUnit t) const {
  std::vector<VertexId> set;
  const double mine = value(u, t);
  for (VertexId c = 0; c < n_; ++c) {
    if (c != u && value(c, t) > mine) set.push_back(c);
  }
  return set;
}

Strategy UtilityForwarding::strategy() const {
  return [this](VertexId holder, VertexId contact, TimeUnit t, std::size_t) {
    return value(contact, t) > value(holder, t) ? ForwardDecision::kMove
                                                : ForwardDecision::kSkip;
  };
}

std::vector<double> estimate_meet_probabilities(const TemporalGraph& trace) {
  const std::size_t n = trace.vertex_count();
  std::vector<double> p(n * n, 0.0);
  const double horizon = static_cast<double>(trace.horizon());
  if (horizon == 0.0) return p;
  for (const auto& edge : trace.edges()) {
    const double freq = static_cast<double>(edge.labels.size()) / horizon;
    p[edge.u * n + edge.v] = freq;
    p[edge.v * n + edge.u] = freq;
  }
  return p;
}

}  // namespace structnet
