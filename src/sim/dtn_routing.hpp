// DTN / opportunistic routing simulator over contact traces (Sec. III-A's
// dynamic trimming and forwarding sets, Sec. III-C's F-space routing).
//
// A message is created at a source at time t0 and must reach a
// destination via store-carry-forward over the contacts of a
// TemporalGraph. A strategy decides, for each contact involving a
// message holder, whether to hand over a copy, hand over the only copy,
// or do nothing. Provided strategies:
//
//   * direct delivery   — the source waits until it meets the
//                         destination (1 copy, 0 relays);
//   * epidemic          — copy at every contact (delay-optimal,
//                         maximally expensive);
//   * spray and wait    — binary spray of L copies, then direct;
//   * greedy metric     — single copy, forwarded when the contacted node
//                         has a strictly smaller metric value (e.g.
//                         social-feature distance to the destination:
//                         F-space routing in M-space);
//   * forwarding set    — single copy, forwarded exactly when the
//                         contacted node is in the holder's (possibly
//                         time-varying) forwarding set.
#pragma once

#include <functional>
#include <vector>

#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

class FaultPlan;  // fault/fault_plan.hpp

/// Outcome of a single-message simulation.
struct RoutingOutcome {
  bool delivered = false;
  TimeUnit delivery_time = kNeverTime;  // contact time of delivery
  std::size_t hops = 0;          // relay hops on the delivering copy's path
  std::size_t copies = 1;        // total copies ever created
  std::size_t transmissions = 0; // handovers + copies (radio cost)
};

/// Decision for a contact between a holder and a non-holder.
enum class ForwardDecision {
  kSkip,  // do nothing
  kCopy,  // replicate the message to the contacted node
  kMove,  // hand over the single copy (holder stops holding)
};

/// Strategy callback: holder u met node c at time t; `copies_held` is the
/// holder's remaining copy budget (spray strategies).
using Strategy = std::function<ForwardDecision(
    VertexId holder, VertexId contact, TimeUnit t, std::size_t copies_held)>;

/// Bounded-retransmit policy for plan-induced handover failures: after a
/// failed attempt the directed pair (holder, receiver) backs off
///   delay(k) = min(backoff_base * backoff_factor^(k-1), backoff_cap)
/// time units after its k-th failure, and gives up for good once
/// max_attempts attempts burned. Defaults are "retry at the next contact
/// time, forever". Only consulted when SimulationFaults::plan is set —
/// the legacy loss_probability process stays silent and retry-free.
struct RetryPolicy {
  /// Attempts allowed per directed pair (0 = unbounded).
  std::size_t max_attempts = 0;
  /// First-failure backoff delay (0 = next contact time).
  TimeUnit backoff_base = 0;
  /// Exponential growth of the delay per further failure (>= 1).
  TimeUnit backoff_factor = 2;
  /// Upper bound on any single backoff delay.
  TimeUnit backoff_cap = kNeverTime;
};

/// Failure-injection knobs for the simulator.
struct SimulationFaults {
  /// Message time-to-live: delivery must happen strictly before
  /// t0 + ttl (kNeverTime = no expiry).
  TimeUnit ttl = kNeverTime;
  /// Per-contact transmission failure probability (handover silently
  /// fails; a failed kMove leaves the copy with the holder).
  double loss_probability = 0.0;
  /// Seed for the loss process (deterministic runs).
  std::uint64_t loss_seed = 0;
  /// Optional composed fault schedule (not owned; must outlive the
  /// simulation). Schedule faults (outages, blackouts) suppress the
  /// contact outright; a transmission-loss draw burns a transmission
  /// (radio cost) but delivers nothing and engages `retry`. In
  /// simulate_routing_trials, trial i runs under plan->split(i).
  const FaultPlan* plan = nullptr;
  /// Retry/backoff for plan-induced transmission failures.
  RetryPolicy retry;
};

/// Runs the contact trace from t0 with the given strategy. Contacts at
/// the same time unit are processed in trace order; a node that received
/// the message in the current unit may forward it within the same unit
/// (instantaneous transmission, consistent with journey semantics).
/// Builds a TemporalCsr internally; callers running many simulations
/// over the same trace should build the index once and use the overload
/// below.
RoutingOutcome simulate_routing(const TemporalGraph& trace, VertexId source,
                                VertexId destination, TimeUnit t0,
                                const Strategy& strategy,
                                std::size_t initial_copies = 1,
                                const SimulationFaults& faults = {});

/// Same simulation over a prebuilt contact index. The CSR per-unit edge
/// order equals the trace order of TemporalGraph::contacts(), so the
/// contact processing sequence — and with it every loss-RNG draw — is
/// identical to the TemporalGraph overload.
RoutingOutcome simulate_routing(const TemporalCsr& trace, VertexId source,
                                VertexId destination, TimeUnit t0,
                                const Strategy& strategy,
                                std::size_t initial_copies = 1,
                                const SimulationFaults& faults = {});

/// Aggregate over Monte-Carlo replicas of simulate_routing.
struct RoutingTrialStats {
  std::vector<RoutingOutcome> outcomes;  // one per trial, in trial order
  std::size_t delivered = 0;
  double delivery_ratio = 0.0;
  double mean_delivery_time = 0.0;  // over delivered trials
  double mean_hops = 0.0;           // over delivered trials
  double mean_transmissions = 0.0;  // over all trials
};

/// Runs `trials` independent replicas of the lossy simulation. Trial i
/// uses loss seed derive_seed(faults.loss_seed, i), so each replica's
/// loss process is a fixed function of (loss_seed, i): results are
/// reproducible run-to-run and bit-identical at any thread count.
/// `threads`: 0 = default (STRUCTNET_THREADS / hardware), 1 = serial.
/// The strategy is invoked concurrently across trials and must be
/// safe to call from multiple threads (all stock strategies are).
RoutingTrialStats simulate_routing_trials(
    const TemporalGraph& trace, VertexId source, VertexId destination,
    TimeUnit t0, const Strategy& strategy, std::size_t initial_copies,
    const SimulationFaults& faults, std::size_t trials,
    std::size_t threads = 0);

/// Same trial sweep over a prebuilt contact index — what the serving
/// layer uses to amortize one TemporalCsr build across every routing
/// ensemble in a same-epoch batch (the TemporalGraph overload above
/// builds the index once per call and delegates here). Identical
/// results: the CSR per-unit edge order equals trace order, so every
/// replica's contact sequence and loss-RNG draws are unchanged.
RoutingTrialStats simulate_routing_trials(
    const TemporalCsr& trace, VertexId source, VertexId destination,
    TimeUnit t0, const Strategy& strategy, std::size_t initial_copies,
    const SimulationFaults& faults, std::size_t trials,
    std::size_t threads = 0);

// ----------------------------------------------------- stock strategies

/// Direct delivery (strategy constant).
Strategy direct_strategy();

/// Epidemic flooding.
Strategy epidemic_strategy();

/// Binary spray and wait with L initial copies: on contact, a holder with
/// k > 1 copies gives floor(k/2) to the contacted node; with k == 1 it
/// waits for the destination. Pass L via simulate_routing's
/// initial_copies.
Strategy spray_and_wait_strategy();

/// Single-copy greedy on a node metric (smaller = closer to destination):
/// hand the copy to a contact with strictly smaller metric.
Strategy greedy_metric_strategy(std::vector<double> metric);

/// Single-copy forwarding-set strategy: forward iff in_set(holder,
/// contact, t).
Strategy forwarding_set_strategy(
    std::function<bool(VertexId, VertexId, TimeUnit)> in_set);

/// Copy-varying forwarding set (Sec. III-A: "in a multi-copy message
/// delivery application, the forwarding set becomes copy-varying if the
/// objective is to minimize the delivery time of the first copy"): a
/// holder with many copies spends them liberally on mediocre relays; its
/// last copies go only to strictly better ones. Concretely, a holder
/// with k copies splits to contact c iff
///   metric(c) < metric(holder) + slack_per_copy * (k - 1),
/// so the acceptance set shrinks as the copy budget is spent. Run with
/// initial_copies = L.
Strategy copy_varying_strategy(std::vector<double> metric,
                               double slack_per_copy);

// --------------------------------------- time-varying utility forwarding

/// TOUR-like utility model [13]: the message utility decays linearly,
/// U(t) = max(u0 - decay_rate * t, 0); pairwise meeting probabilities per
/// time unit are given by `meet_probability` (n x n, row-major). The
/// value V(x, t) of the message sitting at x at time t is computed by
/// backward induction with one-step lookahead; the optimal forwarding set
/// of holder u at time t is { c : V(c, t) > V(u, t) }.
class UtilityForwarding {
 public:
  UtilityForwarding(std::vector<double> meet_probability, std::size_t n,
                    VertexId destination, double u0, double decay_rate,
                    TimeUnit horizon);

  double value(VertexId x, TimeUnit t) const;
  double utility_at(TimeUnit t) const;

  /// The forwarding set of holder u at time t.
  std::vector<VertexId> forwarding_set(VertexId u, TimeUnit t) const;

  /// Strategy adapter for simulate_routing.
  Strategy strategy() const;

 private:
  std::size_t n_;
  VertexId destination_;
  double u0_;
  double decay_;
  TimeUnit horizon_;
  std::vector<double> meet_;   // n*n row-major
  std::vector<double> value_;  // (horizon+1) * n
};

/// Helper: empirical per-unit meeting probabilities of a trace (row-major
/// n x n), the model input a deployed system would estimate online.
std::vector<double> estimate_meet_probabilities(const TemporalGraph& trace);

}  // namespace structnet
