#include "sim/distributed_dijkstra.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "algo/shortest_paths.hpp"

namespace structnet {

DistributedDijkstraResult distributed_dijkstra(const Graph& g,
                                               std::span<const double> weights,
                                               VertexId root) {
  assert(weights.size() == g.edge_count());
  assert(root < g.vertex_count());
  const std::size_t n = g.vertex_count();

  // (neighbor, weight) adjacency.
  std::vector<std::vector<std::pair<VertexId, double>>> adj(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    assert(weights[e] >= 0.0);
    adj[g.edge(e).u].emplace_back(g.edge(e).v, weights[e]);
    adj[g.edge(e).v].emplace_back(g.edge(e).u, weights[e]);
  }

  DistributedDijkstraResult r;
  r.distance.assign(n, kInfDistance);
  r.parent.assign(n, kInvalidVertex);
  std::vector<bool> in_tree(n, false);
  std::vector<std::uint32_t> depth(n, 0);
  r.distance[root] = 0.0;
  in_tree[root] = true;
  std::size_t tree_size = 1;
  std::uint32_t tree_depth = 0;

  for (;;) {
    // Select the cheapest frontier vertex (the root's decision after the
    // convergecast delivered every subtree's best candidate).
    VertexId best = kInvalidVertex;
    VertexId best_parent = kInvalidVertex;
    double best_dist = kInfDistance;
    for (VertexId u = 0; u < n; ++u) {
      if (!in_tree[u]) continue;
      for (const auto& [v, w] : adj[u]) {
        if (in_tree[v]) continue;
        if (r.distance[u] + w < best_dist) {
          best_dist = r.distance[u] + w;
          best = v;
          best_parent = u;
        }
      }
    }
    if (best == kInvalidVertex) break;  // frontier exhausted

    // Cost of this step: convergecast up the current tree, then a
    // unicast down to the chosen attachment point.
    r.rounds += tree_depth;           // reports bubble up level by level
    r.messages += tree_size - 1;      // one report per tree edge
    r.rounds += depth[best_parent] + 1;  // decision travels down + attach
    r.messages += depth[best_parent] + 1;

    r.distance[best] = best_dist;
    r.parent[best] = best_parent;
    in_tree[best] = true;
    depth[best] = depth[best_parent] + 1;
    tree_depth = std::max(tree_depth, depth[best]);
    ++tree_size;
    ++r.expansions;
  }
  return r;
}

}  // namespace structnet
