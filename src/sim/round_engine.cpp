#include "sim/round_engine.hpp"

#include <limits>

namespace structnet {

DistributedBfsResult distributed_bfs(const Graph& g, VertexId root) {
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  struct NodeState {
    std::uint32_t dist = kUnreached;
    bool announced = false;
  };
  std::vector<NodeState> init(g.vertex_count());
  init[root].dist = 0;

  SyncNetwork<NodeState, std::uint32_t> net(g, std::move(init));
  const auto handler = [](VertexId, NodeState& s,
                          std::span<const SyncNetwork<NodeState,
                                                      std::uint32_t>::Envelope>
                              inbox,
                          const std::function<void(VertexId, std::uint32_t)>&) {
    for (const auto& env : inbox) {
      if (env.payload + 1 < s.dist) s.dist = env.payload + 1;
    }
  };
  // Separate announcement phase folded into one handler: announce once
  // when a distance is known.
  const auto full_handler =
      [&](VertexId self, NodeState& s,
          std::span<const SyncNetwork<NodeState, std::uint32_t>::Envelope>
              inbox,
          const std::function<void(VertexId, std::uint32_t)>& send) {
        handler(self, s, inbox, send);
        if (s.dist != kUnreached && !s.announced) {
          s.announced = true;
          for (VertexId w : net.graph().neighbors(self)) send(w, s.dist);
        }
      };
  net.run_until(
      full_handler,
      [](const SyncNetwork<NodeState, std::uint32_t>& n) { return n.idle(); },
      g.vertex_count() + 2);

  DistributedBfsResult result;
  result.distance.resize(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    result.distance[v] = net.state(v).dist;
  }
  result.rounds = net.rounds();
  result.messages = net.messages();
  return result;
}

}  // namespace structnet
