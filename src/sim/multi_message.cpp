#include "sim/multi_message.hpp"

#include <cassert>

#include "parallel/parallel.hpp"

namespace structnet {

WorkloadOutcome simulate_workload(const TemporalGraph& trace,
                                  const std::vector<MessageSpec>& messages,
                                  const Strategy& strategy,
                                  std::size_t initial_copies,
                                  std::size_t buffer_capacity) {
  const std::size_t n = trace.vertex_count();
  const std::size_t k = messages.size();
  WorkloadOutcome outcome;
  outcome.total = k;
  outcome.message_delivered.assign(k, false);

  // has[m][v]: node v holds a copy of message m. budget[m][v]: its spray
  // budget. load[v]: copies buffered at v (delivered/expired excluded).
  std::vector<std::vector<bool>> has(k, std::vector<bool>(n, false));
  std::vector<std::vector<std::size_t>> budget(
      k, std::vector<std::size_t>(n, 0));
  std::vector<std::size_t> load(n, 0);
  std::vector<TimeUnit> delivered_at(k, kNeverTime);

  std::vector<std::vector<Contact>> bucket(trace.horizon());
  for (const Contact& c : trace.contacts()) bucket[c.t].push_back(c);

  auto try_store = [&](std::size_t m, VertexId v, std::size_t b,
                       bool forced) -> bool {
    if (!forced && buffer_capacity != 0 && load[v] >= buffer_capacity) {
      ++outcome.drops;
      return false;
    }
    has[m][v] = true;
    budget[m][v] = b;
    ++load[v];
    return true;
  };

  for (TimeUnit t = 0; t < trace.horizon(); ++t) {
    // Message creation (a node always buffers its own message).
    for (std::size_t m = 0; m < k; ++m) {
      if (messages[m].created == t &&
          messages[m].source != messages[m].destination) {
        try_store(m, messages[m].source, initial_copies, /*forced=*/true);
      }
    }
    bool progressed = true;
    std::size_t passes = 0;
    while (progressed && passes <= bucket[t].size() + 1) {
      progressed = false;
      ++passes;
      for (const Contact& c : bucket[t]) {
        const std::pair<VertexId, VertexId> directions[] = {
            {c.u, c.v}, {c.v, c.u}};
        for (const auto& [holder, other] : directions) {
          for (std::size_t m = 0; m < k; ++m) {
            if (delivered_at[m] != kNeverTime) continue;
            if (!has[m][holder] || has[m][other]) continue;
            if (other == messages[m].destination) {
              delivered_at[m] = t;
              ++outcome.transmissions;
              // The destination consumes the message; release buffers.
              for (VertexId v = 0; v < n; ++v) {
                if (has[m][v]) {
                  has[m][v] = false;
                  --load[v];
                }
              }
              progressed = true;
              continue;
            }
            switch (strategy(holder, other, t, budget[m][holder])) {
              case ForwardDecision::kSkip:
                break;
              case ForwardDecision::kCopy: {
                std::size_t give = 0;
                bool can = false;
                if (budget[m][holder] == 0) {  // unbounded replication
                  can = true;
                } else if (budget[m][holder] > 1) {
                  give = budget[m][holder] / 2;
                  can = true;
                }
                if (can && try_store(m, other, give, false)) {
                  if (budget[m][holder] > 1) budget[m][holder] -= give;
                  ++outcome.transmissions;
                  progressed = true;
                }
                break;
              }
              case ForwardDecision::kMove: {
                if (try_store(m, other, budget[m][holder], false)) {
                  has[m][holder] = false;
                  --load[holder];
                  ++outcome.transmissions;
                  progressed = true;
                }
                break;
              }
            }
          }
        }
      }
    }
  }

  double delay_sum = 0.0;
  for (std::size_t m = 0; m < k; ++m) {
    if (messages[m].source == messages[m].destination) {
      outcome.message_delivered[m] = true;
      ++outcome.delivered;
      continue;
    }
    if (delivered_at[m] != kNeverTime) {
      outcome.message_delivered[m] = true;
      ++outcome.delivered;
      delay_sum += static_cast<double>(delivered_at[m] - messages[m].created);
    }
  }
  outcome.average_delay =
      outcome.delivered ? delay_sum / static_cast<double>(outcome.delivered)
                        : 0.0;
  return outcome;
}

std::vector<MessageSpec> random_workload(const TemporalGraph& trace,
                                         std::size_t count, Rng& rng) {
  const std::size_t n = trace.vertex_count();
  assert(n >= 2);
  const TimeUnit latest =
      trace.horizon() > 1 ? static_cast<TimeUnit>(trace.horizon() / 2) : 0;
  std::vector<MessageSpec> messages;
  messages.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    MessageSpec spec;
    spec.source = static_cast<VertexId>(rng.index(n));
    do {
      spec.destination = static_cast<VertexId>(rng.index(n));
    } while (spec.destination == spec.source);
    spec.created = static_cast<TimeUnit>(rng.uniform_u64(0, latest));
    messages.push_back(spec);
  }
  return messages;
}

WorkloadEnsemble simulate_workload_ensemble(
    const TemporalGraph& trace, std::size_t messages_per_replica,
    std::size_t replicas, std::uint64_t seed, const Strategy& strategy,
    std::size_t initial_copies, std::size_t buffer_capacity,
    std::size_t threads) {
  WorkloadEnsemble ensemble;
  ensemble.outcomes.resize(replicas);
  const Rng parent(seed);
  // Replica i's workload comes from the child stream (seed, i) and its
  // outcome lands in slot i — the schedule never touches the draws.
  parallel_for(
      0, replicas, /*grain=*/1,
      [&](std::size_t replica) {
        Rng child = parent.split(replica);
        const auto messages =
            random_workload(trace, messages_per_replica, child);
        ensemble.outcomes[replica] = simulate_workload(
            trace, messages, strategy, initial_copies, buffer_capacity);
      },
      threads);
  for (const WorkloadOutcome& o : ensemble.outcomes) {
    ensemble.mean_delivery_ratio += o.delivery_ratio();
    ensemble.mean_delay += o.average_delay;
    ensemble.mean_transmissions += static_cast<double>(o.transmissions);
    ensemble.mean_drops += static_cast<double>(o.drops);
  }
  if (replicas > 0) {
    const auto r = static_cast<double>(replicas);
    ensemble.mean_delivery_ratio /= r;
    ensemble.mean_delay /= r;
    ensemble.mean_transmissions /= r;
    ensemble.mean_drops /= r;
  }
  return ensemble;
}

}  // namespace structnet
