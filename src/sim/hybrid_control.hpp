// Hybrid centralized-and-distributed routing (Sec. IV-C, citing
// Fibbing-style central control over distributed routing [31]): a
// central controller "inserts fake nodes and links to create an
// augmented topology for a distributed solution."
//
// Concrete instantiation: distributed Bellman-Ford converges in
// eccentricity-many rounds; the controller computes a handful of
// shortcut ("fake") links that slash the effective diameter, the
// distributed protocol runs on the augmented topology, and data-plane
// routes expand each fake link back into the real path it tunnels over.
// The experiment: convergence rounds and route stretch vs number of
// shortcuts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// One controller-installed shortcut: a "fake" link (u, v) tunneling
/// over a concrete real path.
struct Shortcut {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  std::vector<VertexId> real_path;  // u ... v in the real topology
};

/// Centralized shortcut selection: greedily connects the current
/// farthest pair (by BFS) `count` times — each shortcut halves the
/// stretch of the worst region. Requires g connected.
std::vector<Shortcut> select_shortcuts(const Graph& g, std::size_t count);

/// The augmented topology: g plus one edge per shortcut.
Graph augment(const Graph& g, const std::vector<Shortcut>& shortcuts);

/// Result of running the distributed protocol on the augmented graph.
struct HybridRoutingResult {
  std::size_t rounds = 0;        // Bellman-Ford rounds to converge
  double average_stretch = 1.0;  // expanded-route hops / true hops
  double max_stretch = 1.0;
};

/// Runs synchronous Bellman-Ford toward `destination` on the augmented
/// topology (unit weight per link — fake links cost 1 in the control
/// plane), then expands every node's route into real hops and compares
/// with true shortest paths in g.
HybridRoutingResult hybrid_route_to(const Graph& g,
                                    const std::vector<Shortcut>& shortcuts,
                                    VertexId destination);

}  // namespace structnet
