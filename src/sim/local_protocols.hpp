// Localized labeling protocols executed as real message-passing programs
// on the synchronous round engine (Sec. IV: "A centralized solution can
// be converted to a distributed solution"; localized solutions exchange
// only k-hop information).
//
// Each protocol reports its round and message cost alongside the labels,
// and is validated in the tests against the centralized implementations
// in labeling/static_labels.hpp:
//   * marking CDS — 1 round of neighbor-list exchange (2-hop info),
//     then a local decision;
//   * 3-color MIS — repeated 1-hop priority competition;
//   * neighbor-designated DS — 1 round of nomination messages.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

struct LocalProtocolResult {
  std::vector<bool> selected;
  std::size_t rounds = 0;
  std::size_t messages = 0;
};

/// Wu-Dai marking via the engine: every node broadcasts its neighbor
/// list; each node then marks itself iff two of its neighbors are not
/// adjacent. Exactly matches marking_process().
LocalProtocolResult distributed_marking(const Graph& g);

/// 3-color MIS via the engine with explicit WHITE/BLACK/GRAY messages.
/// Exactly matches distributed_mis() given the same priorities.
LocalProtocolResult distributed_mis_protocol(const Graph& g,
                                             std::span<const double> priority);

/// Neighbor-designated DS via the engine: one round of nominations.
/// Exactly matches neighbor_designated_ds().
LocalProtocolResult neighbor_designated_protocol(
    const Graph& g, std::span<const double> priority);

}  // namespace structnet
