#include "sim/hybrid_control.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "algo/shortest_paths.hpp"
#include "algo/traversal.hpp"

namespace structnet {

namespace {

/// Farthest vertex from `from` by BFS (ties: smallest id).
VertexId farthest_from(const Graph& g, VertexId from) {
  const auto dist = bfs_distances(g, from);
  VertexId best = from;
  std::uint32_t best_d = 0;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] != std::numeric_limits<std::uint32_t>::max() &&
        dist[v] > best_d) {
      best_d = dist[v];
      best = static_cast<VertexId>(v);
    }
  }
  return best;
}

}  // namespace

std::vector<Shortcut> select_shortcuts(const Graph& g, std::size_t count) {
  std::vector<Shortcut> shortcuts;
  Graph augmented = g;
  for (std::size_t i = 0; i < count; ++i) {
    // Double sweep on the *current* augmented topology: the next
    // shortcut attacks the worst remaining region.
    const VertexId a = farthest_from(augmented, 0);
    const VertexId b = farthest_from(augmented, a);
    if (a == b || augmented.has_edge(a, b)) break;  // nothing left to fix
    Shortcut sc;
    sc.u = a;
    sc.v = b;
    // The tunnel rides the real topology.
    const auto parent = bfs_tree(g, a);
    sc.real_path = extract_path(parent, a, b);
    assert(!sc.real_path.empty() && "graph must be connected");
    augmented.add_edge(a, b);
    shortcuts.push_back(std::move(sc));
  }
  return shortcuts;
}

Graph augment(const Graph& g, const std::vector<Shortcut>& shortcuts) {
  Graph out = g;
  for (const Shortcut& sc : shortcuts) out.add_edge_unique(sc.u, sc.v);
  return out;
}

HybridRoutingResult hybrid_route_to(const Graph& g,
                                    const std::vector<Shortcut>& shortcuts,
                                    VertexId destination) {
  const Graph aug = augment(g, shortcuts);
  const std::vector<double> weights(aug.edge_count(), 1.0);
  const auto bf = bellman_ford(aug, weights, destination);

  HybridRoutingResult result;
  result.rounds = bf.rounds;

  // Expand each node's control-plane route into real hops.
  auto tunnel_length = [&](VertexId x, VertexId y) -> std::size_t {
    for (const Shortcut& sc : shortcuts) {
      if ((sc.u == x && sc.v == y) || (sc.u == y && sc.v == x)) {
        return sc.real_path.size() - 1;
      }
    }
    return 1;  // a real link
  };
  const auto true_dist = bfs_distances(g, destination);
  double total_stretch = 0.0;
  std::size_t counted = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (v == destination || bf.paths.parent[v] == kInvalidVertex) continue;
    std::size_t real_hops = 0;
    VertexId cur = v;
    while (cur != destination) {
      const VertexId next = bf.paths.parent[cur];
      real_hops += g.has_edge(cur, next) ? 1 : tunnel_length(cur, next);
      cur = next;
    }
    if (true_dist[v] == 0 ||
        true_dist[v] == std::numeric_limits<std::uint32_t>::max()) {
      continue;
    }
    const double stretch =
        static_cast<double>(real_hops) / static_cast<double>(true_dist[v]);
    total_stretch += stretch;
    result.max_stretch = std::max(result.max_stretch, stretch);
    ++counted;
  }
  result.average_stretch =
      counted ? total_stretch / static_cast<double>(counted) : 1.0;
  return result;
}

}  // namespace structnet
