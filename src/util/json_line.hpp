// Single-line JSON record writer shared by the bench binaries
// (bench/bench_util.hpp) and the serving metrics surface
// (serve/metrics.hpp), so every machine-readable line the project emits
// has one spelling: insertion-ordered fields, fixed-notation doubles
// (no scientific flips), null for non-finite values, and full string
// escaping. Records are grep-able as lines starting with '{'.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace structnet {

/// Builder for one JSON object serialized as a single line. Field order
/// is insertion order; keys are not deduplicated.
class JsonLineWriter {
 public:
  JsonLineWriter& field(std::string_view key, double value) {
    append_key(key);
    // Default stream formatting rounds to 6 significant digits and
    // flips to scientific notation for large values (ns_per_op easily
    // exceeds 1e6), silently corrupting BENCH_*.json trajectories. Emit
    // fixed notation with 6 fractional digits instead; non-finite
    // doubles have no JSON spelling, so they become null.
    if (!std::isfinite(value)) {
      out_ << "null";
      return *this;
    }
    char buf[352];  // fixed notation of the largest double fits
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out_ << buf;
    return *this;
  }
  JsonLineWriter& field(std::string_view key, std::uint64_t value) {
    append_key(key);
    out_ << value;
    return *this;
  }
  JsonLineWriter& field(std::string_view key, std::string_view value) {
    append_key(key);
    append_string(value);
    return *this;
  }

  /// The record as a complete one-line JSON object.
  std::string str() const { return first_ ? "{}" : out_.str() + "}"; }

  /// Prints the record as a single line (flushed so partial runs still
  /// leave parseable output).
  void emit(std::ostream& os = std::cout) const {
    os << str() << std::endl;
  }

 private:
  void append_key(std::string_view key) {
    out_ << (first_ ? "{" : ", ");
    first_ = false;
    append_string(key);
    out_ << ": ";
  }

  /// JSON string literal with quote/backslash/control escaping.
  void append_string(std::string_view s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  bool first_ = true;
};

}  // namespace structnet
