// Histograms for discrete counts (degree distributions, hyperedge
// cardinalities, hop counts) and log-binned continuous data (inter-contact
// times).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace structnet {

/// Exact histogram over non-negative integer values.
class CountHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::uint64_t count_of(std::uint64_t value) const;
  /// Sorted (value, count) pairs.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items() const;
  /// P(X = value) as a fraction of total; 0 when empty.
  double fraction(std::uint64_t value) const;
  /// Complementary CDF P(X >= value).
  double ccdf(std::uint64_t value) const;
  double mean() const;
  std::uint64_t max_value() const;

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Logarithmically binned histogram for positive reals.
class LogHistogram {
 public:
  /// Bins grow geometrically from `min_edge` by factor `ratio` (> 1).
  explicit LogHistogram(double min_edge = 1e-3, double ratio = 2.0);

  void add(double value);
  std::uint64_t total() const { return total_; }

  struct Bin {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
  };
  /// Non-empty bins in increasing order.
  std::vector<Bin> bins() const;

 private:
  double min_edge_;
  double log_ratio_;
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace structnet
