// Plain-text table printer used by bench binaries so that every
// experiment emits aligned, greppable rows (the "figure data").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace structnet {

/// Accumulates rows of string cells and prints them with aligned columns.
///
/// Usage:
///   Table t({"n", "algo", "rounds"});
///   t.add_row({"64", "full", "123"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 3);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  void print(std::ostream& os, const std::string& title = "") const;
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace structnet
