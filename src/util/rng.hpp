// Deterministic random number generation utilities.
//
// Every stochastic component of structnet takes an explicit `Rng&` (or a
// seed) so that experiments are reproducible run-to-run. We wrap
// std::mt19937_64 rather than exposing it directly so call sites stay
// independent of the underlying engine.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace structnet {

/// Deterministic pseudo-random source used across the library.
///
/// A thin wrapper over std::mt19937_64 with convenience draws. Copyable;
/// copies evolve independently (useful for splitting streams in tests).
/// Derives a decorrelated child seed from a parent seed and a stream
/// index (splitmix64 finalizer). Used to split one logical seed into
/// independent per-shard/per-trial streams whose draw sequences depend
/// only on (parent, stream) — never on thread count or draw history —
/// so parallel Monte-Carlo runs are bit-identical to serial ones.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream);

class Rng {
 public:
  /// Seeds the engine. The same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : seed_(seed), engine_(seed) {}

  /// The seed this Rng was constructed with (draws do not change it).
  std::uint64_t seed() const { return seed_; }

  /// Child Rng for shard/trial `stream`: seeded with
  /// derive_seed(seed(), stream). Independent of draws already made on
  /// the parent, so shard streams are schedule-invariant.
  Rng split(std::uint64_t stream) const { return Rng(derive_seed(seed_, stream)); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with rate lambda (> 0).
  double exponential(double lambda);

  /// Standard normal draw scaled to mean/stddev.
  double normal(double mean, double stddev);

  /// Geometric draw: number of failures before first success, P(success)=p.
  std::uint64_t geometric(double p);

  /// Poisson draw with the given mean.
  std::uint64_t poisson(double mean);

  /// Pareto (power-law) draw with minimum x_min > 0 and exponent alpha > 1.
  /// Density ~ x^-alpha for x >= x_min.
  double pareto(double x_min, double alpha);

  /// Zipf-like integer draw in [1, n] with exponent s, via rejection.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Returns k distinct indices sampled uniformly from [0, n). k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Access to the raw engine for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace structnet
