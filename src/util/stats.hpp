// Small statistics helpers shared by benchmarks and analyzers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace structnet {

/// Online accumulator for mean / variance / min / max (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of the values, linear interpolation.
/// Returns 0 for an empty span.
double quantile(std::span<const double> values, double q);

/// Mean of a span (0 for empty).
double mean_of(std::span<const double> values);

/// Sample standard deviation of a span (0 for fewer than two values).
double stddev_of(std::span<const double> values);

/// Pearson correlation of two equally sized spans (0 if degenerate).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Least-squares slope/intercept of y over x. Returns {slope, intercept}.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace structnet
