#include "util/histogram.hpp"

#include <cassert>
#include <cmath>

namespace structnet {

void CountHistogram::add(std::uint64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

std::uint64_t CountHistogram::count_of(std::uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> CountHistogram::items()
    const {
  return {counts_.begin(), counts_.end()};
}

double CountHistogram::fraction(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count_of(value)) / static_cast<double>(total_);
}

double CountHistogram::ccdf(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t at_least = 0;
  for (auto it = counts_.lower_bound(value); it != counts_.end(); ++it) {
    at_least += it->second;
  }
  return static_cast<double>(at_least) / static_cast<double>(total_);
}

double CountHistogram::mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [v, c] : counts_) {
    sum += static_cast<double>(v) * static_cast<double>(c);
  }
  return sum / static_cast<double>(total_);
}

std::uint64_t CountHistogram::max_value() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

LogHistogram::LogHistogram(double min_edge, double ratio)
    : min_edge_(min_edge), log_ratio_(std::log(ratio)) {
  assert(min_edge > 0.0 && ratio > 1.0);
}

void LogHistogram::add(double value) {
  assert(value > 0.0);
  const double x = std::max(value, min_edge_);
  const auto bin = static_cast<std::int64_t>(
      std::floor(std::log(x / min_edge_) / log_ratio_));
  ++counts_[bin];
  ++total_;
}

std::vector<LogHistogram::Bin> LogHistogram::bins() const {
  std::vector<Bin> out;
  out.reserve(counts_.size());
  for (const auto& [b, c] : counts_) {
    Bin bin;
    bin.lo = min_edge_ * std::exp(log_ratio_ * static_cast<double>(b));
    bin.hi = min_edge_ * std::exp(log_ratio_ * static_cast<double>(b + 1));
    bin.count = c;
    out.push_back(bin);
  }
  return out;
}

}  // namespace structnet
