#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace structnet {

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) {
  // splitmix64 finalizer over the parent seed advanced by the stream
  // index; the +1 keeps stream 0 from aliasing the parent seed itself.
  std::uint64_t z = parent + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform01() < p;
}

double Rng::exponential(double lambda) {
  assert(lambda > 0.0);
  std::exponential_distribution<double> dist(lambda);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::uint64_t Rng::geometric(double p) {
  std::geometric_distribution<std::uint64_t> dist(std::clamp(p, 1e-12, 1.0));
  return dist(engine_);
}

std::uint64_t Rng::poisson(double mean) {
  std::poisson_distribution<std::uint64_t> dist(std::max(mean, 0.0));
  return dist(engine_);
}

double Rng::pareto(double x_min, double alpha) {
  assert(x_min > 0.0 && alpha > 1.0);
  // Inverse-CDF sampling: F(x) = 1 - (x_min/x)^(alpha-1).
  const double u = 1.0 - uniform01();
  return x_min * std::pow(u, -1.0 / (alpha - 1.0));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  assert(n >= 1);
  // Rejection sampling against a bounding envelope (Devroye).
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = uniform01();
    const double v = uniform01();
    const auto x = static_cast<std::uint64_t>(
        std::floor(std::pow(static_cast<double>(n) + 1.0, u)));
    if (x < 1 || x > n) continue;
    const double t = std::pow(1.0 + 1.0 / static_cast<double>(x), s - 1.0);
    if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <= t / b) {
      return x;
    }
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = index(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace structnet
