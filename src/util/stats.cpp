#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace structnet {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace structnet
