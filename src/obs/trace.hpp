// Tracing layer: RAII spans with monotonic timestamps, per-thread
// buffers, and a bounded in-memory TraceSink exportable as Chrome
// trace_event JSON (chrome://tracing, Perfetto) and as aggregate
// per-span-name statistics.
//
// Cost model:
//
//   * No sink installed (the default): a Span is one relaxed atomic
//     load and a branch — the instrumented kernels stay within the
//     "obs ON but idle" overhead budget.
//   * Sink installed: two steady-clock reads per span plus one append
//     into a per-thread buffer. Buffers flush into the sink (one mutex
//     acquisition) when full or whenever the thread's span nesting
//     returns to depth zero, so at quiescence (every top-level span
//     closed) the sink holds every completed span.
//   * Span names must be string literals (or otherwise outlive the
//     sink) — the buffer stores the pointer, never a copy.
//
// Nesting is tracked per thread: each event carries its depth, and the
// Chrome export's duration ("X") events nest naturally by time
// containment within a tid.
//
// Lifecycle contract: install() publishes the sink process-wide;
// uninstall (or the sink's destructor) must only run when no span is in
// flight — the intended shape is install → run the traced region →
// join/quiesce → export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // STRUCTNET_OBS_ENABLED / kEnabled

namespace structnet::obs {

/// One completed span. `name` is a borrowed pointer (see header note).
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;    // per-thread sequential id
  std::uint32_t depth = 0;  // nesting depth at begin (0 = top-level)
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Aggregate statistics for one span name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

#if STRUCTNET_OBS_ENABLED

/// Monotonic nanoseconds (steady clock).
std::uint64_t now_ns();

class TraceSink {
 public:
  /// Holds at most `max_events` completed spans; the overflow is
  /// counted in dropped(), never blocks the tracing threads.
  explicit TraceSink(std::size_t max_events = std::size_t{1} << 20);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Publishes this sink as the process-wide active sink (replacing any
  /// previous one). Spans begun after this record into it.
  void install();
  /// Clears the active sink; subsequent spans are free no-ops again.
  static void uninstall();

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Completed spans flushed so far (see header note for when buffers
  /// flush), in flush order.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: {"traceEvents": [{"ph": "X", ...}, ...]}.
  /// Timestamps are microseconds relative to sink construction.
  std::string chrome_trace_json() const;

  /// Per-span-name aggregates, name-sorted.
  std::vector<SpanStats> aggregate() const;

  // Internal: bulk append from a thread buffer.
  void append(const TraceEvent* ev, std::size_t n);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::size_t cap_;
  std::uint64_t dropped_ = 0;
  std::uint64_t t0_;
};

/// True when a sink is installed — the gate the instrumented layers use
/// before taking timestamps.
bool trace_enabled();

namespace detail {
/// Begins a span: returns the start timestamp, or 0 when no sink is
/// installed (the span records nothing).
std::uint64_t span_begin();
void span_end(const char* name, std::uint64_t start_ns);
}  // namespace detail

/// RAII span: records [construction, destruction) under `name` when a
/// sink is installed. `name` must outlive the sink (use literals).
class Span {
 public:
  explicit Span(const char* name) : name_(name), start_(detail::span_begin()) {}
  ~Span() {
    if (start_ != 0) detail::span_end(name_, start_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_;
};

#else  // !STRUCTNET_OBS_ENABLED — empty inline stubs

inline std::uint64_t now_ns() { return 0; }
inline bool trace_enabled() { return false; }

class TraceSink {
 public:
  explicit TraceSink(std::size_t = 0) {}
  void install() {}
  static void uninstall() {}
  std::size_t size() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::vector<TraceEvent> events() const { return {}; }
  std::string chrome_trace_json() const { return "{\"traceEvents\": []}"; }
  std::vector<SpanStats> aggregate() const { return {}; }
  void append(const TraceEvent*, std::size_t) {}
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // STRUCTNET_OBS_ENABLED

}  // namespace structnet::obs

// Statement macro for hot paths: declares a scoped span when the obs
// layer is compiled in, vanishes entirely when it is not.
#define STRUCTNET_OBS_CAT_(a, b) a##b
#define STRUCTNET_OBS_CAT(a, b) STRUCTNET_OBS_CAT_(a, b)
#if STRUCTNET_OBS_ENABLED
#define STRUCTNET_OBS_SPAN(name) \
  ::structnet::obs::Span STRUCTNET_OBS_CAT(structnet_obs_span_, __LINE__)(name)
#else
#define STRUCTNET_OBS_SPAN(name) ((void)0)
#endif
