// Process-wide metrics registry: named counters, gauges, and
// power-of-two histograms with lock-free hot-path updates and a
// consistent snapshot surface.
//
// Design rules:
//
//   * Updates never take a lock. Counters shard their cells across a
//     small power-of-two array indexed by a per-thread slot, so N
//     threads hammering one counter touch N distinct cache lines;
//     gauges and histogram buckets are single relaxed/release atomics.
//   * Registration (registry.counter("name")) takes a mutex and does a
//     map lookup — call sites on hot paths cache the returned reference
//     (a function-local `static Counter&` works: metric objects are
//     heap-pinned and live as long as the registry).
//   * snapshot() walks the registry under the registration mutex and
//     reads each metric with acquire loads. Individual metric values
//     are exact points in the update order; across metrics the snapshot
//     is only quiescently consistent (two counters incremented together
//     may be caught one-apart mid-update). Histogram snapshots preserve
//     the invariant sum(buckets) >= count (bucket cells are released
//     before the count), and are exact at quiescence.
//   * The histogram bucket geometry is shared with the serving layer's
//     LatencyHistogram (serve/metrics.hpp): bucket i counts values with
//     bit_width == i + 1, i.e. values in [2^i, 2^(i+1)), bucket 0 also
//     absorbing 0, and the last bucket absorbing everything at or above
//     2^(kHistogramBuckets-1).
//
// With STRUCTNET_OBS=OFF (see src/obs/CMakeLists.txt) the sharding and
// the tracing layer compile away; counters degrade to single plain
// atomics so surfaces built on them (ServeStats) stay correct.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef STRUCTNET_OBS_ENABLED
#define STRUCTNET_OBS_ENABLED 1
#endif

namespace structnet::obs {

/// Compile-time switch mirror of the STRUCTNET_OBS CMake option.
inline constexpr bool kEnabled = STRUCTNET_OBS_ENABLED != 0;

// ------------------------------------------------------ bucket geometry

inline constexpr std::size_t kHistogramBuckets = 40;

/// Bucket holding `value`: bit_width(value) - 1, clamped into the top
/// bucket; 0 for value == 0.
inline std::size_t histogram_bucket(std::uint64_t value) {
  const std::size_t width = std::bit_width(value);  // 0 for value == 0
  return width == 0 ? 0
                    : (width - 1 < kHistogramBuckets - 1 ? width - 1
                                                         : kHistogramBuckets - 1);
}

/// Exclusive upper edge of bucket i (2^(i+1)) — a hard bound for every
/// bucket except the last, which is open-ended.
inline std::uint64_t histogram_bucket_edge(std::size_t bucket) {
  return std::uint64_t{1} << (bucket + 1);
}

/// Nearest-rank quantile upper bound over bucketed counts: the value at
/// rank ceil(q * count) (clamped to [1, count]) is bounded above by its
/// bucket's upper edge — tightened by `max_value` (an upper bound on
/// every sample), which is also the only valid bound when the rank
/// falls in the open-ended last bucket (samples there may exceed the
/// edge). Returns 0 when count == 0.
std::uint64_t histogram_quantile_upper(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets,
    std::uint64_t count, std::uint64_t max_value, double q);

// -------------------------------------------------------------- metrics

namespace detail {
/// Per-thread shard slot, assigned round-robin on first use so threads
/// spread across counter cells without hashing.
std::uint32_t this_thread_shard();
}  // namespace detail

/// Monotone event counter. add() is lock-free; value() sums the shards
/// (exact at quiescence, a valid point value under concurrency).
class Counter {
 public:
#if STRUCTNET_OBS_ENABLED
  static constexpr std::size_t kShards = 16;  // power of two

  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::this_thread_shard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_acquire);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_{};
#else
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
#endif
};

/// Point-in-time signed level (queue depths, resident bytes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_release); }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// One histogram read: plain values, carries the derived statistics.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  double mean() const {
    return count == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(count);
  }
  std::uint64_t quantile_upper(double q) const {
    return histogram_quantile_upper(buckets, count, max, q);
  }
};

/// Power-of-two histogram of nonnegative samples (latencies in ns,
/// sizes in bytes). record() is lock-free: bucket cells are released
/// before the count so a concurrent snapshot never sees count exceed
/// the bucket sum.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
    bucket_[histogram_bucket(value)].fetch_add(1, std::memory_order_release);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (seen < value && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_acquire);
    s.sum = sum_.load(std::memory_order_acquire);
    s.max = max_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[i] = bucket_[i].load(std::memory_order_acquire);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> bucket_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// ------------------------------------------------------------- registry

/// A named-metric namespace. Metric objects are heap-pinned: references
/// returned by counter()/gauge()/histogram() stay valid for the
/// registry's lifetime (the process, for global()).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /// Value of a named counter / gauge, 0 when absent (entries are
    /// name-sorted; this is a binary search).
    std::uint64_t counter_value(std::string_view name) const;
    std::int64_t gauge_value(std::string_view name) const;
    const HistogramSnapshot* histogram_snapshot(std::string_view name) const;
  };

  /// Reads every registered metric (name-sorted). See header note for
  /// the consistency contract.
  Snapshot snapshot() const;

  /// Emits one JSON line per metric: {"metrics": <label>, "name": ...,
  /// "value": ...} for counters/gauges, count/mean/p50/p99/max fields
  /// for histograms. Lines start with '{' like BENCH lines, keyed
  /// "metrics" instead of "bench".
  void emit_json(std::ostream& os, std::string_view label = "registry") const;

  /// The process-wide registry the instrumented layers (stream,
  /// temporal, parallel, fault) publish into. Never destroyed, so
  /// worker threads can update counters during static teardown.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;  // registration + iteration; never on update paths
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Dumps the global registry as JSON lines — the end-of-run hook the
/// bench binaries call so kernel/pool/IO counters land in the BENCH
/// stream.
void emit_json(std::ostream& os);

}  // namespace structnet::obs
