#include "obs/trace.hpp"

#if STRUCTNET_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>

namespace structnet::obs {

namespace {

std::atomic<TraceSink*> g_active_sink{nullptr};

/// Events buffered per thread between sink flushes. Small enough to
/// stay cache-resident, large enough that a flush (one sink mutex
/// acquisition) amortizes over many spans.
constexpr std::size_t kFlushThreshold = 256;

struct ThreadTraceBuffer {
  std::vector<TraceEvent> buf;
  std::uint32_t tid;
  std::uint32_t depth = 0;

  ThreadTraceBuffer() {
    static std::atomic<std::uint32_t> next_tid{0};
    tid = next_tid.fetch_add(1, std::memory_order_relaxed);
    buf.reserve(kFlushThreshold);
  }
  ~ThreadTraceBuffer() { flush(); }

  void flush() {
    if (buf.empty()) return;
    if (TraceSink* sink = g_active_sink.load(std::memory_order_acquire)) {
      sink->append(buf.data(), buf.size());
    }
    buf.clear();
  }
};

ThreadTraceBuffer& tl_buffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool trace_enabled() {
  return g_active_sink.load(std::memory_order_relaxed) != nullptr;
}

namespace detail {

std::uint64_t span_begin() {
  if (g_active_sink.load(std::memory_order_relaxed) == nullptr) return 0;
  ++tl_buffer().depth;
  const std::uint64_t t = now_ns();
  return t == 0 ? 1 : t;  // 0 is the "inactive" sentinel
}

void span_end(const char* name, std::uint64_t start_ns) {
  const std::uint64_t end = now_ns();
  ThreadTraceBuffer& tl = tl_buffer();
  if (tl.depth > 0) --tl.depth;
  TraceEvent ev;
  ev.name = name;
  ev.tid = tl.tid;
  ev.depth = tl.depth;
  ev.start_ns = start_ns;
  ev.dur_ns = end > start_ns ? end - start_ns : 0;
  tl.buf.push_back(ev);
  // Flush on buffer pressure and whenever nesting unwinds to the top,
  // so a quiesced process has every completed span in the sink.
  if (tl.buf.size() >= kFlushThreshold || tl.depth == 0) tl.flush();
}

}  // namespace detail

TraceSink::TraceSink(std::size_t max_events)
    : cap_(max_events), t0_(now_ns()) {
  events_.reserve(std::min<std::size_t>(max_events, 4096));
}

TraceSink::~TraceSink() {
  TraceSink* self = this;
  g_active_sink.compare_exchange_strong(self, nullptr,
                                        std::memory_order_acq_rel);
}

void TraceSink::install() {
  g_active_sink.store(this, std::memory_order_release);
}

void TraceSink::uninstall() {
  g_active_sink.store(nullptr, std::memory_order_release);
}

void TraceSink::append(const TraceEvent* ev, std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    if (events_.size() >= cap_) {
      dropped_ += n - i;
      return;
    }
    events_.push_back(ev[i]);
  }
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::string TraceSink::chrome_trace_json() const {
  const std::vector<TraceEvent> evs = events();
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : evs) {
    const double ts_us =
        ev.start_ns >= t0_ ? static_cast<double>(ev.start_ns - t0_) / 1e3 : 0.0;
    const double dur_us = static_cast<double>(ev.dur_ns) / 1e3;
    // Span names are identifier-like literals (see trace.hpp), so no
    // JSON escaping is needed beyond trusting the instrumentation.
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\": \"%s\", \"ph\": \"X\", \"pid\": 1, "
                  "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                  "\"args\": {\"depth\": %u}}",
                  first ? "" : ", ", ev.name, ev.tid, ts_us, dur_us, ev.depth);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

std::vector<SpanStats> TraceSink::aggregate() const {
  const std::vector<TraceEvent> evs = events();
  std::map<std::string, SpanStats> by_name;
  for (const TraceEvent& ev : evs) {
    SpanStats& s = by_name[ev.name];
    if (s.count == 0) s.name = ev.name;
    ++s.count;
    s.total_ns += ev.dur_ns;
    s.max_ns = std::max(s.max_ns, ev.dur_ns);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  return out;
}

}  // namespace structnet::obs

#endif  // STRUCTNET_OBS_ENABLED
