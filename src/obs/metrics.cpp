#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "util/json_line.hpp"

namespace structnet::obs {

namespace detail {

std::uint32_t this_thread_shard() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace detail

std::uint64_t histogram_quantile_upper(
    const std::array<std::uint64_t, kHistogramBuckets>& buckets,
    std::uint64_t count, std::uint64_t max_value, double q) {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest rank r with r >= q * count, at least 1.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  rank = std::max<std::uint64_t>(1, std::min(rank, count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == kHistogramBuckets - 1) {
        // Open-ended bucket: samples may exceed the nominal edge, so the
        // only always-valid upper bound is the recorded maximum.
        return max_value;
      }
      // A hard bucket edge, tightened by the distribution's maximum.
      return std::min(histogram_bucket_edge(i), max_value);
    }
  }
  return max_value;  // unreachable when counts are consistent
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

namespace {

template <typename Vec>
auto find_named(const Vec& v, std::string_view name) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), name,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  return it != v.end() && it->first == name ? it : v.end();
}

}  // namespace

std::uint64_t MetricsRegistry::Snapshot::counter_value(
    std::string_view name) const {
  const auto it = find_named(counters, name);
  return it == counters.end() ? 0 : it->second;
}

std::int64_t MetricsRegistry::Snapshot::gauge_value(
    std::string_view name) const {
  const auto it = find_named(gauges, name);
  return it == gauges.end() ? 0 : it->second;
}

const HistogramSnapshot* MetricsRegistry::Snapshot::histogram_snapshot(
    std::string_view name) const {
  const auto it = find_named(histograms, name);
  return it == histograms.end() ? nullptr : &it->second;
}

void MetricsRegistry::emit_json(std::ostream& os,
                                std::string_view label) const {
  const Snapshot s = snapshot();
  for (const auto& [name, value] : s.counters) {
    JsonLineWriter line;
    line.field("metrics", label)
        .field("name", name)
        .field("type", "counter")
        .field("value", value);
    line.emit(os);
  }
  for (const auto& [name, value] : s.gauges) {
    JsonLineWriter line;
    line.field("metrics", label)
        .field("name", name)
        .field("type", "gauge")
        .field("value", static_cast<std::uint64_t>(value < 0 ? 0 : value));
    line.emit(os);
  }
  for (const auto& [name, h] : s.histograms) {
    JsonLineWriter line;
    line.field("metrics", label)
        .field("name", name)
        .field("type", "histogram")
        .field("count", h.count)
        .field("mean", h.mean())
        .field("p50", h.quantile_upper(0.50))
        .field("p99", h.quantile_upper(0.99))
        .field("max", h.max);
    line.emit(os);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: instrumented layers (the leaked ThreadPool's
  // workers included) may bump counters during static teardown.
  static auto* g = new MetricsRegistry();
  return *g;
}

void emit_json(std::ostream& os) {
  MetricsRegistry::global().emit_json(os, "global");
}

}  // namespace structnet::obs
