// Synthetic online-session workload for the interval-graph experiments
// (E1): each user logs in `sessions` times over a horizon; each session
// lasts an exponential duration. This is the laptop-scale stand-in for an
// online-social-network presence trace.
#pragma once

#include <vector>

#include "intersection/interval_graph.hpp"
#include "util/rng.hpp"

namespace structnet {

struct SessionModel {
  std::size_t users = 100;
  std::size_t sessions_per_user = 3;  // intervals per user
  double horizon = 1000.0;            // sessions start uniformly in [0, horizon)
  double mean_duration = 10.0;        // exponential session length
};

/// One interval set per user.
std::vector<std::vector<Interval>> generate_sessions(const SessionModel& model,
                                                     Rng& rng);

/// Flattens per-user interval sets into a single list, with `owner[i]`
/// giving the user of flattened interval i.
std::vector<Interval> flatten_sessions(
    const std::vector<std::vector<Interval>>& sessions,
    std::vector<VertexId>* owner = nullptr);

}  // namespace structnet
