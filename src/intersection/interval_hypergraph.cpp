#include "intersection/interval_hypergraph.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace structnet {

std::vector<Hyperedge> interval_hyperedges(
    std::span<const Interval> intervals) {
  const std::size_t n = intervals.size();
  // Sweep events: starts and ends. Active set changes only at events; the
  // active set immediately after each start is a candidate hyperedge. A
  // candidate is maximal iff no interval is added before one is removed
  // (i.e. the next event is an end), because adding only grows the set.
  struct Event {
    double time;
    bool is_start;
    VertexId v;
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back({intervals[i].start, true, static_cast<VertexId>(i)});
    events.push_back({intervals[i].end, false, static_cast<VertexId>(i)});
  }
  // At equal times, starts before ends (closed intervals touch).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.is_start && !b.is_start;
  });

  std::set<VertexId> active;
  std::vector<Hyperedge> out;
  std::set<Hyperedge> seen;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].is_start) {
      active.insert(events[i].v);
      // Maximal snapshot iff the next event is an end (or input exhausted).
      const bool next_is_end =
          i + 1 >= events.size() || !events[i + 1].is_start;
      if (next_is_end) {
        Hyperedge h(active.begin(), active.end());
        if (seen.insert(h).second) out.push_back(std::move(h));
      }
    } else {
      active.erase(events[i].v);
    }
  }
  assert(active.empty());
  return out;
}

CountHistogram hyperedge_cardinality_distribution(
    std::span<const Hyperedge> hyperedges) {
  CountHistogram hist;
  for (const Hyperedge& h : hyperedges) hist.add(h.size());
  return hist;
}

std::vector<std::size_t> activity_profile(std::span<const Interval> intervals,
                                          std::size_t samples) {
  std::vector<std::size_t> profile(samples, 0);
  if (intervals.empty() || samples == 0) return profile;
  double lo = intervals[0].start;
  double hi = intervals[0].end;
  for (const Interval& iv : intervals) {
    lo = std::min(lo, iv.start);
    hi = std::max(hi, iv.end);
  }
  const double span = hi - lo;
  for (std::size_t s = 0; s < samples; ++s) {
    const double t =
        lo + (samples == 1 ? 0.0
                           : span * static_cast<double>(s) /
                                 static_cast<double>(samples - 1));
    for (const Interval& iv : intervals) {
      if (iv.start <= t && t <= iv.end) ++profile[s];
    }
  }
  return profile;
}

}  // namespace structnet
