// Interval hypergraphs (Sec. II-A).
//
// When three users A, C, D are online at the same instant (Fig. 1 (a)),
// a pairwise edge under-represents the event; the paper proposes a
// hyperedge over all simultaneously-online users. By the Helly property
// of intervals, every set of pairwise-intersecting intervals shares a
// common point, so the maximal hyperedges are exactly the maximal sets of
// intervals active at some instant — computable by a sweep.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "intersection/interval_graph.hpp"
#include "util/histogram.hpp"

namespace structnet {

/// A hyperedge: the sorted set of vertices simultaneously active.
using Hyperedge = std::vector<VertexId>;

/// Maximal hyperedges of the interval hypergraph of one interval per
/// vertex: every maximal set of intervals sharing a common time point,
/// each reported once. Singleton hyperedges (isolated intervals) are
/// included.
std::vector<Hyperedge> interval_hyperedges(std::span<const Interval> intervals);

/// Hyperedge cardinality distribution (the paper's open question asks
/// what this distribution looks like for online social networks).
CountHistogram hyperedge_cardinality_distribution(
    std::span<const Hyperedge> hyperedges);

/// Edge density over time: for `samples` evenly spaced instants across
/// the spanned range, the number of active intervals at each instant.
std::vector<std::size_t> activity_profile(std::span<const Interval> intervals,
                                          std::size_t samples);

}  // namespace structnet
