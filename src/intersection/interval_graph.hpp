// Interval graphs and multiple-interval graphs (Sec. II-A).
//
// A line interval models one online session of a user; two users are
// linked when they were online simultaneously (Fig. 1 (a)/(b)). A user
// who is online several times carries several intervals: the
// multiple-interval graph of those sets models the full online social
// network.
#pragma once

#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// A closed interval [start, end] on the real line; start <= end.
struct Interval {
  double start = 0.0;
  double end = 0.0;

  bool intersects(const Interval& other) const {
    return start <= other.end && other.start <= end;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Intersection graph of one interval per vertex.
Graph interval_graph(std::span<const Interval> intervals);

/// Intersection graph of one interval *set* per vertex (edge iff any two
/// member intervals intersect). Vertices with empty sets are isolated.
Graph multiple_interval_graph(
    std::span<const std::vector<Interval>> interval_sets);

/// True iff `intervals` is an interval representation of g: the
/// intersection graph of `intervals` equals g edge-for-edge.
bool is_interval_representation(const Graph& g,
                                std::span<const Interval> intervals);

/// Builds an interval representation of an interval graph from a clique
/// order (for testing round-trips): given the graph's maximal cliques in a
/// consecutive arrangement, vertex v is assigned [first clique index,
/// last clique index]. Precondition: the arrangement is consecutive.
std::vector<Interval> representation_from_clique_order(
    const Graph& g, std::span<const std::vector<VertexId>> ordered_cliques);

}  // namespace structnet
