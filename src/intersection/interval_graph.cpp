#include "intersection/interval_graph.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace structnet {

Graph interval_graph(std::span<const Interval> intervals) {
  const std::size_t n = intervals.size();
  Graph g(n);
  // Sweep by start point: an interval only intersects intervals whose
  // start precedes its end. Sorting keeps this O(n log n + m).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return intervals[a].start < intervals[b].start;
  });
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = order[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::size_t b = order[j];
      if (intervals[b].start > intervals[a].end) break;
      g.add_edge(static_cast<VertexId>(std::min(a, b)),
                 static_cast<VertexId>(std::max(a, b)));
    }
  }
  return g;
}

Graph multiple_interval_graph(
    std::span<const std::vector<Interval>> interval_sets) {
  const std::size_t n = interval_sets.size();
  Graph g(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      bool hit = false;
      for (const Interval& ia : interval_sets[a]) {
        for (const Interval& ib : interval_sets[b]) {
          if (ia.intersects(ib)) {
            hit = true;
            break;
          }
        }
        if (hit) break;
      }
      if (hit) g.add_edge(static_cast<VertexId>(a), static_cast<VertexId>(b));
    }
  }
  return g;
}

bool is_interval_representation(const Graph& g,
                                std::span<const Interval> intervals) {
  if (intervals.size() != g.vertex_count()) return false;
  for (std::size_t a = 0; a < intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < intervals.size(); ++b) {
      const bool want = g.has_edge(static_cast<VertexId>(a),
                                   static_cast<VertexId>(b));
      if (want != intervals[a].intersects(intervals[b])) return false;
    }
  }
  return true;
}

std::vector<Interval> representation_from_clique_order(
    const Graph& g, std::span<const std::vector<VertexId>> ordered_cliques) {
  std::vector<Interval> rep(g.vertex_count(),
                            Interval{std::numeric_limits<double>::quiet_NaN(),
                                     std::numeric_limits<double>::quiet_NaN()});
  for (std::size_t c = 0; c < ordered_cliques.size(); ++c) {
    for (VertexId v : ordered_cliques[c]) {
      const double pos = static_cast<double>(c);
      if (std::isnan(rep[v].start)) {
        rep[v] = Interval{pos, pos};
      } else {
        rep[v].end = pos;
      }
    }
  }
  // Isolated vertices (in no clique) get disjoint unit slots far right.
  double slot = static_cast<double>(ordered_cliques.size()) + 1.0;
  for (auto& iv : rep) {
    if (std::isnan(iv.start)) {
      iv = Interval{slot, slot};
      slot += 2.0;
    }
  }
  return rep;
}

}  // namespace structnet
