// Unit-disk graph helpers beyond construction (which lives in
// core/generators.hpp): realization verification and the paper's star
// non-example.
//
// Sec. II-A: "A star graph with one center node and six or more leaves"
// is not a unit disk graph — six mutually non-adjacent unit disks cannot
// all touch a seventh. This module provides the predicate used by the
// tests that certify that fact on candidate realizations.
#pragma once

#include <span>
#include <vector>

#include "core/geometry.hpp"
#include "core/graph.hpp"

namespace structnet {

/// True iff the positions + radius realize exactly the edges of g.
bool is_unit_disk_realization(const Graph& g,
                              std::span<const Point2D> positions,
                              double radius);

/// Counts, for a UDG realization, the maximum number of mutually
/// non-adjacent neighbors any vertex has (in a UDG this is at most 5;
/// the bound underlies "no MIS exceeds 5x minimum CDS" in Sec. IV-A).
std::size_t max_independent_neighbors(const Graph& g);

}  // namespace structnet
