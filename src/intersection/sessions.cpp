#include "intersection/sessions.hpp"

namespace structnet {

std::vector<std::vector<Interval>> generate_sessions(const SessionModel& model,
                                                     Rng& rng) {
  std::vector<std::vector<Interval>> sessions(model.users);
  for (auto& set : sessions) {
    set.reserve(model.sessions_per_user);
    for (std::size_t s = 0; s < model.sessions_per_user; ++s) {
      const double start = rng.uniform(0.0, model.horizon);
      const double duration =
          model.mean_duration > 0.0
              ? rng.exponential(1.0 / model.mean_duration)
              : 0.0;
      set.push_back(Interval{start, start + duration});
    }
  }
  return sessions;
}

std::vector<Interval> flatten_sessions(
    const std::vector<std::vector<Interval>>& sessions,
    std::vector<VertexId>* owner) {
  std::vector<Interval> flat;
  if (owner != nullptr) owner->clear();
  for (std::size_t u = 0; u < sessions.size(); ++u) {
    for (const Interval& iv : sessions[u]) {
      flat.push_back(iv);
      if (owner != nullptr) owner->push_back(static_cast<VertexId>(u));
    }
  }
  return flat;
}

}  // namespace structnet
