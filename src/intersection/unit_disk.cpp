#include "intersection/unit_disk.hpp"

#include <algorithm>

namespace structnet {

bool is_unit_disk_realization(const Graph& g,
                              std::span<const Point2D> positions,
                              double radius) {
  if (positions.size() != g.vertex_count()) return false;
  const double r2 = radius * radius;
  for (std::size_t a = 0; a < positions.size(); ++a) {
    for (std::size_t b = a + 1; b < positions.size(); ++b) {
      const bool close = squared_distance(positions[a], positions[b]) <= r2;
      const bool edge = g.has_edge(static_cast<VertexId>(a),
                                   static_cast<VertexId>(b));
      if (close != edge) return false;
    }
  }
  return true;
}

std::size_t max_independent_neighbors(const Graph& g) {
  // For each vertex, greedily grow an independent set among its
  // neighbors, trying every neighbor as the seed. Exact for the small
  // neighborhood sizes we care about is unnecessary: greedy from every
  // seed gives the correct value whenever the true number is <= 6, which
  // is the regime the UDG bound concerns.
  std::size_t best = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(v));
    for (VertexId seed : nbrs) {
      std::vector<VertexId> indep{seed};
      for (VertexId w : nbrs) {
        if (w == seed) continue;
        bool ok = true;
        for (VertexId x : indep) {
          if (x == w || g.has_edge(x, w)) {
            ok = false;
            break;
          }
        }
        if (ok) indep.push_back(w);
      }
      best = std::max(best, indep.size());
    }
  }
  return best;
}

}  // namespace structnet
