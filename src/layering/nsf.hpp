// Embedded layering: nested scale-free (NSF) structure (Sec. III-B,
// citing NSFA [11]) and the level-labeling scheme of Sec. IV-A.
//
// G satisfies NSF if (1) G and every subgraph obtained by iteratively
// removing the local lowest-degree nodes satisfy the scale-free (SF)
// power-law property, and (2) the standard deviation of the power-law
// exponents across those subgraphs is o(1) ("similar in structure").
//
// The level labeling (Fig. 7 (b)): initially all nodes are unassigned;
// the adjusted degree of a node is its number of unassigned neighbors; in
// each round the nodes that are local minima in adjusted degree are
// assigned the current level. Local minimality is decided on the pair
// (adjusted degree, node id), which makes the process deterministic and
// guarantees progress even among ties.
#pragma once

#include <cstddef>
#include <vector>

#include "centrality/powerlaw.hpp"
#include "core/graph.hpp"

namespace structnet {

/// One peeling round: removes the current local lowest-degree vertices.
/// Returns the mask of surviving vertices (relative to g's numbering);
/// vertices already dead in `alive` stay dead.
std::vector<bool> peel_local_minimum_degree(const Graph& g,
                                            const std::vector<bool>& alive);

/// Iterated peeling until at most `stop_fraction` of the vertices remain
/// (e.g. 0.5 reproduces Fig. 3 (b)'s "top 50% peers"). Returns the
/// surviving masks after every round (last entry = final survivors).
std::vector<std::vector<bool>> peel_sequence(const Graph& g,
                                             double stop_fraction);

/// Level labels per Fig. 7 (b): level[v] >= 1 for every vertex; higher
/// levels are "more important" (assigned later). Returns the labels and
/// the number of rounds (= max level).
struct LevelLabeling {
  std::vector<std::uint32_t> level;
  std::uint32_t rounds = 0;
  /// Vertices holding the top level.
  std::vector<VertexId> top_nodes() const;
};
LevelLabeling nsf_level_labels(const Graph& g);

/// Plain degree-based labeling for the Fig. 7 (a) contrast: level = rank
/// class of raw degree (vertices of equal degree share a level; levels
/// ordered by increasing degree, starting at 1).
std::vector<std::uint32_t> degree_rank_labels(const Graph& g);

/// NSF verdict for a graph.
struct NsfReport {
  std::vector<PowerLawFit> fits;  // fit per peel round (index 0 = G itself)
  std::vector<std::size_t> sizes; // surviving vertex count per round
  double exponent_stddev = 0.0;
  bool all_scale_free = false;    // every round's fit passed the KS gate
};

/// Runs peel_sequence and fits a power law per round. A round "passes"
/// when its KS distance is below ks_threshold (default 0.15, a practical
/// gate at experiment scale). The per-round fits run one shard per round
/// on the parallel layer; `threads` is 0 = default (STRUCTNET_THREADS /
/// hardware), 1 = serial. Results are identical at any thread count.
NsfReport nsf_report(const Graph& g, double stop_fraction = 0.5,
                     double ks_threshold = 0.15, std::size_t threads = 0);

/// Degeneracy core numbers via bucket peeling: core[v] is the largest k
/// such that v belongs to a subgraph of minimum degree k. This is the
/// monotone cousin of the local-minimum peeling above and the quantity
/// the streaming engine maintains incrementally (a single edge update
/// moves core numbers by at most one).
std::vector<std::uint32_t> core_numbers(const Graph& g);

/// NSF membership induced by core numbers: the tightest core prefix that
/// still keeps at most `stop_fraction` of the alive vertices (e.g. 0.5 =
/// the "top 50% peers" view of Fig. 3 (b)). Deterministic in `core`, so
/// incremental and from-scratch trackers agree iff their cores agree.
std::vector<bool> core_membership(const std::vector<std::uint32_t>& core,
                                  const std::vector<bool>& alive,
                                  double stop_fraction);

}  // namespace structnet
