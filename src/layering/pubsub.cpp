#include "layering/pubsub.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace structnet {

HierarchicalPubSub::HierarchicalPubSub(const Graph& g,
                                       std::vector<std::uint32_t> level)
    : graph_(g), level_(std::move(level)) {
  assert(level_.size() == g.vertex_count());
}

std::vector<VertexId> HierarchicalPubSub::upward_path(VertexId v) const {
  std::vector<VertexId> path{v};
  VertexId cur = v;
  for (;;) {
    VertexId best = kInvalidVertex;
    auto key = [&](VertexId x) {
      return std::tuple(level_[x], graph_.degree(x), x);
    };
    for (VertexId w : graph_.neighbors(cur)) {
      if (level_[w] <= level_[cur]) continue;
      if (best == kInvalidVertex || key(w) > key(best)) best = w;
    }
    if (best == kInvalidVertex) break;
    path.push_back(best);
    cur = best;
  }
  return path;
}

HierarchicalPubSub::Delivery HierarchicalPubSub::deliver(
    VertexId publisher, VertexId subscriber) const {
  Delivery d;
  const auto push = upward_path(publisher);
  const auto pull = upward_path(subscriber);
  // Lowest meeting node: the earliest node of the push path that appears
  // anywhere on the pull path (brokers cache subscriptions on the way up).
  for (std::size_t i = 0; i < push.size(); ++i) {
    const auto it = std::find(pull.begin(), pull.end(), push[i]);
    if (it != pull.end()) {
      d.delivered = true;
      d.meeting_node = push[i];
      d.hops = i + static_cast<std::size_t>(it - pull.begin());
      return d;
    }
  }
  // Distinct local tops: join through the virtual external server (one
  // hop up from each top, per the paper's NSF assumption).
  d.delivered = true;
  d.used_external_server = true;
  d.meeting_node = kInvalidVertex;
  d.hops = (push.size() - 1) + (pull.size() - 1) + 2;
  return d;
}

}  // namespace structnet
