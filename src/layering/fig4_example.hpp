// The paper's Fig. 4 full-link-reversal example, reconstructed.
//
// The figure (not recoverable from the text) shows a destination-oriented
// DAG with destination D, the link (A, D) breaking, and a full
// link-reversal cascade through snapshots (a)-(e) in which node A
// reverses more than once. The reconstruction below reproduces exactly
// that behavior:
//
//   vertices  A, B, C, D (D = destination)
//   edges     (A,D) [breaks], (A,B), (B,C), (C,D)
//   heights   D = 0, A = 1, B = 2, C = 3
//
// After (A, D) breaks: A is a sink and reverses (height 3); B becomes a
// sink and reverses (height 4); A becomes a sink again and reverses
// (height 5); the orientation is destination-oriented once more. Four
// snapshots of change + the initial one = the figure's (a)-(e), with A
// reversing twice ("each node may be involved in multiple rounds of
// reversals, like node A in Fig. 4").
#pragma once

#include "core/graph.hpp"
#include "layering/link_reversal.hpp"

namespace structnet::fig4 {

inline constexpr VertexId A = 0;
inline constexpr VertexId B = 1;
inline constexpr VertexId C = 2;
inline constexpr VertexId D = 3;

/// The graph *after* the (A, D) link has broken.
Graph broken_graph();

/// The graph before the break (includes (A, D)).
Graph initial_graph();

/// Initial heights (D = 0, A = 1, B = 2, C = 3).
std::vector<double> initial_heights();

}  // namespace structnet::fig4
