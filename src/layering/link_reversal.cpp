#include "layering/link_reversal.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "algo/traversal.hpp"

namespace structnet {

std::vector<std::size_t> out_degrees(const Graph& g, const Orientation& o) {
  std::vector<std::size_t> out(g.vertex_count(), 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    ++out[o.towards_v[e] ? edge.u : edge.v];
  }
  return out;
}

bool is_destination_oriented_dag(const Graph& g, const Orientation& o,
                                 VertexId destination) {
  const std::size_t n = g.vertex_count();
  auto out = out_degrees(g, o);
  for (std::size_t v = 0; v < n; ++v) {
    if (v == destination) continue;
    if (g.degree(static_cast<VertexId>(v)) > 0 && out[v] == 0) return false;
  }
  if (g.degree(destination) > 0 && out[destination] != 0) return false;
  // Acyclicity via Kahn's algorithm on the oriented arcs.
  std::vector<std::size_t> in(n, 0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    ++in[o.towards_v[e] ? edge.v : edge.u];
  }
  std::deque<VertexId> zero;
  for (std::size_t v = 0; v < n; ++v) {
    if (in[v] == 0) zero.push_back(static_cast<VertexId>(v));
  }
  std::size_t seen = 0;
  // Arc adjacency on demand.
  std::vector<std::vector<VertexId>> succ(n);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    if (o.towards_v[e]) {
      succ[edge.u].push_back(edge.v);
    } else {
      succ[edge.v].push_back(edge.u);
    }
  }
  while (!zero.empty()) {
    const VertexId v = zero.front();
    zero.pop_front();
    ++seen;
    for (VertexId w : succ[v]) {
      if (--in[w] == 0) zero.push_back(w);
    }
  }
  return seen == n;
}

Orientation make_destination_oriented_dag(const Graph& g,
                                          VertexId destination) {
  const auto dist = bfs_distances(g, destination);
  Orientation o;
  o.towards_v.resize(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    const auto key = [&](VertexId v) {
      return std::pair<std::uint64_t, VertexId>(dist[v], v);
    };
    o.towards_v[e] = key(edge.u) > key(edge.v);  // higher points to lower
  }
  return o;
}

Orientation orientation_from_heights(const Graph& g,
                                     const std::vector<double>& heights) {
  assert(heights.size() == g.vertex_count());
  Orientation o;
  o.towards_v.resize(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    const auto key = [&](VertexId v) {
      return std::pair<double, VertexId>(heights[v], v);
    };
    o.towards_v[e] = key(edge.u) > key(edge.v);
  }
  return o;
}

namespace {

std::vector<VertexId> bad_sinks(const Graph& g, const Orientation& o,
                                VertexId destination) {
  const auto out = out_degrees(g, o);
  std::vector<VertexId> sinks;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (v != destination && g.degree(static_cast<VertexId>(v)) > 0 &&
        out[v] == 0) {
      sinks.push_back(static_cast<VertexId>(v));
    }
  }
  return sinks;
}

std::size_t default_round_bound(const Graph& g, std::size_t max_rounds) {
  if (max_rounds != 0) return max_rounds;
  return 4 * g.vertex_count() * g.vertex_count() + 16;
}

}  // namespace

ReversalStats full_reversal_by_heights(const Graph& g,
                                       std::vector<double>& heights,
                                       VertexId destination,
                                       Orientation& orientation,
                                       std::size_t max_rounds) {
  assert(heights.size() == g.vertex_count());
  ReversalStats stats;
  stats.reversals_of.assign(g.vertex_count(), 0);
  const std::size_t bound = default_round_bound(g, max_rounds);
  for (std::size_t round = 0; round < bound; ++round) {
    const auto sinks = bad_sinks(g, orientation, destination);
    if (sinks.empty()) {
      stats.converged = true;
      break;
    }
    ++stats.rounds;
    for (VertexId s : sinks) {
      double highest = -std::numeric_limits<double>::infinity();
      for (VertexId w : g.neighbors(s)) highest = std::max(highest, heights[w]);
      heights[s] = highest + 1.0;
      ++stats.node_reversals;
      ++stats.reversals_of[s];
      stats.link_reversals += g.degree(s);
    }
    orientation = orientation_from_heights(g, heights);
  }
  return stats;
}

BinaryLinkReversal::BinaryLinkReversal(const Graph& g, Orientation orientation,
                                       VertexId destination, ReversalMode mode)
    : graph_(g),
      orientation_(std::move(orientation)),
      label_(g.edge_count(), mode == ReversalMode::kFull),
      destination_(destination),
      incident_(g.vertex_count()) {
  assert(orientation_.towards_v.size() == g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    incident_[g.edge(e).u].push_back(e);
    incident_[g.edge(e).v].push_back(e);
  }
}

bool BinaryLinkReversal::done() const {
  return bad_sinks(graph_, orientation_, destination_).empty();
}

std::size_t BinaryLinkReversal::step() {
  std::size_t links_flipped = 0;
  const auto sinks = bad_sinks(graph_, orientation_, destination_);
  // Adjacent vertices cannot both be sinks (their shared link leaves one
  // of them), so simultaneous application is race-free.
  for (VertexId s : sinks) {
    bool any_zero = false;
    for (EdgeId e : incident_[s]) any_zero |= !label_[e];
    if (any_zero) {
      // Rule 1: reverse links labeled 0; flip every incident label.
      for (EdgeId e : incident_[s]) {
        if (!label_[e]) {
          orientation_.towards_v[e] = !orientation_.towards_v[e];
          ++links_flipped;
        }
        label_[e] = !label_[e];
      }
    } else {
      // Rule 2: reverse all incident links; labels unchanged.
      for (EdgeId e : incident_[s]) {
        orientation_.towards_v[e] = !orientation_.towards_v[e];
        ++links_flipped;
      }
    }
  }
  return links_flipped;
}

ReversalStats BinaryLinkReversal::run(std::size_t max_rounds) {
  ReversalStats stats;
  stats.reversals_of.assign(graph_.vertex_count(), 0);
  const std::size_t bound = default_round_bound(graph_, max_rounds);
  for (std::size_t round = 0; round < bound; ++round) {
    const auto sinks = bad_sinks(graph_, orientation_, destination_);
    if (sinks.empty()) {
      stats.converged = true;
      break;
    }
    ++stats.rounds;
    for (VertexId s : sinks) ++stats.reversals_of[s];
    stats.node_reversals += sinks.size();
    stats.link_reversals += step();
  }
  return stats;
}

}  // namespace structnet
