// Publish/subscribe over an NSF hierarchy (Sec. III-B): publications are
// *pushed up* the layered structure and subscriptions are *pulled down*;
// a publication meets a subscription at the lowest common node of their
// upward paths. Multiple unconnected top-level nodes are joined through a
// virtual external server, exactly as the paper assumes for NSF.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Broker overlay built from a graph and its level labels.
class HierarchicalPubSub {
 public:
  /// `level[v]` as produced by nsf_level_labels (higher = more central).
  HierarchicalPubSub(const Graph& g, std::vector<std::uint32_t> level);

  /// The strictly-upward path from v to its local top node: each hop
  /// moves to the incident neighbor with the highest (level, degree, id)
  /// key that is strictly higher-level than the current node.
  std::vector<VertexId> upward_path(VertexId v) const;

  /// Result of routing one publication to one subscriber.
  struct Delivery {
    bool delivered = false;
    std::size_t hops = 0;          // push hops + pull hops
    VertexId meeting_node = kInvalidVertex;
    bool used_external_server = false;  // tops joined via virtual root
  };

  /// Routes publisher -> subscriber along push/pull paths.
  Delivery deliver(VertexId publisher, VertexId subscriber) const;

  /// Messages a flooding broadcast would need (baseline: every edge once).
  std::size_t flooding_cost() const { return graph_.edge_count(); }

 private:
  const Graph& graph_;
  std::vector<std::uint32_t> level_;
};

}  // namespace structnet
