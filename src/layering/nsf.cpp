#include "layering/nsf.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/parallel.hpp"
#include "util/stats.hpp"

namespace structnet {

namespace {

/// Adjusted degree: number of alive neighbors.
std::vector<std::size_t> alive_degrees(const Graph& g,
                                       const std::vector<bool>& alive) {
  std::vector<std::size_t> deg(g.vertex_count(), 0);
  for (const Graph::Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  return deg;
}

/// Lexicographic (degree, id) local-minimum test among alive neighbors.
bool is_local_minimum(const Graph& g, const std::vector<bool>& alive,
                      const std::vector<std::size_t>& deg, VertexId v) {
  for (VertexId w : g.neighbors(v)) {
    if (!alive[w]) continue;
    if (deg[w] < deg[v] || (deg[w] == deg[v] && w < v)) return false;
  }
  return true;
}

}  // namespace

std::vector<bool> peel_local_minimum_degree(const Graph& g,
                                            const std::vector<bool>& alive) {
  assert(alive.size() == g.vertex_count());
  const auto deg = alive_degrees(g, alive);
  std::vector<bool> next = alive;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (alive[v] && is_local_minimum(g, alive, deg, static_cast<VertexId>(v))) {
      next[v] = false;
    }
  }
  return next;
}

std::vector<std::vector<bool>> peel_sequence(const Graph& g,
                                             double stop_fraction) {
  std::vector<std::vector<bool>> rounds;
  std::vector<bool> alive(g.vertex_count(), true);
  const auto target = static_cast<std::size_t>(
      stop_fraction * static_cast<double>(g.vertex_count()));
  std::size_t count = g.vertex_count();
  while (count > target && count > 0) {
    auto next = peel_local_minimum_degree(g, alive);
    const auto next_count =
        static_cast<std::size_t>(std::count(next.begin(), next.end(), true));
    if (next_count == count || next_count == 0) break;  // no progress / empty
    alive = std::move(next);
    count = next_count;
    rounds.push_back(alive);
  }
  return rounds;
}

std::vector<VertexId> LevelLabeling::top_nodes() const {
  std::vector<VertexId> tops;
  for (std::size_t v = 0; v < level.size(); ++v) {
    if (level[v] == rounds) tops.push_back(static_cast<VertexId>(v));
  }
  return tops;
}

LevelLabeling nsf_level_labels(const Graph& g) {
  LevelLabeling out;
  out.level.assign(g.vertex_count(), 0);
  std::vector<bool> unassigned(g.vertex_count(), true);
  std::size_t remaining = g.vertex_count();
  std::uint32_t level = 0;
  while (remaining > 0) {
    ++level;
    const auto deg = alive_degrees(g, unassigned);
    std::vector<VertexId> assign_now;
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      if (unassigned[v] &&
          is_local_minimum(g, unassigned, deg, static_cast<VertexId>(v))) {
        assign_now.push_back(static_cast<VertexId>(v));
      }
    }
    assert(!assign_now.empty() && "(degree, id) order guarantees progress");
    for (VertexId v : assign_now) {
      out.level[v] = level;
      unassigned[v] = false;
    }
    remaining -= assign_now.size();
  }
  out.rounds = level;
  return out;
}

std::vector<std::uint32_t> degree_rank_labels(const Graph& g) {
  std::vector<std::size_t> distinct = g.degrees();
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<std::uint32_t> label(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                     g.degree(static_cast<VertexId>(v)));
    label[v] = static_cast<std::uint32_t>(it - distinct.begin()) + 1;
  }
  return label;
}

std::vector<std::uint32_t> core_numbers(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> core(n, 0);
  if (n == 0) return core;
  std::vector<std::size_t> deg = g.degrees();
  const std::size_t max_deg = *std::max_element(deg.begin(), deg.end());
  // Bucket sort vertices by degree, then peel in non-decreasing order.
  std::vector<std::size_t> bucket_start(max_deg + 2, 0);
  for (std::size_t v = 0; v < n; ++v) ++bucket_start[deg[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);
  std::vector<std::size_t> position(n);
  {
    auto cursor = bucket_start;
    for (std::size_t v = 0; v < n; ++v) {
      position[v] = cursor[deg[v]]++;
      order[position[v]] = static_cast<VertexId>(v);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = static_cast<std::uint32_t>(deg[v]);
    for (VertexId w : g.neighbors(v)) {
      if (deg[w] <= deg[v]) continue;
      // Swap w to the front of its bucket, then shrink its degree.
      const std::size_t front = bucket_start[deg[w]];
      const VertexId at_front = order[front];
      std::swap(order[position[w]], order[front]);
      std::swap(position[w], position[at_front]);
      ++bucket_start[deg[w]];
      --deg[w];
    }
  }
  return core;
}

std::vector<bool> core_membership(const std::vector<std::uint32_t>& core,
                                  const std::vector<bool>& alive,
                                  double stop_fraction) {
  assert(core.size() == alive.size());
  std::size_t alive_count = 0;
  std::uint32_t max_core = 0;
  for (std::size_t v = 0; v < core.size(); ++v) {
    if (!alive[v]) continue;
    ++alive_count;
    max_core = std::max(max_core, core[v]);
  }
  const auto target = static_cast<std::size_t>(
      stop_fraction * static_cast<double>(alive_count));
  // Count alive vertices per core value, then find the smallest k whose
  // suffix count fits the target (falling back to the topmost core).
  std::vector<std::size_t> per_core(max_core + 1, 0);
  for (std::size_t v = 0; v < core.size(); ++v) {
    if (alive[v]) ++per_core[core[v]];
  }
  std::uint32_t k = max_core;
  std::size_t suffix = 0;
  for (std::uint32_t c = max_core;; --c) {
    if (suffix + per_core[c] > target) break;
    suffix += per_core[c];
    k = c;
    if (c == 0) break;
  }
  std::vector<bool> member(core.size(), false);
  for (std::size_t v = 0; v < core.size(); ++v) {
    member[v] = alive[v] && core[v] >= k;
  }
  return member;
}

NsfReport nsf_report(const Graph& g, double stop_fraction,
                     double ks_threshold, std::size_t threads) {
  NsfReport report;
  // Peeling is inherently sequential (each round depends on the last),
  // but once the masks exist, the per-round degree extraction and
  // power-law fit are independent — one shard per round.
  std::vector<std::vector<bool>> rounds;
  rounds.emplace_back(g.vertex_count(), true);
  for (auto& alive : peel_sequence(g, stop_fraction)) {
    rounds.push_back(std::move(alive));
  }
  report.sizes.resize(rounds.size());
  report.fits.resize(rounds.size());
  parallel_for(
      0, rounds.size(), /*grain=*/1,
      [&](std::size_t r) {
        const std::vector<bool>& alive = rounds[r];
        std::vector<std::size_t> deg;
        const auto all = alive_degrees(g, alive);
        for (std::size_t v = 0; v < g.vertex_count(); ++v) {
          if (alive[v]) deg.push_back(all[v]);
        }
        report.sizes[r] = deg.size();
        report.fits[r] = fit_power_law_auto_kmin(deg);
      },
      threads);

  RunningStats alpha_stats;
  report.all_scale_free = true;
  for (const PowerLawFit& fit : report.fits) {
    alpha_stats.add(fit.alpha);
    if (fit.ks > ks_threshold || fit.alpha <= 1.0) {
      report.all_scale_free = false;
    }
  }
  report.exponent_stddev = alpha_stats.stddev();
  return report;
}

}  // namespace structnet
