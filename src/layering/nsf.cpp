#include "layering/nsf.hpp"

#include <algorithm>
#include <cassert>

#include "util/stats.hpp"

namespace structnet {

namespace {

/// Adjusted degree: number of alive neighbors.
std::vector<std::size_t> alive_degrees(const Graph& g,
                                       const std::vector<bool>& alive) {
  std::vector<std::size_t> deg(g.vertex_count(), 0);
  for (const Graph::Edge& e : g.edges()) {
    if (alive[e.u] && alive[e.v]) {
      ++deg[e.u];
      ++deg[e.v];
    }
  }
  return deg;
}

/// Lexicographic (degree, id) local-minimum test among alive neighbors.
bool is_local_minimum(const Graph& g, const std::vector<bool>& alive,
                      const std::vector<std::size_t>& deg, VertexId v) {
  for (VertexId w : g.neighbors(v)) {
    if (!alive[w]) continue;
    if (deg[w] < deg[v] || (deg[w] == deg[v] && w < v)) return false;
  }
  return true;
}

}  // namespace

std::vector<bool> peel_local_minimum_degree(const Graph& g,
                                            const std::vector<bool>& alive) {
  assert(alive.size() == g.vertex_count());
  const auto deg = alive_degrees(g, alive);
  std::vector<bool> next = alive;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (alive[v] && is_local_minimum(g, alive, deg, static_cast<VertexId>(v))) {
      next[v] = false;
    }
  }
  return next;
}

std::vector<std::vector<bool>> peel_sequence(const Graph& g,
                                             double stop_fraction) {
  std::vector<std::vector<bool>> rounds;
  std::vector<bool> alive(g.vertex_count(), true);
  const auto target = static_cast<std::size_t>(
      stop_fraction * static_cast<double>(g.vertex_count()));
  std::size_t count = g.vertex_count();
  while (count > target && count > 0) {
    auto next = peel_local_minimum_degree(g, alive);
    const auto next_count =
        static_cast<std::size_t>(std::count(next.begin(), next.end(), true));
    if (next_count == count || next_count == 0) break;  // no progress / empty
    alive = std::move(next);
    count = next_count;
    rounds.push_back(alive);
  }
  return rounds;
}

std::vector<VertexId> LevelLabeling::top_nodes() const {
  std::vector<VertexId> tops;
  for (std::size_t v = 0; v < level.size(); ++v) {
    if (level[v] == rounds) tops.push_back(static_cast<VertexId>(v));
  }
  return tops;
}

LevelLabeling nsf_level_labels(const Graph& g) {
  LevelLabeling out;
  out.level.assign(g.vertex_count(), 0);
  std::vector<bool> unassigned(g.vertex_count(), true);
  std::size_t remaining = g.vertex_count();
  std::uint32_t level = 0;
  while (remaining > 0) {
    ++level;
    const auto deg = alive_degrees(g, unassigned);
    std::vector<VertexId> assign_now;
    for (std::size_t v = 0; v < g.vertex_count(); ++v) {
      if (unassigned[v] &&
          is_local_minimum(g, unassigned, deg, static_cast<VertexId>(v))) {
        assign_now.push_back(static_cast<VertexId>(v));
      }
    }
    assert(!assign_now.empty() && "(degree, id) order guarantees progress");
    for (VertexId v : assign_now) {
      out.level[v] = level;
      unassigned[v] = false;
    }
    remaining -= assign_now.size();
  }
  out.rounds = level;
  return out;
}

std::vector<std::uint32_t> degree_rank_labels(const Graph& g) {
  std::vector<std::size_t> distinct = g.degrees();
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<std::uint32_t> label(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                     g.degree(static_cast<VertexId>(v)));
    label[v] = static_cast<std::uint32_t>(it - distinct.begin()) + 1;
  }
  return label;
}

NsfReport nsf_report(const Graph& g, double stop_fraction,
                     double ks_threshold) {
  NsfReport report;
  auto fit_masked = [&](const std::vector<bool>& alive) {
    const auto deg = [&] {
      std::vector<std::size_t> d;
      const auto all = alive_degrees(g, alive);
      for (std::size_t v = 0; v < g.vertex_count(); ++v) {
        if (alive[v]) d.push_back(all[v]);
      }
      return d;
    }();
    report.sizes.push_back(deg.size());
    report.fits.push_back(fit_power_law_auto_kmin(deg));
  };

  std::vector<bool> all(g.vertex_count(), true);
  fit_masked(all);
  for (const auto& alive : peel_sequence(g, stop_fraction)) {
    fit_masked(alive);
  }

  RunningStats alpha_stats;
  report.all_scale_free = true;
  for (const PowerLawFit& fit : report.fits) {
    alpha_stats.add(fit.alpha);
    if (fit.ks > ks_threshold || fit.alpha <= 1.0) {
      report.all_scale_free = false;
    }
  }
  report.exponent_stddev = alpha_stats.stddev();
  return report;
}

}  // namespace structnet
