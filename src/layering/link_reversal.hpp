// Man-made layering: destination-oriented DAGs maintained by link
// reversal (Sec. III-B and IV-B).
//
// Three algorithms are provided on a shared oriented-graph state:
//   * full link reversal (Gafni-Bertsekas [16], height formulation):
//     a non-destination sink raises its height above its highest
//     neighbor, reversing every incident link;
//   * partial link reversal [16]: reverses only the links not reversed
//     since the node's last reversal;
//   * binary-label link reversal (Charron-Bost et al. [24]): each link
//     carries a bit; Rule 1 / Rule 2 as described in the paper. All
//     labels 1 = full reversal; all labels 0 = partial reversal.
// The binary-label machine is the single implementation; full/partial
// are initializations of it, exactly as the paper observes. An
// independent height-based full-reversal engine is kept for
// cross-checking and for replaying Fig. 4.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Orientation of an undirected graph: for edge e = (u, v) of g,
/// towards_v[e] == true means the link points u -> v.
struct Orientation {
  std::vector<bool> towards_v;

  bool points_from(const Graph& g, EdgeId e, VertexId from) const {
    return g.edge(e).u == from ? towards_v[e] : !towards_v[e];
  }
};

/// Out-degree of every vertex under an orientation.
std::vector<std::size_t> out_degrees(const Graph& g, const Orientation& o);

/// True iff the orientation is a destination-oriented DAG: acyclic and
/// the destination is the unique sink among vertices that have any edges
/// (in a DAG this implies every non-isolated vertex can reach the
/// destination).
bool is_destination_oriented_dag(const Graph& g, const Orientation& o,
                                 VertexId destination);

/// Builds an initial destination-oriented DAG by orienting every edge
/// from the endpoint with the larger (BFS distance to destination, id)
/// pair to the smaller. Requires the graph to be connected.
Orientation make_destination_oriented_dag(const Graph& g,
                                          VertexId destination);

/// Builds the orientation induced by explicit heights (higher points to
/// lower; ties broken by id). Heights need not be distinct.
Orientation orientation_from_heights(const Graph& g,
                                     const std::vector<double>& heights);

/// Statistics of one link-reversal run.
struct ReversalStats {
  std::size_t rounds = 0;           // synchronous rounds until DAG restored
  std::size_t node_reversals = 0;   // total reversal events
  std::size_t link_reversals = 0;   // total links flipped
  std::vector<std::size_t> reversals_of;  // events per node
  bool converged = false;
};

/// Height-based full link reversal: runs synchronous rounds (every
/// current non-destination sink reverses simultaneously) until the
/// orientation is destination-oriented again. `heights` is updated in
/// place; the returned orientation is the final one. Gives up after
/// `max_rounds` (0 = 4 * n^2 default bound) with converged == false.
ReversalStats full_reversal_by_heights(const Graph& g,
                                       std::vector<double>& heights,
                                       VertexId destination,
                                       Orientation& orientation,
                                       std::size_t max_rounds = 0);

enum class ReversalMode : std::uint8_t {
  kFull,     // all link labels initialized to 1
  kPartial,  // all link labels initialized to 0
};

/// Binary-label link-reversal machine.
class BinaryLinkReversal {
 public:
  BinaryLinkReversal(const Graph& g, Orientation orientation,
                     VertexId destination, ReversalMode mode);

  /// Executes one synchronous round: every non-destination sink applies
  /// Rule 1 or Rule 2. Returns the number of links reversed.
  std::size_t step();

  /// Runs rounds until the DAG is destination-oriented (or max_rounds,
  /// 0 = 4 * n^2 default).
  ReversalStats run(std::size_t max_rounds = 0);

  const Orientation& orientation() const { return orientation_; }
  const std::vector<bool>& labels() const { return label_; }
  bool done() const;

 private:
  const Graph& graph_;
  Orientation orientation_;
  std::vector<bool> label_;  // per edge id
  VertexId destination_;
  std::vector<std::vector<EdgeId>> incident_;  // edge ids per vertex
};

}  // namespace structnet
