// Simultaneous destination-oriented DAGs for multiple destinations
// (Sec. III-B: "A related challenge is finding an efficient way of
// maintaining DAGs simultaneously for multiple destinations").
//
// One height function per destination over a shared topology; a link
// failure triggers per-destination link-reversal repairs. The class
// reports the repair work so experiments can show how maintenance cost
// scales with the number of destinations.
#pragma once

#include <cstddef>
#include <vector>

#include "core/graph.hpp"
#include "layering/link_reversal.hpp"

namespace structnet {

class MultiDestinationDags {
 public:
  /// Builds one BFS-based destination-oriented DAG per destination.
  /// Requires g connected.
  MultiDestinationDags(Graph g, std::vector<VertexId> destinations);

  const Graph& graph() const { return graph_; }
  std::size_t destination_count() const { return destinations_.size(); }
  VertexId destination(std::size_t i) const { return destinations_[i]; }
  const Orientation& orientation(std::size_t i) const {
    return orientations_[i];
  }

  /// True iff every maintained orientation is destination-oriented.
  bool all_valid() const;

  struct RepairStats {
    std::size_t total_node_reversals = 0;
    std::size_t total_link_reversals = 0;
    std::size_t max_rounds = 0;       // slowest destination's repair
    std::size_t dags_touched = 0;     // destinations that needed any work
    bool converged = true;
  };

  /// Removes edge (u, v) from the shared topology and repairs every
  /// destination's DAG with full link reversal (binary-label machine,
  /// all-1 labels). Returns aggregate repair work. The edge must exist
  /// and the graph must stay connected (otherwise repairs for
  /// partitioned destinations cannot converge and `converged` is false).
  RepairStats fail_link(VertexId u, VertexId v);

 private:
  Graph graph_;
  std::vector<VertexId> destinations_;
  std::vector<Orientation> orientations_;
};

}  // namespace structnet
