#include "layering/multi_dag.hpp"

#include <algorithm>
#include <cassert>

namespace structnet {

MultiDestinationDags::MultiDestinationDags(Graph g,
                                           std::vector<VertexId> destinations)
    : graph_(std::move(g)), destinations_(std::move(destinations)) {
  orientations_.reserve(destinations_.size());
  for (VertexId d : destinations_) {
    orientations_.push_back(make_destination_oriented_dag(graph_, d));
  }
}

bool MultiDestinationDags::all_valid() const {
  for (std::size_t i = 0; i < destinations_.size(); ++i) {
    if (!is_destination_oriented_dag(graph_, orientations_[i],
                                     destinations_[i])) {
      return false;
    }
  }
  return true;
}

MultiDestinationDags::RepairStats MultiDestinationDags::fail_link(VertexId u,
                                                                  VertexId v) {
  // Rebuild the graph without (u, v), carrying each orientation across
  // by edge endpoints (edge ids shift after removal).
  Graph next(graph_.vertex_count());
  std::vector<Orientation> next_orient(destinations_.size());
  for (auto& o : next_orient) {
    o.towards_v.reserve(graph_.edge_count());
  }
  bool removed = false;
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const auto& edge = graph_.edge(e);
    if (!removed && ((edge.u == u && edge.v == v) ||
                     (edge.u == v && edge.v == u))) {
      removed = true;
      continue;
    }
    next.add_edge(edge.u, edge.v);
    for (std::size_t i = 0; i < destinations_.size(); ++i) {
      next_orient[i].towards_v.push_back(orientations_[i].towards_v[e]);
    }
  }
  assert(removed && "fail_link requires an existing edge");
  graph_ = std::move(next);
  orientations_ = std::move(next_orient);

  RepairStats stats;
  for (std::size_t i = 0; i < destinations_.size(); ++i) {
    if (is_destination_oriented_dag(graph_, orientations_[i],
                                    destinations_[i])) {
      continue;  // this DAG survived the failure untouched
    }
    ++stats.dags_touched;
    BinaryLinkReversal machine(graph_, orientations_[i], destinations_[i],
                               ReversalMode::kFull);
    const auto r = machine.run();
    orientations_[i] = machine.orientation();
    stats.total_node_reversals += r.node_reversals;
    stats.total_link_reversals += r.link_reversals;
    stats.max_rounds = std::max(stats.max_rounds, r.rounds);
    stats.converged &= r.converged;
  }
  return stats;
}

}  // namespace structnet
