#include "layering/fig4_example.hpp"

namespace structnet::fig4 {

Graph broken_graph() {
  Graph g(4);
  g.add_edge(A, B);
  g.add_edge(B, C);
  g.add_edge(C, D);
  return g;
}

Graph initial_graph() {
  Graph g(4);
  g.add_edge(A, D);
  g.add_edge(A, B);
  g.add_edge(B, C);
  g.add_edge(C, D);
  return g;
}

std::vector<double> initial_heights() { return {1.0, 2.0, 3.0, 0.0}; }

}  // namespace structnet::fig4
