#include "fault/robustness.hpp"

#include <algorithm>
#include <numeric>

#include "layering/nsf.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "util/rng.hpp"

namespace structnet {

namespace {

/// Largest connected component among alive vertices, straight off the
/// dynamic adjacency (no materialization).
std::size_t largest_alive_component(const DynamicGraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<bool> seen(n, false);
  std::vector<VertexId> stack;
  std::size_t best = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s] || !g.alive(s)) continue;
    std::size_t size = 0;
    seen[s] = true;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      ++size;
      for (const VertexId w : g.neighbors(v)) {
        if (!seen[w]) {
          seen[w] = true;
          stack.push_back(w);
        }
      }
    }
    best = std::max(best, size);
  }
  return best;
}

std::vector<VertexId> removal_order(const Graph& g, RemovalOrder order,
                                    std::uint64_t seed) {
  std::vector<VertexId> vertices(g.vertex_count());
  std::iota(vertices.begin(), vertices.end(), VertexId{0});
  switch (order) {
    case RemovalOrder::kRandom: {
      Rng rng(seed);
      rng.shuffle(vertices);
      break;
    }
    case RemovalOrder::kDegree:
      std::stable_sort(vertices.begin(), vertices.end(),
                       [&](VertexId a, VertexId b) {
                         return g.degree(a) != g.degree(b)
                                    ? g.degree(a) > g.degree(b)
                                    : a < b;
                       });
      break;
    case RemovalOrder::kCore: {
      const auto core = core_numbers(g);
      std::stable_sort(vertices.begin(), vertices.end(),
                       [&](VertexId a, VertexId b) {
                         if (core[a] != core[b]) return core[a] > core[b];
                         if (g.degree(a) != g.degree(b)) {
                           return g.degree(a) > g.degree(b);
                         }
                         return a < b;
                       });
      break;
    }
  }
  return vertices;
}

}  // namespace

std::string_view to_string(RemovalOrder order) {
  switch (order) {
    case RemovalOrder::kRandom:
      return "random";
    case RemovalOrder::kDegree:
      return "degree";
    case RemovalOrder::kCore:
      return "core";
  }
  return "unknown";
}

PercolationCurve percolation_curve(const Graph& g, RemovalOrder order,
                                   std::uint64_t seed, std::size_t samples,
                                   double nsf_stop_fraction) {
  PercolationCurve curve;
  curve.order = order;
  const std::size_t n = g.vertex_count();
  const auto victims = removal_order(g, order, seed);

  StreamEngine engine{DynamicGraph(g)};
  CoreObserver cores(nsf_stop_fraction);
  engine.attach(&cores);

  const std::size_t step = std::max<std::size_t>(1, samples ? n / samples : n);
  const auto sample = [&](std::size_t removed) {
    const DynamicGraph& dg = engine.graph();
    curve.removed.push_back(removed);
    curve.fraction_removed.push_back(
        n == 0 ? 0.0
               : static_cast<double>(removed) / static_cast<double>(n));
    curve.largest_component.push_back(largest_alive_component(dg));
    const auto members = cores.nsf_members(dg);
    curve.nsf_survivors.push_back(static_cast<std::size_t>(
        std::count(members.begin(), members.end(), true)));
  };

  sample(0);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    engine.apply(Event::node_leave(victims[i]));
    const std::size_t removed = i + 1;
    if (removed % step == 0 || removed == victims.size()) sample(removed);
  }
  return curve;
}

}  // namespace structnet
