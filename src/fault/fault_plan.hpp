// Deterministic, composable fault schedules layered over the temporal
// structures — the "unreliable world" the paper's Sec. III structures
// are supposed to survive.
//
// A FaultPlan describes WHAT goes wrong and WHEN, decoupled from the
// structure it degrades:
//
//   * per-contact transmission loss with probability p: whether contact
//     (u, v, t) is lost is a pure splitmix hash of (seed, {u, v}, t) —
//     never of draw order — so any evaluation order, any thread count,
//     and any subset of queries observe the same faults;
//   * link blackout windows [from, until): the link (or every link,
//     when u == kInvalidVertex) transmits nothing during the window;
//   * node outages [from, until): a crashed node neither sends nor
//     receives until it recovers.
//
// Composition rule: a contact works iff both endpoints are up AND no
// blackout covers it AND the loss hash spares it — outages and
// blackouts are schedule (always bite), loss is stochastic (seeded).
//
// One plan serves two consumers:
//   * offline contact filter: degraded() maps a TemporalGraph or
//     TemporalCsr to the trace an analysis in the faulty world would
//     have seen (faulty contacts removed);
//   * online transmission hook: simulate_routing consults the plan per
//     handover; schedule faults suppress the contact outright, a loss
//     draw burns a transmission but delivers nothing (sim/dtn_routing).
//
// split(i) derives the plan for Monte-Carlo replica i: identical
// schedule, decorrelated loss draws (same derive_seed machinery as
// Rng::split), so parallel trial sweeps are bit-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

/// Link (u, v) transmits nothing during [from, until). u == kInvalidVertex
/// blacks out every link.
struct LinkBlackout {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  TimeUnit from = 0;
  TimeUnit until = 0;

  friend bool operator==(const LinkBlackout&, const LinkBlackout&) = default;
};

/// Node crashes at `from` and recovers at `until` (down during
/// [from, until)).
struct NodeOutage {
  VertexId node = kInvalidVertex;
  TimeUnit from = 0;
  TimeUnit until = 0;

  friend bool operator==(const NodeOutage&, const NodeOutage&) = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const { return seed_; }
  double contact_loss() const { return contact_loss_; }
  std::size_t outage_count() const { return outages_.size(); }
  std::size_t blackout_count() const {
    return link_blackouts_.size() + global_blackouts_.size();
  }

  /// Sets the per-contact transmission loss probability (clamped to
  /// [0, 1]). Returns *this for fluent composition.
  FaultPlan& set_contact_loss(double probability);
  FaultPlan& add_blackout(const LinkBlackout& window);
  FaultPlan& add_outage(const NodeOutage& outage);

  /// The plan for replica `stream`: same schedule, loss draws reseeded
  /// with derive_seed(seed(), stream) — decorrelated and independent of
  /// how many replicas run or in what order.
  FaultPlan split(std::uint64_t stream) const;

  /// True iff v is not inside any outage window at time t.
  bool node_up(VertexId v, TimeUnit t) const;
  /// True iff both endpoints are up and no blackout covers (u, v) at t.
  /// This is the schedule part of the plan — deterministic, seed-free.
  bool link_up(VertexId u, VertexId v, TimeUnit t) const;
  /// Seeded loss draw for contact (u, v, t): a pure function of
  /// (seed, {u, v}, t). Symmetric in u, v.
  bool transmission_lost(VertexId u, VertexId v, TimeUnit t) const;
  /// Full composition: link_up && !transmission_lost.
  bool contact_works(VertexId u, VertexId v, TimeUnit t) const {
    return link_up(u, v, t) && !transmission_lost(u, v, t);
  }

  /// The degraded trace: every contact the plan faults is removed.
  /// Edges whose label sets empty out are dropped entirely, so edge ids
  /// of the degraded copy need not match the source's.
  TemporalGraph degraded(const TemporalGraph& trace) const;
  /// Same filter over a prebuilt contact index (same result as
  /// degrading the TemporalGraph the index was built from).
  TemporalGraph degraded(const TemporalCsr& trace) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::uint64_t seed_ = 0;
  double contact_loss_ = 0.0;
  // Kept sorted on insert — (node, from) / (min endpoint, max endpoint,
  // from) — so queries are a binary search plus a short scan and const
  // queries stay safely concurrent (no lazy mutation).
  std::vector<NodeOutage> outages_;
  std::vector<LinkBlackout> link_blackouts_;
  std::vector<LinkBlackout> global_blackouts_;
};

}  // namespace structnet
