#include "fault/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "core/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace structnet {

namespace {

constexpr std::string_view kMagic = "structnet-checkpoint 1";

/// Splits `line` into exactly `count` unsigned fields. Returns an empty
/// string on success, else the reason.
std::string parse_fields(const std::string& line, std::uint64_t* out,
                         std::size_t count) {
  const char* p = line.data();
  const char* end = p + line.size();
  for (std::size_t i = 0; i < count; ++i) {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end) return "expected " + std::to_string(count) + " fields";
    const auto [next, ec] = std::from_chars(p, end, out[i]);
    if (ec == std::errc::result_out_of_range) return "number out of range";
    if (ec != std::errc() || (next < end && *next != ' ' && *next != '\t')) {
      return "invalid number";
    }
    p = next;
  }
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
  if (p != end) return "trailing data";
  return {};
}

bool fits_u32(std::uint64_t x) {
  return x <= std::numeric_limits<std::uint32_t>::max();
}

// Minimum serialized footprint of one record, used to reject declared
// counts no seekable stream could back: an edge line is at least
// "0 1\n" and an event line at least "0 0 0 0 0\n"; the final line may
// lack its newline, so the per-record floors drop by one.
constexpr std::uint64_t kMinEdgeLineBytes = 3;
constexpr std::uint64_t kMinEventLineBytes = 9;

/// Bytes left between the stream's current position and its end, or
/// nullopt when the stream is not seekable (pipes): callers skip the
/// size-based sanity caps then.
std::optional<std::uint64_t> remaining_bytes(std::istream& is) {
  const auto cur = is.tellg();
  if (cur < 0) {
    is.clear();
    return std::nullopt;
  }
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(cur);
  if (end < 0 || end < cur || !is) {
    is.clear();
    is.seekg(cur);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - cur);
}

}  // namespace

void write_checkpoint(std::ostream& os, const StreamEngine& engine) {
  STRUCTNET_OBS_SPAN("fault.checkpoint_write");
  static obs::Counter& writes =
      obs::MetricsRegistry::global().counter("fault.checkpoint_writes");
  writes.add();
  const DynamicGraph& g = engine.graph();
  const Graph initial = g.snapshot_at(0).materialize();
  os << kMagic << '\n';
  os << initial.vertex_count() << ' ' << initial.edge_count() << ' '
     << g.epoch() << ' ' << engine.accepted() << ' ' << engine.rejected()
     << '\n';
  const auto& counts = engine.reject_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    os << counts[i] << (i + 1 < counts.size() ? ' ' : '\n');
  }
  for (const Graph::Edge& e : initial.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
  for (const Event& ev : g.log()) {
    os << static_cast<unsigned>(ev.kind) << ' ' << ev.u << ' ' << ev.v << ' '
       << ev.time << ' ' << ev.new_time << '\n';
  }
}

CheckpointResult read_checkpoint(std::istream& is) {
  STRUCTNET_OBS_SPAN("fault.checkpoint_read");
  static obs::Counter& reads =
      obs::MetricsRegistry::global().counter("fault.checkpoint_reads");
  reads.add();
  CheckpointResult result;
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](std::string why) {
    result.line = lineno;
    result.error = std::move(why);
    result.engine.reset();
    return result;
  };
  // Skips blank lines; false at end of stream.
  const auto next_line = [&]() {
    while (std::getline(is, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
    }
    ++lineno;
    return false;
  };

  if (!next_line()) return fail("missing magic line");
  if (line != kMagic) return fail("bad magic (want '" + std::string(kMagic) + "')");

  if (!next_line()) return fail("missing header (n0 m0 epoch accepted rejected)");
  std::uint64_t header[5];
  if (auto err = parse_fields(line, header, 5); !err.empty()) {
    return fail("header: " + err);
  }
  const auto [n0, m0, epoch, accepted, rejected] =
      std::tuple{header[0], header[1], header[2], header[3], header[4]};
  if (!fits_u32(n0)) return fail("header: vertex count exceeds 32-bit ids");
  if (n0 > kMaxCheckpointVertices) {
    return fail("header: vertex count " + std::to_string(n0) +
                " exceeds cap " + std::to_string(kMaxCheckpointVertices));
  }

  // Size-based sanity caps: every declared edge/event costs a minimum
  // number of bytes, so counts the remaining stream cannot possibly
  // back are rejected here — before the allocation and replay loops
  // below do O(count) work on attacker-declared numbers.
  if (const auto rem = remaining_bytes(is)) {
    if (m0 > 0 && m0 > *rem / kMinEdgeLineBytes) {
      return fail("header: edge count " + std::to_string(m0) +
                  " exceeds remaining file size");
    }
    if (epoch > 0 && epoch > *rem / kMinEventLineBytes) {
      return fail("header: event count " + std::to_string(epoch) +
                  " exceeds remaining file size");
    }
    if (m0 * kMinEdgeLineBytes + epoch * kMinEventLineBytes > *rem + 2) {
      return fail("header: declared counts exceed remaining file size");
    }
  }

  if (!next_line()) return fail("missing reject-count line");
  std::uint64_t raw_counts[kRejectReasonCount];
  if (auto err = parse_fields(line, raw_counts, kRejectReasonCount);
      !err.empty()) {
    return fail("reject counts: " + err);
  }
  std::array<std::uint64_t, kRejectReasonCount> counts{};
  for (std::size_t i = 0; i < kRejectReasonCount; ++i) counts[i] = raw_counts[i];

  Graph initial(static_cast<std::size_t>(n0));
  for (std::uint64_t i = 0; i < m0; ++i) {
    if (!next_line()) {
      return fail("truncated: expected " + std::to_string(m0) +
                  " initial edges, got " + std::to_string(i));
    }
    std::uint64_t uv[2];
    if (auto err = parse_fields(line, uv, 2); !err.empty()) {
      return fail("initial edge: " + err);
    }
    if (uv[0] >= n0 || uv[1] >= n0) return fail("initial edge: vertex out of range");
    if (uv[0] == uv[1]) return fail("initial edge: self loop");
    if (initial.add_edge_unique(static_cast<VertexId>(uv[0]),
                                static_cast<VertexId>(uv[1])) == kInvalidEdge) {
      return fail("initial edge: duplicate");
    }
  }

  DynamicGraph graph(initial);
  for (std::uint64_t i = 0; i < epoch; ++i) {
    if (!next_line()) {
      return fail("truncated: expected " + std::to_string(epoch) +
                  " logged events, got " + std::to_string(i));
    }
    std::uint64_t f[5];
    if (auto err = parse_fields(line, f, 5); !err.empty()) {
      return fail("event: " + err);
    }
    if (f[0] > static_cast<std::uint64_t>(EventKind::kNodeLeave)) {
      return fail("event: unknown kind " + std::to_string(f[0]));
    }
    if (!fits_u32(f[1]) || !fits_u32(f[2]) || !fits_u32(f[3]) ||
        !fits_u32(f[4])) {
      return fail("event: field exceeds 32-bit range");
    }
    const Event ev{static_cast<EventKind>(f[0]), static_cast<VertexId>(f[1]),
                   static_cast<VertexId>(f[2]), static_cast<TimeUnit>(f[3]),
                   static_cast<TimeUnit>(f[4])};
    // The log is exactly the accepted history; a replay rejection means
    // the checkpoint is internally inconsistent.
    if (!graph.apply(ev).accepted) {
      return fail("event: log replay rejected event " + std::to_string(i));
    }
  }

  StreamEngine engine{std::move(graph)};
  engine.restore_counters(accepted, rejected, counts);
  result.engine.emplace(std::move(engine));
  result.line = 0;
  result.error.clear();
  return result;
}

namespace detail {

bool atomic_write_file(const std::string& path, std::string_view payload,
                       std::string* error, std::size_t fail_after_bytes) {
  const auto fail = [&](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return fail("cannot open " + tmp + ": " + std::strerror(errno));
  }
  // Test seam: a simulated kill stops mid-write, leaving the partial
  // temp file behind — exactly what a real crash leaves. The target
  // path must be untouched in that case; that is the whole point of
  // writing to the side and renaming.
  const std::size_t to_write = std::min(payload.size(), fail_after_bytes);
  std::size_t off = 0;
  while (off < to_write) {
    const ssize_t n = ::write(fd, payload.data() + off, to_write - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("write to " + tmp + " failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (to_write < payload.size()) {
    ::close(fd);
    return fail("simulated crash after " + std::to_string(to_write) +
                " bytes");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return fail("fsync " + tmp + " failed: " + std::strerror(errno));
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return fail("rename to " + path + " failed: " + ec.message());
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace detail

bool write_checkpoint_file(const std::string& path, const StreamEngine& engine,
                           std::string* error) {
  STRUCTNET_OBS_SPAN("fault.checkpoint_write_file");
  std::ostringstream payload;
  write_checkpoint(payload, engine);
  const bool ok = detail::atomic_write_file(path, payload.view(), error);
  obs::MetricsRegistry::global()
      .counter(ok ? "fault.checkpoint_file_writes"
                  : "fault.checkpoint_file_write_failures")
      .add();
  return ok;
}

CheckpointResult read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CheckpointResult result;
    result.error = "cannot open " + path;
    return result;
  }
  return read_checkpoint(in);
}

}  // namespace structnet
