// Durable write-ahead log for the streaming engine — the event log as
// bytes on disk, so accepted events survive a process crash.
//
// A DynamicGraph is fully determined by its epoch-0 state plus the
// accepted-event log (the same observation the text checkpoint exploits);
// the WAL makes that log durable *incrementally*: one binary record per
// accepted event, appended as the event commits, so recovery replays
// "checkpoint + WAL suffix" instead of losing everything since the last
// full checkpoint.
//
// Segment format (binary, little-endian):
//
//   header   : 8-byte magic "SNWAL001" + u64 first_index
//   record   : u32 payload length | u32 CRC32C(length bytes ‖ payload)
//              | payload (17 bytes: kind u8, u u32, v u32, time u32,
//                new_time u32)
//
// `first_index` is the 0-based position of the segment's first record in
// the engine's global accepted-event sequence (== the epoch the engine
// was at when that record was logged), so a directory of segments chains
// into one contiguous event suffix and a checkpoint at epoch E anchors
// replay at record index E.
//
// The CRC covers the length prefix too: a corrupted length is detected
// as a bad CRC when enough bytes remain and as a torn tail when not.
// The recovery scan (scan_wal_segment / scan_wal) stops at the first
// invalid record — torn length prefix, torn payload, bad CRC, absurd
// length, undecodable event — and reports the reason, recovering
// deterministically to the longest valid record prefix. Per-reason stop
// counters land in the global metrics registry under "fault.wal.*".
// repair_wal() makes the disk match that prefix (truncate the tear,
// drop unreachable segments) so a WalAppender resumed at the recovered
// index extends the chain instead of stranding records behind the tear.
//
// WalAppender hooks the StreamEngine observer path: attach it FIRST so
// every accepted event is logged before any derived structure reacts to
// it. Appends buffer in memory and flush to the file descriptor every
// `group_commit` records (plus at every batch end and on sync()),
// optionally fsync'ing per flush; segments roll at a size threshold. IO
// failures throw WalIoError — the serving layer treats that as an
// update-path fault and degrades (serve/health.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "stream/observer.hpp"

namespace structnet {

/// CRC32C (Castagnoli) of `len` bytes, seedable for incremental use.
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

inline constexpr std::size_t kWalHeaderBytes = 16;
inline constexpr std::size_t kWalEventBytes = 17;
/// Every v1 record is the same size: 8-byte prefix + encoded event.
inline constexpr std::size_t kWalRecordBytes = 8 + kWalEventBytes;
inline constexpr std::string_view kWalMagic = "SNWAL001";

/// Fixed little-endian encoding of one event (kWalEventBytes bytes).
void wal_encode_event(const Event& event,
                      unsigned char out[kWalEventBytes]);
/// Decodes an encoded event; false when the kind byte is invalid.
bool wal_decode_event(const unsigned char* bytes, Event* out);

/// Why a segment scan stopped (kCleanEnd = consumed every byte).
enum class WalStop : std::uint8_t {
  kCleanEnd = 0,   // segment ends exactly at a record boundary
  kTornLength,     // 1-7 trailing bytes: truncated length/CRC prefix
  kTornPayload,    // declared length exceeds the remaining bytes
  kBadCrc,         // checksum mismatch (bit rot / corrupted length)
  kBadLength,      // absurd declared length (0 or > sanity cap)
  kBadEvent,       // CRC-valid bytes that do not decode to an event
  kBadHeader,      // missing/short/mismatched segment header
};
inline constexpr std::size_t kWalStopCount = 7;
std::string_view to_string(WalStop stop);

/// Thrown by WalAppender on IO failure (open/write/fsync/rename).
struct WalIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct WalConfig {
  /// Directory holding the segment files ("wal-<first_index>.seg").
  std::string dir;
  /// Roll to a fresh segment once the current one reaches this size.
  std::size_t segment_bytes = std::size_t{4} << 20;
  /// Flush (write + optional fsync) every N buffered records; 0 buffers
  /// until batch end / sync() — the group-commit knob.
  std::size_t group_commit = 1;
  /// fsync on every flush (durability) vs OS-buffered writes (speed).
  bool fsync_on_flush = true;
};

/// One scanned segment: the valid record prefix plus why the scan
/// stopped and how many bytes of the file that prefix covers.
struct WalSegmentScan {
  std::uint64_t first_index = 0;
  std::vector<Event> events;
  WalStop stop = WalStop::kCleanEnd;
  /// Offset one past the last valid record (== file size iff kCleanEnd).
  std::uint64_t valid_bytes = 0;
};
WalSegmentScan scan_wal_segment(const std::string& path);

/// Directory-level recovery scan: segments sorted by first_index and
/// chained into one contiguous event run. A torn/corrupt record or a
/// chain gap drops everything after it (deterministic longest valid
/// prefix); per-reason stop counts are tallied across segments.
struct WalRecovery {
  std::uint64_t first_index = 0;  // global index of events.front()
  std::vector<Event> events;
  std::size_t segments = 0;       // segment files seen
  std::size_t segments_used = 0;  // segments contributing events
  std::array<std::uint64_t, kWalStopCount> stops{};
  /// False when any used segment ended non-clean or the chain had a gap.
  bool clean = true;
  std::string detail;  // human-readable reason when !clean
};
WalRecovery scan_wal(const std::string& dir);

/// What repair_wal healed on disk.
struct WalRepair {
  std::size_t segments_truncated = 0;  // torn tails cut to valid prefix
  std::size_t segments_removed = 0;    // unreachable past the break point
  std::uint64_t bytes_discarded = 0;   // total bytes dropped either way
};

/// Heals the WAL directory so the recovered prefix can be EXTENDED:
/// truncates the first damaged segment back to its valid record prefix
/// and deletes every segment past the break (bad headers, chain gaps,
/// anything after a tear) — exactly the bytes a scan drops anyway.
/// Without this, a WalAppender resumed after recovery opens a new
/// segment BEHIND the damaged tail and the next scan stops at the old
/// tear, silently orphaning fully-durable post-recovery records;
/// recover() therefore repairs before it scans. Idempotent: a clean
/// directory is untouched.
WalRepair repair_wal(const std::string& dir);

/// Deletes segments whose every record index is below `min_index`
/// (covered by a durable checkpoint). The newest segment always stays.
/// Returns the number of segments removed.
std::size_t prune_wal_segments(const std::string& dir,
                               std::uint64_t min_index);

class WalAppender final : public StreamObserver {
 public:
  /// `next_index` is the global index the next appended record gets —
  /// the engine's epoch at attach time (recompute-on-attach adopts it
  /// automatically while the appender is still empty).
  explicit WalAppender(WalConfig config, std::uint64_t next_index = 0);
  ~WalAppender() override;  // best-effort flush; never throws
  WalAppender(const WalAppender&) = delete;
  WalAppender& operator=(const WalAppender&) = delete;

  // StreamObserver: logs every accepted event, flushes at batch ends.
  std::string_view name() const override { return "wal"; }
  void on_event(const DynamicGraph& g, const Event& event,
                const EventEffect& effect) override;
  void on_batch_end(const DynamicGraph& g) override;
  /// Attach-time sync: while nothing has been appended, adopts the
  /// graph's epoch as the next record index (a WAL cannot backfill
  /// history — pair it with a checkpoint at or above this epoch).
  void recompute(const DynamicGraph& g) override;

  /// Appends one record (buffered; flushed per group_commit). Throws
  /// WalIoError on IO failure.
  void append(const Event& event);
  /// Flushes buffered records and fsyncs the segment. Throws WalIoError.
  void sync();

  std::uint64_t next_index() const { return next_index_; }
  std::uint64_t appended() const { return appended_; }
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t segments_opened() const { return segments_opened_; }
  const WalConfig& config() const { return config_; }

 private:
  void open_segment();
  void flush_buffer(bool force_fsync);

  WalConfig config_;
  std::uint64_t next_index_ = 0;
  int fd_ = -1;
  std::string segment_path_;
  std::size_t segment_written_ = 0;  // bytes in the open segment
  std::vector<unsigned char> buffer_;
  std::size_t buffered_records_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t segments_opened_ = 0;
};

}  // namespace structnet
