#include "fault/fault_plan.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace structnet {

namespace {

std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

bool covers(TimeUnit from, TimeUnit until, TimeUnit t) {
  return from <= t && t < until;
}

}  // namespace

FaultPlan& FaultPlan::set_contact_loss(double probability) {
  contact_loss_ = std::clamp(probability, 0.0, 1.0);
  return *this;
}

FaultPlan& FaultPlan::add_blackout(const LinkBlackout& window) {
  if (window.u == kInvalidVertex || window.v == kInvalidVertex) {
    global_blackouts_.push_back(window);
    return *this;
  }
  LinkBlackout normalized = window;
  if (normalized.u > normalized.v) std::swap(normalized.u, normalized.v);
  const auto at = std::lower_bound(
      link_blackouts_.begin(), link_blackouts_.end(), normalized,
      [](const LinkBlackout& a, const LinkBlackout& b) {
        return std::tie(a.u, a.v, a.from) < std::tie(b.u, b.v, b.from);
      });
  link_blackouts_.insert(at, normalized);
  return *this;
}

FaultPlan& FaultPlan::add_outage(const NodeOutage& outage) {
  const auto at = std::lower_bound(
      outages_.begin(), outages_.end(), outage,
      [](const NodeOutage& a, const NodeOutage& b) {
        return std::tie(a.node, a.from) < std::tie(b.node, b.from);
      });
  outages_.insert(at, outage);
  return *this;
}

FaultPlan FaultPlan::split(std::uint64_t stream) const {
  FaultPlan child = *this;
  child.seed_ = derive_seed(seed_, stream);
  return child;
}

bool FaultPlan::node_up(VertexId v, TimeUnit t) const {
  auto it = std::lower_bound(
      outages_.begin(), outages_.end(), v,
      [](const NodeOutage& o, VertexId x) { return o.node < x; });
  for (; it != outages_.end() && it->node == v; ++it) {
    if (covers(it->from, it->until, t)) return false;
  }
  return true;
}

bool FaultPlan::link_up(VertexId u, VertexId v, TimeUnit t) const {
  if (!node_up(u, t) || !node_up(v, t)) return false;
  for (const LinkBlackout& b : global_blackouts_) {
    if (covers(b.from, b.until, t)) return false;
  }
  if (link_blackouts_.empty()) return true;
  VertexId lo = u, hi = v;
  if (lo > hi) std::swap(lo, hi);
  auto it = std::lower_bound(
      link_blackouts_.begin(), link_blackouts_.end(), std::pair{lo, hi},
      [](const LinkBlackout& b, const std::pair<VertexId, VertexId>& key) {
        return std::tie(b.u, b.v) < std::tie(key.first, key.second);
      });
  for (; it != link_blackouts_.end() && it->u == lo && it->v == hi; ++it) {
    if (covers(it->from, it->until, t)) return false;
  }
  return true;
}

bool FaultPlan::transmission_lost(VertexId u, VertexId v, TimeUnit t) const {
  if (contact_loss_ <= 0.0) return false;
  // Draw-order-free Bernoulli: hash (seed, {u, v}, t) to a uniform in
  // [0, 1) via the splitmix finalizer chain the Rng::split machinery
  // uses, so every consumer of the plan sees the same fault set.
  const std::uint64_t h = derive_seed(derive_seed(seed_, pair_key(u, v)), t);
  const double draw = static_cast<double>(h >> 11) * 0x1.0p-53;
  return draw < contact_loss_;
}

namespace {
obs::Counter& degraded_builds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("fault.degraded_builds");
  return c;
}
}  // namespace

TemporalGraph FaultPlan::degraded(const TemporalGraph& trace) const {
  STRUCTNET_OBS_SPAN("fault.degraded_build");
  degraded_builds_counter().add();
  TemporalGraph out(trace.vertex_count(), trace.horizon());
  for (const auto& edge : trace.edges()) {
    for (const TimeUnit t : edge.labels) {
      if (contact_works(edge.u, edge.v, t)) out.add_contact(edge.u, edge.v, t);
    }
  }
  return out;
}

TemporalGraph FaultPlan::degraded(const TemporalCsr& trace) const {
  STRUCTNET_OBS_SPAN("fault.degraded_build");
  degraded_builds_counter().add();
  TemporalGraph out(trace.vertex_count(), trace.horizon());
  for (EdgeId e = 0; e < trace.edge_count(); ++e) {
    const VertexId u = trace.edge_u(e);
    const VertexId v = trace.edge_v(e);
    for (const TimeUnit t : trace.edge_labels(e)) {
      if (contact_works(u, v, t)) out.add_contact(u, v, t);
    }
  }
  return out;
}

}  // namespace structnet
