// Static robustness kernels: node-removal percolation curves.
//
// How fast do the paper's useful structures dissolve when nodes die?
// percolation_curve() removes vertices one at a time — uniformly at
// random, or targeted at hubs (static degree order) or at the dense
// backbone (core-number order) — and samples two survival series:
//
//   * largest alive connected component (the classic percolation
//     observable);
//   * surviving NSF membership (core_membership of the live cores,
//     the "top stop_fraction peers" layer of Fig. 3 (b)).
//
// Removals are driven through a StreamEngine as NodeLeave events with
// the incremental CoreObserver attached, so the NSF series costs the
// incremental repair work per removal instead of a from-scratch core
// decomposition per sample — the same machinery the churn tests gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

enum class RemovalOrder : std::uint8_t {
  kRandom,  // uniform shuffle (seeded)
  kDegree,  // static degree, hubs first (ties by id)
  kCore,    // core number, densest first (ties by degree then id)
};

std::string_view to_string(RemovalOrder order);

/// One sampled survival curve. Entry 0 is the intact graph; the last
/// entry has every vertex removed.
struct PercolationCurve {
  RemovalOrder order = RemovalOrder::kRandom;
  std::vector<std::size_t> removed;            // cumulative removals
  std::vector<double> fraction_removed;        // removed / n
  std::vector<std::size_t> largest_component;  // LCC among alive vertices
  std::vector<std::size_t> nsf_survivors;      // alive NSF members
};

/// Removes every vertex of `g` in the given order, sampling the curve at
/// ~`samples` evenly spaced removal counts (plus the endpoints). `seed`
/// drives the kRandom shuffle (ignored otherwise); `nsf_stop_fraction`
/// is the CoreObserver's NSF membership knob.
PercolationCurve percolation_curve(const Graph& g, RemovalOrder order,
                                   std::uint64_t seed = 0,
                                   std::size_t samples = 20,
                                   double nsf_stop_fraction = 0.5);

}  // namespace structnet
