#include "fault/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace structnet {
namespace {

namespace fs = std::filesystem;

// Declared lengths above this are treated as corruption (kBadLength)
// rather than honored — a v1 record payload is 17 bytes, so anything
// near the cap is garbage, but the cap leaves headroom for future
// record kinds without a format bump.
constexpr std::uint32_t kMaxRecordLength = 1u << 16;

// CRC32C, Castagnoli polynomial (reflected 0x82F63B78), table-driven.
const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

void put_u64(unsigned char* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const unsigned char* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         static_cast<std::uint64_t>(get_u32(in + 4)) << 32;
}

std::string segment_name(std::uint64_t first_index) {
  // Zero-padded to 20 digits (max u64) so lexicographic directory order
  // equals numeric index order.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_index));
  return buf;
}

/// Parses "wal-<digits>.seg"; false for any other file name.
bool parse_segment_name(const std::string& name, std::uint64_t* index) {
  if (name.size() != 4 + 20 + 4 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".seg") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 4 + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *index = v;
  return true;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Segment files in `dir`, sorted by first_index ascending.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t index = 0;
    if (parse_segment_name(entry.path().filename().string(), &index)) {
      segments.emplace_back(index, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

obs::Counter& scan_stop_counter(WalStop stop) {
  // Pinned per-reason counters ("fault.wal.scan.<reason>"), resolved
  // eagerly under the magic-static lock so concurrent scans only ever
  // read the array.
  static const std::array<obs::Counter*, kWalStopCount> counters = [] {
    std::array<obs::Counter*, kWalStopCount> pinned{};
    for (std::size_t i = 0; i < kWalStopCount; ++i) {
      std::string name = "fault.wal.scan.";
      name += to_string(static_cast<WalStop>(i));
      pinned[i] = &obs::MetricsRegistry::global().counter(name);
    }
    return pinned;
  }();
  return *counters[static_cast<std::size_t>(stop)];
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void wal_encode_event(const Event& event, unsigned char out[kWalEventBytes]) {
  out[0] = static_cast<unsigned char>(event.kind);
  put_u32(out + 1, event.u);
  put_u32(out + 5, event.v);
  put_u32(out + 9, event.time);
  put_u32(out + 13, event.new_time);
}

bool wal_decode_event(const unsigned char* bytes, Event* out) {
  if (bytes[0] > static_cast<unsigned char>(EventKind::kNodeLeave)) {
    return false;
  }
  out->kind = static_cast<EventKind>(bytes[0]);
  out->u = get_u32(bytes + 1);
  out->v = get_u32(bytes + 5);
  out->time = get_u32(bytes + 9);
  out->new_time = get_u32(bytes + 13);
  return true;
}

std::string_view to_string(WalStop stop) {
  switch (stop) {
    case WalStop::kCleanEnd:
      return "clean_end";
    case WalStop::kTornLength:
      return "torn_length";
    case WalStop::kTornPayload:
      return "torn_payload";
    case WalStop::kBadCrc:
      return "bad_crc";
    case WalStop::kBadLength:
      return "bad_length";
    case WalStop::kBadEvent:
      return "bad_event";
    case WalStop::kBadHeader:
      return "bad_header";
  }
  return "unknown";
}

WalSegmentScan scan_wal_segment(const std::string& path) {
  STRUCTNET_OBS_SPAN("fault.wal.scan_segment");
  WalSegmentScan scan;

  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> bytes;
  if (in) {
    in.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    bytes.resize(size);
    if (size != 0) {
      in.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(size));
    }
  }
  if (!in || bytes.size() < kWalHeaderBytes ||
      std::memcmp(bytes.data(), kWalMagic.data(), kWalMagic.size()) != 0) {
    scan.stop = WalStop::kBadHeader;
    scan_stop_counter(scan.stop).add();
    return scan;
  }
  scan.first_index = get_u64(bytes.data() + 8);
  scan.valid_bytes = kWalHeaderBytes;

  std::size_t off = kWalHeaderBytes;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    if (remaining < 8) {
      scan.stop = WalStop::kTornLength;
      break;
    }
    const std::uint32_t length = get_u32(bytes.data() + off);
    const std::uint32_t crc = get_u32(bytes.data() + off + 4);
    if (length == 0 || length > kMaxRecordLength) {
      scan.stop = WalStop::kBadLength;
      break;
    }
    if (length > remaining - 8) {
      scan.stop = WalStop::kTornPayload;
      break;
    }
    // The CRC covers the length prefix and the payload so a flipped
    // length bit cannot redirect the checksum window undetected.
    std::uint32_t actual = crc32c(bytes.data() + off, 4);
    actual = crc32c(bytes.data() + off + 8, length, actual);
    if (actual != crc) {
      scan.stop = WalStop::kBadCrc;
      break;
    }
    Event event;
    if (length != kWalEventBytes ||
        !wal_decode_event(bytes.data() + off + 8, &event)) {
      scan.stop = WalStop::kBadEvent;
      break;
    }
    scan.events.push_back(event);
    off += 8 + length;
    scan.valid_bytes = off;
  }
  scan_stop_counter(scan.stop).add();
  return scan;
}

WalRecovery scan_wal(const std::string& dir) {
  STRUCTNET_OBS_SPAN("fault.wal.scan");
  const std::uint64_t start = now_ns();
  WalRecovery rec;

  const auto segments = list_segments(dir);
  rec.segments = segments.size();

  for (const auto& [index, path] : segments) {
    WalSegmentScan scan = scan_wal_segment(path);
    rec.stops[static_cast<std::size_t>(scan.stop)]++;
    if (scan.stop == WalStop::kBadHeader) {
      rec.clean = false;
      rec.detail = "unreadable segment header: " + path;
      break;
    }
    if (scan.first_index != index) {
      rec.clean = false;
      rec.detail = "segment name/header index mismatch: " + path;
      break;
    }
    if (rec.segments_used == 0) {
      rec.first_index = scan.first_index;
    } else if (scan.first_index != rec.first_index + rec.events.size()) {
      // Chain gap or overlap: everything from this segment on is not a
      // contiguous continuation of the recovered prefix.
      rec.clean = false;
      rec.detail = "segment chain gap at " + path;
      break;
    }
    rec.events.insert(rec.events.end(), scan.events.begin(),
                      scan.events.end());
    rec.segments_used++;
    if (scan.stop != WalStop::kCleanEnd) {
      rec.clean = false;
      rec.detail = std::string("segment ") + path + " stopped: " +
                   std::string(to_string(scan.stop));
      break;
    }
  }

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("fault.wal.scan.runs").add();
  registry.counter("fault.wal.scan.events").add(rec.events.size());
  registry.histogram("fault.wal.scan_ns").record(now_ns() - start);
  return rec;
}

std::size_t prune_wal_segments(const std::string& dir,
                               std::uint64_t min_index) {
  const auto segments = list_segments(dir);
  std::error_code ec;

  // Segment i's records all precede segment i+1's first_index, so it is
  // disposable iff the NEXT segment starts at or below min_index. The
  // last segment never qualifies (its tail may still be live).
  std::size_t removed = 0;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > min_index) break;
    if (fs::remove(segments[i].second, ec)) removed++;
  }
  if (removed != 0) {
    obs::MetricsRegistry::global()
        .counter("fault.wal.segments_pruned")
        .add(removed);
  }
  return removed;
}

WalRepair repair_wal(const std::string& dir) {
  STRUCTNET_OBS_SPAN("fault.wal.repair");
  WalRepair rep;
  bool broken = false;         // break point hit: the rest is unreachable
  bool chained = false;        // at least one usable segment so far
  std::uint64_t expected = 0;  // next segment's required first_index
  for (const auto& [index, path] : list_segments(dir)) {
    std::error_code ec;
    if (!broken) {
      const WalSegmentScan scan = scan_wal_segment(path);
      const bool usable = scan.stop != WalStop::kBadHeader &&
                          scan.first_index == index &&
                          (!chained || scan.first_index == expected);
      if (usable) {
        chained = true;
        expected = scan.first_index + scan.events.size();
        if (scan.stop == WalStop::kCleanEnd) continue;
        // Torn/corrupt tail: cut the file back to its valid record
        // prefix so the segment ends clean and a resumed appender's
        // next segment (first_index == `expected`) extends the chain.
        const std::uint64_t size = fs::file_size(path, ec);
        if (!ec && size > scan.valid_bytes) {
          fs::resize_file(path, scan.valid_bytes, ec);
          if (!ec) {
            rep.segments_truncated++;
            rep.bytes_discarded += size - scan.valid_bytes;
          }
        }
        broken = true;  // records after the tear are gone either way
        continue;
      }
      broken = true;  // this segment itself is unusable: drop it too
    }
    std::error_code size_ec;
    const std::uint64_t size = fs::file_size(path, size_ec);
    if (fs::remove(path, ec)) {
      rep.segments_removed++;
      if (!size_ec) rep.bytes_discarded += size;
    }
  }
  if (rep.segments_truncated != 0 || rep.segments_removed != 0) {
    auto& registry = obs::MetricsRegistry::global();
    registry.counter("fault.wal.repair.segments_truncated")
        .add(rep.segments_truncated);
    registry.counter("fault.wal.repair.segments_removed")
        .add(rep.segments_removed);
    registry.counter("fault.wal.repair.bytes_discarded")
        .add(rep.bytes_discarded);
  }
  return rep;
}

WalAppender::WalAppender(WalConfig config, std::uint64_t next_index)
    : config_(std::move(config)), next_index_(next_index) {
  buffer_.reserve(kWalRecordBytes *
                  std::max<std::size_t>(config_.group_commit, 64));
}

WalAppender::~WalAppender() {
  try {
    if (buffered_records_ != 0) flush_buffer(config_.fsync_on_flush);
  } catch (const WalIoError&) {
    // Destructor must not throw; the tail loss is what recovery handles.
  }
  if (fd_ >= 0) ::close(fd_);
}

void WalAppender::on_event(const DynamicGraph& g, const Event& event,
                           const EventEffect& effect) {
  (void)g;
  (void)effect;
  append(event);
}

void WalAppender::on_batch_end(const DynamicGraph& g) {
  (void)g;
  if (buffered_records_ != 0) flush_buffer(config_.fsync_on_flush);
}

void WalAppender::recompute(const DynamicGraph& g) {
  if (appended_ == 0 && buffered_records_ == 0) {
    next_index_ = g.epoch();
  }
}

void WalAppender::open_segment() {
  // Called from flush_buffer, so the buffered records are the ones about
  // to land in this segment: its first index is next_index_ minus them.
  const std::uint64_t first_index = next_index_ - buffered_records_;
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  segment_path_ = (fs::path(config_.dir) / segment_name(first_index)).string();
  fd_ = ::open(segment_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    throw WalIoError("wal: cannot open segment " + segment_path_ + ": " +
                     std::strerror(errno));
  }
  unsigned char header[kWalHeaderBytes];
  std::memcpy(header, kWalMagic.data(), kWalMagic.size());
  put_u64(header + 8, first_index);
  if (::write(fd_, header, sizeof(header)) !=
      static_cast<ssize_t>(sizeof(header))) {
    throw WalIoError("wal: cannot write segment header: " + segment_path_);
  }
  segment_written_ = kWalHeaderBytes;
  segments_opened_++;
  obs::MetricsRegistry::global().counter("fault.wal.segments_opened").add();
}

void WalAppender::append(const Event& event) {
  const std::uint64_t start = now_ns();
  unsigned char record[kWalRecordBytes];
  put_u32(record, static_cast<std::uint32_t>(kWalEventBytes));
  wal_encode_event(event, record + 8);
  std::uint32_t crc = crc32c(record, 4);
  crc = crc32c(record + 8, kWalEventBytes, crc);
  put_u32(record + 4, crc);

  buffer_.insert(buffer_.end(), record, record + kWalRecordBytes);
  buffered_records_++;
  next_index_++;
  appended_++;

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("fault.wal.appends").add();
  registry.histogram("fault.wal.append_ns").record(now_ns() - start);

  if (config_.group_commit != 0 && buffered_records_ >= config_.group_commit) {
    flush_buffer(config_.fsync_on_flush);
  }
}

void WalAppender::sync() {
  flush_buffer(/*force_fsync=*/true);
}

void WalAppender::flush_buffer(bool force_fsync) {
  STRUCTNET_OBS_SPAN("fault.wal.flush");
  const std::uint64_t start = now_ns();
  if (fd_ < 0) open_segment();
  // Roll before writing so a whole flush group lands in one segment; a
  // record never straddles two files.
  if (segment_written_ >= config_.segment_bytes && !buffer_.empty()) {
    if ((force_fsync || config_.fsync_on_flush) && ::fsync(fd_) != 0) {
      throw WalIoError(std::string("wal: fsync failed on segment roll: ") +
                       std::strerror(errno));
    }
    ::close(fd_);
    fd_ = -1;
    open_segment();
  }
  std::size_t off = 0;
  while (off < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WalIoError(std::string("wal: write failed: ") +
                       std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  segment_written_ += buffer_.size();
  buffer_.clear();
  buffered_records_ = 0;
  if ((force_fsync || config_.fsync_on_flush) && ::fsync(fd_) != 0) {
    throw WalIoError(std::string("wal: fsync failed: ") +
                     std::strerror(errno));
  }
  flushes_++;

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("fault.wal.flushes").add();
  registry.histogram("fault.wal.flush_ns").record(now_ns() - start);
}

}  // namespace structnet
