#include "fault/recovery.hpp"

#include <algorithm>
#include <sstream>

#include "fault/checkpoint.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"

namespace structnet {

RecoveryOutcome run_crash_recovery(std::size_t initial_vertices,
                                   std::span<const Event> events,
                                   std::size_t kill_at,
                                   std::uint64_t mis_seed) {
  RecoveryOutcome out;
  out.events = events.size();
  out.kill_at = std::min(kill_at, events.size());

  // Uninterrupted reference run: observers ride the whole stream.
  StreamEngine reference{DynamicGraph(initial_vertices)};
  CoreObserver ref_cores;
  MisObserver ref_mis(mis_seed);
  reference.attach(&ref_cores);
  reference.attach(&ref_mis);
  for (const Event& e : events) reference.apply(e);

  // Crashed run: absorb the prefix, checkpoint, die.
  std::stringstream checkpoint;
  {
    StreamEngine doomed{DynamicGraph(initial_vertices)};
    CoreObserver doomed_cores;
    MisObserver doomed_mis(mis_seed);
    doomed.attach(&doomed_cores);
    doomed.attach(&doomed_mis);
    for (std::size_t i = 0; i < out.kill_at; ++i) doomed.apply(events[i]);
    write_checkpoint(checkpoint, doomed);
  }  // crash: engine and its observers are gone

  CheckpointResult restored = read_checkpoint(checkpoint);
  if (!restored.ok()) return out;  // nothing matches
  StreamEngine& revived = *restored.engine;
  CoreObserver cores;
  MisObserver mis(mis_seed);
  revived.attach(&cores);  // recompute-on-attach resynchronizes
  revived.attach(&mis);
  for (std::size_t i = out.kill_at; i < events.size(); ++i) {
    revived.apply(events[i]);
  }

  const DynamicGraph& a = reference.graph();
  const DynamicGraph& b = revived.graph();
  out.graph_match = a.log() == b.log() && a.epoch() == b.epoch() &&
                    a.vertex_count() == b.vertex_count() &&
                    a.alive_count() == b.alive_count() &&
                    a.edge_count() == b.edge_count() &&
                    a.materialize() == b.materialize();
  if (out.graph_match) {
    for (VertexId v = 0; v < a.vertex_count(); ++v) {
      if (a.alive(v) != b.alive(v)) {
        out.graph_match = false;
        break;
      }
    }
  }
  out.counters_match = reference.accepted() == revived.accepted() &&
                       reference.rejected() == revived.rejected() &&
                       reference.reject_counts() == revived.reject_counts();

  // Observer equivalence against the uninterrupted run, plus the
  // recompute cross-check (incremental state == from-scratch rebuild).
  CoreObserver recomputed_cores = cores;
  recomputed_cores.recompute(b);
  out.cores_match = cores.cores() == ref_cores.cores() &&
                    cores.cores() == recomputed_cores.cores() &&
                    cores.nsf_members(b) == ref_cores.nsf_members(a);

  out.mis_match = true;
  MisObserver recomputed_mis = mis;
  recomputed_mis.recompute(b);
  for (VertexId v = 0; v < b.vertex_count(); ++v) {
    if (!b.alive(v)) continue;
    if (mis.in_mis(v) != ref_mis.in_mis(v) ||
        mis.in_mis(v) != recomputed_mis.in_mis(v)) {
      out.mis_match = false;
      break;
    }
  }
  return out;
}

}  // namespace structnet
