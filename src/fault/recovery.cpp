#include "fault/recovery.hpp"

#include <stdlib.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "fault/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"

namespace structnet {

namespace {

namespace fs = std::filesystem;

std::string checkpoint_name(std::uint64_t epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(epoch));
  return buf;
}

bool parse_checkpoint_name(const std::string& name, std::uint64_t* epoch) {
  if (name.size() != 11 + 20 + 5 || name.rfind("checkpoint-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 11; i < 11 + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  *epoch = v;
  return true;
}

/// Checkpoint files in `dir`, sorted by epoch ascending.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::uint64_t epoch = 0;
    if (parse_checkpoint_name(entry.path().filename().string(), &epoch)) {
      found.emplace_back(epoch, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());
  return found;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RecoveryOutcome run_crash_recovery(std::size_t initial_vertices,
                                   std::span<const Event> events,
                                   std::size_t kill_at,
                                   std::uint64_t mis_seed) {
  RecoveryOutcome out;
  out.events = events.size();
  out.kill_at = std::min(kill_at, events.size());

  // Uninterrupted reference run: observers ride the whole stream.
  StreamEngine reference{DynamicGraph(initial_vertices)};
  CoreObserver ref_cores;
  MisObserver ref_mis(mis_seed);
  reference.attach(&ref_cores);
  reference.attach(&ref_mis);
  for (const Event& e : events) reference.apply(e);

  // Crashed run: absorb the prefix, checkpoint, die.
  std::stringstream checkpoint;
  {
    StreamEngine doomed{DynamicGraph(initial_vertices)};
    CoreObserver doomed_cores;
    MisObserver doomed_mis(mis_seed);
    doomed.attach(&doomed_cores);
    doomed.attach(&doomed_mis);
    for (std::size_t i = 0; i < out.kill_at; ++i) doomed.apply(events[i]);
    write_checkpoint(checkpoint, doomed);
  }  // crash: engine and its observers are gone

  CheckpointResult restored = read_checkpoint(checkpoint);
  if (!restored.ok()) return out;  // nothing matches
  StreamEngine& revived = *restored.engine;
  CoreObserver cores;
  MisObserver mis(mis_seed);
  revived.attach(&cores);  // recompute-on-attach resynchronizes
  revived.attach(&mis);
  for (std::size_t i = out.kill_at; i < events.size(); ++i) {
    revived.apply(events[i]);
  }

  const DynamicGraph& a = reference.graph();
  const DynamicGraph& b = revived.graph();
  out.graph_match = a.log() == b.log() && a.epoch() == b.epoch() &&
                    a.vertex_count() == b.vertex_count() &&
                    a.alive_count() == b.alive_count() &&
                    a.edge_count() == b.edge_count() &&
                    a.materialize() == b.materialize();
  if (out.graph_match) {
    for (VertexId v = 0; v < a.vertex_count(); ++v) {
      if (a.alive(v) != b.alive(v)) {
        out.graph_match = false;
        break;
      }
    }
  }
  out.counters_match = reference.accepted() == revived.accepted() &&
                       reference.rejected() == revived.rejected() &&
                       reference.reject_counts() == revived.reject_counts();

  // Observer equivalence against the uninterrupted run, plus the
  // recompute cross-check (incremental state == from-scratch rebuild).
  CoreObserver recomputed_cores = cores;
  recomputed_cores.recompute(b);
  out.cores_match = cores.cores() == ref_cores.cores() &&
                    cores.cores() == recomputed_cores.cores() &&
                    cores.nsf_members(b) == ref_cores.nsf_members(a);

  out.mis_match = true;
  MisObserver recomputed_mis = mis;
  recomputed_mis.recompute(b);
  for (VertexId v = 0; v < b.vertex_count(); ++v) {
    if (!b.alive(v)) continue;
    if (mis.in_mis(v) != ref_mis.in_mis(v) ||
        mis.in_mis(v) != recomputed_mis.in_mis(v)) {
      out.mis_match = false;
      break;
    }
  }
  return out;
}

std::string checkpoint_now(const std::string& dir, const StreamEngine& engine,
                           std::size_t keep) {
  STRUCTNET_OBS_SPAN("fault.checkpoint_now");
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::uint64_t epoch = engine.graph().epoch();
  const std::string path =
      (fs::path(dir) / checkpoint_name(epoch)).string();
  if (!write_checkpoint_file(path, engine)) return {};

  auto checkpoints = list_checkpoints(dir);
  if (keep == 0) keep = 1;  // the one just written always stays
  while (checkpoints.size() > keep) {
    fs::remove(checkpoints.front().second, ec);
    checkpoints.erase(checkpoints.begin());
  }
  // WAL records below the oldest surviving anchor serve no recovery
  // path any more (every fallback starts at or above it).
  if (!checkpoints.empty()) {
    prune_wal_segments(dir, checkpoints.front().first);
  }
  return path;
}

RecoverOutcome recover(const std::string& dir,
                       std::size_t initial_vertices) {
  STRUCTNET_OBS_SPAN("fault.recover");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("fault.recover.runs").add();

  RecoverOutcome out;
  // Heal the log first: truncate a torn tail to its valid prefix and
  // drop unreachable segments, so a WalAppender resumed at the
  // recovered index chains cleanly and the NEXT recovery reaches its
  // records instead of stopping at the old tear.
  out.wal_repair = repair_wal(dir);
  out.wal = scan_wal(dir);
  const std::uint64_t wal_end = out.wal.first_index + out.wal.events.size();

  // Replays the WAL suffix past `engine`'s epoch; false when a record
  // the accepted history should contain gets rejected (an inconsistent
  // anchor — the caller falls back to an older one).
  const auto replay_suffix = [&](StreamEngine& engine,
                                 std::size_t* replayed) {
    const std::uint64_t epoch = engine.graph().epoch();
    *replayed = 0;
    if (out.wal.events.empty() || epoch >= wal_end) return true;
    const std::uint64_t t0 = now_ns();
    for (std::uint64_t i = epoch - out.wal.first_index;
         i < out.wal.events.size(); ++i) {
      if (!engine.apply(out.wal.events[i])) return false;
      ++*replayed;
    }
    registry.histogram("fault.wal.replay_ns").record(now_ns() - t0);
    return true;
  };

  auto checkpoints = list_checkpoints(dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    const auto& [epoch, path] = *it;
    // An anchor below the WAL's reach cannot bridge to the durable
    // suffix (the records in between were pruned) — skip it.
    if (!out.wal.events.empty() && epoch < out.wal.first_index) continue;
    out.checkpoints_tried++;
    CheckpointResult result = read_checkpoint_file(path);
    if (!result.ok()) {
      registry.counter("fault.recover.bad_checkpoints").add();
      continue;
    }
    std::size_t replayed = 0;
    if (!replay_suffix(*result.engine, &replayed)) {
      registry.counter("fault.recover.bad_checkpoints").add();
      continue;
    }
    out.engine = std::move(result.engine);
    out.checkpoint_path = path;
    out.checkpoint_epoch = epoch;
    out.wal_replayed = replayed;
    break;
  }

  // No usable checkpoint: a WAL reaching back to epoch 0 is a complete
  // history on its own.
  if (!out.engine.has_value() && out.wal.first_index == 0) {
    StreamEngine engine{DynamicGraph(initial_vertices)};
    std::size_t replayed = 0;
    if (replay_suffix(engine, &replayed)) {
      out.engine.emplace(std::move(engine));
      out.wal_replayed = replayed;
    } else {
      out.error = "WAL replay rejected an accepted record";
    }
  } else if (!out.engine.has_value()) {
    out.error = "no usable checkpoint and WAL starts at index " +
                std::to_string(out.wal.first_index);
  }

  if (out.engine.has_value()) {
    registry.counter("fault.recover.success").add();
    registry.counter("fault.recover.wal_replayed").add(out.wal_replayed);
    if (out.checkpoints_tried > 1) {
      registry.counter("fault.recover.fallbacks")
          .add(out.checkpoints_tried - 1);
    }
  } else {
    registry.counter("fault.recover.failures").add();
  }
  return out;
}

WalCrashOutcome run_wal_crash_recovery(std::size_t initial_vertices,
                                       std::span<const Event> events,
                                       std::uint64_t cut_at_byte,
                                       const WalCrashOptions& options) {
  WalCrashOutcome out;

  std::string dir;
  {
    std::string tmpl =
        (fs::temp_directory_path() / "structnet-wal-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) return out;
    dir = tmpl;
  }

  // Doomed run: WAL attached first so accepted events hit disk before
  // any derived structure sees them; observers ride along so the run is
  // shaped like production. One oversized segment makes every byte
  // offset of the whole log a valid kill point.
  std::vector<Event> accepted_log;
  std::vector<std::uint64_t> checkpoint_epochs;
  {
    WalConfig config;
    config.dir = dir;
    config.segment_bytes = std::size_t{1} << 40;
    config.group_commit = options.group_commit;
    config.fsync_on_flush = false;  // the harness "crash" is a truncate
    WalAppender wal(config);
    StreamEngine doomed{DynamicGraph(initial_vertices)};
    CoreObserver cores;
    MisObserver mis(options.mis_seed);
    doomed.attach(&wal);
    doomed.attach(&cores);
    doomed.attach(&mis);
    for (const Event& e : events) {
      doomed.apply(e);
      const std::uint64_t epoch = doomed.graph().epoch();
      if (options.checkpoint_every != 0 && epoch != 0 &&
          epoch % options.checkpoint_every == 0 &&
          (checkpoint_epochs.empty() ||
           checkpoint_epochs.back() != epoch)) {
        wal.sync();
        if (!checkpoint_now(dir, doomed, /*keep=*/1000).empty()) {
          checkpoint_epochs.push_back(epoch);
        }
      }
    }
    wal.sync();
    const auto& log = doomed.graph().log();
    accepted_log.assign(log.begin(), log.end());
  }  // crash: engine, observers, and the appender's buffers are gone
  out.accepted = accepted_log.size();

  // The kill: truncate the WAL at an arbitrary byte offset.
  const std::string segment =
      (fs::path(dir) / "wal-00000000000000000000.seg").string();
  std::error_code ec;
  const std::uint64_t full = fs::file_size(segment, ec);
  out.cut_at = std::min(cut_at_byte, ec ? std::uint64_t{0} : full);
  fs::resize_file(segment, out.cut_at, ec);

  // Optionally maim the newest checkpoint so recover() must fall back.
  if (options.corrupt_newest_checkpoint && !checkpoint_epochs.empty()) {
    const std::string newest =
        (fs::path(dir) / checkpoint_name(checkpoint_epochs.back())).string();
    const std::uint64_t size = fs::file_size(newest, ec);
    if (!ec) fs::resize_file(newest, size / 2, ec);
  }

  // What should survive: the longest intact WAL record prefix, or the
  // best surviving checkpoint if it is newer than the torn WAL.
  const std::uint64_t intact =
      out.cut_at >= kWalHeaderBytes
          ? std::min<std::uint64_t>(
                (out.cut_at - kWalHeaderBytes) / kWalRecordBytes,
                out.accepted)
          : 0;
  std::uint64_t best_checkpoint = 0;
  for (std::size_t i = 0; i < checkpoint_epochs.size(); ++i) {
    const bool corrupted = options.corrupt_newest_checkpoint &&
                           i + 1 == checkpoint_epochs.size();
    if (!corrupted) best_checkpoint = checkpoint_epochs[i];
  }
  out.durable =
      static_cast<std::size_t>(std::max<std::uint64_t>(intact, best_checkpoint));

  RecoverOutcome rec = recover(dir, initial_vertices);
  fs::remove_all(dir, ec);
  out.recover_ok = rec.ok();
  out.checkpoints_tried = rec.checkpoints_tried;
  if (!rec.ok()) return out;

  StreamEngine& revived = *rec.engine;
  out.recovered = static_cast<std::size_t>(revived.graph().epoch());

  // Uncrashed reference fed exactly the durable accepted prefix.
  StreamEngine reference{DynamicGraph(initial_vertices)};
  CoreObserver ref_cores;
  MisObserver ref_mis(options.mis_seed);
  reference.attach(&ref_cores);
  reference.attach(&ref_mis);
  for (std::size_t i = 0; i < out.durable; ++i) {
    reference.apply(accepted_log[i]);
  }

  CoreObserver cores;
  MisObserver mis(options.mis_seed);
  revived.attach(&cores);  // recompute-on-attach resynchronizes
  revived.attach(&mis);

  const DynamicGraph& a = reference.graph();
  const DynamicGraph& b = revived.graph();
  out.graph_match = a.log() == b.log() && a.epoch() == b.epoch() &&
                    a.vertex_count() == b.vertex_count() &&
                    a.alive_count() == b.alive_count() &&
                    a.edge_count() == b.edge_count() &&
                    a.materialize() == b.materialize();
  if (out.graph_match) {
    for (VertexId v = 0; v < a.vertex_count(); ++v) {
      if (a.alive(v) != b.alive(v)) {
        out.graph_match = false;
        break;
      }
    }
  }
  // Accepted totals only: rejections after the winning checkpoint are
  // not WAL-logged (accepted-events-only by design), so the revived
  // rejected counter is the checkpoint's, not the reference's zero.
  out.counters_match = reference.accepted() == revived.accepted();

  CoreObserver recomputed_cores = cores;
  recomputed_cores.recompute(b);
  out.cores_match = cores.cores() == ref_cores.cores() &&
                    cores.cores() == recomputed_cores.cores() &&
                    cores.nsf_members(b) == ref_cores.nsf_members(a);

  out.mis_match = true;
  MisObserver recomputed_mis = mis;
  recomputed_mis.recompute(b);
  for (VertexId v = 0; v < b.vertex_count(); ++v) {
    if (!b.alive(v)) continue;
    if (mis.in_mis(v) != ref_mis.in_mis(v) ||
        mis.in_mis(v) != recomputed_mis.in_mis(v)) {
      out.mis_match = false;
      break;
    }
  }
  return out;
}

}  // namespace structnet
