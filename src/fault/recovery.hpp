// Crash-recovery harness: kill the streaming engine mid-stream, restore
// it from its checkpoint, and prove the restored world is the same one.
//
// The harness runs an event stream twice:
//   * uninterrupted: one engine with Core + MIS observers absorbs every
//     event incrementally;
//   * crashed: a second engine absorbs events [0, kill_at), writes a
//     checkpoint, and is destroyed ("crash"); a fresh engine restores
//     from the checkpoint, re-attaches FRESH observers (synchronized by
//     StreamEngine's recompute-on-attach), and absorbs the tail.
// Equivalence asks for identical event logs, identical materialized
// graphs, identical engine counters, identical observer state — and,
// as the recompute_all cross-check, that the survivors' incremental
// state equals its own from-scratch recompute.
// The WAL-anchored path (recover / checkpoint_now / the
// run_wal_crash_recovery harness below) generalizes this to durable
// state on disk: periodic atomic checkpoint files anchor a checksummed
// WAL (fault/wal.hpp), and recovery is "newest valid checkpoint +
// replay the WAL suffix", falling back to older checkpoints when the
// newest is corrupt.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "fault/wal.hpp"
#include "stream/engine.hpp"
#include "stream/event.hpp"

namespace structnet {

struct RecoveryOutcome {
  std::size_t events = 0;        // total events in the stream
  std::size_t kill_at = 0;       // events absorbed before the crash
  bool graph_match = false;      // log + materialized graph + liveness
  bool counters_match = false;   // accepted / rejected / per-reason
  bool cores_match = false;      // CoreObserver state (and == recompute)
  bool mis_match = false;        // MisObserver state on alive vertices

  bool ok() const {
    return graph_match && counters_match && cores_match && mis_match;
  }
};

/// Runs the crash-restore-replay experiment described above over
/// `events` on an initially `initial_vertices`-vertex empty graph.
/// `kill_at` is clamped to the stream length; `mis_seed` seeds both
/// runs' MIS priorities (they must match for state comparison).
RecoveryOutcome run_crash_recovery(std::size_t initial_vertices,
                                   std::span<const Event> events,
                                   std::size_t kill_at,
                                   std::uint64_t mis_seed = 7);

// ------------------------------------------------- durable recovery path

/// Writes an atomic checkpoint file ("checkpoint-<epoch>.ckpt") for the
/// engine's current state into `dir`, then prunes: checkpoint files
/// beyond the newest `keep` are deleted, and WAL segments wholly below
/// the OLDEST kept checkpoint's epoch (still needed by none of the kept
/// anchors) are pruned. Returns the checkpoint path, or empty on IO
/// failure.
std::string checkpoint_now(const std::string& dir, const StreamEngine& engine,
                           std::size_t keep = 2);

/// Outcome of recover(): the revived engine (no observers attached —
/// re-attach and recompute-on-attach resynchronizes), plus enough
/// forensics to see which anchor won and how much WAL was replayed.
struct RecoverOutcome {
  std::optional<StreamEngine> engine;
  std::string checkpoint_path;        // empty: recovered from WAL alone
  std::uint64_t checkpoint_epoch = 0;
  std::size_t checkpoints_tried = 0;  // read attempts, including the winner
  std::size_t wal_replayed = 0;       // WAL records replayed on top
  WalRecovery wal;                    // the directory scan that anchored it
  WalRepair wal_repair;               // what the pre-scan repair healed
  std::string error;                  // set when !ok()

  bool ok() const { return engine.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// Rebuilds an engine from the durable state in `dir`: repair the WAL
/// (truncate a torn tail, drop unreachable segments — so appending can
/// resume past the tear and the NEXT recovery still sees everything),
/// scan it, load the newest valid checkpoint whose epoch the WAL can
/// extend,
/// replay the WAL suffix past it; fall back to older checkpoints when
/// the newest is corrupt or inconsistent, and to an empty
/// `initial_vertices`-vertex graph + full WAL replay when no checkpoint
/// survives. Deterministic: the same bytes on disk always yield the
/// same engine. Rejection-counter caveat: rejected-event totals are
/// restored from the winning checkpoint — rejections after it are not
/// WAL-logged (the WAL records accepted events only) and are lost.
RecoverOutcome recover(const std::string& dir, std::size_t initial_vertices);

/// Knobs for the WAL crash matrix harness below.
struct WalCrashOptions {
  /// Write a checkpoint file every N accepted events (0 = none).
  std::size_t checkpoint_every = 0;
  /// Corrupt the newest checkpoint file post-crash, forcing recover()
  /// to fall back to an older anchor (or the WAL alone).
  bool corrupt_newest_checkpoint = false;
  std::size_t group_commit = 1;  // WalConfig::group_commit for the run
  std::uint64_t mis_seed = 7;
};

/// Outcome of one WAL crash-matrix cell. `ok()` = recovery succeeded
/// and every facet of the revived engine is bit-identical to a fresh
/// engine fed the same durable accepted prefix.
struct WalCrashOutcome {
  std::size_t accepted = 0;     // events the doomed run accepted
  std::uint64_t cut_at = 0;     // byte offset the WAL was truncated to
  std::size_t durable = 0;      // accepted prefix expected to survive
  std::size_t recovered = 0;    // epoch of the recovered engine
  std::size_t checkpoints_tried = 0;
  bool recover_ok = false;      // recover() produced an engine
  bool graph_match = false;     // log + epoch + graph + liveness
  bool counters_match = false;  // accepted counter (see caveat above)
  bool cores_match = false;     // CoreObserver state (and == recompute)
  bool mis_match = false;       // MisObserver state on alive vertices

  bool ok() const {
    return recover_ok && recovered == durable && graph_match &&
           counters_match && cores_match && mis_match;
  }
};

/// Runs one crash-matrix cell: drive `events` through a doomed engine
/// whose WAL (and optional periodic checkpoints) land in a fresh temp
/// directory, "crash" by truncating the WAL at byte `cut_at_byte`
/// (clamped; the WAL is written as one segment so every byte offset is
/// a valid kill point) and optionally corrupting the newest checkpoint,
/// then recover() and compare against an uncrashed engine fed the
/// durable accepted prefix. The temp directory is removed before
/// returning.
WalCrashOutcome run_wal_crash_recovery(std::size_t initial_vertices,
                                       std::span<const Event> events,
                                       std::uint64_t cut_at_byte,
                                       const WalCrashOptions& options = {});

}  // namespace structnet
