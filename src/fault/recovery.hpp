// Crash-recovery harness: kill the streaming engine mid-stream, restore
// it from its checkpoint, and prove the restored world is the same one.
//
// The harness runs an event stream twice:
//   * uninterrupted: one engine with Core + MIS observers absorbs every
//     event incrementally;
//   * crashed: a second engine absorbs events [0, kill_at), writes a
//     checkpoint, and is destroyed ("crash"); a fresh engine restores
//     from the checkpoint, re-attaches FRESH observers (synchronized by
//     StreamEngine's recompute-on-attach), and absorbs the tail.
// Equivalence asks for identical event logs, identical materialized
// graphs, identical engine counters, identical observer state — and,
// as the recompute_all cross-check, that the survivors' incremental
// state equals its own from-scratch recompute.
#pragma once

#include <cstdint>
#include <span>

#include "stream/event.hpp"

namespace structnet {

struct RecoveryOutcome {
  std::size_t events = 0;        // total events in the stream
  std::size_t kill_at = 0;       // events absorbed before the crash
  bool graph_match = false;      // log + materialized graph + liveness
  bool counters_match = false;   // accepted / rejected / per-reason
  bool cores_match = false;      // CoreObserver state (and == recompute)
  bool mis_match = false;        // MisObserver state on alive vertices

  bool ok() const {
    return graph_match && counters_match && cores_match && mis_match;
  }
};

/// Runs the crash-restore-replay experiment described above over
/// `events` on an initially `initial_vertices`-vertex empty graph.
/// `kill_at` is clamped to the stream length; `mis_seed` seeds both
/// runs' MIS priorities (they must match for state comparison).
RecoveryOutcome run_crash_recovery(std::size_t initial_vertices,
                                   std::span<const Event> events,
                                   std::size_t kill_at,
                                   std::uint64_t mis_seed = 7);

}  // namespace structnet
