// StreamEngine checkpoint / restore — crash recovery for the streaming
// dynamic-graph engine.
//
// A DynamicGraph is fully determined by its epoch-0 state plus the
// normalized accepted-event log, so that pair IS the checkpoint. The
// format is a line-oriented text stream (versioned, diff-able, and
// valid input for the same tooling the contact traces use):
//
//   structnet-checkpoint 1
//   <n0> <m0> <epoch> <accepted> <rejected>
//   <reject_counts[0..kRejectReasonCount)>        (one line)
//   <u> <v>                                       (m0 initial edges)
//   <kind> <u> <v> <time> <new_time>              (epoch logged events)
//
// Restore rebuilds the initial graph, replays the log through
// DynamicGraph::apply — the log is exactly the accepted history, so
// every replayed event must be accepted again; a replay rejection marks
// a corrupted checkpoint — and reinstates the engine counters. The
// restored engine has NO observers: re-attach them and StreamEngine's
// recompute-on-attach synchronizes each one to the restored graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "stream/engine.hpp"

namespace structnet {

/// Writes the engine's checkpoint (graph history + counters).
void write_checkpoint(std::ostream& os, const StreamEngine& engine);

/// Outcome of a restore: `engine` engaged on success, otherwise `line`
/// (1-based, 0 = stream-level) and `error` pin the failure.
struct CheckpointResult {
  std::optional<StreamEngine> engine;
  std::size_t line = 0;
  std::string error;

  bool ok() const { return engine.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// Parses a checkpoint and rebuilds the engine (no observers attached).
///
/// The reader is hardened against adversarial input: declared counts
/// are sanity-checked BEFORE any allocation or replay work — the vertex
/// count against kMaxCheckpointVertices, the edge and event counts
/// against the bytes actually remaining in a seekable stream (a count
/// that could not possibly be backed by data is corruption, not work).
CheckpointResult read_checkpoint(std::istream& is);

/// Hard ceiling on a checkpoint's declared vertex count. A legitimate
/// million-vertex edgeless graph is a tiny file, so the vertex count
/// cannot be capped by file size like the edge/event counts are; this
/// absolute bound (16M, comfortably above any workload here) stops a
/// forged header from forcing a multi-GB allocation.
inline constexpr std::uint64_t kMaxCheckpointVertices = 1u << 24;

/// Serializes the engine to `path` crash-atomically: the payload is
/// written to `<path>.tmp`, flushed and fsync'd, then renamed over
/// `path` — a kill at any byte offset leaves either the old complete
/// file or the new complete file, never a torn hybrid. Returns false
/// (with `*error` set when non-null) on IO failure.
bool write_checkpoint_file(const std::string& path, const StreamEngine& engine,
                           std::string* error = nullptr);

/// read_checkpoint over the file at `path`.
CheckpointResult read_checkpoint_file(const std::string& path);

namespace detail {
/// The write-temp / fsync / rename primitive behind
/// write_checkpoint_file. `fail_after_bytes` is a test seam: when fewer
/// than payload.size(), the write "crashes" after that many bytes —
/// the temp file is abandoned mid-write and the target is untouched.
bool atomic_write_file(const std::string& path, std::string_view payload,
                       std::string* error,
                       std::size_t fail_after_bytes = std::size_t(-1));
}  // namespace detail

}  // namespace structnet
