// StreamEngine checkpoint / restore — crash recovery for the streaming
// dynamic-graph engine.
//
// A DynamicGraph is fully determined by its epoch-0 state plus the
// normalized accepted-event log, so that pair IS the checkpoint. The
// format is a line-oriented text stream (versioned, diff-able, and
// valid input for the same tooling the contact traces use):
//
//   structnet-checkpoint 1
//   <n0> <m0> <epoch> <accepted> <rejected>
//   <reject_counts[0..kRejectReasonCount)>        (one line)
//   <u> <v>                                       (m0 initial edges)
//   <kind> <u> <v> <time> <new_time>              (epoch logged events)
//
// Restore rebuilds the initial graph, replays the log through
// DynamicGraph::apply — the log is exactly the accepted history, so
// every replayed event must be accepted again; a replay rejection marks
// a corrupted checkpoint — and reinstates the engine counters. The
// restored engine has NO observers: re-attach them and StreamEngine's
// recompute-on-attach synchronizes each one to the restored graph.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "stream/engine.hpp"

namespace structnet {

/// Writes the engine's checkpoint (graph history + counters).
void write_checkpoint(std::ostream& os, const StreamEngine& engine);

/// Outcome of a restore: `engine` engaged on success, otherwise `line`
/// (1-based, 0 = stream-level) and `error` pin the failure.
struct CheckpointResult {
  std::optional<StreamEngine> engine;
  std::size_t line = 0;
  std::string error;

  bool ok() const { return engine.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// Parses a checkpoint and rebuilds the engine (no observers attached).
CheckpointResult read_checkpoint(std::istream& is);

}  // namespace structnet
