// Journeys (paths over time) and the three path-optimization problems of
// Sec. II-B: earliest completion time, minimum hop, and fastest path.
//
// A journey u -> v is an alternating sequence of vertices and contacts
// with non-decreasing edge labels; transmission over a contact is
// instantaneous and every vertex can store a message indefinitely
// (carry-store-forward).
#pragma once

#include <optional>
#include <vector>

#include "temporal/temporal_graph.hpp"

namespace structnet {

/// One hop of a journey.
struct JourneyHop {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  TimeUnit t = 0;

  friend bool operator==(const JourneyHop&, const JourneyHop&) = default;
};

/// A realized journey with its quality measures.
struct Journey {
  std::vector<JourneyHop> hops;

  bool empty() const { return hops.empty(); }
  std::size_t hop_count() const { return hops.size(); }
  /// Label of the first contact (departure); 0 for empty journeys.
  TimeUnit departure() const { return hops.empty() ? 0 : hops.front().t; }
  /// Label of the last contact (completion); 0 for empty journeys.
  TimeUnit completion() const { return hops.empty() ? 0 : hops.back().t; }
  /// Elapsed time between first and last contact (the "span").
  TimeUnit span() const {
    return hops.empty() ? 0 : hops.back().t - hops.front().t;
  }
  /// True iff hops chain correctly with non-decreasing labels.
  bool valid_for(const TemporalGraph& eg) const;

  friend bool operator==(const Journey&, const Journey&) = default;
};

/// Earliest completion times from `source` for messages created at time
/// `t_start`: completion[v] is the smallest last-contact label of any
/// journey source -> v departing at or after t_start (kNeverTime when
/// unreachable; completion[source] = t_start by convention).
struct EarliestArrival {
  std::vector<TimeUnit> completion;
  /// Contact used to reach each vertex (from, to, t); kInvalidVertex
  /// `from` when unreached or source.
  std::vector<JourneyHop> via;
};
EarliestArrival earliest_arrival(const TemporalGraph& eg, VertexId source,
                                 TimeUnit t_start = 0);

/// The earliest-completion-time journey source -> target departing at or
/// after t_start; std::nullopt when no journey exists.
std::optional<Journey> earliest_completion_journey(const TemporalGraph& eg,
                                                   VertexId source,
                                                   VertexId target,
                                                   TimeUnit t_start = 0);

/// Minimum-hop journey source -> target departing at or after t_start.
std::optional<Journey> minimum_hop_journey(const TemporalGraph& eg,
                                           VertexId source, VertexId target,
                                           TimeUnit t_start = 0);

/// Fastest journey (minimum span between first and last contact) from
/// source to target departing at or after t_start.
std::optional<Journey> fastest_journey(const TemporalGraph& eg,
                                       VertexId source, VertexId target,
                                       TimeUnit t_start = 0);

/// True iff `u` is connected to `v` at time unit `t` (a journey u -> v
/// exists whose first label is >= t). u is always connected to itself.
bool is_connected_at(const TemporalGraph& eg, VertexId u, VertexId v,
                     TimeUnit t);

/// True iff the network is time-t-connected: every ordered pair (u, v) is
/// connected at time t. The all-sources sweep shards over sources;
/// `threads`: 0 = default (STRUCTNET_THREADS / hardware), 1 = serial.
bool is_time_connected(const TemporalGraph& eg, TimeUnit t,
                       std::size_t threads = 0);

/// Flooding time from `source` starting at time 0: the completion label
/// by which every vertex has the message; kNeverTime if some vertex is
/// never reached.
TimeUnit flooding_time(const TemporalGraph& eg, VertexId source);

/// Flooding time from EVERY source in one lane-packed all-pairs pass:
/// out[s] == flooding_time(eg, s). `threads` as in is_time_connected.
std::vector<TimeUnit> flooding_times(const TemporalGraph& eg,
                                     std::size_t threads = 0);

/// Dynamic diameter: max flooding time over all sources (kNeverTime if
/// any vertex cannot flood everywhere). Sharded over lane-packed source
/// blocks; `threads` as in is_time_connected.
TimeUnit dynamic_diameter(const TemporalGraph& eg, std::size_t threads = 0);

/// Temporal distance matrix row: earliest completion from source at
/// t_start for all targets (convenience wrapper).
std::vector<TimeUnit> temporal_distances(const TemporalGraph& eg,
                                         VertexId source, TimeUnit t_start = 0);

/// The full matrix in one lane-packed all-pairs pass: rows[s] is
/// byte-identical to temporal_distances(eg, s, t_start). `threads` as
/// in is_time_connected.
std::vector<std::vector<TimeUnit>> temporal_distance_matrix(
    const TemporalGraph& eg, TimeUnit t_start = 0, std::size_t threads = 0);

// The original TemporalGraph-walking kernels, kept verbatim as the
// reference oracle for the TemporalCsr equivalence tests. The public
// functions above now run on the flat CSR index (see temporal_csr.hpp);
// these must produce identical results on every input.
namespace legacy {

std::optional<Journey> minimum_hop_journey(const TemporalGraph& eg,
                                           VertexId source, VertexId target,
                                           TimeUnit t_start = 0);

std::optional<Journey> fastest_journey(const TemporalGraph& eg,
                                       VertexId source, VertexId target,
                                       TimeUnit t_start = 0);

}  // namespace legacy

}  // namespace structnet
