// Temporal centralities: journey-based analogues of closeness and
// betweenness. Sec. III-A suggests assigning trimming priorities "using
// node degree or node betweenness, based on the strategic importance of
// the node in the network topology" — these are the temporal versions
// that plug directly into the trimming rules as priorities.
#pragma once

#include <cstddef>
#include <vector>

#include "temporal/temporal_graph.hpp"

namespace structnet {

class TemporalCsr;
class DeltaTemporalCsr;

// The all-sources sweeps below shard lane-packed multi-source blocks
// (temporal/multi_source.hpp: 64 sources per contact-stream pass) over
// the parallel layer (parallel/parallel.hpp); `threads` is 0 = default
// (STRUCTNET_THREADS / hardware), 1 = serial. Results are bit-identical
// at any thread count and to the legacy one-sweep-per-source loops.

/// Temporal closeness: for each vertex, the mean of
/// 1 / (1 + earliest completion) over all other vertices starting at
/// time 0 (unreachable contributes 0). Higher = reaches others sooner.
std::vector<double> temporal_closeness(const TemporalGraph& eg,
                                       std::size_t threads = 0);
/// Same, over an already-built contact index (what the serving layer
/// uses for CentralityMeasure::kTemporalCloseness).
std::vector<double> temporal_closeness(const TemporalCsr& csr,
                                       std::size_t threads = 0);
std::vector<double> temporal_closeness(const DeltaTemporalCsr& csr,
                                       std::size_t threads = 0);

/// Temporal betweenness: how often a vertex relays on the canonical
/// earliest-arrival journey trees. For every source, the earliest-
/// arrival tree (via-chains) is walked from every reachable destination;
/// interior vertices are credited once per (source, destination) pair.
/// This is the journey analogue of shortest-path betweenness restricted
/// to one canonical journey per pair (exact Brandes-style counting over
/// all optimal journeys is #P-hard in temporal graphs).
std::vector<double> temporal_betweenness(const TemporalGraph& eg,
                                         std::size_t threads = 0);

/// Temporal degree: number of contacts a vertex participates in.
std::vector<double> temporal_degree(const TemporalGraph& eg);

}  // namespace structnet
