// Flat time-indexed contact CSR over a TemporalGraph, plus the
// single-pass temporal-path kernels that run on it.
//
// Every temporal metric (closeness/betweenness, characteristic temporal
// path length, flooding time, dynamic diameter, time-t-connectivity)
// bottoms out in earliest-arrival sweeps. The legacy kernels in
// journeys.cpp re-bucket the whole contact stream per call and scan the
// entire horizon; TemporalCsr is the build-once index that makes each
// sweep touch only the contacts of vertices the message actually
// reaches:
//
//   * per-vertex contacts, time-sorted and flat: for each vertex, a
//     contiguous (time, neighbor, edge) array sorted by (time, edge id),
//     so "first contact of v at or after time t" is one lower_bound and
//     a linear walk;
//   * a global time-ordered contact stream with per-time-unit offsets
//     (the flat equivalent of bucket_by_time), so per-unit snapshots
//     are contiguous spans in edge-id order;
//   * distinct-edge adjacency plus per-edge sorted label arrays, so
//     "first use of edge e at or after time t" is one lower_bound
//     (the min-hop kernel relaxes one candidate per incident edge
//     instead of walking every contact).
//
// The kernels carry their per-sweep state in a reusable, epoch-stamped
// TemporalWorkspace: arrays are sized once per graph and invalidated by
// bumping a 64-bit epoch instead of clearing, so an all-sources sweep
// performs zero allocations after the first source.
//
// Determinism contract: csr_earliest_arrival reproduces the legacy
// earliest_arrival() via trees BIT-FOR-BIT (same completion times, same
// predecessor hops). The legacy kernel resolves same-time-unit closure
// by repeatedly scanning the unit's active edges in edge id order until
// a fixed point; the CSR kernel runs the identical fixed-point loop
// over the unit's contiguous edge span (same edge-id order, so the same
// firing sequence and thus the same via hops), with three exact
// shortcuts the legacy pass structure cannot express:
//   * it tracks the shrinking set of still-unreached vertices; a unit
//     where no unreached vertex has a contact with a reached neighbor
//     cannot fire anything (the legacy first pass is a no-op), so it is
//     skipped after one lower_bound per unreached vertex;
//   * within a unit, re-scan passes only revisit edges whose endpoints
//     were both unreached at the previous scan — edges with both ends
//     reached can never fire again, so dropping them preserves the
//     firing sequence;
//   * the sweep ends as soon as every vertex that has any contact is
//     reached (vertices without contacts are unreachable in the legacy
//     kernel too).
// This is what lets the converted callers (temporal betweenness walks
// via chains!) keep legacy-identical results.
//
// Rebuild-on-mutation contract (revised): TemporalCsr itself is an
// immutable snapshot of the TemporalGraph it was built from — mutating
// the graph (add_contact, remove_label, ...) does NOT invalidate the
// index lazily, and callers that hold a bare TemporalCsr must rebuild.
// For churny callers the intended pattern is no longer rebuild-per-
// mutation: DeltaTemporalCsr (temporal_delta.hpp) wraps an immutable
// base TemporalCsr plus compact sorted delta arrays, absorbs
// add_contact/remove_label in O(log delta) each, serves the same three
// kernels bit-identically through a merged base+delta view, and folds
// the delta into a fresh base only when a size-ratio compaction policy
// triggers. Build-once-per-analysis remains the right pattern for
// static traces; DeltaTemporalCsr is the right pattern when the trace
// keeps evolving under a query stream (see QueryBroker).
//
// The kernels themselves are templates over the index (internal header
// temporal_kernels.hpp, instantiated for TemporalCsr here and for
// DeltaTemporalCsr in temporal_delta.cpp); the public csr_* functions
// below are the TemporalCsr instantiations.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "temporal/journeys.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

namespace detail {
struct WorkspaceOps;

/// Globally unique index-state token. Every index construction — and
/// every mutation of a DeltaTemporalCsr — takes a fresh one, so a
/// workspace can cache per-index derived state (the has-contacts vertex
/// list) keyed by a single 64-bit compare instead of re-deriving it
/// O(n) on every sweep. 0 is never returned (it marks "no cache").
inline std::uint64_t next_index_state_id() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace detail

/// Immutable cache-friendly index over a TemporalGraph's contacts.
class TemporalCsr {
 public:
  TemporalCsr() = default;
  explicit TemporalCsr(const TemporalGraph& eg);

  std::size_t vertex_count() const { return n_; }
  /// Edge records (including edges whose label sets were emptied by
  /// remove_label — they contribute no contacts but keep ids stable).
  std::size_t edge_count() const { return edge_u_.size(); }
  /// Total number of (edge, label) contacts.
  std::size_t contact_count() const { return contact_count_; }
  TimeUnit horizon() const { return horizon_; }
  /// Unique token of this immutable snapshot (workspace cache key; see
  /// detail::next_index_state_id).
  std::uint64_t state_id() const { return state_id_; }

  VertexId edge_u(EdgeId e) const { return edge_u_[e]; }
  VertexId edge_v(EdgeId e) const { return edge_v_[e]; }

  // ---- per-vertex time-sorted contacts (indices into flat arrays)

  std::size_t contacts_begin(VertexId v) const { return vertex_offsets_[v]; }
  std::size_t contacts_end(VertexId v) const { return vertex_offsets_[v + 1]; }
  TimeUnit contact_time(std::size_t i) const { return contact_time_[i]; }
  VertexId contact_neighbor(std::size_t i) const { return contact_neighbor_[i]; }
  EdgeId contact_edge(std::size_t i) const { return contact_edge_[i]; }

  /// Index of v's first contact with time >= t (contacts_end(v) if none).
  std::size_t first_contact_at(VertexId v, TimeUnit t) const;
  /// Index of v's first contact with time > t (contacts_end(v) if none).
  std::size_t first_contact_after(VertexId v, TimeUnit t) const;

  // ---- distinct-edge adjacency (edges with at least one label only,
  //      ascending edge id within each vertex's range)

  std::size_t incident_begin(VertexId v) const { return adj_offsets_[v]; }
  std::size_t incident_end(VertexId v) const { return adj_offsets_[v + 1]; }
  EdgeId incident_edge(std::size_t i) const { return adj_edge_[i]; }
  VertexId incident_neighbor(std::size_t i) const { return adj_neighbor_[i]; }

  /// Edge e's label set, ascending (empty for emptied edges).
  std::span<const TimeUnit> edge_labels(EdgeId e) const {
    return {edge_labels_.data() + edge_label_offsets_[e],
            edge_label_offsets_[e + 1] - edge_label_offsets_[e]};
  }

  // ---- global time-ordered contact stream

  /// Edge ids active during time unit t, in edge id order (the flat
  /// equivalent of the legacy per-call bucket_by_time buckets).
  std::span<const EdgeId> edges_at(TimeUnit t) const {
    return {stream_edge_.data() + time_offsets_[t],
            time_offsets_[t + 1] - time_offsets_[t]};
  }

  // ---- kernel iteration interface (shared shape with DeltaTemporalCsr;
  //      contract documented in temporal_kernels.hpp)

  bool has_contacts(VertexId v) const {
    return vertex_offsets_[v] != vertex_offsets_[v + 1];
  }
  std::size_t unit_size(TimeUnit t) const {
    return time_offsets_[t + 1] - time_offsets_[t];
  }
  /// Any contact of v at exactly time t whose neighbor satisfies pred?
  template <class Pred>
  bool find_contact_at(VertexId v, TimeUnit t, Pred&& pred) const {
    for (std::size_t i = first_contact_at(v, t);
         i < vertex_offsets_[v + 1] && contact_time_[i] == t; ++i) {
      if (pred(contact_neighbor_[i])) return true;
    }
    return false;
  }
  /// f(EdgeId) over unit t in ascending edge id order; f returns false
  /// to stop early.
  template <class Fn>
  void for_each_edge_at(TimeUnit t, Fn&& f) const {
    for (const EdgeId e : edges_at(t)) {
      if (!f(e)) return;
    }
  }
  /// f(EdgeId, VertexId neighbor) over v's distinct incident edges in
  /// ascending edge id order; f returns false to stop early.
  template <class Fn>
  void for_each_incident(VertexId v, Fn&& f) const {
    for (std::size_t i = adj_offsets_[v]; i < adj_offsets_[v + 1]; ++i) {
      if (!f(adj_edge_[i], adj_neighbor_[i])) return;
    }
  }
  /// Earliest label of e at or after t (kNeverTime when none).
  TimeUnit first_label_at(EdgeId e, TimeUnit t) const {
    const auto labels = edge_labels(e);
    const auto it = std::lower_bound(labels.begin(), labels.end(), t);
    return it == labels.end() ? kNeverTime : *it;
  }

 private:
  std::size_t n_ = 0;
  TimeUnit horizon_ = 0;
  std::size_t contact_count_ = 0;
  std::uint64_t state_id_ = detail::next_index_state_id();
  std::vector<VertexId> edge_u_, edge_v_;       // per edge record
  std::vector<std::size_t> vertex_offsets_;     // n + 1
  std::vector<TimeUnit> contact_time_;          // 2C, per-vertex regions
  std::vector<VertexId> contact_neighbor_;      // 2C
  std::vector<EdgeId> contact_edge_;            // 2C
  std::vector<std::size_t> adj_offsets_;        // n + 1
  std::vector<EdgeId> adj_edge_;                // distinct incident edges
  std::vector<VertexId> adj_neighbor_;          // other endpoint per entry
  std::vector<std::size_t> edge_label_offsets_; // m + 1
  std::vector<TimeUnit> edge_labels_;           // C, per-edge ascending
  std::vector<std::size_t> time_offsets_;       // horizon + 1
  std::vector<EdgeId> stream_edge_;             // C, per-unit in edge order
};

/// Reusable per-thread scratch for the CSR kernels. Arrays are sized to
/// the bound graph once; each sweep bumps a 64-bit epoch so stale
/// entries are ignored without clearing (zero allocations per source
/// after the first sweep on a graph of the same shape). One workspace
/// serves one thread; all-sources parallel sweeps hand one workspace
/// per worker slot through parallel_for_shards.
class TemporalWorkspace {
 public:
  /// Completion time of v in the last earliest-arrival sweep
  /// (kNeverTime when unreached).
  TimeUnit arrival(VertexId v) const {
    return stamp_[v] == epoch_ ? arrival_[v] : kNeverTime;
  }
  /// Contact used to reach v ({kInvalidVertex, ...} for the source or
  /// unreached vertices) — identical to the legacy EarliestArrival::via.
  JourneyHop via(VertexId v) const {
    return stamp_[v] == epoch_ ? via_[v] : JourneyHop{};
  }
  /// Vertices reached by the last earliest-arrival sweep (incl. source).
  std::size_t reached_count() const { return reached_; }

  /// Materializes the last sweep as the legacy result struct.
  EarliestArrival to_earliest_arrival() const;

 private:
  friend struct detail::WorkspaceOps;

  void bind(std::size_t n);
  std::uint64_t begin_sweep() { return ++epoch_; }
  std::uint64_t next_tick() { return ++tick_; }
  bool reached(VertexId v) const { return stamp_[v] == epoch_; }
  void set_arrival(VertexId v, TimeUnit t, const JourneyHop& hop) {
    stamp_[v] = epoch_;
    arrival_[v] = t;
    via_[v] = hop;
    ++reached_;
  }

  std::size_t n_ = 0;
  std::uint64_t epoch_ = 0, tick_ = 0;
  std::size_t reached_ = 0;
  std::vector<std::uint64_t> stamp_;       // arrival_/via_ valid markers
  std::vector<TimeUnit> arrival_;          // n (also: best departure / ready)
  std::vector<JourneyHop> via_;            // n
  std::vector<std::uint64_t> vertex_tick_;  // n, per-time-unit marks
  std::vector<std::uint64_t> value_tick_;   // n, layer/root value marks
  std::vector<TimeUnit> value_;             // n (next_ready / comp best)
  std::vector<EdgeId> value_edge_;          // n, via tie-break edge ids
  std::vector<JourneyHop> hop_cand_;        // n, candidate via hops
  std::vector<VertexId> parent_;            // n, per-unit union-find
  // seeds_: EA unreached list / min-hop frontier; newly_: vertices
  // improved this layer; touched_: per-unit union-find lazy-init log.
  std::vector<VertexId> seeds_, newly_, touched_;
  std::vector<EdgeId> local_edges_;        // EA per-unit live re-scan list
  // Sparse per-layer via records for min-hop reconstruction: layer k is
  // via_flat_[layer_off_[k] .. layer_off_[k + 1]), sorted by vertex.
  std::vector<std::pair<VertexId, JourneyHop>> via_flat_;
  std::vector<std::size_t> layer_off_;
  // Has-contacts vertex list cached per index state: all-pairs sweeps
  // rebuild seeds_ from this O(reachable) copy instead of re-testing
  // has_contacts O(n) per source (WorkspaceOps::refresh_contact_list).
  std::uint64_t contact_state_ = 0;
  std::vector<VertexId> contact_list_;
};

/// Boundary-driven earliest arrival from `source` departing at or after
/// `t_start`; results land in `ws` (ws.arrival / ws.via). Bit-identical
/// to legacy earliest_arrival(), but skips no-op time units via one
/// lower_bound per still-unreached vertex, compacts the same-unit
/// fixed-point re-scan list, and stops as soon as every reachable
/// vertex is reached or `stop_at` is reached (pass kInvalidVertex for a
/// full sweep; partial results past the stop vertex's time unit are
/// then unspecified).
void csr_earliest_arrival(const TemporalCsr& csr, VertexId source,
                          TimeUnit t_start, TemporalWorkspace& ws,
                          VertexId stop_at = kInvalidVertex);

/// All-departure-times arrival profile: one chronological pass over the
/// contact stream computing, per vertex, the latest possible departure
/// of any source journey that has arrived by "now". Returns the
/// (departure, arrival) pair of a span-minimal source -> target journey
/// departing at or after t_start (std::nullopt when unreachable) — the
/// single-pass replacement for legacy fastest_journey's one full
/// earliest-arrival sweep per candidate departure time. Requires
/// source != target.
std::optional<std::pair<TimeUnit, TimeUnit>> csr_fastest_departure(
    const TemporalCsr& csr, VertexId source, VertexId target, TimeUnit t_start,
    TemporalWorkspace& ws);

/// Minimum-hop journey source -> target departing at or after t_start.
/// Layered search that relaxes only the edges incident to vertices
/// improved in the previous layer — one lower_bound into the edge's
/// label array per incident edge (instead of the legacy Bellman-Ford
/// over every edge per layer); returns the exact legacy journey (same
/// hops) by reproducing its (label, edge id) tie-breaking.
std::optional<Journey> csr_minimum_hop_journey(const TemporalCsr& csr,
                                               VertexId source, VertexId target,
                                               TimeUnit t_start,
                                               TemporalWorkspace& ws);

}  // namespace structnet
