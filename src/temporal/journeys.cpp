#include "temporal/journeys.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace structnet {

namespace {

/// Contacts bucketed by time unit: bucket[t] lists edge ids active at t.
std::vector<std::vector<EdgeId>> bucket_by_time(const TemporalGraph& eg) {
  std::vector<std::vector<EdgeId>> bucket(eg.horizon());
  for (EdgeId e = 0; e < eg.edge_count(); ++e) {
    for (TimeUnit t : eg.edge(e).labels) bucket[t].push_back(e);
  }
  return bucket;
}

Journey journey_from_via(const EarliestArrival& ea, VertexId source,
                         VertexId target) {
  Journey j;
  VertexId cur = target;
  while (cur != source) {
    const JourneyHop& hop = ea.via[cur];
    assert(hop.from != kInvalidVertex);
    j.hops.push_back(hop);
    cur = hop.from;
  }
  std::reverse(j.hops.begin(), j.hops.end());
  return j;
}

}  // namespace

bool Journey::valid_for(const TemporalGraph& eg) const {
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const JourneyHop& h = hops[i];
    if (!eg.has_contact(h.from, h.to, h.t)) return false;
    if (i > 0 && (hops[i - 1].to != h.from || hops[i - 1].t > h.t)) {
      return false;
    }
  }
  return true;
}

EarliestArrival earliest_arrival(const TemporalGraph& eg, VertexId source,
                                 TimeUnit t_start) {
  assert(source < eg.vertex_count());
  EarliestArrival ea;
  ea.completion.assign(eg.vertex_count(), kNeverTime);
  ea.via.assign(eg.vertex_count(), JourneyHop{});
  ea.completion[source] = t_start;

  const auto bucket = bucket_by_time(eg);
  std::vector<bool> have(eg.vertex_count(), false);
  have[source] = true;

  for (TimeUnit t = t_start; t < eg.horizon(); ++t) {
    // Within one time unit transmission is instantaneous, so take the
    // closure over the snapshot's active edges.
    bool changed = true;
    while (changed) {
      changed = false;
      for (EdgeId e : bucket[t]) {
        const auto& edge = eg.edge(e);
        if (have[edge.u] && !have[edge.v]) {
          have[edge.v] = true;
          ea.completion[edge.v] = t;
          ea.via[edge.v] = JourneyHop{edge.u, edge.v, t};
          changed = true;
        } else if (have[edge.v] && !have[edge.u]) {
          have[edge.u] = true;
          ea.completion[edge.u] = t;
          ea.via[edge.u] = JourneyHop{edge.v, edge.u, t};
          changed = true;
        }
      }
    }
  }
  return ea;
}

std::optional<Journey> earliest_completion_journey(const TemporalGraph& eg,
                                                   VertexId source,
                                                   VertexId target,
                                                   TimeUnit t_start) {
  const auto ea = earliest_arrival(eg, source, t_start);
  if (ea.completion[target] == kNeverTime) return std::nullopt;
  return journey_from_via(ea, source, target);
}

std::optional<Journey> minimum_hop_journey(const TemporalGraph& eg,
                                           VertexId source, VertexId target,
                                           TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  if (source == target) return Journey{};
  const std::size_t n = eg.vertex_count();
  // ready[v]: minimal label-bound such that some journey with exactly h
  // hops leaves v able to take any next contact with label >= ready[v].
  std::vector<TimeUnit> ready(n, kNeverTime);
  std::vector<TimeUnit> next_ready(n);
  // Per-layer predecessor hops for reconstruction.
  std::vector<std::vector<JourneyHop>> via_layer;
  ready[source] = t_start;

  for (std::size_t h = 0; h + 1 < n + 1; ++h) {
    next_ready = ready;
    std::vector<JourneyHop> via(n, JourneyHop{});
    bool improved = false;
    for (EdgeId e = 0; e < eg.edge_count(); ++e) {
      const auto& edge = eg.edge(e);
      auto relax = [&](VertexId from, VertexId to) {
        if (ready[from] == kNeverTime) return;
        const auto& labels = edge.labels;
        const auto it =
            std::lower_bound(labels.begin(), labels.end(), ready[from]);
        if (it == labels.end()) return;
        if (*it < next_ready[to]) {
          next_ready[to] = *it;
          via[to] = JourneyHop{from, to, *it};
          improved = true;
        }
      };
      relax(edge.u, edge.v);
      relax(edge.v, edge.u);
    }
    via_layer.push_back(std::move(via));
    const bool target_hit =
        next_ready[target] != kNeverTime && ready[target] == kNeverTime;
    ready.swap(next_ready);
    if (target_hit) {
      // Reconstruct backwards through the layers.
      Journey j;
      VertexId cur = target;
      for (std::size_t layer = via_layer.size(); layer-- > 0;) {
        if (cur == source) break;
        const JourneyHop& hop = via_layer[layer][cur];
        if (hop.from == kInvalidVertex) continue;  // reached earlier layer
        j.hops.push_back(hop);
        cur = hop.from;
      }
      assert(cur == source);
      std::reverse(j.hops.begin(), j.hops.end());
      return j;
    }
    if (!improved) break;
  }
  return std::nullopt;
}

std::optional<Journey> fastest_journey(const TemporalGraph& eg,
                                       VertexId source, VertexId target,
                                       TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  if (source == target) return Journey{};
  // Candidate departure times: labels of source-incident edges >= t_start.
  std::vector<TimeUnit> candidates;
  for (EdgeId e : eg.incident_edges(source)) {
    for (TimeUnit t : eg.edge(e).labels) {
      if (t >= t_start) candidates.push_back(t);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::optional<Journey> best;
  TimeUnit best_span = kNeverTime;
  for (TimeUnit s : candidates) {
    const auto ea = earliest_arrival(eg, source, s);
    if (ea.completion[target] == kNeverTime) continue;
    Journey j = journey_from_via(ea, source, target);
    const TimeUnit span = j.span();
    if (span < best_span) {
      best_span = span;
      best = std::move(j);
      if (best_span == 0) break;
    }
  }
  return best;
}

bool is_connected_at(const TemporalGraph& eg, VertexId u, VertexId v,
                     TimeUnit t) {
  if (u == v) return true;
  const auto ea = earliest_arrival(eg, u, t);
  return ea.completion[v] != kNeverTime;
}

bool is_time_connected(const TemporalGraph& eg, TimeUnit t) {
  for (VertexId u = 0; u < eg.vertex_count(); ++u) {
    const auto ea = earliest_arrival(eg, u, t);
    for (VertexId v = 0; v < eg.vertex_count(); ++v) {
      if (ea.completion[v] == kNeverTime) return false;
    }
  }
  return true;
}

TimeUnit flooding_time(const TemporalGraph& eg, VertexId source) {
  const auto ea = earliest_arrival(eg, source, 0);
  TimeUnit worst = 0;
  for (TimeUnit c : ea.completion) {
    if (c == kNeverTime) return kNeverTime;
    worst = std::max(worst, c);
  }
  return worst;
}

TimeUnit dynamic_diameter(const TemporalGraph& eg) {
  TimeUnit worst = 0;
  for (VertexId v = 0; v < eg.vertex_count(); ++v) {
    const TimeUnit f = flooding_time(eg, v);
    if (f == kNeverTime) return kNeverTime;
    worst = std::max(worst, f);
  }
  return worst;
}

std::vector<TimeUnit> temporal_distances(const TemporalGraph& eg,
                                         VertexId source, TimeUnit t_start) {
  return earliest_arrival(eg, source, t_start).completion;
}

}  // namespace structnet
