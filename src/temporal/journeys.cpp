#include "temporal/journeys.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <limits>

#include "parallel/parallel.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_csr.hpp"

namespace structnet {

namespace {

constexpr std::size_t kLanes = MultiSourceWorkspace::kMaxLanes;

/// Shards the all-sources range [0, n) over kLanes-wide blocks (grain 1
/// -> fixed block -> shard mapping) and runs one lane-packed sweep per
/// block; fn(shard, lane, source, ws) is called per lane. Returning
/// false from fn abandons the shard (early exit).
template <class Fn>
void for_each_source_lane(const TemporalCsr& csr, TimeUnit t_start,
                          std::size_t threads, Fn&& fn) {
  const std::size_t n = csr.vertex_count();
  std::vector<MultiSourceWorkspace> ws(resolve_threads(threads));
  parallel_for_shards(
      0, lane_block_count(n), 1, threads,
      [&](std::size_t shard, std::size_t lo, std::size_t hi,
          std::size_t worker) {
        MultiSourceWorkspace& w = ws[worker];
        std::array<VertexId, kLanes> srcs;
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t s0 = b * kLanes;
          const std::size_t lanes = std::min(kLanes, n - s0);
          for (std::size_t l = 0; l < lanes; ++l) {
            srcs[l] = static_cast<VertexId>(s0 + l);
          }
          csr_earliest_arrival_batch(csr, {srcs.data(), lanes}, t_start, w);
          for (std::size_t l = 0; l < lanes; ++l) {
            if (!fn(shard, l, static_cast<VertexId>(s0 + l), w)) return;
          }
        }
      });
}

/// Contacts at or after t_start bucketed by time unit: bucket[t - t_start]
/// lists edge ids active at t. Labels before t_start can never be taken
/// (journeys depart at or after t_start), so they are not bucketed at all.
std::vector<std::vector<EdgeId>> bucket_by_time(const TemporalGraph& eg,
                                                TimeUnit t_start) {
  const TimeUnit horizon = eg.horizon();
  std::vector<std::vector<EdgeId>> bucket(
      horizon > t_start ? horizon - t_start : 0);
  for (EdgeId e = 0; e < eg.edge_count(); ++e) {
    const auto& labels = eg.edge(e).labels;
    for (auto it = std::lower_bound(labels.begin(), labels.end(), t_start);
         it != labels.end(); ++it) {
      bucket[*it - t_start].push_back(e);
    }
  }
  return bucket;
}

Journey journey_from_via(const EarliestArrival& ea, VertexId source,
                         VertexId target) {
  Journey j;
  VertexId cur = target;
  while (cur != source) {
    const JourneyHop& hop = ea.via[cur];
    assert(hop.from != kInvalidVertex);
    j.hops.push_back(hop);
    cur = hop.from;
  }
  std::reverse(j.hops.begin(), j.hops.end());
  return j;
}

Journey journey_from_workspace(const TemporalWorkspace& ws, VertexId source,
                               VertexId target) {
  Journey j;
  VertexId cur = target;
  while (cur != source) {
    const JourneyHop hop = ws.via(cur);
    assert(hop.from != kInvalidVertex);
    j.hops.push_back(hop);
    cur = hop.from;
  }
  std::reverse(j.hops.begin(), j.hops.end());
  return j;
}

}  // namespace

bool Journey::valid_for(const TemporalGraph& eg) const {
  for (std::size_t i = 0; i < hops.size(); ++i) {
    const JourneyHop& h = hops[i];
    if (!eg.has_contact(h.from, h.to, h.t)) return false;
    if (i > 0 && (hops[i - 1].to != h.from || hops[i - 1].t > h.t)) {
      return false;
    }
  }
  return true;
}

// The reference kernel: walks the whole bucketed contact stream. Kept as
// the oracle the CSR kernels are tested against (and used by the legacy::
// journey functions below).
EarliestArrival earliest_arrival(const TemporalGraph& eg, VertexId source,
                                 TimeUnit t_start) {
  assert(source < eg.vertex_count());
  EarliestArrival ea;
  ea.completion.assign(eg.vertex_count(), kNeverTime);
  ea.via.assign(eg.vertex_count(), JourneyHop{});
  ea.completion[source] = t_start;

  const auto bucket = bucket_by_time(eg, t_start);
  std::vector<bool> have(eg.vertex_count(), false);
  have[source] = true;

  for (TimeUnit t = t_start; t < eg.horizon(); ++t) {
    const auto& unit = bucket[t - t_start];
    if (unit.empty()) continue;
    // Within one time unit transmission is instantaneous, so take the
    // closure over the snapshot's active edges.
    bool changed = true;
    while (changed) {
      changed = false;
      for (EdgeId e : unit) {
        const auto& edge = eg.edge(e);
        if (have[edge.u] && !have[edge.v]) {
          have[edge.v] = true;
          ea.completion[edge.v] = t;
          ea.via[edge.v] = JourneyHop{edge.u, edge.v, t};
          changed = true;
        } else if (have[edge.v] && !have[edge.u]) {
          have[edge.u] = true;
          ea.completion[edge.u] = t;
          ea.via[edge.u] = JourneyHop{edge.v, edge.u, t};
          changed = true;
        }
      }
    }
  }
  return ea;
}

std::optional<Journey> earliest_completion_journey(const TemporalGraph& eg,
                                                   VertexId source,
                                                   VertexId target,
                                                   TimeUnit t_start) {
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  csr_earliest_arrival(csr, source, t_start, ws, target);
  if (ws.arrival(target) == kNeverTime) return std::nullopt;
  return journey_from_workspace(ws, source, target);
}

std::optional<Journey> minimum_hop_journey(const TemporalGraph& eg,
                                           VertexId source, VertexId target,
                                           TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  return csr_minimum_hop_journey(csr, source, target, t_start, ws);
}

std::optional<Journey> fastest_journey(const TemporalGraph& eg,
                                       VertexId source, VertexId target,
                                       TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  if (source == target) return Journey{};
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  // One profile pass finds the span-minimal departure d*; one earliest-
  // arrival sweep from d* materializes a journey realizing that span
  // (instead of one sweep per candidate departure time).
  const auto fd = csr_fastest_departure(csr, source, target, t_start, ws);
  if (!fd) return std::nullopt;
  csr_earliest_arrival(csr, source, fd->first, ws, target);
  assert(ws.arrival(target) != kNeverTime);
  return journey_from_workspace(ws, source, target);
}

bool is_connected_at(const TemporalGraph& eg, VertexId u, VertexId v,
                     TimeUnit t) {
  if (u == v) return true;
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  csr_earliest_arrival(csr, u, t, ws, v);
  return ws.arrival(v) != kNeverTime;
}

bool is_time_connected(const TemporalGraph& eg, TimeUnit t,
                       std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  if (n == 0) return true;
  const TemporalCsr csr(eg);
  // One lane-packed sweep per 64-source block; a shard abandons its
  // remaining blocks as soon as any lane falls short (the answer is
  // already "no").
  std::vector<char> shard_ok(lane_block_count(n), 1);
  for_each_source_lane(
      csr, t, threads,
      [&](std::size_t shard, std::size_t lane, VertexId,
          const MultiSourceWorkspace& w) {
        if (w.reached_count(lane) != n) {
          shard_ok[shard] = 0;
          return false;
        }
        return true;
      });
  return std::all_of(shard_ok.begin(), shard_ok.end(),
                     [](char ok) { return ok != 0; });
}

TimeUnit flooding_time(const TemporalGraph& eg, VertexId source) {
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  csr_earliest_arrival(csr, source, 0, ws);
  if (ws.reached_count() != eg.vertex_count()) return kNeverTime;
  TimeUnit worst = 0;
  for (std::size_t v = 0; v < eg.vertex_count(); ++v) {
    worst = std::max(worst, ws.arrival(static_cast<VertexId>(v)));
  }
  return worst;
}

std::vector<TimeUnit> flooding_times(const TemporalGraph& eg,
                                     std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<TimeUnit> out(n, 0);
  if (n == 0) return out;
  const TemporalCsr csr(eg);
  // Per-source slot writes need no ordering; each value is the exact
  // scalar flooding_time(eg, s).
  for_each_source_lane(
      csr, 0, threads,
      [&](std::size_t, std::size_t lane, VertexId s,
          const MultiSourceWorkspace& w) {
        if (w.reached_count(lane) != n) {
          out[s] = kNeverTime;
          return true;
        }
        TimeUnit worst = 0;
        for (std::size_t v = 0; v < n; ++v) {
          worst = std::max(worst, w.arrival(lane, static_cast<VertexId>(v)));
        }
        out[s] = worst;
        return true;
      });
  return out;
}

TimeUnit dynamic_diameter(const TemporalGraph& eg, std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  if (n == 0) return 0;
  // Max is order-independent and a source that cannot flood everywhere
  // contributes kNeverTime, which dominates the fold — exactly the
  // legacy per-source result.
  TimeUnit worst = 0;
  for (const TimeUnit w : flooding_times(eg, threads)) {
    worst = std::max(worst, w);
  }
  return worst;
}

std::vector<TimeUnit> temporal_distances(const TemporalGraph& eg,
                                         VertexId source, TimeUnit t_start) {
  const TemporalCsr csr(eg);
  TemporalWorkspace ws;
  csr_earliest_arrival(csr, source, t_start, ws);
  std::vector<TimeUnit> out(eg.vertex_count());
  for (std::size_t v = 0; v < out.size(); ++v) {
    out[v] = ws.arrival(static_cast<VertexId>(v));
  }
  return out;
}

std::vector<std::vector<TimeUnit>> temporal_distance_matrix(
    const TemporalGraph& eg, TimeUnit t_start, std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<std::vector<TimeUnit>> rows(n);
  if (n == 0) return rows;
  const TemporalCsr csr(eg);
  // Row s is byte-identical to temporal_distances(eg, s, t_start); each
  // lane writes only its own row.
  for_each_source_lane(csr, t_start, threads,
                       [&](std::size_t, std::size_t lane, VertexId s,
                           const MultiSourceWorkspace& w) {
                         rows[s] = w.completion(lane);
                         return true;
                       });
  return rows;
}

namespace legacy {

std::optional<Journey> minimum_hop_journey(const TemporalGraph& eg,
                                           VertexId source, VertexId target,
                                           TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  if (source == target) return Journey{};
  const std::size_t n = eg.vertex_count();
  // ready[v]: minimal label-bound such that some journey with exactly h
  // hops leaves v able to take any next contact with label >= ready[v].
  std::vector<TimeUnit> ready(n, kNeverTime);
  std::vector<TimeUnit> next_ready(n);
  // Per-layer predecessor hops for reconstruction.
  std::vector<std::vector<JourneyHop>> via_layer;
  ready[source] = t_start;

  for (std::size_t h = 0; h + 1 < n + 1; ++h) {
    next_ready = ready;
    std::vector<JourneyHop> via(n, JourneyHop{});
    bool improved = false;
    for (EdgeId e = 0; e < eg.edge_count(); ++e) {
      const auto& edge = eg.edge(e);
      auto relax = [&](VertexId from, VertexId to) {
        if (ready[from] == kNeverTime) return;
        const auto& labels = edge.labels;
        const auto it =
            std::lower_bound(labels.begin(), labels.end(), ready[from]);
        if (it == labels.end()) return;
        if (*it < next_ready[to]) {
          next_ready[to] = *it;
          via[to] = JourneyHop{from, to, *it};
          improved = true;
        }
      };
      relax(edge.u, edge.v);
      relax(edge.v, edge.u);
    }
    via_layer.push_back(std::move(via));
    const bool target_hit =
        next_ready[target] != kNeverTime && ready[target] == kNeverTime;
    ready.swap(next_ready);
    if (target_hit) {
      // Reconstruct backwards through the layers.
      Journey j;
      VertexId cur = target;
      for (std::size_t layer = via_layer.size(); layer-- > 0;) {
        if (cur == source) break;
        const JourneyHop& hop = via_layer[layer][cur];
        if (hop.from == kInvalidVertex) continue;  // reached earlier layer
        j.hops.push_back(hop);
        cur = hop.from;
      }
      assert(cur == source);
      std::reverse(j.hops.begin(), j.hops.end());
      return j;
    }
    if (!improved) break;
  }
  return std::nullopt;
}

std::optional<Journey> fastest_journey(const TemporalGraph& eg,
                                       VertexId source, VertexId target,
                                       TimeUnit t_start) {
  assert(source < eg.vertex_count() && target < eg.vertex_count());
  if (source == target) return Journey{};
  // Candidate departure times: labels of source-incident edges >= t_start.
  std::vector<TimeUnit> candidates;
  for (EdgeId e : eg.incident_edges(source)) {
    for (TimeUnit t : eg.edge(e).labels) {
      if (t >= t_start) candidates.push_back(t);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::optional<Journey> best;
  TimeUnit best_span = kNeverTime;
  for (TimeUnit s : candidates) {
    const auto ea = earliest_arrival(eg, source, s);
    if (ea.completion[target] == kNeverTime) continue;
    Journey j = journey_from_via(ea, source, target);
    const TimeUnit span = j.span();
    if (span < best_span) {
      best_span = span;
      best = std::move(j);
      if (best_span == 0) break;
    }
  }
  return best;
}

}  // namespace legacy

}  // namespace structnet
