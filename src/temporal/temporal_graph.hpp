// Time-evolving graph (EG) of Sec. II-B.
//
// G_0, G_1, ..., G_k is an ordered sequence of spanning subgraphs over
// time units t_0..t_k; the EG stores, per edge (u, v), the label set
// { i | (u, v) in E_i }. Message transmission over a contact is
// instantaneous, so a journey is a path whose edge labels are
// non-decreasing.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/graph.hpp"
#include "core/types.hpp"

namespace structnet {

/// A single contact: edge (u, v) active during time unit `t`.
struct Contact {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  TimeUnit t = 0;

  friend bool operator==(const Contact&, const Contact&) = default;
};

/// The time-evolving graph EG: vertices 0..n-1, horizon time units
/// 0..horizon-1, and per-edge sorted label sets.
class TemporalGraph {
 public:
  /// An edge with its label set (sorted ascending, no duplicates).
  struct LabeledEdge {
    VertexId u = kInvalidVertex;
    VertexId v = kInvalidVertex;
    std::vector<TimeUnit> labels;

    friend bool operator==(const LabeledEdge&, const LabeledEdge&) = default;
  };

  TemporalGraph() = default;
  TemporalGraph(std::size_t n, TimeUnit horizon)
      : incident_(n), horizon_(horizon) {}

  std::size_t vertex_count() const { return incident_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  TimeUnit horizon() const { return horizon_; }

  /// Registers that (u, v) is active during time unit t (t < horizon).
  /// Idempotent; keeps label sets sorted.
  void add_contact(VertexId u, VertexId v, TimeUnit t);

  /// Adds an edge with a whole label set at once.
  void add_edge_labels(VertexId u, VertexId v, std::span<const TimeUnit> labels);

  /// All labeled edges.
  std::span<const LabeledEdge> edges() const { return edges_; }

  /// Edge ids incident to v.
  std::span<const EdgeId> incident_edges(VertexId v) const {
    return incident_[v];
  }
  const LabeledEdge& edge(EdgeId e) const { return edges_[e]; }

  /// The other endpoint of edge e relative to v.
  VertexId other_endpoint(EdgeId e, VertexId v) const {
    return edges_[e].u == v ? edges_[e].v : edges_[e].u;
  }

  /// True iff (u, v) is active during time unit t.
  bool has_contact(VertexId u, VertexId v, TimeUnit t) const;

  /// Edge id of (u, v), or kInvalidEdge.
  EdgeId find_edge(VertexId u, VertexId v) const;

  /// Snapshot G_t: the static graph of edges active during time unit t.
  Graph snapshot(TimeUnit t) const;

  /// The union graph ("footprint"): edge iff active at any time.
  Graph footprint() const;

  /// All contacts expanded (one Contact per (edge, label)), sorted by
  /// time then edge insertion order.
  std::vector<Contact> contacts() const;

  /// Builds an EG from an ordered sequence of same-size snapshots.
  static TemporalGraph from_snapshots(std::span<const Graph> snapshots);

  /// Builds an EG from a contact list; n and horizon given explicitly.
  static TemporalGraph from_contacts(std::size_t n, TimeUnit horizon,
                                     std::span<const Contact> contacts);

  /// Copy with one vertex's incident edges removed (for trimming).
  TemporalGraph without_vertex(VertexId v) const;

  /// Copy with one edge removed entirely.
  TemporalGraph without_edge(VertexId u, VertexId v) const;

  /// Copy with one label removed from one edge (no-op if absent).
  TemporalGraph without_label(VertexId u, VertexId v, TimeUnit t) const;

  /// Removes one label in place; returns false when the contact did not
  /// exist. The edge record remains (possibly with an empty label set) so
  /// edge ids stay stable.
  bool remove_label(VertexId u, VertexId v, TimeUnit t);

  /// Structural equality (same vertices, horizon, edge records in the
  /// same order with identical label sets). Used by streaming observers
  /// to assert incremental maintenance matches a from-scratch rebuild.
  friend bool operator==(const TemporalGraph&, const TemporalGraph&) = default;

 private:
  std::vector<std::vector<EdgeId>> incident_;
  std::vector<LabeledEdge> edges_;
  TimeUnit horizon_ = 0;
};

}  // namespace structnet
