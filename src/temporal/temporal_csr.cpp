#include "temporal/temporal_csr.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace structnet {

TemporalCsr::TemporalCsr(const TemporalGraph& eg)
    : n_(eg.vertex_count()), horizon_(eg.horizon()) {
  STRUCTNET_OBS_SPAN("temporal.csr_build");
  static obs::Counter& builds =
      obs::MetricsRegistry::global().counter("temporal.csr_builds");
  builds.add();
  const std::size_t m = eg.edge_count();
  edge_u_.resize(m);
  edge_v_.resize(m);
  std::vector<std::size_t> vertex_deg(n_, 0);
  std::vector<std::size_t> time_count(horizon_, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const auto& edge = eg.edge(e);
    edge_u_[e] = edge.u;
    edge_v_[e] = edge.v;
    contact_count_ += edge.labels.size();
    vertex_deg[edge.u] += edge.labels.size();
    vertex_deg[edge.v] += edge.labels.size();
    for (TimeUnit t : edge.labels) ++time_count[t];
  }

  vertex_offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    vertex_offsets_[v + 1] = vertex_offsets_[v] + vertex_deg[v];
  }
  contact_time_.resize(2 * contact_count_);
  contact_neighbor_.resize(2 * contact_count_);
  contact_edge_.resize(2 * contact_count_);

  // Fill each vertex region in (edge id, label) order, then stable-sort
  // by time so ties keep edge id order — the per-unit scan order the
  // earliest-arrival closure depends on. incident_edges() lists edge
  // ids ascending (edges append on creation), so one pass over it per
  // vertex fills the region already edge-sorted.
  std::vector<std::size_t> fill(vertex_offsets_.begin(),
                                vertex_offsets_.end() - 1);
  std::vector<std::size_t> order;
  std::vector<TimeUnit> tt;
  std::vector<VertexId> nn;
  std::vector<EdgeId> ee;
  for (std::size_t v = 0; v < n_; ++v) {
    for (EdgeId e : eg.incident_edges(v)) {
      const auto& edge = eg.edge(e);
      const VertexId other = edge.u == v ? edge.v : edge.u;
      for (TimeUnit t : edge.labels) {
        const std::size_t i = fill[v]++;
        contact_time_[i] = t;
        contact_neighbor_[i] = other;
        contact_edge_[i] = e;
      }
    }
    const std::size_t lo = vertex_offsets_[v], hi = vertex_offsets_[v + 1];
    order.resize(hi - lo);
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = lo + i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return contact_time_[a] < contact_time_[b];
                     });
    tt.resize(hi - lo);
    nn.resize(hi - lo);
    ee.resize(hi - lo);
    for (std::size_t i = 0; i < order.size(); ++i) {
      tt[i] = contact_time_[order[i]];
      nn[i] = contact_neighbor_[order[i]];
      ee[i] = contact_edge_[order[i]];
    }
    std::copy(tt.begin(), tt.end(), contact_time_.begin() + lo);
    std::copy(nn.begin(), nn.end(), contact_neighbor_.begin() + lo);
    std::copy(ee.begin(), ee.end(), contact_edge_.begin() + lo);
  }

  // Distinct-edge adjacency (edges that still carry labels only) and
  // per-edge label arrays: the min-hop kernel's "first use of e at or
  // after t" is a lower_bound into edge_labels(e). incident_edges()
  // lists ids ascending, which is the tie-break order the kernels need.
  std::vector<std::size_t> adj_deg(n_, 0);
  for (EdgeId e = 0; e < m; ++e) {
    if (eg.edge(e).labels.empty()) continue;
    ++adj_deg[edge_u_[e]];
    ++adj_deg[edge_v_[e]];
  }
  adj_offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    adj_offsets_[v + 1] = adj_offsets_[v] + adj_deg[v];
  }
  adj_edge_.resize(adj_offsets_[n_]);
  adj_neighbor_.resize(adj_offsets_[n_]);
  std::vector<std::size_t> afill(adj_offsets_.begin(),
                                 adj_offsets_.end() - 1);
  for (std::size_t v = 0; v < n_; ++v) {
    for (EdgeId e : eg.incident_edges(v)) {
      const auto& edge = eg.edge(e);
      if (edge.labels.empty()) continue;
      const std::size_t i = afill[v]++;
      adj_edge_[i] = e;
      adj_neighbor_[i] = edge.u == v ? edge.v : edge.u;
    }
  }
  edge_label_offsets_.assign(m + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    edge_label_offsets_[e + 1] =
        edge_label_offsets_[e] + eg.edge(e).labels.size();
  }
  edge_labels_.resize(contact_count_);
  for (EdgeId e = 0; e < m; ++e) {
    const auto& labels = eg.edge(e).labels;
    std::copy(labels.begin(), labels.end(),
              edge_labels_.begin() + edge_label_offsets_[e]);
  }

  // Global stream: per-unit spans in edge id order (edge ids visited
  // ascending), matching the legacy bucket_by_time bucket contents.
  time_offsets_.assign(static_cast<std::size_t>(horizon_) + 1, 0);
  for (TimeUnit t = 0; t < horizon_; ++t) {
    time_offsets_[t + 1] = time_offsets_[t] + time_count[t];
  }
  stream_edge_.resize(contact_count_);
  std::vector<std::size_t> tfill(time_offsets_.begin(),
                                 time_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    for (TimeUnit t : eg.edge(e).labels) stream_edge_[tfill[t]++] = e;
  }
}

std::size_t TemporalCsr::first_contact_at(VertexId v, TimeUnit t) const {
  const auto lo = contact_time_.begin() + vertex_offsets_[v];
  const auto hi = contact_time_.begin() + vertex_offsets_[v + 1];
  return static_cast<std::size_t>(
      std::lower_bound(lo, hi, t) - contact_time_.begin());
}

std::size_t TemporalCsr::first_contact_after(VertexId v, TimeUnit t) const {
  const auto lo = contact_time_.begin() + vertex_offsets_[v];
  const auto hi = contact_time_.begin() + vertex_offsets_[v + 1];
  return static_cast<std::size_t>(
      std::upper_bound(lo, hi, t) - contact_time_.begin());
}

void TemporalWorkspace::bind(const TemporalCsr& csr) {
  if (n_ == csr.vertex_count()) return;
  n_ = csr.vertex_count();
  // epoch_/tick_ keep counting monotonically: zeroed stamps are always
  // stale relative to the next begin_sweep()/next_tick().
  stamp_.assign(n_, 0);
  arrival_.assign(n_, 0);
  via_.assign(n_, JourneyHop{});
  vertex_tick_.assign(n_, 0);
  value_tick_.assign(n_, 0);
  value_.assign(n_, 0);
  value_edge_.assign(n_, 0);
  hop_cand_.assign(n_, JourneyHop{});
  parent_.assign(n_, 0);
}

EarliestArrival TemporalWorkspace::to_earliest_arrival() const {
  EarliestArrival ea;
  ea.completion.resize(n_);
  ea.via.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    const auto id = static_cast<VertexId>(v);
    ea.completion[v] = arrival(id);
    ea.via[v] = via(id);
  }
  return ea;
}

void csr_earliest_arrival(const TemporalCsr& csr, VertexId source,
                          TimeUnit t_start, TemporalWorkspace& ws,
                          VertexId stop_at) {
  STRUCTNET_OBS_SPAN("temporal.csr_earliest_arrival");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_earliest_arrival_calls");
  calls.add();
  assert(source < csr.vertex_count());
  ws.bind(csr);
  ws.begin_sweep();
  ws.reached_ = 0;
  ws.set_arrival(source, t_start, JourneyHop{});
  if (stop_at != kInvalidVertex && stop_at == source) return;

  // seeds_ holds the still-unreached vertices that can ever be reached
  // (vertices with no contacts stay at kNeverTime in the legacy kernel
  // too); the sweep is done the moment it drains.
  const std::size_t n = csr.vertex_count();
  ws.seeds_.clear();
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<VertexId>(v);
    if (id != source && csr.contacts_begin(id) != csr.contacts_end(id)) {
      ws.seeds_.push_back(id);
    }
  }

  for (TimeUnit t = t_start; t < csr.horizon() && !ws.seeds_.empty(); ++t) {
    const auto unit = csr.edges_at(t);
    if (unit.empty()) continue;

    // A unit fires nothing unless some edge starts it with exactly one
    // reached endpoint (every cascade needs a first firing), i.e. some
    // unreached vertex has a contact at t with a reached neighbor.
    // Probe through whichever side is smaller: the unreached list (one
    // lower_bound + walk each) or the unit's edge span.
    bool active = false;
    if (ws.seeds_.size() < unit.size()) {
      for (const VertexId w : ws.seeds_) {
        for (std::size_t i = csr.first_contact_at(w, t);
             i < csr.contacts_end(w) && csr.contact_time(i) == t; ++i) {
          if (ws.reached(csr.contact_neighbor(i))) {
            active = true;
            break;
          }
        }
        if (active) break;
      }
    } else {
      for (const EdgeId e : unit) {
        if (ws.reached(csr.edge_u(e)) != ws.reached(csr.edge_v(e))) {
          active = true;
          break;
        }
      }
    }
    if (!active) continue;

    // Legacy fixed point in the span's edge id order (= the legacy
    // bucket scan order, so the firing sequence and via hops match
    // exactly). The first pass covers the whole span; edges that fire
    // or already have both endpoints reached can never fire again, so
    // re-scan passes keep only the both-unreached remainder.
    ws.local_edges_.clear();
    bool changed = false;
    for (const EdgeId e : unit) {
      const VertexId u = csr.edge_u(e), v = csr.edge_v(e);
      const bool ru = ws.reached(u), rv = ws.reached(v);
      if (ru && !rv) {
        ws.set_arrival(v, t, JourneyHop{u, v, t});
        changed = true;
      } else if (rv && !ru) {
        ws.set_arrival(u, t, JourneyHop{v, u, t});
        changed = true;
      } else if (!ru && !rv) {
        ws.local_edges_.push_back(e);
      }
    }
    while (changed) {
      changed = false;
      std::size_t live = 0;
      for (const EdgeId e : ws.local_edges_) {
        const VertexId u = csr.edge_u(e), v = csr.edge_v(e);
        const bool ru = ws.reached(u), rv = ws.reached(v);
        if (ru && !rv) {
          ws.set_arrival(v, t, JourneyHop{u, v, t});
          changed = true;
        } else if (rv && !ru) {
          ws.set_arrival(u, t, JourneyHop{v, u, t});
          changed = true;
        } else if (!ru && !rv) {
          ws.local_edges_[live++] = e;
        }
      }
      ws.local_edges_.resize(live);
    }

    if (stop_at != kInvalidVertex && ws.reached(stop_at)) return;

    std::size_t keep = 0;
    for (const VertexId w : ws.seeds_) {
      if (!ws.reached(w)) ws.seeds_[keep++] = w;
    }
    ws.seeds_.resize(keep);
  }
}

std::optional<std::pair<TimeUnit, TimeUnit>> csr_fastest_departure(
    const TemporalCsr& csr, VertexId source, VertexId target, TimeUnit t_start,
    TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_fastest_departure");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_fastest_departure_calls");
  calls.add();
  assert(source < csr.vertex_count() && target < csr.vertex_count());
  assert(source != target);
  ws.bind(csr);
  ws.begin_sweep();
  ws.reached_ = 0;

  // Profile state, per vertex x: arrival_[x] (epoch-stamped) holds the
  // latest departure d(x) such that some journey source -> x departing
  // at d(x) >= t_start has arrived by the time unit being processed.
  // Each unit merges d() over the unit's snapshot components (union-
  // find, values on roots), with the source contributing "depart now".
  // Whenever d(target) strictly improves to d at unit t, a journey
  // departing at d arrives exactly at t, so t - d is a candidate span;
  // the minimum over these events is the fastest-journey span.
  std::optional<std::pair<TimeUnit, TimeUnit>> best;
  TimeUnit best_span = kNeverTime;

  for (TimeUnit t = t_start; t < csr.horizon(); ++t) {
    const auto bucket = csr.edges_at(t);
    if (bucket.empty()) continue;
    const std::uint64_t tick = ws.next_tick();
    ws.touched_.clear();

    // find() with per-unit lazy init: a fresh vertex becomes its own
    // root carrying its current d() (the source contributes t, which
    // dominates any earlier departure it may hold).
    const auto find = [&](VertexId x) {
      if (ws.vertex_tick_[x] != tick) {
        ws.vertex_tick_[x] = tick;
        ws.parent_[x] = x;
        ws.touched_.push_back(x);
        if (x == source) {
          ws.value_tick_[x] = tick;
          ws.value_[x] = t;
        } else if (ws.stamp_[x] == ws.epoch_) {
          ws.value_tick_[x] = tick;
          ws.value_[x] = ws.arrival_[x];
        }
      }
      while (ws.parent_[x] != x) {
        ws.parent_[x] = ws.parent_[ws.parent_[x]];
        x = ws.parent_[x];
      }
      return x;
    };

    for (EdgeId e : bucket) {
      const VertexId ru = find(csr.edge_u(e)), rv = find(csr.edge_v(e));
      if (ru == rv) continue;
      ws.parent_[ru] = rv;
      if (ws.value_tick_[ru] == tick &&
          (ws.value_tick_[rv] != tick || ws.value_[ru] > ws.value_[rv])) {
        ws.value_tick_[rv] = tick;
        ws.value_[rv] = ws.value_[ru];
      }
    }

    for (VertexId x : ws.touched_) {
      const VertexId r = find(x);
      if (ws.value_tick_[r] != tick) continue;
      const TimeUnit d = ws.value_[r];
      if (ws.stamp_[x] == ws.epoch_ && ws.arrival_[x] >= d) continue;
      ws.stamp_[x] = ws.epoch_;
      ws.arrival_[x] = d;
      if (x == target) {
        const TimeUnit span = t - d;
        if (span < best_span) {
          best_span = span;
          best = {d, t};
        }
      }
    }
    if (best_span == 0) break;
  }
  return best;
}

std::optional<Journey> csr_minimum_hop_journey(const TemporalCsr& csr,
                                               VertexId source, VertexId target,
                                               TimeUnit t_start,
                                               TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_minimum_hop_journey");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_minimum_hop_journey_calls");
  calls.add();
  assert(source < csr.vertex_count() && target < csr.vertex_count());
  if (source == target) return Journey{};
  ws.bind(csr);
  ws.begin_sweep();
  ws.reached_ = 0;

  const std::size_t n = csr.vertex_count();
  // ready(v) lives in arrival_ (epoch-stamped; unreached = kNeverTime).
  ws.set_arrival(source, t_start, JourneyHop{});
  ws.seeds_.assign(1, source);  // current frontier
  ws.via_flat_.clear();
  ws.layer_off_.assign(1, 0);

  for (std::size_t h = 0; h + 1 < n + 1; ++h) {
    // Per-layer candidate state in value_ (stamped by value_tick_):
    // value_[w] = best next-ready so far, value_edge_[w] = its edge id
    // (legacy takes the FIRST strict improvement in edge id scan order,
    // i.e. the minimal (label, edge id) pair among strict improvers —
    // the two directions of an edge target different vertices, so edge
    // id alone breaks ties). Only vertices improved in the previous
    // layer can strictly improve anything (an older ready[from] already
    // produced the same candidate one layer earlier), so relaxing only
    // frontier-incident contacts matches the full Bellman-Ford scan.
    const std::uint64_t tick = ws.next_tick();
    ws.newly_.clear();
    for (VertexId v : ws.seeds_) {
      const TimeUnit rv = ws.arrival_[v];
      // One candidate per distinct incident edge: its first label at or
      // after ready(v) (later labels of the same edge lose the (label,
      // edge id) comparison to it, so skipping them changes nothing).
      for (std::size_t i = csr.incident_begin(v); i < csr.incident_end(v);
           ++i) {
        const EdgeId e = csr.incident_edge(i);
        const auto labels = csr.edge_labels(e);
        const auto it = std::lower_bound(labels.begin(), labels.end(), rv);
        if (it == labels.end()) continue;
        const TimeUnit t = *it;
        const VertexId w = csr.incident_neighbor(i);
        if (ws.value_tick_[w] == tick) {
          if (t < ws.value_[w] ||
              (t == ws.value_[w] && e < ws.value_edge_[w])) {
            ws.value_[w] = t;
            ws.value_edge_[w] = e;
            ws.hop_cand_[w] = JourneyHop{v, w, t};
          }
        } else if (!(ws.reached(w)) || t < ws.arrival_[w]) {
          ws.value_tick_[w] = tick;
          ws.value_[w] = t;
          ws.value_edge_[w] = e;
          ws.hop_cand_[w] = JourneyHop{v, w, t};
          ws.newly_.push_back(w);
        }
      }
    }
    if (ws.newly_.empty()) return std::nullopt;

    std::sort(ws.newly_.begin(), ws.newly_.end());
    bool target_hit = false;
    for (VertexId w : ws.newly_) {
      if (w == target && !ws.reached(w)) target_hit = true;
      if (!ws.reached(w)) {
        ws.set_arrival(w, ws.value_[w], ws.hop_cand_[w]);
      } else {
        ws.arrival_[w] = ws.value_[w];
      }
      ws.via_flat_.emplace_back(w, ws.hop_cand_[w]);
    }
    ws.layer_off_.push_back(ws.via_flat_.size());

    if (target_hit) {
      Journey j;
      VertexId cur = target;
      for (std::size_t layer = ws.layer_off_.size() - 1; layer-- > 0;) {
        if (cur == source) break;
        const auto lo = ws.via_flat_.begin() + ws.layer_off_[layer];
        const auto hi = ws.via_flat_.begin() + ws.layer_off_[layer + 1];
        const auto it = std::lower_bound(
            lo, hi, cur, [](const auto& p, VertexId v) { return p.first < v; });
        if (it == hi || it->first != cur) continue;  // reached earlier layer
        j.hops.push_back(it->second);
        cur = it->second.from;
      }
      assert(cur == source);
      std::reverse(j.hops.begin(), j.hops.end());
      return j;
    }
    ws.seeds_.swap(ws.newly_);
  }
  return std::nullopt;
}

}  // namespace structnet
