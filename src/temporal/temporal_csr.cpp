#include "temporal/temporal_csr.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "temporal/temporal_kernels.hpp"

namespace structnet {

TemporalCsr::TemporalCsr(const TemporalGraph& eg)
    : n_(eg.vertex_count()), horizon_(eg.horizon()) {
  STRUCTNET_OBS_SPAN("temporal.csr_build");
  static obs::Counter& builds =
      obs::MetricsRegistry::global().counter("temporal.csr_builds");
  builds.add();
  const std::size_t m = eg.edge_count();
  edge_u_.resize(m);
  edge_v_.resize(m);
  std::vector<std::size_t> vertex_deg(n_, 0);
  std::vector<std::size_t> time_count(horizon_, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const auto& edge = eg.edge(e);
    edge_u_[e] = edge.u;
    edge_v_[e] = edge.v;
    contact_count_ += edge.labels.size();
    vertex_deg[edge.u] += edge.labels.size();
    vertex_deg[edge.v] += edge.labels.size();
    for (TimeUnit t : edge.labels) ++time_count[t];
  }

  // Per-edge label arrays: a straight copy (TemporalGraph keeps each
  // label set sorted ascending already).
  edge_label_offsets_.assign(m + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    edge_label_offsets_[e + 1] =
        edge_label_offsets_[e] + eg.edge(e).labels.size();
  }
  edge_labels_.resize(contact_count_);
  for (EdgeId e = 0; e < m; ++e) {
    const auto& labels = eg.edge(e).labels;
    std::copy(labels.begin(), labels.end(),
              edge_labels_.begin() + edge_label_offsets_[e]);
  }

  // Global stream: per-unit spans in edge id order (edge ids visited
  // ascending), matching the legacy bucket_by_time bucket contents.
  time_offsets_.assign(static_cast<std::size_t>(horizon_) + 1, 0);
  for (TimeUnit t = 0; t < horizon_; ++t) {
    time_offsets_[t + 1] = time_offsets_[t] + time_count[t];
  }
  stream_edge_.resize(contact_count_);
  std::vector<std::size_t> tfill(time_offsets_.begin(),
                                 time_offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    for (TimeUnit t : eg.edge(e).labels) stream_edge_[tfill[t]++] = e;
  }

  // Per-vertex contact regions, (time, edge id)-sorted, via a counting
  // pass instead of a per-vertex comparison sort: one chronological walk
  // over the finished stream visits contacts in globally ascending
  // (t, e), so appending each contact to both endpoint regions fills
  // every region already in the required order. O(C) instead of the
  // previous O(C log C) stable_sort per vertex.
  vertex_offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    vertex_offsets_[v + 1] = vertex_offsets_[v] + vertex_deg[v];
  }
  contact_time_.resize(2 * contact_count_);
  contact_neighbor_.resize(2 * contact_count_);
  contact_edge_.resize(2 * contact_count_);
  std::vector<std::size_t> fill(vertex_offsets_.begin(),
                                vertex_offsets_.end() - 1);
  for (TimeUnit t = 0; t < horizon_; ++t) {
    for (const EdgeId e : edges_at(t)) {
      const VertexId u = edge_u_[e], v = edge_v_[e];
      std::size_t i = fill[u]++;
      contact_time_[i] = t;
      contact_neighbor_[i] = v;
      contact_edge_[i] = e;
      i = fill[v]++;
      contact_time_[i] = t;
      contact_neighbor_[i] = u;
      contact_edge_[i] = e;
    }
  }

  // Distinct-edge adjacency (edges that still carry labels only) and
  // per-edge label arrays: the min-hop kernel's "first use of e at or
  // after t" is a lower_bound into edge_labels(e). incident_edges()
  // lists ids ascending, which is the tie-break order the kernels need.
  std::vector<std::size_t> adj_deg(n_, 0);
  for (EdgeId e = 0; e < m; ++e) {
    if (eg.edge(e).labels.empty()) continue;
    ++adj_deg[edge_u_[e]];
    ++adj_deg[edge_v_[e]];
  }
  adj_offsets_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    adj_offsets_[v + 1] = adj_offsets_[v] + adj_deg[v];
  }
  adj_edge_.resize(adj_offsets_[n_]);
  adj_neighbor_.resize(adj_offsets_[n_]);
  std::vector<std::size_t> afill(adj_offsets_.begin(),
                                 adj_offsets_.end() - 1);
  for (std::size_t v = 0; v < n_; ++v) {
    for (EdgeId e : eg.incident_edges(v)) {
      const auto& edge = eg.edge(e);
      if (edge.labels.empty()) continue;
      const std::size_t i = afill[v]++;
      adj_edge_[i] = e;
      adj_neighbor_[i] = edge.u == v ? edge.v : edge.u;
    }
  }
}

std::size_t TemporalCsr::first_contact_at(VertexId v, TimeUnit t) const {
  const auto lo = contact_time_.begin() + vertex_offsets_[v];
  const auto hi = contact_time_.begin() + vertex_offsets_[v + 1];
  return static_cast<std::size_t>(
      std::lower_bound(lo, hi, t) - contact_time_.begin());
}

std::size_t TemporalCsr::first_contact_after(VertexId v, TimeUnit t) const {
  const auto lo = contact_time_.begin() + vertex_offsets_[v];
  const auto hi = contact_time_.begin() + vertex_offsets_[v + 1];
  return static_cast<std::size_t>(
      std::upper_bound(lo, hi, t) - contact_time_.begin());
}

void TemporalWorkspace::bind(std::size_t n) {
  if (n_ == n) return;
  n_ = n;
  // epoch_/tick_ keep counting monotonically: zeroed stamps are always
  // stale relative to the next begin_sweep()/next_tick().
  stamp_.assign(n_, 0);
  arrival_.assign(n_, 0);
  via_.assign(n_, JourneyHop{});
  vertex_tick_.assign(n_, 0);
  value_tick_.assign(n_, 0);
  value_.assign(n_, 0);
  value_edge_.assign(n_, 0);
  hop_cand_.assign(n_, JourneyHop{});
  parent_.assign(n_, 0);
}

EarliestArrival TemporalWorkspace::to_earliest_arrival() const {
  EarliestArrival ea;
  ea.completion.resize(n_);
  ea.via.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    const auto id = static_cast<VertexId>(v);
    ea.completion[v] = arrival(id);
    ea.via[v] = via(id);
  }
  return ea;
}

void csr_earliest_arrival(const TemporalCsr& csr, VertexId source,
                          TimeUnit t_start, TemporalWorkspace& ws,
                          VertexId stop_at) {
  STRUCTNET_OBS_SPAN("temporal.csr_earliest_arrival");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_earliest_arrival_calls");
  calls.add();
  detail::WorkspaceOps::earliest_arrival(csr, source, t_start, ws, stop_at);
}

std::optional<std::pair<TimeUnit, TimeUnit>> csr_fastest_departure(
    const TemporalCsr& csr, VertexId source, VertexId target, TimeUnit t_start,
    TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_fastest_departure");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_fastest_departure_calls");
  calls.add();
  return detail::WorkspaceOps::fastest_departure(csr, source, target, t_start,
                                                 ws);
}

std::optional<Journey> csr_minimum_hop_journey(const TemporalCsr& csr,
                                               VertexId source, VertexId target,
                                               TimeUnit t_start,
                                               TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_minimum_hop_journey");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_minimum_hop_journey_calls");
  calls.add();
  return detail::WorkspaceOps::minimum_hop(csr, source, target, t_start, ws);
}

}  // namespace structnet
