#include "temporal/temporal_graph.hpp"

#include <algorithm>
#include <cassert>

namespace structnet {

void TemporalGraph::add_contact(VertexId u, VertexId v, TimeUnit t) {
  assert(u < vertex_count() && v < vertex_count() && u != v);
  assert(t < horizon_);
  EdgeId e = find_edge(u, v);
  if (e == kInvalidEdge) {
    e = static_cast<EdgeId>(edges_.size());
    edges_.push_back(LabeledEdge{u, v, {}});
    incident_[u].push_back(e);
    incident_[v].push_back(e);
  }
  auto& labels = edges_[e].labels;
  const auto it = std::lower_bound(labels.begin(), labels.end(), t);
  if (it == labels.end() || *it != t) labels.insert(it, t);
}

void TemporalGraph::add_edge_labels(VertexId u, VertexId v,
                                    std::span<const TimeUnit> labels) {
  for (TimeUnit t : labels) add_contact(u, v, t);
}

bool TemporalGraph::has_contact(VertexId u, VertexId v, TimeUnit t) const {
  const EdgeId e = find_edge(u, v);
  if (e == kInvalidEdge) return false;
  const auto& labels = edges_[e].labels;
  return std::binary_search(labels.begin(), labels.end(), t);
}

EdgeId TemporalGraph::find_edge(VertexId u, VertexId v) const {
  assert(u < vertex_count() && v < vertex_count());
  const auto& inc =
      incident_[u].size() <= incident_[v].size() ? incident_[u] : incident_[v];
  for (EdgeId e : inc) {
    const LabeledEdge& le = edges_[e];
    if ((le.u == u && le.v == v) || (le.u == v && le.v == u)) return e;
  }
  return kInvalidEdge;
}

Graph TemporalGraph::snapshot(TimeUnit t) const {
  Graph g(vertex_count());
  for (const LabeledEdge& e : edges_) {
    if (std::binary_search(e.labels.begin(), e.labels.end(), t)) {
      g.add_edge(e.u, e.v);
    }
  }
  return g;
}

Graph TemporalGraph::footprint() const {
  Graph g(vertex_count());
  for (const LabeledEdge& e : edges_) {
    if (!e.labels.empty()) g.add_edge(e.u, e.v);
  }
  return g;
}

std::vector<Contact> TemporalGraph::contacts() const {
  std::vector<Contact> out;
  for (const LabeledEdge& e : edges_) {
    for (TimeUnit t : e.labels) out.push_back(Contact{e.u, e.v, t});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Contact& a, const Contact& b) { return a.t < b.t; });
  return out;
}

TemporalGraph TemporalGraph::from_snapshots(std::span<const Graph> snapshots) {
  if (snapshots.empty()) return {};
  const std::size_t n = snapshots[0].vertex_count();
  TemporalGraph eg(n, static_cast<TimeUnit>(snapshots.size()));
  for (TimeUnit t = 0; t < snapshots.size(); ++t) {
    assert(snapshots[t].vertex_count() == n);
    for (const Graph::Edge& e : snapshots[t].edges()) {
      eg.add_contact(e.u, e.v, t);
    }
  }
  return eg;
}

TemporalGraph TemporalGraph::from_contacts(std::size_t n, TimeUnit horizon,
                                           std::span<const Contact> contacts) {
  TemporalGraph eg(n, horizon);
  for (const Contact& c : contacts) eg.add_contact(c.u, c.v, c.t);
  return eg;
}

TemporalGraph TemporalGraph::without_vertex(VertexId v) const {
  TemporalGraph eg(vertex_count(), horizon_);
  for (const LabeledEdge& e : edges_) {
    if (e.u == v || e.v == v) continue;
    eg.add_edge_labels(e.u, e.v, e.labels);
  }
  return eg;
}

TemporalGraph TemporalGraph::without_edge(VertexId u, VertexId v) const {
  TemporalGraph eg(vertex_count(), horizon_);
  for (const LabeledEdge& e : edges_) {
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) continue;
    eg.add_edge_labels(e.u, e.v, e.labels);
  }
  return eg;
}

bool TemporalGraph::remove_label(VertexId u, VertexId v, TimeUnit t) {
  const EdgeId e = find_edge(u, v);
  if (e == kInvalidEdge) return false;
  auto& labels = edges_[e].labels;
  const auto it = std::lower_bound(labels.begin(), labels.end(), t);
  if (it == labels.end() || *it != t) return false;
  labels.erase(it);
  return true;
}

TemporalGraph TemporalGraph::without_label(VertexId u, VertexId v,
                                           TimeUnit t) const {
  TemporalGraph eg(vertex_count(), horizon_);
  for (const LabeledEdge& e : edges_) {
    const bool match = (e.u == u && e.v == v) || (e.u == v && e.v == u);
    if (!match) {
      eg.add_edge_labels(e.u, e.v, e.labels);
      continue;
    }
    for (TimeUnit label : e.labels) {
      if (label != t) eg.add_contact(e.u, e.v, label);
    }
  }
  return eg;
}

}  // namespace structnet
