// Contact-trace serialization: the bridge between structnet and real
// trace datasets (INFOCOM/Reality-Mining-style contact lists).
//
// Format: a header line `n horizon m` followed by m lines `u v t`
// (whitespace separated, one contact per line, duplicates tolerated).
#pragma once

#include <iosfwd>
#include <optional>

#include "temporal/temporal_graph.hpp"

namespace structnet {

/// Writes the trace as a contact list.
void write_contact_trace(std::ostream& os, const TemporalGraph& eg);

/// Parses a contact list; std::nullopt on malformed input (bad counts,
/// out-of-range vertices or times, self-contacts).
std::optional<TemporalGraph> read_contact_trace(std::istream& is);

}  // namespace structnet
