// Contact-trace serialization: the bridge between structnet and real
// trace datasets (INFOCOM/Reality-Mining-style contact lists).
//
// Format: a header line `n horizon m` followed by m lines `u v t`
// (whitespace separated, one contact per line, duplicates tolerated).
// Blank lines are skipped.
//
// parse_contact_trace reports malformed input with the 1-based line
// number and a human-readable reason; read_contact_trace is the
// optional-returning shim for callers that only care about success.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>

#include "temporal/temporal_graph.hpp"

namespace structnet {

/// Writes the trace as a contact list.
void write_contact_trace(std::ostream& os, const TemporalGraph& eg);

/// Outcome of parsing a contact list. On failure `graph` is empty and
/// (line, error) point at the offending input line; on success `line`
/// is 0 and `error` empty.
struct TraceParseResult {
  std::optional<TemporalGraph> graph;
  std::size_t line = 0;  // 1-based line number of the failure
  std::string error;

  bool ok() const { return graph.has_value(); }
};

/// Parses a contact list, reporting where and why malformed input fails
/// (bad counts, out-of-range vertices or times, self-contacts,
/// truncation).
TraceParseResult parse_contact_trace(std::istream& is);

/// Shim over parse_contact_trace: std::nullopt on malformed input.
std::optional<TemporalGraph> read_contact_trace(std::istream& is);

}  // namespace structnet
