// Internal: the temporal-path kernel bodies, templated over the contact
// index they read. Two instantiations exist — the immutable TemporalCsr
// and the base+delta DeltaTemporalCsr overlay — and both must replay the
// legacy fixed point bit-for-bit, so the kernels only touch the index
// through a narrow iteration interface that hides the memory layout:
//
//   vertex_count() / horizon() / edge_u(e) / edge_v(e)
//   has_contacts(v)          — v has at least one live contact
//   unit_size(t)             — number of live contacts during unit t
//   find_contact_at(v, t, p) — any contact of v at exactly t with p(nbr)?
//   for_each_edge_at(t, f)   — live edges of unit t, ASCENDING edge id
//                              (the legacy bucket scan order); f returns
//                              false to stop early
//   for_each_incident(v, f)  — distinct incident edges of v, ASCENDING
//                              edge id; edges with no live labels may
//                              appear (they can never produce a
//                              candidate); f returns false to stop
//   first_label_at(e, t)     — earliest live label of e at or after t,
//                              kNeverTime when none
//
// Ascending-edge-id iteration is the load-bearing requirement: it is
// what makes the same-unit closure fire in the legacy sequence and the
// min-hop (label, edge id) tie-breaks resolve identically on every
// index. Included only by temporal_csr.cpp / temporal_delta.cpp /
// multi_source.cpp.
#pragma once

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <utility>

#include "temporal/multi_source.hpp"
#include "temporal/temporal_csr.hpp"

namespace structnet::detail {

// The single friend of TemporalWorkspace / MultiSourceWorkspace: every
// kernel body lives here as a static member template so one friend
// declaration covers all index instantiations.
struct WorkspaceOps {
  template <class Index>
  static void earliest_arrival(const Index& csr, VertexId source,
                               TimeUnit t_start, TemporalWorkspace& ws,
                               VertexId stop_at);
  template <class Index>
  static void earliest_arrival_batch(const Index& csr,
                                     std::span<const VertexId> sources,
                                     TimeUnit t_start, MultiSourceWorkspace& ws,
                                     bool record_via);
  template <class Index>
  static std::optional<std::pair<TimeUnit, TimeUnit>> fastest_departure(
      const Index& csr, VertexId source, VertexId target, TimeUnit t_start,
      TemporalWorkspace& ws);
  template <class Index>
  static std::optional<Journey> minimum_hop(const Index& csr, VertexId source,
                                            VertexId target, TimeUnit t_start,
                                            TemporalWorkspace& ws);

  /// Refreshes a workspace's cached has-contacts vertex list (ascending
  /// vertex id) for `csr`. Keyed on the index's unique state token, so
  /// an all-pairs sweep pays the O(n) has_contacts scan once per index
  /// state instead of once per source.
  template <class Index, class Ws>
  static void refresh_contact_list(const Index& csr, Ws& ws) {
    if (ws.contact_state_ == csr.state_id()) return;
    ws.contact_list_.clear();
    const std::size_t n = csr.vertex_count();
    for (std::size_t v = 0; v < n; ++v) {
      const auto id = static_cast<VertexId>(v);
      if (csr.has_contacts(id)) ws.contact_list_.push_back(id);
    }
    ws.contact_state_ = csr.state_id();
  }
};

template <class Index>
void WorkspaceOps::earliest_arrival(const Index& csr, VertexId source,
                                    TimeUnit t_start, TemporalWorkspace& ws,
                                    VertexId stop_at) {
  assert(source < csr.vertex_count());
  ws.bind(csr.vertex_count());
  ws.begin_sweep();
  ws.reached_ = 0;
  ws.set_arrival(source, t_start, JourneyHop{});
  if (stop_at != kInvalidVertex && stop_at == source) return;

  // seeds_ holds the still-unreached vertices that can ever be reached
  // (vertices with no contacts stay at kNeverTime in the legacy kernel
  // too); the sweep is done the moment it drains. Rebuilt as a copy of
  // the per-index-state cached contact list, not an O(n) has_contacts
  // scan per source.
  refresh_contact_list(csr, ws);
  ws.seeds_.clear();
  for (const VertexId id : ws.contact_list_) {
    if (id != source) ws.seeds_.push_back(id);
  }

  for (TimeUnit t = t_start; t < csr.horizon() && !ws.seeds_.empty(); ++t) {
    const std::size_t unit_size = csr.unit_size(t);
    if (unit_size == 0) continue;

    // A unit fires nothing unless some edge starts it with exactly one
    // reached endpoint (every cascade needs a first firing), i.e. some
    // unreached vertex has a contact at t with a reached neighbor.
    // Probe through whichever side is smaller: the unreached list (one
    // lower_bound + walk each) or the unit's edge span.
    bool active = false;
    if (ws.seeds_.size() < unit_size) {
      for (const VertexId w : ws.seeds_) {
        if (csr.find_contact_at(
                w, t, [&](VertexId nbr) { return ws.reached(nbr); })) {
          active = true;
          break;
        }
      }
    } else {
      csr.for_each_edge_at(t, [&](EdgeId e) {
        if (ws.reached(csr.edge_u(e)) != ws.reached(csr.edge_v(e))) {
          active = true;
          return false;
        }
        return true;
      });
    }
    if (!active) continue;

    // Legacy fixed point in ascending edge id order (= the legacy
    // bucket scan order, so the firing sequence and via hops match
    // exactly). The first pass covers the whole unit; edges that fire
    // or already have both endpoints reached can never fire again, so
    // re-scan passes keep only the both-unreached remainder.
    ws.local_edges_.clear();
    bool changed = false;
    csr.for_each_edge_at(t, [&](EdgeId e) {
      const VertexId u = csr.edge_u(e), v = csr.edge_v(e);
      const bool ru = ws.reached(u), rv = ws.reached(v);
      if (ru && !rv) {
        ws.set_arrival(v, t, JourneyHop{u, v, t});
        changed = true;
      } else if (rv && !ru) {
        ws.set_arrival(u, t, JourneyHop{v, u, t});
        changed = true;
      } else if (!ru && !rv) {
        ws.local_edges_.push_back(e);
      }
      return true;
    });
    while (changed) {
      changed = false;
      std::size_t live = 0;
      for (const EdgeId e : ws.local_edges_) {
        const VertexId u = csr.edge_u(e), v = csr.edge_v(e);
        const bool ru = ws.reached(u), rv = ws.reached(v);
        if (ru && !rv) {
          ws.set_arrival(v, t, JourneyHop{u, v, t});
          changed = true;
        } else if (rv && !ru) {
          ws.set_arrival(u, t, JourneyHop{v, u, t});
          changed = true;
        } else if (!ru && !rv) {
          ws.local_edges_[live++] = e;
        }
      }
      ws.local_edges_.resize(live);
    }

    if (stop_at != kInvalidVertex && ws.reached(stop_at)) return;

    std::size_t keep = 0;
    for (const VertexId w : ws.seeds_) {
      if (!ws.reached(w)) ws.seeds_[keep++] = w;
    }
    ws.seeds_.resize(keep);
  }
}

// The lane-packed replay of earliest_arrival: every decision the scalar
// kernel makes for lane l is a function of lane l's reached bits alone,
// so evaluating all lanes word-wide walks each lane through the exact
// scalar pass sequence (see multi_source.hpp for the full argument).
template <class Index>
void WorkspaceOps::earliest_arrival_batch(const Index& csr,
                                          std::span<const VertexId> sources,
                                          TimeUnit t_start,
                                          MultiSourceWorkspace& ws,
                                          bool record_via) {
  const std::size_t lanes = sources.size();
  assert(lanes >= 1 && lanes <= MultiSourceWorkspace::kMaxLanes);
  ws.bind(csr.vertex_count(), lanes, record_via);
  ws.begin_sweep();
  const std::uint64_t full = lanes == MultiSourceWorkspace::kMaxLanes
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << lanes) - 1;
  for (std::size_t l = 0; l < lanes; ++l) {
    assert(sources[l] < csr.vertex_count());
    // Sources arrive at t_start with no via hop, exactly like the
    // scalar set_arrival(source, t_start, JourneyHop{}). Duplicate
    // sources just accumulate bits on the same vertex.
    ws.fire(sources[l], std::uint64_t{1} << l, kInvalidVertex, t_start);
  }

  // pending_ = contact-bearing vertices some lane has yet to reach (the
  // union of every lane's scalar seeds_); the sweep is done when it
  // drains — each lane's state froze when its own seeds drained.
  refresh_contact_list(csr, ws);
  ws.pending_.clear();
  for (const VertexId v : ws.contact_list_) {
    if (ws.word(v) != full) ws.pending_.push_back(v);
  }

  for (TimeUnit t = t_start; t < csr.horizon() && !ws.pending_.empty(); ++t) {
    const std::size_t unit_size = csr.unit_size(t);
    if (unit_size == 0) continue;

    // A unit can fire iff some pending vertex has a contact at t with a
    // neighbor holding a bit it lacks — the word-wide generalization of
    // the scalar activity probe (lanes that cannot fire are untouched
    // by the passes below, so probing the union is exact per lane).
    bool active = false;
    if (ws.pending_.size() < unit_size) {
      for (const VertexId w : ws.pending_) {
        const std::uint64_t mw = ws.word(w);
        if (csr.find_contact_at(w, t, [&](VertexId nbr) {
              return (ws.word(nbr) & ~mw) != 0;
            })) {
          active = true;
          break;
        }
      }
    } else {
      csr.for_each_edge_at(t, [&](EdgeId e) {
        if (ws.word(csr.edge_u(e)) != ws.word(csr.edge_v(e))) {
          active = true;
          return false;
        }
        return true;
      });
    }
    if (!active) continue;

    // Same-unit closure, word-wide. Pass 1 covers the whole unit in
    // ascending edge id (per lane: the scalar pass 1); re-scans keep
    // the edges whose merged word is not yet full — per lane a superset
    // of the scalar both-unreached list whose extras can never fire
    // that lane (both endpoints already carry its bit).
    ws.live_edges_.clear();
    bool changed = false;
    const auto relax = [&](EdgeId e, std::size_t* live) {
      const VertexId u = csr.edge_u(e), v = csr.edge_v(e);
      const std::uint64_t mu = ws.word(u), mv = ws.word(v);
      if (mu != mv) {
        const std::uint64_t to_v = mu & ~mv;
        const std::uint64_t to_u = mv & ~mu;
        if (to_v != 0) ws.fire(v, to_v, u, t);
        if (to_u != 0) ws.fire(u, to_u, v, t);
        changed = true;
        if ((mu | mv) != full) {
          if (live != nullptr) {
            ws.live_edges_[(*live)++] = e;
          } else {
            ws.live_edges_.push_back(e);
          }
        }
      } else if (mu != full) {
        if (live != nullptr) {
          ws.live_edges_[(*live)++] = e;
        } else {
          ws.live_edges_.push_back(e);
        }
      }
    };
    csr.for_each_edge_at(t, [&](EdgeId e) {
      relax(e, nullptr);
      return true;
    });
    while (changed) {
      changed = false;
      std::size_t live = 0;
      for (const EdgeId e : ws.live_edges_) relax(e, &live);
      ws.live_edges_.resize(live);
    }

    std::size_t keep = 0;
    for (const VertexId w : ws.pending_) {
      if (ws.word(w) != full) ws.pending_[keep++] = w;
    }
    ws.pending_.resize(keep);
  }
}

template <class Index>
std::optional<std::pair<TimeUnit, TimeUnit>> WorkspaceOps::fastest_departure(
    const Index& csr, VertexId source, VertexId target, TimeUnit t_start,
    TemporalWorkspace& ws) {
  assert(source < csr.vertex_count() && target < csr.vertex_count());
  assert(source != target);
  ws.bind(csr.vertex_count());
  ws.begin_sweep();
  ws.reached_ = 0;

  // Profile state, per vertex x: arrival_[x] (epoch-stamped) holds the
  // latest departure d(x) such that some journey source -> x departing
  // at d(x) >= t_start has arrived by the time unit being processed.
  // Each unit merges d() over the unit's snapshot components (union-
  // find, values on roots), with the source contributing "depart now".
  // Whenever d(target) strictly improves to d at unit t, a journey
  // departing at d arrives exactly at t, so t - d is a candidate span;
  // the minimum over these events is the fastest-journey span.
  std::optional<std::pair<TimeUnit, TimeUnit>> best;
  TimeUnit best_span = kNeverTime;

  for (TimeUnit t = t_start; t < csr.horizon(); ++t) {
    if (csr.unit_size(t) == 0) continue;
    const std::uint64_t tick = ws.next_tick();
    ws.touched_.clear();

    // find() with per-unit lazy init: a fresh vertex becomes its own
    // root carrying its current d() (the source contributes t, which
    // dominates any earlier departure it may hold).
    const auto find = [&](VertexId x) {
      if (ws.vertex_tick_[x] != tick) {
        ws.vertex_tick_[x] = tick;
        ws.parent_[x] = x;
        ws.touched_.push_back(x);
        if (x == source) {
          ws.value_tick_[x] = tick;
          ws.value_[x] = t;
        } else if (ws.stamp_[x] == ws.epoch_) {
          ws.value_tick_[x] = tick;
          ws.value_[x] = ws.arrival_[x];
        }
      }
      while (ws.parent_[x] != x) {
        ws.parent_[x] = ws.parent_[ws.parent_[x]];
        x = ws.parent_[x];
      }
      return x;
    };

    csr.for_each_edge_at(t, [&](EdgeId e) {
      const VertexId ru = find(csr.edge_u(e)), rv = find(csr.edge_v(e));
      if (ru == rv) return true;
      ws.parent_[ru] = rv;
      if (ws.value_tick_[ru] == tick &&
          (ws.value_tick_[rv] != tick || ws.value_[ru] > ws.value_[rv])) {
        ws.value_tick_[rv] = tick;
        ws.value_[rv] = ws.value_[ru];
      }
      return true;
    });

    for (VertexId x : ws.touched_) {
      const VertexId r = find(x);
      if (ws.value_tick_[r] != tick) continue;
      const TimeUnit d = ws.value_[r];
      if (ws.stamp_[x] == ws.epoch_ && ws.arrival_[x] >= d) continue;
      ws.stamp_[x] = ws.epoch_;
      ws.arrival_[x] = d;
      if (x == target) {
        const TimeUnit span = t - d;
        if (span < best_span) {
          best_span = span;
          best = {d, t};
        }
      }
    }
    if (best_span == 0) break;
  }
  return best;
}

template <class Index>
std::optional<Journey> WorkspaceOps::minimum_hop(const Index& csr,
                                                 VertexId source,
                                                 VertexId target,
                                                 TimeUnit t_start,
                                                 TemporalWorkspace& ws) {
  assert(source < csr.vertex_count() && target < csr.vertex_count());
  if (source == target) return Journey{};
  ws.bind(csr.vertex_count());
  ws.begin_sweep();
  ws.reached_ = 0;

  const std::size_t n = csr.vertex_count();
  // ready(v) lives in arrival_ (epoch-stamped; unreached = kNeverTime).
  ws.set_arrival(source, t_start, JourneyHop{});
  ws.seeds_.assign(1, source);  // current frontier
  ws.via_flat_.clear();
  ws.layer_off_.assign(1, 0);

  for (std::size_t h = 0; h + 1 < n + 1; ++h) {
    // Per-layer candidate state in value_ (stamped by value_tick_):
    // value_[w] = best next-ready so far, value_edge_[w] = its edge id
    // (legacy takes the FIRST strict improvement in edge id scan order,
    // i.e. the minimal (label, edge id) pair among strict improvers —
    // the two directions of an edge target different vertices, so edge
    // id alone breaks ties). Only vertices improved in the previous
    // layer can strictly improve anything (an older ready[from] already
    // produced the same candidate one layer earlier), so relaxing only
    // frontier-incident contacts matches the full Bellman-Ford scan.
    const std::uint64_t tick = ws.next_tick();
    ws.newly_.clear();
    for (VertexId v : ws.seeds_) {
      const TimeUnit rv = ws.arrival_[v];
      // One candidate per distinct incident edge: its first live label
      // at or after ready(v) (later labels of the same edge lose the
      // (label, edge id) comparison to it, so skipping them changes
      // nothing).
      csr.for_each_incident(v, [&](EdgeId e, VertexId w) {
        const TimeUnit t = csr.first_label_at(e, rv);
        if (t == kNeverTime) return true;
        if (ws.value_tick_[w] == tick) {
          if (t < ws.value_[w] ||
              (t == ws.value_[w] && e < ws.value_edge_[w])) {
            ws.value_[w] = t;
            ws.value_edge_[w] = e;
            ws.hop_cand_[w] = JourneyHop{v, w, t};
          }
        } else if (!(ws.reached(w)) || t < ws.arrival_[w]) {
          ws.value_tick_[w] = tick;
          ws.value_[w] = t;
          ws.value_edge_[w] = e;
          ws.hop_cand_[w] = JourneyHop{v, w, t};
          ws.newly_.push_back(w);
        }
        return true;
      });
    }
    if (ws.newly_.empty()) return std::nullopt;

    std::sort(ws.newly_.begin(), ws.newly_.end());
    bool target_hit = false;
    for (VertexId w : ws.newly_) {
      if (w == target && !ws.reached(w)) target_hit = true;
      if (!ws.reached(w)) {
        ws.set_arrival(w, ws.value_[w], ws.hop_cand_[w]);
      } else {
        ws.arrival_[w] = ws.value_[w];
      }
      ws.via_flat_.emplace_back(w, ws.hop_cand_[w]);
    }
    ws.layer_off_.push_back(ws.via_flat_.size());

    if (target_hit) {
      Journey j;
      VertexId cur = target;
      for (std::size_t layer = ws.layer_off_.size() - 1; layer-- > 0;) {
        if (cur == source) break;
        const auto lo = ws.via_flat_.begin() + ws.layer_off_[layer];
        const auto hi = ws.via_flat_.begin() + ws.layer_off_[layer + 1];
        const auto it = std::lower_bound(
            lo, hi, cur, [](const auto& p, VertexId v) { return p.first < v; });
        if (it == hi || it->first != cur) continue;  // reached earlier layer
        j.hops.push_back(it->second);
        cur = it->second.from;
      }
      assert(cur == source);
      std::reverse(j.hops.begin(), j.hops.end());
      return j;
    }
    ws.seeds_.swap(ws.newly_);
  }
  return std::nullopt;
}

}  // namespace structnet::detail
