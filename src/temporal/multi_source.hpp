// Lane-packed multi-source earliest-arrival sweeps: up to 64 sources
// share ONE ascending pass over the contact index's per-unit edge
// stream, amortizing the scan every all-pairs kernel used to repeat
// once per source (MS-BFS applied to the temporal fixed point).
//
// Lane layout. Lane l of a batch is source sources[l]. Per vertex the
// workspace keeps one 64-bit reached word (bit l set = lane l has
// reached the vertex) plus a lanes-strided arrival row (and, when
// requested, a strided via-from row for journey-tree walks). A unit's
// closure fires word-wide: for an edge (u, v) with words mu / mv, the
// lanes `mu & ~mv` fire u -> v and `mv & ~mu` fire v -> u — per lane at
// most one direction can fire, so one OR per endpoint replays up to 64
// scalar firings.
//
// Fixed-point identity. The batch kernel replays the legacy scalar
// sequence (temporal_kernels.hpp) exactly, per lane:
//   * pass 1 scans the whole unit in ascending edge id — per lane the
//     same scan the scalar kernel makes, because a lane's firing
//     decision reads only that lane's bits;
//   * re-scan passes keep edges whose merged word `mu | mv` is not yet
//     full — a per-lane superset of the scalar both-unreached list
//     whose extra edges have both endpoints reached in that lane and so
//     can never fire it;
//   * arrivals are written only on a lane's FIRST fire at a vertex
//     (bits enter the word exactly once), so every lane's arrival
//     times and via hops are bit-identical to csr_earliest_arrival.
// The unit-activity probe generalizes the scalar one: a unit can fire
// iff some still-pending vertex w has a contact at t with a neighbor
// whose word carries a bit w lacks (`word(nbr) & ~word(w) != 0`).
//
// Works on both index types (TemporalCsr and DeltaTemporalCsr) through
// the shared kernel iteration contract; see csr_earliest_arrival_batch
// below. Callers shard all-pairs loops over blocks of kMaxLanes sources
// (fixed block -> shard mapping, so results stay bit-identical at any
// thread count), and the QueryBroker lane-packs batched
// TemporalDistances queries into these sweeps (serve/broker.cpp).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "temporal/temporal_csr.hpp"

namespace structnet {

class DeltaTemporalCsr;

/// Reusable scratch for lane-packed sweeps: one reached word per vertex
/// plus lanes-strided arrival / via-from rows, epoch-stamped so a new
/// sweep invalidates everything without clearing (pooled per worker
/// slot exactly like TemporalWorkspace).
class MultiSourceWorkspace {
 public:
  /// Lanes per sweep: one bit of the per-vertex reached word each.
  static constexpr std::size_t kMaxLanes = 64;

  std::size_t lane_count() const { return lanes_; }
  std::size_t vertex_count() const { return n_; }

  /// Lane l reached v in the last sweep?
  bool reached(std::size_t lane, VertexId v) const {
    return stamp_[v] == epoch_ && ((mask_[v] >> lane) & 1u) != 0;
  }
  /// Completion time of v in lane l (kNeverTime when unreached) —
  /// bit-identical to TemporalWorkspace::arrival after a scalar sweep
  /// from the lane's source.
  TimeUnit arrival(std::size_t lane, VertexId v) const {
    return reached(lane, v)
               ? arrival_[static_cast<std::size_t>(v) * lanes_ + lane]
               : kNeverTime;
  }
  /// Predecessor of v on lane l's earliest-arrival tree (kInvalidVertex
  /// for the source, unreached vertices, or sweeps without record_via)
  /// — the `via(v).from` the betweenness chain walk needs.
  VertexId via_from(std::size_t lane, VertexId v) const {
    return record_via_ && reached(lane, v)
               ? from_[static_cast<std::size_t>(v) * lanes_ + lane]
               : kInvalidVertex;
  }
  /// Vertices lane l reached (including its source).
  std::size_t reached_count(std::size_t lane) const { return reached_[lane]; }

  /// Lane l's completion row for all vertices — the exact bytes
  /// TemporalWorkspace::to_earliest_arrival().completion holds after
  /// the scalar sweep (what the TemporalDistances payload carries).
  std::vector<TimeUnit> completion(std::size_t lane) const {
    std::vector<TimeUnit> out(n_);
    for (std::size_t v = 0; v < n_; ++v) {
      out[v] = arrival(lane, static_cast<VertexId>(v));
    }
    return out;
  }

 private:
  friend struct detail::WorkspaceOps;

  void bind(std::size_t n, std::size_t lanes, bool record_via) {
    if (n_ != n) {
      n_ = n;
      // epoch_ keeps counting: zeroed stamps are always stale.
      stamp_.assign(n, 0);
      mask_.assign(n, 0);
    }
    lanes_ = lanes;
    record_via_ = record_via;
    // Strided rows grow to the high-water lane count and are never
    // cleared: reads are guarded by the epoch-stamped reached bits.
    if (arrival_.size() < n * lanes) arrival_.resize(n * lanes);
    if (record_via && from_.size() < n * lanes) from_.resize(n * lanes);
  }
  void begin_sweep() {
    ++epoch_;
    reached_.fill(0);
  }
  std::uint64_t word(VertexId v) const {
    return stamp_[v] == epoch_ ? mask_[v] : 0;
  }
  /// ORs `bits` into v's reached word and stamps each newly set lane's
  /// arrival (and via-from) — the word-wide set_arrival. Callers pass
  /// only lanes not yet set (bits = other & ~word(v)), so every
  /// (vertex, lane) arrival is written exactly once per sweep.
  void fire(VertexId v, std::uint64_t bits, VertexId from, TimeUnit t) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      mask_[v] = 0;
    }
    mask_[v] |= bits;
    const std::size_t base = static_cast<std::size_t>(v) * lanes_;
    while (bits != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      arrival_[base + l] = t;
      if (record_via_) from_[base + l] = from;
      ++reached_[l];
    }
  }

  std::size_t n_ = 0;
  std::size_t lanes_ = 0;
  bool record_via_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> stamp_;  // mask_ valid markers
  std::vector<std::uint64_t> mask_;   // per-vertex reached word
  std::vector<TimeUnit> arrival_;     // n * lanes_, stride lanes_
  std::vector<VertexId> from_;        // n * lanes_, only when record_via
  std::array<std::size_t, kMaxLanes> reached_{};
  // pending_: contact-bearing vertices some lane has not reached;
  // live_edges_: per-unit re-scan list (merged word not yet full).
  std::vector<VertexId> pending_;
  std::vector<EdgeId> live_edges_;
  // Has-contacts vertex list cached per index state (see
  // WorkspaceOps::refresh_contact_list).
  std::uint64_t contact_state_ = 0;
  std::vector<VertexId> contact_list_;
};

/// Number of kMaxLanes-sized source blocks covering an all-sources
/// range [0, n) — what converted all-pairs callers shard over (grain 1,
/// fixed block -> shard mapping).
inline std::size_t lane_block_count(std::size_t n) {
  return (n + MultiSourceWorkspace::kMaxLanes - 1) /
         MultiSourceWorkspace::kMaxLanes;
}

/// Earliest arrival from up to kMaxLanes sources in ONE pass over the
/// contact stream, departing at or after t_start; lane l's results are
/// bit-identical to csr_earliest_arrival(csr, sources[l], t_start, ...)
/// (arrivals always; via-from chains when record_via is set). Duplicate
/// sources are allowed (their lanes evolve identically). Requires
/// 1 <= sources.size() <= kMaxLanes.
void csr_earliest_arrival_batch(const TemporalCsr& csr,
                                std::span<const VertexId> sources,
                                TimeUnit t_start, MultiSourceWorkspace& ws,
                                bool record_via = false);
void csr_earliest_arrival_batch(const DeltaTemporalCsr& csr,
                                std::span<const VertexId> sources,
                                TimeUnit t_start, MultiSourceWorkspace& ws,
                                bool record_via = false);

}  // namespace structnet
