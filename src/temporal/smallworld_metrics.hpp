// Small-world behavior in time-varying graphs (Sec. III-B, citing Tang
// et al. [15]): temporal analogues of the clustering coefficient and the
// characteristic path length.
//
//   * temporal correlation coefficient C — how much a node's
//     neighborhood persists between consecutive snapshots (the temporal
//     "clustering" signal);
//   * characteristic temporal path length L — the mean earliest-arrival
//     delay over reachable ordered pairs.
// Socially-clustered mobility shows high C at moderate L — the
// time-and-space layered structure the paper suggests exploring.
#pragma once

#include "temporal/temporal_graph.hpp"

namespace structnet {

/// Average over nodes and consecutive snapshot pairs of the topological
/// overlap  |N_t(v) ∩ N_{t+1}(v)| / sqrt(|N_t(v)| * |N_{t+1}(v)|).
/// Node/time pairs where either neighborhood is empty contribute 0 when
/// exactly one side is empty and are skipped when both are (per [15]).
double temporal_correlation_coefficient(const TemporalGraph& eg);

/// Mean earliest completion delay (completion - start, start = 0) over
/// all ordered reachable pairs; also reports reachability.
struct TemporalPathLength {
  double characteristic_length = 0.0;  // mean delay over reachable pairs
  double reachable_fraction = 0.0;     // reachable ordered pairs / all
};
TemporalPathLength characteristic_temporal_path_length(
    const TemporalGraph& eg);

}  // namespace structnet
