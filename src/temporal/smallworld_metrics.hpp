// Small-world behavior in time-varying graphs (Sec. III-B, citing Tang
// et al. [15]): temporal analogues of the clustering coefficient and the
// characteristic path length.
//
//   * temporal correlation coefficient C — how much a node's
//     neighborhood persists between consecutive snapshots (the temporal
//     "clustering" signal);
//   * characteristic temporal path length L — the mean earliest-arrival
//     delay over reachable ordered pairs.
// Socially-clustered mobility shows high C at moderate L — the
// time-and-space layered structure the paper suggests exploring.
#pragma once

#include <cstddef>

#include "temporal/temporal_graph.hpp"

namespace structnet {

/// Average of the topological overlap
/// |N_t(v) ∩ N_{t+1}(v)| / sqrt(|N_t(v)| * |N_{t+1}(v)|) over ALL
/// N * (T-1) vertex / consecutive-snapshot-pair samples, per the [15]
/// definition C = (1/N) Σ_v (1/(T-1)) Σ_t C_v(t, t+1). A vertex with an
/// empty neighborhood on either side contributes overlap 0 (0/0 := 0);
/// no sample is ever skipped.
double temporal_correlation_coefficient(const TemporalGraph& eg);

/// Sources per shard of the parallel all-sources sweeps. Fixed (not
/// thread-dependent) so per-shard accumulation order — and hence the
/// result — is bit-identical at any thread count.
inline constexpr std::size_t kSourceGrain = 16;

/// Mean earliest completion delay (completion - start, start = 0) over
/// all ordered reachable pairs; also reports reachability.
struct TemporalPathLength {
  double characteristic_length = 0.0;  // mean delay over reachable pairs
  double reachable_fraction = 0.0;     // reachable ordered pairs / all
};
/// `threads`: 0 = default (STRUCTNET_THREADS / hardware), 1 = serial,
/// k = shard the per-source sweeps over k threads. Results are
/// bit-identical at any thread count.
TemporalPathLength characteristic_temporal_path_length(
    const TemporalGraph& eg, std::size_t threads = 0);

}  // namespace structnet
