#include "temporal/multi_source.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "temporal/temporal_delta.hpp"
#include "temporal/temporal_kernels.hpp"

namespace structnet {

namespace {

template <class Index>
void batch_sweep(const Index& csr, std::span<const VertexId> sources,
                 TimeUnit t_start, MultiSourceWorkspace& ws, bool record_via) {
  STRUCTNET_OBS_SPAN("temporal.csr_earliest_arrival_batch");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_earliest_arrival_batch_calls");
  static obs::Counter& lanes = obs::MetricsRegistry::global().counter(
      "temporal.csr_earliest_arrival_batch_lanes");
  calls.add();
  lanes.add(sources.size());
  detail::WorkspaceOps::earliest_arrival_batch(csr, sources, t_start, ws,
                                               record_via);
}

}  // namespace

void csr_earliest_arrival_batch(const TemporalCsr& csr,
                                std::span<const VertexId> sources,
                                TimeUnit t_start, MultiSourceWorkspace& ws,
                                bool record_via) {
  batch_sweep(csr, sources, t_start, ws, record_via);
}

void csr_earliest_arrival_batch(const DeltaTemporalCsr& csr,
                                std::span<const VertexId> sources,
                                TimeUnit t_start, MultiSourceWorkspace& ws,
                                bool record_via) {
  batch_sweep(csr, sources, t_start, ws, record_via);
}

}  // namespace structnet
