// The paper's Fig. 2 VANET time-evolving graph, reconstructed.
//
// The figure itself is not reproducible from the text (the image is not
// part of the source), so the label sets below are *reconstructed* to
// satisfy every statement the text makes about the example:
//
//   1. 4 in labels(A,B) and 5 in labels(B,C)  (path A -4-> B -5-> C);
//   2. 3 in labels(A,D) and 6 in labels(C,D)  (path A -3-> D -6-> C);
//   3. edge cycles: (B,D), (C,D) cycle 6; (A,D) cycle 2; (A,B), (B,C)
//      cycle 3;
//   4. A is connected to C at starting time units 0..4 and at no later
//      start;
//   5. A and C are disconnected in every individual snapshot;
//   6. every path A -> D -> v is replaceable by a path avoiding D with a
//      first label no smaller and a last label no larger (so A can ignore
//      neighbor D under the trimming rule), with priorities
//      p(A) > p(B) > p(C) > p(D);
//   7. paths D -> A -> B are NOT all replaceable by the direct contact
//      D -> B (static trimming of A from D's view fails).
//
// The reconstruction uses labels
//   (A,B) = {1, 4}        (cycle 3)
//   (B,C) = {2, 5}        (cycle 3)
//   (A,D) = {1, 3}        (cycle 2; D drifts out of A's range after t=4)
//   (B,D) = {0, 6}        (cycle 6)
//   (C,D) = {0, 6}        (cycle 6)
// over horizon 7 (time units 0..6). The paper's two unnamed static nodes
// take no part in any textual claim and are included as isolated
// vertices E and F so the node census (3 mobile + 3 static) matches.
#pragma once

#include "temporal/temporal_graph.hpp"

namespace structnet::fig2 {

inline constexpr VertexId A = 0;
inline constexpr VertexId B = 1;
inline constexpr VertexId C = 2;
inline constexpr VertexId D = 3;
inline constexpr VertexId E = 4;  // unnamed static node
inline constexpr VertexId F = 5;  // unnamed static node

/// Builds the reconstructed Fig. 2 time-evolving graph (6 vertices,
/// horizon 7).
TemporalGraph build();

/// The same graph restricted to the four active vertices A..D (used where
/// isolated vertices would muddy connectivity metrics).
TemporalGraph build_core();

}  // namespace structnet::fig2
