#include "temporal/smallworld_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <array>

#include "parallel/parallel.hpp"
#include "temporal/journeys.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/temporal_csr.hpp"

namespace structnet {

double temporal_correlation_coefficient(const TemporalGraph& eg) {
  if (eg.horizon() < 2 || eg.vertex_count() == 0) return 0.0;
  const std::size_t n = eg.vertex_count();
  // Neighbor sets per snapshot.
  std::vector<std::set<VertexId>> prev(n), cur(n);
  auto fill = [&](TimeUnit t, std::vector<std::set<VertexId>>& out) {
    for (auto& s : out) s.clear();
    const Graph snap = eg.snapshot(t);
    for (const Graph::Edge& e : snap.edges()) {
      out[e.u].insert(e.v);
      out[e.v].insert(e.u);
    }
  };
  fill(0, prev);
  double total = 0.0;
  for (TimeUnit t = 1; t < eg.horizon(); ++t) {
    fill(t, cur);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t a = prev[v].size();
      const std::size_t b = cur[v].size();
      // Per [15] the overlap is averaged over ALL N(T-1) vertex/pair
      // samples; an empty neighborhood on either side means overlap 0
      // (the 0/0 case included), it does not shrink the denominator.
      if (a == 0 || b == 0) continue;
      std::size_t common = 0;
      for (VertexId w : prev[v]) common += cur[v].count(w);
      total += static_cast<double>(common) /
               std::sqrt(static_cast<double>(a) * static_cast<double>(b));
    }
    prev.swap(cur);
  }
  const double samples =
      static_cast<double>(n) * static_cast<double>(eg.horizon() - 1);
  return total / samples;
}

TemporalPathLength characteristic_temporal_path_length(const TemporalGraph& eg,
                                                       std::size_t threads) {
  TemporalPathLength out;
  const std::size_t n = eg.vertex_count();
  if (n < 2) return out;
  struct Partial {
    double delay = 0.0;
    std::size_t reachable = 0;
  };
  // One lane-packed sweep per 64-source block over the build-once
  // contact index (temporal/multi_source.hpp); grain 1 pins the
  // block -> shard mapping, and the per-shard partials are folded
  // serially in shard order below. The delays summed are integer-valued
  // doubles, so any regrouping of the partial sums is exact — the
  // result is bit-identical to the legacy per-source loop at any thread
  // count.
  constexpr std::size_t kLanes = MultiSourceWorkspace::kMaxLanes;
  const TemporalCsr csr(eg);
  std::vector<MultiSourceWorkspace> ws(resolve_threads(threads));
  const std::size_t blocks = lane_block_count(n);
  std::vector<Partial> partial(blocks);
  parallel_for_shards(
      0, blocks, 1, threads,
      [&](std::size_t shard, std::size_t lo, std::size_t hi,
          std::size_t worker) {
        MultiSourceWorkspace& w = ws[worker];
        std::array<VertexId, kLanes> srcs;
        Partial p;
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t s0 = b * kLanes;
          const std::size_t lanes = std::min(kLanes, n - s0);
          for (std::size_t l = 0; l < lanes; ++l) {
            srcs[l] = static_cast<VertexId>(s0 + l);
          }
          csr_earliest_arrival_batch(csr, {srcs.data(), lanes}, 0, w);
          for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t s = s0 + l;
            for (std::size_t v = 0; v < n; ++v) {
              const TimeUnit c = w.arrival(l, static_cast<VertexId>(v));
              if (v == s || c == kNeverTime) continue;
              p.delay += static_cast<double>(c);
              ++p.reachable;
            }
          }
        }
        partial[shard] = p;
      });
  Partial sum;
  for (const Partial& p : partial) {
    sum.delay += p.delay;
    sum.reachable += p.reachable;
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  out.reachable_fraction = static_cast<double>(sum.reachable) / pairs;
  out.characteristic_length =
      sum.reachable ? sum.delay / static_cast<double>(sum.reachable) : 0.0;
  return out;
}

}  // namespace structnet
