#include "temporal/smallworld_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "temporal/journeys.hpp"

namespace structnet {

double temporal_correlation_coefficient(const TemporalGraph& eg) {
  if (eg.horizon() < 2 || eg.vertex_count() == 0) return 0.0;
  const std::size_t n = eg.vertex_count();
  // Neighbor sets per snapshot.
  std::vector<std::set<VertexId>> prev(n), cur(n);
  auto fill = [&](TimeUnit t, std::vector<std::set<VertexId>>& out) {
    for (auto& s : out) s.clear();
    const Graph snap = eg.snapshot(t);
    for (const Graph::Edge& e : snap.edges()) {
      out[e.u].insert(e.v);
      out[e.v].insert(e.u);
    }
  };
  fill(0, prev);
  double total = 0.0;
  std::size_t samples = 0;
  for (TimeUnit t = 1; t < eg.horizon(); ++t) {
    fill(t, cur);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t a = prev[v].size();
      const std::size_t b = cur[v].size();
      if (a == 0 && b == 0) continue;  // inactive in both: skip
      ++samples;
      if (a == 0 || b == 0) continue;  // contributes 0
      std::size_t common = 0;
      for (VertexId w : prev[v]) common += cur[v].count(w);
      total += static_cast<double>(common) /
               std::sqrt(static_cast<double>(a) * static_cast<double>(b));
    }
    prev.swap(cur);
  }
  return samples ? total / static_cast<double>(samples) : 0.0;
}

TemporalPathLength characteristic_temporal_path_length(
    const TemporalGraph& eg) {
  TemporalPathLength out;
  const std::size_t n = eg.vertex_count();
  if (n < 2) return out;
  double delay = 0.0;
  std::size_t reachable = 0;
  for (VertexId s = 0; s < n; ++s) {
    const auto ea = earliest_arrival(eg, s, 0);
    for (VertexId v = 0; v < n; ++v) {
      if (v == s || ea.completion[v] == kNeverTime) continue;
      delay += static_cast<double>(ea.completion[v]);
      ++reachable;
    }
  }
  const auto pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  out.reachable_fraction = static_cast<double>(reachable) / pairs;
  out.characteristic_length =
      reachable ? delay / static_cast<double>(reachable) : 0.0;
  return out;
}

}  // namespace structnet
