#include "temporal/temporal_delta.hpp"

#include <algorithm>
#include <cassert>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "temporal/temporal_kernels.hpp"

namespace structnet {

namespace {
// The per-vertex / per-edge delta vectors are tiny but numerous, and
// the fold path touches several of them per event. Jumping straight to
// a small capacity on first touch removes the 1->2->4 realloc ladder
// from that hot path.
template <typename Vec>
void reserve_small(Vec& v) {
  if (v.capacity() == 0) v.reserve(4);
}

inline void prefetch(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}
}  // namespace

void DeltaTemporalCsr::rebase(const TemporalGraph& eg) {
  STRUCTNET_OBS_SPAN("temporal.delta_rebase");
  state_id_ = detail::next_index_state_id();
  base_ = TemporalCsr(eg);
  base_n_ = base_.vertex_count();
  base_m_ = base_.edge_count();
  n_ = base_n_;
  adds_ = tombs_ = 0;
  edge_of_.reset(base_m_);
  for (std::size_t e = 0; e < base_m_; ++e) {
    const auto id = static_cast<EdgeId>(e);
    std::uint64_t bloom = 0;
    for (const TimeUnit t : base_.edge_labels(id)) bloom |= 1ull << (t & 63);
    edge_of_.insert(endpoint_key(base_.edge_u(id), base_.edge_v(id)), id,
                    bloom);
  }
  dedge_u_.clear();
  dedge_v_.clear();
  edge_slot_.assign(base_m_, kInvalidEdge);
  edge_deltas_.clear();
  vadd_.assign(n_, {});
  vdel_.assign(n_, {});
  vnewadj_.assign(n_, {});
  tadd_.assign(horizon(), {});
  tdel_.assign(horizon(), {});
}

void DeltaTemporalCsr::prefetch_contact(VertexId u, VertexId v,
                                        TimeUnit t) const {
  if (u >= n_ || v >= n_ || u == v || t >= horizon()) return;
  prefetch(edge_of_.probe_line(endpoint_key(u, v)));
  prefetch(&vadd_[u]);
  prefetch(&vadd_[v]);
  prefetch(tadd_[t].data());
}

void DeltaTemporalCsr::grow_vertices(std::size_t n) {
  if (n <= n_) return;
  state_id_ = detail::next_index_state_id();
  n_ = n;
  vadd_.resize(n_);
  vdel_.resize(n_);
  vnewadj_.resize(n_);
}

DeltaTemporalCsr::EdgeIdMap::Slot& DeltaTemporalCsr::find_or_create_edge(
    VertexId u, VertexId v) {
  const auto key = endpoint_key(u, v);
  if (EdgeIdMap::Slot* found = edge_of_.find_slot(key)) return *found;
  // First touch after the base snapshot: the id continues the base
  // sequence in first-touch order, matching what TemporalGraph assigns
  // when the same mutations are replayed onto it (edge-id tie-breaks in
  // the kernels depend on this).
  const auto e = static_cast<EdgeId>(base_m_ + dedge_u_.size());
  dedge_u_.push_back(u);
  dedge_v_.push_back(v);
  edge_slot_.push_back(kInvalidEdge);
  return edge_of_.insert(key, e, 0);
}

bool DeltaTemporalCsr::add_contact(VertexId u, VertexId v, TimeUnit t) {
  assert(u < n_ && v < n_ && u != v && t < horizon());
  // Every long-latency line this op touches is addressable up front;
  // issuing the loads now lets the map probe, the per-vertex contact
  // vectors, and the per-unit vector resolve in parallel instead of as
  // a serial miss chain (the fold path is memory-latency bound).
  prefetch(edge_of_.probe_line(endpoint_key(u, v)));
  prefetch(&vadd_[u]);
  prefetch(&vadd_[v]);
  prefetch(tadd_[t].data());
  EdgeIdMap::Slot& ms = find_or_create_edge(u, v);
  const EdgeId e = ms.id;
  bool base_labeled = false;
  if (e < base_m_) {
    if (ms.dslot != kInvalidEdge) {
      auto& removed = edge_deltas_[ms.dslot].removed;
      const auto rit = std::lower_bound(removed.begin(), removed.end(), t);
      if (rit != removed.end() && *rit == t) {
        // Resurrect a tombstoned base contact: the base entry becomes
        // live again, so no delta add is recorded (keeps added disjoint
        // from live base labels).
        removed.erase(rit);
        erase_tombstone(e, u, v, t);
        --tombs_;
        state_id_ = detail::next_index_state_id();
        return true;
      }
    }
    base_labeled = ms.bloom != 0;
    // The slot's Bloom filter of base labels screens the duplicate
    // check: a clear bit proves t is not a base label, so the common
    // case never touches the base CSR here.
    if ((ms.bloom >> (t & 63)) & 1) {
      const auto labels = base_.edge_labels(e);
      if (std::binary_search(labels.begin(), labels.end(), t)) return false;
    }
  }
  EdgeDelta& d = delta_of(ms);
  const auto ait = std::lower_bound(d.added.begin(), d.added.end(), t);
  if (ait != d.added.end() && *ait == t) return false;
  const auto apos = ait - d.added.begin();
  reserve_small(d.added);
  d.added.insert(d.added.begin() + apos, t);
  record_add(e, u, v, t, base_labeled);
  ++adds_;
  state_id_ = detail::next_index_state_id();
  return true;
}

bool DeltaTemporalCsr::remove_contact(VertexId u, VertexId v, TimeUnit t) {
  assert(t < horizon());
  if (u >= n_ || v >= n_) return false;
  prefetch(edge_of_.probe_line(endpoint_key(u, v)));
  prefetch(&vadd_[u]);
  prefetch(&vadd_[v]);
  prefetch(&vdel_[u]);
  prefetch(&vdel_[v]);
  EdgeIdMap::Slot* ms = edge_of_.find_slot(endpoint_key(u, v));
  if (ms == nullptr) return false;
  const EdgeId e = ms->id;
  if (ms->dslot != kInvalidEdge) {
    auto& added = edge_deltas_[ms->dslot].added;
    const auto ait = std::lower_bound(added.begin(), added.end(), t);
    if (ait != added.end() && *ait == t) {
      added.erase(ait);
      erase_add(e, u, v, t);
      --adds_;
      state_id_ = detail::next_index_state_id();
      return true;
    }
  }
  if (e >= base_m_) return false;
  if (((ms->bloom >> (t & 63)) & 1) == 0) return false;  // not a base label
  const auto labels = base_.edge_labels(e);
  if (!std::binary_search(labels.begin(), labels.end(), t)) return false;
  EdgeDelta& d = delta_of(*ms);
  const auto rit = std::lower_bound(d.removed.begin(), d.removed.end(), t);
  if (rit != d.removed.end() && *rit == t) return false;  // already dead
  const auto rpos = rit - d.removed.begin();
  reserve_small(d.removed);
  d.removed.insert(d.removed.begin() + rpos, t);
  record_tombstone(e, u, v, t);
  ++tombs_;
  state_id_ = detail::next_index_state_id();
  return true;
}

void DeltaTemporalCsr::record_add(EdgeId e, VertexId u, VertexId v, TimeUnit t,
                                  bool base_labeled) {
  const auto ins = [&](VertexId a, VertexId nbr) {
    auto& va = vadd_[a];
    const auto pos = std::lower_bound(
        va.begin(), va.end(), std::pair<TimeUnit, EdgeId>{t, e},
        [](const DeltaContact& c, const std::pair<TimeUnit, EdgeId>& x) {
          return c.t != x.first ? c.t < x.first : c.e < x.second;
        });
    const auto off = pos - va.begin();
    reserve_small(va);
    va.insert(va.begin() + off, DeltaContact{t, nbr, e});
  };
  ins(u, v);
  ins(v, u);
  auto& ta = tadd_[t];
  ta.insert(std::lower_bound(ta.begin(), ta.end(), e), e);
  // Base adjacency lists label-carrying base edges only; everything
  // else (new edges, base edges whose base label set is empty) needs a
  // new-adjacency entry so for_each_incident sees it. Entries persist
  // even if the edge's delta adds later drain — a label-free incident
  // edge is allowed by the kernel contract (first_label_at returns
  // kNeverTime and the kernel skips it). The caller already looked at
  // the base label set, so it passes the verdict in.
  if (base_labeled) return;
  const auto insadj = [&](VertexId a, VertexId nbr) {
    auto& na = vnewadj_[a];
    const auto pos = std::lower_bound(
        na.begin(), na.end(), e,
        [](const std::pair<EdgeId, VertexId>& p, EdgeId x) {
          return p.first < x;
        });
    if (pos == na.end() || pos->first != e) {
      const auto off = pos - na.begin();
      reserve_small(na);
      na.insert(na.begin() + off, {e, nbr});
    }
  };
  insadj(u, v);
  insadj(v, u);
}

void DeltaTemporalCsr::erase_add(EdgeId e, VertexId u, VertexId v,
                                 TimeUnit t) {
  const auto del = [&](VertexId a) {
    auto& va = vadd_[a];
    const auto pos = std::lower_bound(
        va.begin(), va.end(), std::pair<TimeUnit, EdgeId>{t, e},
        [](const DeltaContact& c, const std::pair<TimeUnit, EdgeId>& x) {
          return c.t != x.first ? c.t < x.first : c.e < x.second;
        });
    assert(pos != va.end() && pos->t == t && pos->e == e);
    va.erase(pos);
  };
  del(u);
  del(v);
  auto& ta = tadd_[t];
  const auto pos = std::lower_bound(ta.begin(), ta.end(), e);
  assert(pos != ta.end() && *pos == e);
  ta.erase(pos);
}

void DeltaTemporalCsr::record_tombstone(EdgeId e, VertexId u, VertexId v,
                                        TimeUnit t) {
  const auto ins = [&](VertexId a) {
    auto& vd = vdel_[a];
    const auto pos = std::lower_bound(vd.begin(), vd.end(),
                                      std::pair<TimeUnit, EdgeId>{t, e});
    const auto off = pos - vd.begin();
    reserve_small(vd);
    vd.insert(vd.begin() + off, {t, e});
  };
  ins(u);
  ins(v);
  auto& td = tdel_[t];
  td.insert(std::lower_bound(td.begin(), td.end(), e), e);
}

void DeltaTemporalCsr::erase_tombstone(EdgeId e, VertexId u, VertexId v,
                                       TimeUnit t) {
  const auto del = [&](VertexId a) {
    auto& vd = vdel_[a];
    const auto pos = std::lower_bound(vd.begin(), vd.end(),
                                      std::pair<TimeUnit, EdgeId>{t, e});
    assert(pos != vd.end() && *pos == (std::pair<TimeUnit, EdgeId>{t, e}));
    vd.erase(pos);
  };
  del(u);
  del(v);
  auto& td = tdel_[t];
  const auto pos = std::lower_bound(td.begin(), td.end(), e);
  assert(pos != td.end() && *pos == e);
  td.erase(pos);
}

void csr_earliest_arrival(const DeltaTemporalCsr& csr, VertexId source,
                          TimeUnit t_start, TemporalWorkspace& ws,
                          VertexId stop_at) {
  STRUCTNET_OBS_SPAN("temporal.csr_earliest_arrival");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_earliest_arrival_calls");
  calls.add();
  detail::WorkspaceOps::earliest_arrival(csr, source, t_start, ws, stop_at);
}

std::optional<std::pair<TimeUnit, TimeUnit>> csr_fastest_departure(
    const DeltaTemporalCsr& csr, VertexId source, VertexId target,
    TimeUnit t_start, TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_fastest_departure");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_fastest_departure_calls");
  calls.add();
  return detail::WorkspaceOps::fastest_departure(csr, source, target, t_start,
                                                 ws);
}

std::optional<Journey> csr_minimum_hop_journey(const DeltaTemporalCsr& csr,
                                               VertexId source,
                                               VertexId target,
                                               TimeUnit t_start,
                                               TemporalWorkspace& ws) {
  STRUCTNET_OBS_SPAN("temporal.csr_minimum_hop_journey");
  static obs::Counter& calls = obs::MetricsRegistry::global().counter(
      "temporal.csr_minimum_hop_journey_calls");
  calls.add();
  return detail::WorkspaceOps::minimum_hop(csr, source, target, t_start, ws);
}

}  // namespace structnet
