// Incremental contact index: an immutable base TemporalCsr plus compact
// sorted delta arrays, so churny callers absorb add_contact /
// remove_label in O(log delta) instead of paying a full O(C) index
// rebuild per mutation batch.
//
// Layout. The base is a plain TemporalCsr snapshot. On top of it the
// delta tracks, all kept sorted so kernel reads stay merge-shaped:
//   * per edge: `added` labels (disjoint from the base's live labels)
//     and `removed` tombstones (a subset of the base's labels);
//   * per vertex: added contacts sorted by (time, edge id), tombstoned
//     contacts sorted by (time, edge id), and new adjacency entries
//     (edges with delta labels that the base adjacency doesn't list)
//     sorted by edge id;
//   * per time unit: added / tombstoned edge ids, ascending.
// Edges first touched after the base snapshot get ids base_edge_count +
// k in first-touch order — identical to the ids TemporalGraph itself
// assigns when the same mutations are applied to it, which is what
// keeps edge-id tie-breaks bit-identical to a fresh rebuild.
//
// Kernel reads merge base and delta two-way: per-unit edge scans
// interleave the base span with the unit's added edges (both ascending
// edge id) while skipping tombstoned base entries, and incident-edge
// scans interleave base adjacency with the new-adjacency list. Because
// added labels never collide with live base labels (re-adding a
// tombstoned contact resurrects it instead), the merged sequence is
// exactly the edge-id-ascending order a fresh TemporalCsr would emit —
// so the three kernels (see temporal_kernels.hpp) produce bit-identical
// arrivals, via hops, and journeys at any thread count.
//
// Compaction. Reads cost O(log delta) extra per probe, so once the
// delta outgrows a configurable fraction of the base the owner should
// absorb it into a fresh base via rebase() (needs_compaction() is the
// policy predicate; DeltaCsrObserver / QueryBroker drive it).
//
// Concurrency contract: mutations are exclusive; any number of
// concurrent readers (kernel sweeps) may run between mutations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "temporal/temporal_csr.hpp"

namespace structnet {

/// Base TemporalCsr + mutable sorted delta, serving the same kernel
/// iteration interface as TemporalCsr itself.
class DeltaTemporalCsr {
 public:
  DeltaTemporalCsr() = default;
  explicit DeltaTemporalCsr(const TemporalGraph& eg) { rebase(eg); }

  /// Adopts a fresh base snapshot and clears the delta.
  void rebase(const TemporalGraph& eg);

  /// Registers contact (u, v, t). Returns false when the contact is
  /// already live (idempotent, like TemporalGraph::add_contact).
  /// Re-adding a tombstoned base contact resurrects it.
  bool add_contact(VertexId u, VertexId v, TimeUnit t);

  /// Removes contact (u, v, t): erases a delta-added label outright, or
  /// tombstones a live base label. Returns false when the contact is
  /// not live (like TemporalGraph::remove_label).
  bool remove_contact(VertexId u, VertexId v, TimeUnit t);

  /// Extends the vertex space to n (new vertices start contact-free);
  /// no-op when n is not larger than the current count.
  void grow_vertices(std::size_t n);

  /// Warms the cache lines an upcoming add_contact/remove_contact for
  /// (u, v, t) will touch. The fold path is memory-latency bound, so
  /// batch appliers overlap the next event's misses with the current
  /// event's work by calling this one event ahead. Pure hint: never
  /// mutates, out-of-range arguments are ignored.
  void prefetch_contact(VertexId u, VertexId v, TimeUnit t) const;

  /// The immutable base snapshot (callers needing a full TemporalCsr —
  /// e.g. routing simulation — should compact first so this is current).
  const TemporalCsr& base() const { return base_; }

  /// Live adds + tombstones held outside the base.
  std::size_t delta_size() const { return adds_ + tombs_; }
  bool delta_empty() const { return delta_size() == 0; }

  /// Compaction policy: delta larger than ratio * base contact count
  /// (with a small absolute slack so tiny bases don't thrash).
  bool needs_compaction(double ratio, std::size_t slack = 64) const {
    return delta_size() >
           slack + static_cast<std::size_t>(
                       ratio * static_cast<double>(base_.contact_count()));
  }

  // ---- kernel iteration interface (same contract as TemporalCsr;
  //      documented in temporal_kernels.hpp)

  std::size_t vertex_count() const { return n_; }
  TimeUnit horizon() const { return base_.horizon(); }
  /// Edge records including delta-created edges.
  std::size_t edge_count() const { return base_m_ + dedge_u_.size(); }
  /// Live contacts (base minus tombstones plus adds).
  std::size_t contact_count() const {
    return base_.contact_count() - tombs_ + adds_;
  }
  /// Unique token of the current merged state: refreshed by rebase()
  /// and by every successful mutation, so workspaces can cache derived
  /// per-state data (detail::next_index_state_id semantics).
  std::uint64_t state_id() const { return state_id_; }

  VertexId edge_u(EdgeId e) const {
    return e < base_m_ ? base_.edge_u(e) : dedge_u_[e - base_m_];
  }
  VertexId edge_v(EdgeId e) const {
    return e < base_m_ ? base_.edge_v(e) : dedge_v_[e - base_m_];
  }

  bool has_contacts(VertexId v) const {
    if (!vadd_[v].empty()) return true;
    if (v >= base_n_) return false;
    return base_.contacts_end(v) - base_.contacts_begin(v) > vdel_[v].size();
  }

  std::size_t unit_size(TimeUnit t) const {
    return base_.unit_size(t) + tadd_[t].size() - tdel_[t].size();
  }

  template <class Pred>
  bool find_contact_at(VertexId v, TimeUnit t, Pred&& pred) const {
    const auto& va = vadd_[v];
    for (auto it = std::lower_bound(
             va.begin(), va.end(), t,
             [](const DeltaContact& c, TimeUnit x) { return c.t < x; });
         it != va.end() && it->t == t; ++it) {
      if (pred(it->nbr)) return true;
    }
    if (v >= base_n_) return false;
    const auto& vd = vdel_[v];
    for (std::size_t i = base_.first_contact_at(v, t);
         i < base_.contacts_end(v) && base_.contact_time(i) == t; ++i) {
      if (!vd.empty() &&
          std::binary_search(vd.begin(), vd.end(),
                             std::pair<TimeUnit, EdgeId>{
                                 t, base_.contact_edge(i)})) {
        continue;
      }
      if (pred(base_.contact_neighbor(i))) return true;
    }
    return false;
  }

  template <class Fn>
  void for_each_edge_at(TimeUnit t, Fn&& f) const {
    const auto bspan = base_.edges_at(t);
    const auto& add = tadd_[t];
    const auto& del = tdel_[t];
    std::size_t i = 0, j = 0, k = 0;
    while (i < bspan.size() || j < add.size()) {
      EdgeId be = kInvalidEdge;
      if (i < bspan.size()) {
        be = bspan[i];
        while (k < del.size() && del[k] < be) ++k;
        if (k < del.size() && del[k] == be) {
          ++i;
          continue;
        }
      }
      const EdgeId ae = j < add.size() ? add[j] : kInvalidEdge;
      // be == ae is impossible: added labels never coincide with live
      // base labels of the same edge at the same time unit.
      if (be < ae) {
        if (!f(be)) return;
        ++i;
      } else {
        if (!f(ae)) return;
        ++j;
      }
    }
  }

  template <class Fn>
  void for_each_incident(VertexId v, Fn&& f) const {
    const auto& extra = vnewadj_[v];
    std::size_t i = v < base_n_ ? base_.incident_begin(v) : 0;
    const std::size_t iend = v < base_n_ ? base_.incident_end(v) : 0;
    std::size_t j = 0;
    while (i < iend || j < extra.size()) {
      const EdgeId be = i < iend ? base_.incident_edge(i) : kInvalidEdge;
      const EdgeId ae = j < extra.size() ? extra[j].first : kInvalidEdge;
      if (be < ae) {
        if (!f(be, base_.incident_neighbor(i))) return;
        ++i;
      } else {
        if (!f(ae, extra[j].second)) return;
        ++j;
      }
    }
  }

  TimeUnit first_label_at(EdgeId e, TimeUnit t) const {
    const EdgeId slot = edge_slot_[e];
    if (slot == kInvalidEdge) {
      return e < base_m_ ? base_.first_label_at(e, t) : kNeverTime;
    }
    const EdgeDelta& d = edge_deltas_[slot];
    TimeUnit best = kNeverTime;
    if (e < base_m_) {
      const auto labels = base_.edge_labels(e);
      for (auto lit = std::lower_bound(labels.begin(), labels.end(), t);
           lit != labels.end(); ++lit) {
        if (!std::binary_search(d.removed.begin(), d.removed.end(), *lit)) {
          best = *lit;
          break;
        }
      }
    }
    const auto ait = std::lower_bound(d.added.begin(), d.added.end(), t);
    if (ait != d.added.end() && *ait < best) best = *ait;
    return best;
  }

 private:
  struct DeltaContact {
    TimeUnit t;
    VertexId nbr;
    EdgeId e;
  };
  struct EdgeDelta {
    std::vector<TimeUnit> added;    // sorted; disjoint from live base
    std::vector<TimeUnit> removed;  // sorted; subset of base labels
  };

  /// Flat linear-probe hash map from packed endpoint key to edge id —
  /// the fold hot path resolves one of these per event, so it must be a
  /// single contiguous probe, not a node-based chain. Append-only
  /// between rebases (edge records are never deleted), so probes never
  /// cross tombstones and inserts never allocate per entry.
  class EdgeIdMap {
   public:
    /// Entries carry everything the fold path needs to resolve an edge
    /// — its id, its delta-slot index, and a 64-bit Bloom filter of its
    /// base label set — so one probe (one cache line, prefetchable)
    /// answers "which edge, does it have delta state, could t collide
    /// with a base label" without touching the base CSR at all.
    /// DeltaTemporalCsr keeps edge_slot_ (the kernel-side view, indexed
    /// by edge id) in sync whenever it assigns dslot.
    struct Slot {
      std::uint64_t key;
      EdgeId id;     // kInvalidEdge marks an empty slot
      EdgeId dslot;  // index into edge_deltas_, kInvalidEdge when none
      std::uint64_t bloom;  // bit (t & 63) per base label time t
    };
    void reset(std::size_t expected) {
      std::size_t cap = 16;
      while (cap < expected * 2) cap <<= 1;
      slots_.assign(cap, Slot{0, kInvalidEdge, kInvalidEdge, 0});
      mask_ = cap - 1;
      size_ = 0;
    }
    Slot* find_slot(std::uint64_t key) {
      if (slots_.empty()) return nullptr;
      for (std::size_t i = bucket(key);; i = (i + 1) & mask_) {
        Slot& s = slots_[i];
        if (s.key == key) return &s;
        if (s.id == kInvalidEdge) return nullptr;
      }
    }
    /// Invalidates previously returned Slot pointers (may rehash).
    Slot& insert(std::uint64_t key, EdgeId id, std::uint64_t bloom) {
      if ((size_ + 1) * 2 > slots_.size()) grow();
      Slot& s = place(key, id, kInvalidEdge, bloom);
      ++size_;
      return s;
    }
    /// First cache line a find_slot(key) will touch — prefetch target.
    const void* probe_line(std::uint64_t key) const {
      return slots_.empty() ? static_cast<const void*>(this)
                            : &slots_[bucket(key)];
    }

   private:
    std::size_t bucket(std::uint64_t key) const {
      return static_cast<std::size_t>(key * 0x9E3779B97F4A7C15ull) & mask_;
    }
    Slot& place(std::uint64_t key, EdgeId id, EdgeId dslot,
                std::uint64_t bloom) {
      std::size_t i = bucket(key);
      while (slots_[i].id != kInvalidEdge) i = (i + 1) & mask_;
      slots_[i] = Slot{key, id, dslot, bloom};
      return slots_[i];
    }
    void grow() {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(old.empty() ? 16 : old.size() * 2,
                    Slot{0, kInvalidEdge, kInvalidEdge, 0});
      mask_ = slots_.size() - 1;
      for (const Slot& s : old) {
        if (s.id != kInvalidEdge) place(s.key, s.id, s.dslot, s.bloom);
      }
    }
    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
  };

  static std::uint64_t endpoint_key(VertexId u, VertexId v) {
    const VertexId lo = u < v ? u : v, hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  EdgeIdMap::Slot& find_or_create_edge(VertexId u, VertexId v);
  /// The edge's delta record, created (empty) on first touch; keeps the
  /// map entry and the kernel-side edge_slot_ array in sync.
  EdgeDelta& delta_of(EdgeIdMap::Slot& ms) {
    if (ms.dslot == kInvalidEdge) {
      ms.dslot = static_cast<EdgeId>(edge_deltas_.size());
      edge_slot_[ms.id] = ms.dslot;
      edge_deltas_.emplace_back();
    }
    return edge_deltas_[ms.dslot];
  }
  void record_add(EdgeId e, VertexId u, VertexId v, TimeUnit t,
                  bool base_labeled);
  void erase_add(EdgeId e, VertexId u, VertexId v, TimeUnit t);
  void record_tombstone(EdgeId e, VertexId u, VertexId v, TimeUnit t);
  void erase_tombstone(EdgeId e, VertexId u, VertexId v, TimeUnit t);

  TemporalCsr base_;
  std::uint64_t state_id_ = detail::next_index_state_id();
  std::size_t base_n_ = 0;  // base vertex count (n_ may outgrow it)
  std::size_t base_m_ = 0;  // base edge count (delta edge ids follow)
  std::size_t n_ = 0;
  std::size_t adds_ = 0, tombs_ = 0;
  EdgeIdMap edge_of_;                        // endpoints -> edge id
  std::vector<VertexId> dedge_u_, dedge_v_;  // delta edges
  /// Per edge: index into edge_deltas_, kInvalidEdge when untouched.
  /// Doubles as the "edge has delta state" flag first_label_at keys on.
  std::vector<EdgeId> edge_slot_;
  std::vector<EdgeDelta> edge_deltas_;
  std::vector<std::vector<DeltaContact>> vadd_;  // per vertex, (t, e)
  std::vector<std::vector<std::pair<TimeUnit, EdgeId>>> vdel_;  // (t, e)
  // Edges with delta labels absent from base adjacency, sorted by id.
  std::vector<std::vector<std::pair<EdgeId, VertexId>>> vnewadj_;
  std::vector<std::vector<EdgeId>> tadd_, tdel_;  // per unit, ascending
};

/// The three temporal-path kernels over the merged base+delta view —
/// bit-identical to running the TemporalCsr overloads on a fresh
/// rebuild of the mutated graph.
void csr_earliest_arrival(const DeltaTemporalCsr& csr, VertexId source,
                          TimeUnit t_start, TemporalWorkspace& ws,
                          VertexId stop_at = kInvalidVertex);
std::optional<std::pair<TimeUnit, TimeUnit>> csr_fastest_departure(
    const DeltaTemporalCsr& csr, VertexId source, VertexId target,
    TimeUnit t_start, TemporalWorkspace& ws);
std::optional<Journey> csr_minimum_hop_journey(const DeltaTemporalCsr& csr,
                                               VertexId source,
                                               VertexId target,
                                               TimeUnit t_start,
                                               TemporalWorkspace& ws);

}  // namespace structnet
