#include "temporal/fig2_example.hpp"

#include <array>

namespace structnet::fig2 {

namespace {

void add_core_edges(TemporalGraph& eg) {
  const std::array<TimeUnit, 2> ab{1, 4};
  const std::array<TimeUnit, 2> bc{2, 5};
  const std::array<TimeUnit, 2> ad{1, 3};
  const std::array<TimeUnit, 2> bd{0, 6};
  const std::array<TimeUnit, 2> cd{0, 6};
  eg.add_edge_labels(A, B, ab);
  eg.add_edge_labels(B, C, bc);
  eg.add_edge_labels(A, D, ad);
  eg.add_edge_labels(B, D, bd);
  eg.add_edge_labels(C, D, cd);
}

}  // namespace

TemporalGraph build() {
  TemporalGraph eg(6, 7);
  add_core_edges(eg);
  return eg;
}

TemporalGraph build_core() {
  TemporalGraph eg(4, 7);
  add_core_edges(eg);
  return eg;
}

}  // namespace structnet::fig2
