// Weighted time-evolving graphs (Sec. II-B): "each edge at time unit i
// is associated with a weight w_i, which [has] different interpretations
// based on the application. For example, a weight can be the bandwidth,
// transmission delay, or reliability."
//
// Three journey-optimization problems, one per interpretation:
//   * delay      — minimize the SUM of contact weights along a journey
//                  (per-contact transmission cost);
//   * reliability— maximize the PRODUCT of contact weights in (0, 1]
//                  (per-contact success probability);
//   * bandwidth  — maximize the MINIMUM contact weight (bottleneck).
// All respect the non-decreasing-label journey semantics of
// temporal/journeys.hpp.
#pragma once

#include <optional>
#include <vector>

#include "temporal/journeys.hpp"
#include "temporal/temporal_graph.hpp"

namespace structnet {

/// A contact with an application weight.
struct WeightedContact {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  TimeUnit t = 0;
  double weight = 1.0;

  friend bool operator==(const WeightedContact&,
                         const WeightedContact&) = default;
};

/// A TemporalGraph whose contacts carry weights.
class WeightedTemporalGraph {
 public:
  WeightedTemporalGraph() = default;
  WeightedTemporalGraph(std::size_t n, TimeUnit horizon)
      : base_(n, horizon) {}

  std::size_t vertex_count() const { return base_.vertex_count(); }
  TimeUnit horizon() const { return base_.horizon(); }

  /// Adds (or overwrites) the weighted contact (u, v, t).
  void add_contact(VertexId u, VertexId v, TimeUnit t, double weight);

  /// The unweighted view (label structure only).
  const TemporalGraph& unweighted() const { return base_; }

  /// Weight of contact (u, v, t); nullopt when the contact is absent.
  std::optional<double> weight_of(VertexId u, VertexId v, TimeUnit t) const;

  /// All weighted contacts sorted by time.
  std::vector<WeightedContact> contacts() const;

 private:
  static std::uint64_t key(VertexId u, VertexId v, TimeUnit t);

  TemporalGraph base_;
  // (min(u,v), max(u,v), t) -> weight
  std::vector<std::pair<std::uint64_t, double>> weights_;  // sorted by key
};

/// A journey together with its aggregate weight under some objective.
struct WeightedJourney {
  Journey journey;
  double value = 0.0;
};

/// Minimum total-delay journey source -> target departing at or after
/// t_start: minimizes the sum of contact weights (all weights must be
/// >= 0). Ties broken toward earlier completion.
std::optional<WeightedJourney> min_delay_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start = 0);

/// Maximum-reliability journey: maximizes the product of contact weights
/// (all weights in (0, 1]).
std::optional<WeightedJourney> max_reliability_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start = 0);

/// Maximum-bottleneck (bandwidth) journey: maximizes the minimum contact
/// weight along the journey.
std::optional<WeightedJourney> max_bandwidth_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start = 0);

/// One point on the cost/completion Pareto frontier.
struct ParetoPoint {
  double cost = 0.0;          // total contact weight (delay objective)
  TimeUnit completion = 0;    // last contact label

  friend bool operator==(const ParetoPoint&, const ParetoPoint&) = default;
};

/// The full Pareto frontier of (total cost, completion time) for
/// journeys source -> target departing at or after t_start: every
/// non-dominated trade-off between paying more to arrive earlier and
/// paying less to arrive later. Sorted by ascending completion (and thus
/// descending cost); empty when unreachable.
std::vector<ParetoPoint> cost_completion_frontier(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start = 0);

}  // namespace structnet
