#include "temporal/weighted.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace structnet {

std::uint64_t WeightedTemporalGraph::key(VertexId u, VertexId v, TimeUnit t) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 44) |
         (static_cast<std::uint64_t>(v) << 24) | static_cast<std::uint64_t>(t);
}

void WeightedTemporalGraph::add_contact(VertexId u, VertexId v, TimeUnit t,
                                        double weight) {
  base_.add_contact(u, v, t);
  const std::uint64_t k = key(u, v, t);
  const auto it = std::lower_bound(
      weights_.begin(), weights_.end(), k,
      [](const auto& entry, std::uint64_t kk) { return entry.first < kk; });
  if (it != weights_.end() && it->first == k) {
    it->second = weight;
  } else {
    weights_.insert(it, {k, weight});
  }
}

std::optional<double> WeightedTemporalGraph::weight_of(VertexId u, VertexId v,
                                                       TimeUnit t) const {
  const std::uint64_t k = key(u, v, t);
  const auto it = std::lower_bound(
      weights_.begin(), weights_.end(), k,
      [](const auto& entry, std::uint64_t kk) { return entry.first < kk; });
  if (it != weights_.end() && it->first == k) return it->second;
  return std::nullopt;
}

std::vector<WeightedContact> WeightedTemporalGraph::contacts() const {
  std::vector<WeightedContact> out;
  for (const Contact& c : base_.contacts()) {
    out.push_back(WeightedContact{c.u, c.v, c.t, *weight_of(c.u, c.v, c.t)});
  }
  return out;
}

namespace {

/// Shared label-respecting DP over time-ordered contacts. `better(a, b)`
/// is true when value a strictly improves on b; `combine(val, w)` is the
/// new value after taking a contact of weight w.
///
/// Journeys are reconstructed through persistent backpointer records so a
/// later improvement at a relay cannot corrupt an already-used prefix.
template <typename Better, typename Combine>
std::optional<WeightedJourney> optimal_journey(const WeightedTemporalGraph& eg,
                                               VertexId source,
                                               VertexId target,
                                               TimeUnit t_start, double init,
                                               double worst, Better better,
                                               Combine combine) {
  const std::size_t n = eg.vertex_count();
  assert(source < n && target < n);
  if (source == target) return WeightedJourney{Journey{}, init};

  struct Record {
    JourneyHop hop;
    std::int64_t prev;  // index into records, -1 for source
  };
  std::vector<Record> records;
  std::vector<double> value(n, worst);
  std::vector<std::int64_t> rec_of(n, -1);
  value[source] = init;

  // Bucket contacts by time unit.
  std::vector<std::vector<WeightedContact>> bucket(eg.horizon());
  for (const WeightedContact& c : eg.contacts()) bucket[c.t].push_back(c);

  for (TimeUnit t = t_start; t < eg.horizon(); ++t) {
    bool changed = true;
    while (changed) {  // intra-unit closure (instantaneous transmission)
      changed = false;
      for (const WeightedContact& c : bucket[t]) {
        auto relax = [&](VertexId from, VertexId to) {
          if (value[from] == worst) return;
          const double cand = combine(value[from], c.weight);
          if (better(cand, value[to])) {
            value[to] = cand;
            records.push_back(Record{JourneyHop{from, to, t}, rec_of[from]});
            rec_of[to] = static_cast<std::int64_t>(records.size()) - 1;
            changed = true;
          }
        };
        relax(c.u, c.v);
        relax(c.v, c.u);
      }
    }
  }
  if (value[target] == worst) return std::nullopt;
  WeightedJourney out;
  out.value = value[target];
  for (std::int64_t r = rec_of[target]; r >= 0; r = records[r].prev) {
    out.journey.hops.push_back(records[r].hop);
  }
  std::reverse(out.journey.hops.begin(), out.journey.hops.end());
  return out;
}

}  // namespace

std::optional<WeightedJourney> min_delay_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return optimal_journey(
      eg, source, target, t_start, /*init=*/0.0, /*worst=*/kInf,
      [](double a, double b) { return a < b; },
      [](double v, double w) { return v + w; });
}

std::optional<WeightedJourney> max_reliability_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start) {
  return optimal_journey(
      eg, source, target, t_start, /*init=*/1.0, /*worst=*/-1.0,
      [](double a, double b) { return a > b; },
      [](double v, double w) { return v * w; });
}

std::optional<WeightedJourney> max_bandwidth_journey(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return optimal_journey(
      eg, source, target, t_start, /*init=*/kInf, /*worst=*/-1.0,
      [](double a, double b) { return a > b; },
      [](double v, double w) { return std::min(v, w); });
}

std::vector<ParetoPoint> cost_completion_frontier(
    const WeightedTemporalGraph& eg, VertexId source, VertexId target,
    TimeUnit t_start) {
  // Key fact: after the min-delay DP has processed all contacts with
  // label <= T, value[target] is exactly the minimum cost over journeys
  // completing by T. Recording every strict improvement as T advances
  // therefore yields the whole Pareto frontier in one pass.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = eg.vertex_count();
  assert(source < n && target < n);
  if (source == target) return {ParetoPoint{0.0, t_start}};

  std::vector<double> value(n, kInf);
  value[source] = 0.0;
  std::vector<std::vector<WeightedContact>> bucket(eg.horizon());
  for (const WeightedContact& c : eg.contacts()) bucket[c.t].push_back(c);

  std::vector<ParetoPoint> frontier;
  double best = kInf;
  for (TimeUnit t = t_start; t < eg.horizon(); ++t) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const WeightedContact& c : bucket[t]) {
        auto relax = [&](VertexId from, VertexId to) {
          if (value[from] == kInf) return;
          const double cand = value[from] + c.weight;
          if (cand < value[to]) {
            value[to] = cand;
            changed = true;
          }
        };
        relax(c.u, c.v);
        relax(c.v, c.u);
      }
    }
    if (value[target] < best) {
      best = value[target];
      frontier.push_back(ParetoPoint{best, t});
    }
  }
  return frontier;
}

}  // namespace structnet
