#include "temporal/temporal_centrality.hpp"

#include <array>

#include "parallel/parallel.hpp"
#include "temporal/journeys.hpp"
#include "temporal/multi_source.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"

namespace structnet {

namespace {

constexpr std::size_t kLanes = MultiSourceWorkspace::kMaxLanes;

// All-sources closeness over any contact index: shard the source range
// over kLanes-wide blocks (grain 1 keeps the block -> shard mapping a
// pure function of n, so results are bit-identical at any thread
// count), one lane-packed sweep per block instead of kLanes scalar
// sweeps. The per-lane reduction reads arrivals in the same ascending
// vertex order the scalar loop used, so every sum is the exact same
// float sequence.
template <class Index>
std::vector<double> closeness_over_index(const Index& csr,
                                         std::size_t threads) {
  const std::size_t n = csr.vertex_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  std::vector<MultiSourceWorkspace> ws(resolve_threads(threads));
  parallel_for_shards(
      0, lane_block_count(n), 1, threads,
      [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
        MultiSourceWorkspace& w = ws[worker];
        std::array<VertexId, kLanes> srcs;
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t s0 = b * kLanes;
          const std::size_t lanes = std::min(kLanes, n - s0);
          for (std::size_t l = 0; l < lanes; ++l) {
            srcs[l] = static_cast<VertexId>(s0 + l);
          }
          csr_earliest_arrival_batch(csr, {srcs.data(), lanes}, 0, w);
          for (std::size_t l = 0; l < lanes; ++l) {
            const std::size_t s = s0 + l;
            double sum = 0.0;
            for (std::size_t v = 0; v < n; ++v) {
              const TimeUnit c = w.arrival(l, static_cast<VertexId>(v));
              if (v == s || c == kNeverTime) continue;
              sum += 1.0 / (1.0 + static_cast<double>(c));
            }
            closeness[s] = sum / static_cast<double>(n - 1);
          }
        }
      });
  return closeness;
}

}  // namespace

std::vector<double> temporal_closeness(const TemporalGraph& eg,
                                       std::size_t threads) {
  // Build the contact index once; the lane-packed sweep does the rest.
  const TemporalCsr csr(eg);
  return closeness_over_index(csr, threads);
}

std::vector<double> temporal_closeness(const TemporalCsr& csr,
                                       std::size_t threads) {
  return closeness_over_index(csr, threads);
}

std::vector<double> temporal_closeness(const DeltaTemporalCsr& csr,
                                       std::size_t threads) {
  return closeness_over_index(csr, threads);
}

std::vector<double> temporal_betweenness(const TemporalGraph& eg,
                                         std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> betweenness(n, 0.0);
  if (n == 0) return betweenness;
  // Sources credit arbitrary interior vertices, so each worker slot
  // accumulates privately and the slots are folded in order afterwards.
  // Credits are +1.0 increments (exact in double), so the totals are
  // identical no matter which worker counted them — which also makes
  // the lane-block resharding below result-neutral.
  const std::size_t slots = resolve_threads(threads);
  std::vector<std::vector<double>> partial(
      slots, std::vector<double>(n, 0.0));
  // The lane-packed kernel reproduces the legacy via trees bit-for-bit
  // per lane, so the canonical journeys (and hence the credits) are
  // unchanged by the conversion.
  const TemporalCsr csr(eg);
  std::vector<MultiSourceWorkspace> ws(slots);
  parallel_for_shards(
      0, lane_block_count(n), 1, threads,
      [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
        std::vector<double>& acc = partial[worker];
        MultiSourceWorkspace& w = ws[worker];
        std::array<VertexId, kLanes> srcs;
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t s0 = b * kLanes;
          const std::size_t lanes = std::min(kLanes, n - s0);
          for (std::size_t l = 0; l < lanes; ++l) {
            srcs[l] = static_cast<VertexId>(s0 + l);
          }
          csr_earliest_arrival_batch(csr, {srcs.data(), lanes}, 0, w,
                                     /*record_via=*/true);
          for (std::size_t l = 0; l < lanes; ++l) {
            const auto s = static_cast<VertexId>(s0 + l);
            for (std::size_t d = 0; d < n; ++d) {
              const auto dst = static_cast<VertexId>(d);
              if (dst == s || w.arrival(l, dst) == kNeverTime) continue;
              // Credit interior vertices of the canonical journey s -> d.
              VertexId cur = dst;
              while (true) {
                const VertexId prev = w.via_from(l, cur);
                if (prev == kInvalidVertex || prev == s) break;
                acc[prev] += 1.0;
                cur = prev;
              }
            }
          }
        }
      });
  for (const std::vector<double>& acc : partial) {
    for (std::size_t v = 0; v < n; ++v) betweenness[v] += acc[v];
  }
  return betweenness;
}

std::vector<double> temporal_degree(const TemporalGraph& eg) {
  std::vector<double> degree(eg.vertex_count(), 0.0);
  for (const auto& edge : eg.edges()) {
    degree[edge.u] += static_cast<double>(edge.labels.size());
    degree[edge.v] += static_cast<double>(edge.labels.size());
  }
  return degree;
}

}  // namespace structnet
