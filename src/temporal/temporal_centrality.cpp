#include "temporal/temporal_centrality.hpp"

#include "parallel/parallel.hpp"
#include "temporal/journeys.hpp"
#include "temporal/smallworld_metrics.hpp"

namespace structnet {

std::vector<double> temporal_closeness(const TemporalGraph& eg,
                                       std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  // Each source writes only its own slot, so the sweep parallelizes
  // without any accumulation order concerns.
  parallel_for(
      0, n, kSourceGrain,
      [&](std::size_t s) {
        const auto ea = earliest_arrival(eg, static_cast<VertexId>(s), 0);
        double sum = 0.0;
        for (VertexId v = 0; v < n; ++v) {
          if (v == s || ea.completion[v] == kNeverTime) continue;
          sum += 1.0 / (1.0 + static_cast<double>(ea.completion[v]));
        }
        closeness[s] = sum / static_cast<double>(n - 1);
      },
      threads);
  return closeness;
}

std::vector<double> temporal_betweenness(const TemporalGraph& eg,
                                         std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> betweenness(n, 0.0);
  if (n == 0) return betweenness;
  // Sources credit arbitrary interior vertices, so each worker slot
  // accumulates privately and the slots are folded in order afterwards.
  // Credits are +1.0 increments (exact in double), so the totals are
  // identical no matter which worker counted them.
  const std::size_t slots = resolve_threads(threads);
  std::vector<std::vector<double>> partial(
      slots, std::vector<double>(n, 0.0));
  parallel_for_shards(
      0, n, kSourceGrain, threads,
      [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
        std::vector<double>& acc = partial[worker];
        for (std::size_t s = lo; s < hi; ++s) {
          const auto ea = earliest_arrival(eg, static_cast<VertexId>(s), 0);
          for (VertexId d = 0; d < n; ++d) {
            if (d == s || ea.completion[d] == kNeverTime) continue;
            // Credit interior vertices of the canonical journey s -> d.
            VertexId cur = d;
            while (true) {
              const VertexId prev = ea.via[cur].from;
              if (prev == kInvalidVertex || prev == static_cast<VertexId>(s)) {
                break;
              }
              acc[prev] += 1.0;
              cur = prev;
            }
          }
        }
      });
  for (const std::vector<double>& acc : partial) {
    for (std::size_t v = 0; v < n; ++v) betweenness[v] += acc[v];
  }
  return betweenness;
}

std::vector<double> temporal_degree(const TemporalGraph& eg) {
  std::vector<double> degree(eg.vertex_count(), 0.0);
  for (const auto& edge : eg.edges()) {
    degree[edge.u] += static_cast<double>(edge.labels.size());
    degree[edge.v] += static_cast<double>(edge.labels.size());
  }
  return degree;
}

}  // namespace structnet
