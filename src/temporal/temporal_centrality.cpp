#include "temporal/temporal_centrality.hpp"

#include "temporal/journeys.hpp"

namespace structnet {

std::vector<double> temporal_closeness(const TemporalGraph& eg) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  for (VertexId s = 0; s < n; ++s) {
    const auto ea = earliest_arrival(eg, s, 0);
    double sum = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (v == s || ea.completion[v] == kNeverTime) continue;
      sum += 1.0 / (1.0 + static_cast<double>(ea.completion[v]));
    }
    closeness[s] = sum / static_cast<double>(n - 1);
  }
  return closeness;
}

std::vector<double> temporal_betweenness(const TemporalGraph& eg) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> betweenness(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    const auto ea = earliest_arrival(eg, s, 0);
    for (VertexId d = 0; d < n; ++d) {
      if (d == s || ea.completion[d] == kNeverTime) continue;
      // Credit interior vertices of the canonical journey s -> d.
      VertexId cur = d;
      while (true) {
        const VertexId prev = ea.via[cur].from;
        if (prev == kInvalidVertex || prev == s) break;
        betweenness[prev] += 1.0;
        cur = prev;
      }
    }
  }
  return betweenness;
}

std::vector<double> temporal_degree(const TemporalGraph& eg) {
  std::vector<double> degree(eg.vertex_count(), 0.0);
  for (const auto& edge : eg.edges()) {
    degree[edge.u] += static_cast<double>(edge.labels.size());
    degree[edge.v] += static_cast<double>(edge.labels.size());
  }
  return degree;
}

}  // namespace structnet
