#include "temporal/temporal_centrality.hpp"

#include "parallel/parallel.hpp"
#include "temporal/journeys.hpp"
#include "temporal/smallworld_metrics.hpp"
#include "temporal/temporal_csr.hpp"

namespace structnet {

std::vector<double> temporal_closeness(const TemporalGraph& eg,
                                       std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> closeness(n, 0.0);
  if (n < 2) return closeness;
  // Build the contact index once; each worker slot owns one reusable
  // workspace, so the all-sources sweep allocates nothing per source.
  // Each source writes only its own slot, so the sweep parallelizes
  // without any accumulation order concerns.
  const TemporalCsr csr(eg);
  std::vector<TemporalWorkspace> ws(resolve_threads(threads));
  parallel_for_shards(
      0, n, kSourceGrain, threads,
      [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
        TemporalWorkspace& w = ws[worker];
        for (std::size_t s = lo; s < hi; ++s) {
          csr_earliest_arrival(csr, static_cast<VertexId>(s), 0, w);
          double sum = 0.0;
          for (VertexId v = 0; v < n; ++v) {
            const TimeUnit c = w.arrival(v);
            if (v == s || c == kNeverTime) continue;
            sum += 1.0 / (1.0 + static_cast<double>(c));
          }
          closeness[s] = sum / static_cast<double>(n - 1);
        }
      });
  return closeness;
}

std::vector<double> temporal_betweenness(const TemporalGraph& eg,
                                         std::size_t threads) {
  const std::size_t n = eg.vertex_count();
  std::vector<double> betweenness(n, 0.0);
  if (n == 0) return betweenness;
  // Sources credit arbitrary interior vertices, so each worker slot
  // accumulates privately and the slots are folded in order afterwards.
  // Credits are +1.0 increments (exact in double), so the totals are
  // identical no matter which worker counted them.
  const std::size_t slots = resolve_threads(threads);
  std::vector<std::vector<double>> partial(
      slots, std::vector<double>(n, 0.0));
  // The CSR earliest-arrival kernel reproduces the legacy via trees
  // bit-for-bit, so the canonical journeys (and hence the credits) are
  // unchanged by the conversion.
  const TemporalCsr csr(eg);
  std::vector<TemporalWorkspace> ws(slots);
  parallel_for_shards(
      0, n, kSourceGrain, threads,
      [&](std::size_t, std::size_t lo, std::size_t hi, std::size_t worker) {
        std::vector<double>& acc = partial[worker];
        TemporalWorkspace& w = ws[worker];
        for (std::size_t s = lo; s < hi; ++s) {
          csr_earliest_arrival(csr, static_cast<VertexId>(s), 0, w);
          for (VertexId d = 0; d < n; ++d) {
            if (d == s || w.arrival(d) == kNeverTime) continue;
            // Credit interior vertices of the canonical journey s -> d.
            VertexId cur = d;
            while (true) {
              const VertexId prev = w.via(cur).from;
              if (prev == kInvalidVertex || prev == static_cast<VertexId>(s)) {
                break;
              }
              acc[prev] += 1.0;
              cur = prev;
            }
          }
        }
      });
  for (const std::vector<double>& acc : partial) {
    for (std::size_t v = 0; v < n; ++v) betweenness[v] += acc[v];
  }
  return betweenness;
}

std::vector<double> temporal_degree(const TemporalGraph& eg) {
  std::vector<double> degree(eg.vertex_count(), 0.0);
  for (const auto& edge : eg.edges()) {
    degree[edge.u] += static_cast<double>(edge.labels.size());
    degree[edge.v] += static_cast<double>(edge.labels.size());
  }
  return degree;
}

}  // namespace structnet
