#include "temporal/trace_io.hpp"

#include <charconv>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>

namespace structnet {

namespace {

/// Splits `line` into exactly `count` unsigned fields. Returns an empty
/// string on success, else the reason.
std::string parse_fields(const std::string& line, std::uint64_t* out,
                         std::size_t count) {
  const char* p = line.data();
  const char* end = p + line.size();
  for (std::size_t i = 0; i < count; ++i) {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end) return "expected " + std::to_string(count) + " fields";
    const auto [next, ec] = std::from_chars(p, end, out[i]);
    if (ec == std::errc::result_out_of_range) return "number out of range";
    if (ec != std::errc() || (next < end && *next != ' ' && *next != '\t')) {
      return "invalid number";
    }
    p = next;
  }
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
  if (p != end) return "trailing data";
  return {};
}

bool fits_u32(std::uint64_t x) {
  return x <= std::numeric_limits<std::uint32_t>::max();
}

}  // namespace

void write_contact_trace(std::ostream& os, const TemporalGraph& eg) {
  std::size_t m = 0;
  for (const auto& edge : eg.edges()) m += edge.labels.size();
  os << eg.vertex_count() << ' ' << eg.horizon() << ' ' << m << '\n';
  for (const Contact& c : eg.contacts()) {
    os << c.u << ' ' << c.v << ' ' << c.t << '\n';
  }
}

TraceParseResult parse_contact_trace(std::istream& is) {
  TraceParseResult result;
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](std::string why) {
    result.line = lineno;
    result.error = std::move(why);
    result.graph.reset();
    return result;
  };
  // Skips blank lines; false at end of stream.
  const auto next_line = [&]() {
    while (std::getline(is, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
    }
    ++lineno;
    return false;
  };

  if (!next_line()) return fail("missing header (n horizon m)");
  std::uint64_t header[3];
  if (auto err = parse_fields(line, header, 3); !err.empty()) {
    return fail("header: " + err);
  }
  const auto [n, horizon, m] = std::tuple{header[0], header[1], header[2]};
  if (!fits_u32(n)) return fail("header: vertex count exceeds 32-bit ids");
  if (!fits_u32(horizon)) return fail("header: horizon exceeds 32-bit time");

  TemporalGraph eg(static_cast<std::size_t>(n),
                   static_cast<TimeUnit>(horizon));
  for (std::uint64_t i = 0; i < m; ++i) {
    if (!next_line()) {
      return fail("truncated: expected " + std::to_string(m) +
                  " contacts, got " + std::to_string(i));
    }
    std::uint64_t f[3];
    if (auto err = parse_fields(line, f, 3); !err.empty()) {
      return fail("contact: " + err);
    }
    if (f[0] >= n || f[1] >= n) return fail("contact: vertex out of range");
    if (f[0] == f[1]) return fail("contact: self contact");
    if (f[2] >= horizon) return fail("contact: time beyond horizon");
    eg.add_contact(static_cast<VertexId>(f[0]), static_cast<VertexId>(f[1]),
                   static_cast<TimeUnit>(f[2]));
  }
  result.graph.emplace(std::move(eg));
  result.line = 0;
  result.error.clear();
  return result;
}

std::optional<TemporalGraph> read_contact_trace(std::istream& is) {
  return parse_contact_trace(is).graph;
}

}  // namespace structnet
