#include "temporal/trace_io.hpp"

#include <istream>
#include <ostream>

namespace structnet {

void write_contact_trace(std::ostream& os, const TemporalGraph& eg) {
  std::size_t m = 0;
  for (const auto& edge : eg.edges()) m += edge.labels.size();
  os << eg.vertex_count() << ' ' << eg.horizon() << ' ' << m << '\n';
  for (const Contact& c : eg.contacts()) {
    os << c.u << ' ' << c.v << ' ' << c.t << '\n';
  }
}

std::optional<TemporalGraph> read_contact_trace(std::istream& is) {
  std::size_t n = 0, m = 0;
  TimeUnit horizon = 0;
  if (!(is >> n >> horizon >> m)) return std::nullopt;
  TemporalGraph eg(n, horizon);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    TimeUnit t = 0;
    if (!(is >> u >> v >> t)) return std::nullopt;
    if (u >= n || v >= n || u == v || t >= horizon) return std::nullopt;
    eg.add_contact(u, v, t);
  }
  return eg;
}

}  // namespace structnet
