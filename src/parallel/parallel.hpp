// Shared-memory parallel execution layer: a small work-stealing-free
// thread pool plus parallel_for / parallel_reduce over index ranges.
//
// Design rules that make every converted kernel deterministic:
//
//   * Sharding is a function of (range, grain) ONLY — never of the
//     thread count. A range [begin, end) with grain g always splits into
//     ceil((end-begin)/g) shards with identical boundaries, so the work
//     units (and any per-shard floating-point summation order) are the
//     same whether 1 or 64 threads execute them.
//   * parallel_reduce folds the per-shard partials serially in shard
//     order, so the combine order is fixed at any thread count and
//     results are bit-identical to the threads=1 path.
//   * Stochastic kernels derive one child Rng per shard/trial from the
//     parent seed + shard index (Rng::split), never from a shared
//     stream, so the draw sequence per shard is thread-count-invariant.
//
// Threads only decide WHO runs a shard, never WHAT a shard computes.
// The serial path (threads == 1) runs the same shards inline in shard
// order — it is the identity schedule, not separate code.
//
// Nested parallel_for from inside a pool worker degrades to the serial
// inline path (no deadlock, same results). Exceptions thrown by shard
// bodies are captured and the first one is rethrown on the caller.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace structnet {

/// Resolves a requested thread count: 0 means "the default", which is
/// STRUCTNET_THREADS from the environment when set (parsed once), else
/// std::thread::hardware_concurrency(). Always returns >= 1.
std::size_t resolve_threads(std::size_t requested = 0);

/// Overrides the default thread count for resolve_threads(0). Passing 0
/// restores the env/hardware default.
void set_default_thread_count(std::size_t threads);

/// Hardware concurrency, never 0.
std::size_t hardware_threads();

/// A fixed-size pool of persistent workers executing sharded jobs. The
/// submitting thread participates as worker 0; the pool owns
/// thread_count() - 1 background threads. Jobs are serialized: one
/// run_shards at a time (concurrent submissions queue on a mutex).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs fn(shard, worker) for every shard in [0, shards), blocking
  /// until all shards finished. `worker` is the executing slot in
  /// [0, thread_count()) — stable for worker-indexed accumulators. The
  /// first exception thrown by a shard is rethrown here after the job
  /// drains. Calling from inside a pool worker runs inline (serial).
  void run_shards(std::size_t shards,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  /// True when the calling thread is currently executing a shard of any
  /// ThreadPool (used to flatten nested parallelism).
  static bool in_worker();
  /// Worker slot of the calling thread (0 when not in a pool).
  static std::size_t current_worker();

  /// Process-lifetime pool with exactly `threads` slots (>= 2). Pools
  /// are cached per size so speedup curves can bench 2/4/8 threads
  /// against the same machinery.
  static ThreadPool& shared(std::size_t threads);

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t shards = 0;
    std::atomic<std::size_t> next{0};       // next shard to claim
    std::atomic<std::size_t> completed{0};  // shards fully executed
    std::size_t inside = 0;  // background workers in the job (under mu_)
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker);
  void work_on(Job& job, std::size_t worker);

  std::mutex submit_mu_;  // serializes run_shards calls
  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  Job* current_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Number of shards a range splits into: ceil(range / grain), 0 for an
/// empty range. Grain 0 is treated as 1.
inline std::size_t shard_count(std::size_t range, std::size_t grain) {
  if (range == 0) return 0;
  if (grain == 0) grain = 1;
  return (range + grain - 1) / grain;
}

/// Lowest-level loop: fn(shard, lo, hi, worker) per shard, where
/// [lo, hi) is the shard's subrange of [begin, end). Shard boundaries
/// depend only on (begin, end, grain); `threads` picks the schedule
/// (resolved via resolve_threads). threads == 1, a single shard, or a
/// nested call all run inline in shard order. `worker` is always in
/// [0, resolve_threads(threads)) — the inline path has one executor
/// and reports slot 0 (never the enclosing pool's slot, which could
/// exceed a nested call's own thread count), so accumulators sized by
/// the resolved count are safe at any nesting depth.
template <typename Fn>
void parallel_for_shards(std::size_t begin, std::size_t end, std::size_t grain,
                         std::size_t threads, Fn&& fn) {
  const std::size_t range = end > begin ? end - begin : 0;
  if (grain == 0) grain = 1;
  const std::size_t shards = shard_count(range, grain);
  if (shards == 0) return;
  auto body = [&](std::size_t shard, std::size_t worker) {
    const std::size_t lo = begin + shard * grain;
    const std::size_t hi = std::min(end, lo + grain);
    fn(shard, lo, hi, worker);
  };
  const std::size_t t = resolve_threads(threads);
  if (t <= 1 || shards == 1 || ThreadPool::in_worker()) {
    for (std::size_t s = 0; s < shards; ++s) body(s, 0);
    return;
  }
  const std::function<void(std::size_t, std::size_t)> erased = body;
  ThreadPool::shared(t).run_shards(shards, erased);
}

/// Runs fn(i) for every i in [begin, end), sharded by `grain`.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn, std::size_t threads = 0) {
  parallel_for_shards(begin, end, grain, threads,
                      [&](std::size_t, std::size_t lo, std::size_t hi,
                          std::size_t) {
                        for (std::size_t i = lo; i < hi; ++i) fn(i);
                      });
}

/// Maps each shard subrange to a partial via map(lo, hi) -> T, then
/// folds the partials serially in shard order: combine(acc, partial).
/// Because shard boundaries and fold order are thread-count-invariant,
/// the result is bit-identical at any thread count (including floating-
/// point accumulations).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, Map&& map, Combine&& combine,
                  std::size_t threads = 0) {
  const std::size_t range = end > begin ? end - begin : 0;
  const std::size_t shards = shard_count(range, grain);
  std::vector<T> partial(shards);
  parallel_for_shards(begin, end, grain, threads,
                      [&](std::size_t shard, std::size_t lo, std::size_t hi,
                          std::size_t) { partial[shard] = map(lo, hi); });
  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace structnet
