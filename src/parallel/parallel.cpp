#include "parallel/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace structnet {

namespace {

thread_local bool tl_in_worker = false;
thread_local std::size_t tl_worker_index = 0;

/// Pool metrics, published into the global registry. Busy/idle are
/// histograms of per-stint durations (one work_on call / one cv wait),
/// so the snapshot exposes both totals (sum) and shape.
struct PoolMetrics {
  obs::Counter& jobs;
  obs::Counter& shards;
  obs::Histogram& busy_ns;
  obs::Histogram& idle_ns;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::MetricsRegistry::global().counter("parallel.jobs"),
        obs::MetricsRegistry::global().counter("parallel.shards"),
        obs::MetricsRegistry::global().histogram("parallel.worker_busy_ns"),
        obs::MetricsRegistry::global().histogram("parallel.worker_idle_ns"),
    };
    return m;
  }
};

std::size_t env_default_threads() {
  if (const char* env = std::getenv("STRUCTNET_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return hardware_threads();
}

std::atomic<std::size_t> g_default_threads{0};  // 0 = env/hardware

}  // namespace

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void set_default_thread_count(std::size_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const std::size_t overridden =
      g_default_threads.load(std::memory_order_relaxed);
  if (overridden > 0) return overridden;
  static const std::size_t from_env = env_default_threads();
  return from_env;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t background = threads > 1 ? threads - 1 : 0;
  workers_.reserve(background);
  for (std::size_t w = 0; w < background; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::in_worker() { return tl_in_worker; }

std::size_t ThreadPool::current_worker() { return tl_worker_index; }

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if constexpr (obs::kEnabled) {
        const std::uint64_t wait_start = obs::now_ns();
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        PoolMetrics::get().idle_ns.record(obs::now_ns() - wait_start);
      } else {
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      }
      if (stop_) return;
      seen = generation_;
      job = current_;
      if (job != nullptr) ++job->inside;
    }
    if (job == nullptr) continue;
    work_on(*job, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --job->inside;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::work_on(Job& job, std::size_t worker) {
  STRUCTNET_OBS_SPAN("parallel.work");
  const std::uint64_t busy_start = obs::kEnabled ? obs::now_ns() : 0;
  std::size_t shards_done = 0;
  const bool was_in_worker = tl_in_worker;
  const std::size_t was_index = tl_worker_index;
  tl_in_worker = true;
  tl_worker_index = worker;
  while (true) {
    const std::size_t shard = job.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= job.shards) break;
    ++shards_done;
    try {
      (*job.fn)(shard, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.shards) {
      done_cv_.notify_all();
    }
  }
  tl_in_worker = was_in_worker;
  tl_worker_index = was_index;
  if constexpr (obs::kEnabled) {
    PoolMetrics& m = PoolMetrics::get();
    m.busy_ns.record(obs::now_ns() - busy_start);
    if (shards_done > 0) m.shards.add(shards_done);
  }
}

void ThreadPool::run_shards(
    std::size_t shards,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (shards == 0) return;
  if constexpr (obs::kEnabled) PoolMetrics::get().jobs.add();
  if (tl_in_worker || workers_.empty()) {
    // Nested (or degenerate single-thread pool): run inline, keeping the
    // enclosing worker slot so worker-indexed accumulators stay valid.
    for (std::size_t s = 0; s < shards; ++s) fn(s, tl_worker_index);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mu_);
  Job job;
  job.fn = &fn;
  job.shards = shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  work_on(job, /*worker=*/0);  // the submitting thread is worker 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job.completed.load(std::memory_order_acquire) == job.shards &&
             job.inside == 0;
    });
    current_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::shared(std::size_t threads) {
  if (threads < 2) threads = 2;
  static std::mutex registry_mu;
  // Leaked on purpose: pools live for the process so worker threads
  // never race static destruction order at exit.
  static auto* registry = new std::map<std::size_t, ThreadPool*>();
  std::lock_guard<std::mutex> lock(registry_mu);
  auto it = registry->find(threads);
  if (it == registry->end()) {
    it = registry->emplace(threads, new ThreadPool(threads)).first;
  }
  return *it->second;
}

}  // namespace structnet
