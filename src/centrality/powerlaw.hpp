// Power-law fitting for degree distributions.
//
// The NSF (nested scale-free) definition in Sec. III-B requires fitting a
// power-law exponent to G and to each trimmed subgraph, then checking that
// the exponents' standard deviation is o(1). This header provides the MLE
// exponent estimate (Clauset-Shalizi-Newman style, discrete approximation)
// and the Kolmogorov-Smirnov goodness-of-fit distance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/graph.hpp"

namespace structnet {

struct PowerLawFit {
  double alpha = 0.0;   // exponent estimate; 0 when not fittable
  double ks = 1.0;      // KS distance between data and fitted CCDF
  std::size_t k_min = 1;
  std::size_t samples = 0;  // #observations >= k_min used for the fit
};

/// MLE exponent for discrete data x >= k_min:
/// alpha = 1 + n / sum(ln(x_i / (k_min - 0.5))).
PowerLawFit fit_power_law(std::span<const std::size_t> values,
                          std::size_t k_min = 1);

/// Convenience: fit the degree distribution of g ignoring vertices of
/// degree < k_min.
PowerLawFit fit_degree_power_law(const Graph& g, std::size_t k_min = 1);

/// Scans k_min over the distinct values present and returns the fit with
/// the smallest KS distance (CSN's k_min selection).
PowerLawFit fit_power_law_auto_kmin(std::span<const std::size_t> values,
                                    std::size_t max_kmin = 16);

}  // namespace structnet
