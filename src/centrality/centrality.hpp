// Classical node centralities surveyed in Sec. III of the paper: degree,
// closeness, betweenness (Brandes), and eigenvector centrality.
//
// The paper's point is that centrality measures a *single node's*
// importance; the structures built elsewhere in structnet (trimming,
// layering, remapping) span the whole network. These functions supply the
// node-level signals those structures consume (e.g. degree/betweenness as
// trimming priorities).
#pragma once

#include <vector>

#include "core/graph.hpp"

namespace structnet {

/// Degree centrality (raw neighbor counts).
std::vector<double> degree_centrality(const Graph& g);

/// Closeness: (n_reachable - 1) / sum of BFS distances to reachable
/// vertices; 0 for isolated vertices. Uses the standard component-local
/// normalization so disconnected graphs are handled.
std::vector<double> closeness_centrality(const Graph& g);

/// Betweenness via Brandes' algorithm (unweighted). Each pair (s, t) is
/// counted once; values are NOT normalized.
std::vector<double> betweenness_centrality(const Graph& g);

/// Eigenvector centrality via power iteration on the adjacency matrix,
/// L2-normalized, `iterations` steps (sufficient for experiment scale).
std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t iterations = 100);

/// Local clustering coefficient per vertex: closed neighbor pairs /
/// neighbor pairs (0 for degree < 2). The static counterpart of the
/// temporal correlation coefficient in temporal/smallworld_metrics.hpp.
std::vector<double> clustering_coefficients(const Graph& g);

/// Mean of the local clustering coefficients (Watts-Strogatz "C").
double average_clustering_coefficient(const Graph& g);

}  // namespace structnet
