#include "centrality/centrality.hpp"

#include <cmath>
#include <deque>
#include <limits>

namespace structnet {

std::vector<double> degree_centrality(const Graph& g) {
  std::vector<double> c(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    c[v] = static_cast<double>(g.degree(static_cast<VertexId>(v)));
  }
  return c;
}

std::vector<double> closeness_centrality(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> c(n, 0.0);
  constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(n);
  std::deque<VertexId> queue;
  for (std::size_t s = 0; s < n; ++s) {
    dist.assign(n, kUnreached);
    dist[s] = 0;
    queue.assign(1, static_cast<VertexId>(s));
    double sum = 0.0;
    std::size_t reached = 0;
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      sum += dist[u];
      ++reached;
      for (VertexId w : g.neighbors(u)) {
        if (dist[w] == kUnreached) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
      }
    }
    if (reached > 1 && sum > 0.0) {
      c[s] = static_cast<double>(reached - 1) / sum;
    }
  }
  return c;
}

std::vector<double> betweenness_centrality(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> bc(n, 0.0);
  constexpr auto kUnreached = std::numeric_limits<std::int64_t>::max();

  std::vector<std::int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::vector<VertexId>> pred(n);
  std::vector<VertexId> order;
  std::deque<VertexId> queue;

  for (std::size_t s = 0; s < n; ++s) {
    dist.assign(n, kUnreached);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    for (auto& p : pred) p.clear();
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    queue.assign(1, static_cast<VertexId>(s));
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (VertexId w : g.neighbors(u)) {
        if (dist[w] == kUnreached) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          pred[w].push_back(u);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      for (VertexId u : pred[w]) {
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  // Undirected: each pair counted twice above.
  for (double& v : bc) v /= 2.0;
  return bc;
}

std::vector<double> clustering_coefficients(const Graph& g) {
  std::vector<double> c(g.vertex_count(), 0.0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        closed += g.has_edge(nbrs[i], nbrs[j]);
      }
    }
    c[v] = 2.0 * static_cast<double>(closed) /
           (static_cast<double>(nbrs.size()) *
            static_cast<double>(nbrs.size() - 1));
  }
  return c;
}

double average_clustering_coefficient(const Graph& g) {
  if (g.vertex_count() == 0) return 0.0;
  const auto c = clustering_coefficients(g);
  double sum = 0.0;
  for (double x : c) sum += x;
  return sum / static_cast<double>(c.size());
}

std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t iterations) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return {};
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < iterations; ++it) {
    // Iterate (A + I) x: the identity shift breaks the period-2
    // oscillation power iteration exhibits on bipartite graphs without
    // changing the eigenvector ordering.
    next = x;
    for (const Graph::Edge& e : g.edges()) {
      next[e.u] += x[e.v];
      next[e.v] += x[e.u];
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm == 0.0) return next;  // edgeless graph
    for (std::size_t v = 0; v < n; ++v) next[v] /= norm;
    x.swap(next);
  }
  return x;
}

}  // namespace structnet
