#include "centrality/powerlaw.hpp"

#include <algorithm>
#include <cmath>

namespace structnet {

PowerLawFit fit_power_law(std::span<const std::size_t> values,
                          std::size_t k_min) {
  PowerLawFit fit;
  fit.k_min = std::max<std::size_t>(k_min, 1);
  std::vector<double> xs;
  for (std::size_t v : values) {
    if (v >= fit.k_min) xs.push_back(static_cast<double>(v));
  }
  fit.samples = xs.size();
  if (xs.size() < 2) return fit;

  // Discrete MLE approximation (CSN eq. 3.7).
  const double shift = static_cast<double>(fit.k_min) - 0.5;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x / shift);
  if (log_sum <= 0.0) return fit;
  fit.alpha = 1.0 + static_cast<double>(xs.size()) / log_sum;

  // KS distance: empirical CCDF vs model CCDF (x/shift)^(1-alpha).
  std::sort(xs.begin(), xs.end());
  double ks = 0.0;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    // Empirical CCDF just above xs[i]: fraction of samples > xs[i].
    std::size_t j = i;
    while (j + 1 < xs.size() && xs[j + 1] == xs[i]) ++j;
    const double emp = static_cast<double>(xs.size() - j - 1) / n;
    const double model = std::pow(xs[i] / shift, 1.0 - fit.alpha);
    ks = std::max(ks, std::abs(emp - model));
    i = j;
  }
  fit.ks = ks;
  return fit;
}

PowerLawFit fit_degree_power_law(const Graph& g, std::size_t k_min) {
  const auto deg = g.degrees();
  return fit_power_law(deg, k_min);
}

PowerLawFit fit_power_law_auto_kmin(std::span<const std::size_t> values,
                                    std::size_t max_kmin) {
  PowerLawFit best;
  bool any = false;
  for (std::size_t k = 1; k <= max_kmin; ++k) {
    const PowerLawFit fit = fit_power_law(values, k);
    if (fit.samples < 8 || fit.alpha <= 1.0) continue;
    if (!any || fit.ks < best.ks) {
      best = fit;
      any = true;
    }
  }
  if (!any) best = fit_power_law(values, 1);
  return best;
}

}  // namespace structnet
