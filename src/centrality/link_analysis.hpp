// PageRank and HITS ("hubs and authorities"), the paper's Sec. IV-B
// examples of *dynamic labeling*: node scores repeatedly re-labeled until
// a fixpoint. Both report iterations-to-tolerance so experiment E10 can
// treat iteration count as convergence time.
#pragma once

#include <cstddef>
#include <vector>

#include "core/digraph.hpp"
#include "core/graph.hpp"

namespace structnet {

struct PageRankResult {
  std::vector<double> score;      // sums to 1
  std::size_t iterations = 0;     // iterations executed
  bool converged = false;         // L1 delta fell below tolerance
};

/// PageRank with damping d: dangling mass redistributed uniformly.
PageRankResult pagerank(const Digraph& g, double damping = 0.85,
                        double tolerance = 1e-10,
                        std::size_t max_iterations = 200);

/// PageRank on an undirected graph (each edge as two arcs).
PageRankResult pagerank(const Graph& g, double damping = 0.85,
                        double tolerance = 1e-10,
                        std::size_t max_iterations = 200);

struct HitsResult {
  std::vector<double> hub;        // L2-normalized
  std::vector<double> authority;  // L2-normalized
  std::size_t iterations = 0;
  bool converged = false;
};

/// Kleinberg's HITS on a digraph.
HitsResult hits(const Digraph& g, double tolerance = 1e-10,
                std::size_t max_iterations = 200);

}  // namespace structnet
