#include "centrality/link_analysis.hpp"

#include <cmath>

namespace structnet {

namespace {

PageRankResult pagerank_impl(std::size_t n,
                             const std::vector<Digraph::Arc>& arcs,
                             const std::vector<std::size_t>& out_degree,
                             double damping, double tolerance,
                             std::size_t max_iterations) {
  PageRankResult r;
  if (n == 0) {
    r.converged = true;
    return r;
  }
  r.score.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (out_degree[v] == 0) dangling += r.score[v];
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (const auto& a : arcs) {
      next[a.to] +=
          damping * r.score[a.from] / static_cast<double>(out_degree[a.from]);
    }
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) delta += std::abs(next[v] - r.score[v]);
    r.score.swap(next);
    ++r.iterations;
    if (delta < tolerance) {
      r.converged = true;
      break;
    }
  }
  return r;
}

}  // namespace

PageRankResult pagerank(const Digraph& g, double damping, double tolerance,
                        std::size_t max_iterations) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> out_degree(n);
  for (std::size_t v = 0; v < n; ++v) {
    out_degree[v] = g.out_degree(static_cast<VertexId>(v));
  }
  std::vector<Digraph::Arc> arcs(g.arcs().begin(), g.arcs().end());
  return pagerank_impl(n, arcs, out_degree, damping, tolerance,
                       max_iterations);
}

PageRankResult pagerank(const Graph& g, double damping, double tolerance,
                        std::size_t max_iterations) {
  const std::size_t n = g.vertex_count();
  std::vector<std::size_t> out_degree(n);
  for (std::size_t v = 0; v < n; ++v) {
    out_degree[v] = g.degree(static_cast<VertexId>(v));
  }
  std::vector<Digraph::Arc> arcs;
  arcs.reserve(2 * g.edge_count());
  for (const Graph::Edge& e : g.edges()) {
    arcs.push_back({e.u, e.v});
    arcs.push_back({e.v, e.u});
  }
  return pagerank_impl(n, arcs, out_degree, damping, tolerance,
                       max_iterations);
}

HitsResult hits(const Digraph& g, double tolerance,
                std::size_t max_iterations) {
  const std::size_t n = g.vertex_count();
  HitsResult r;
  if (n == 0) {
    r.converged = true;
    return r;
  }
  r.hub.assign(n, 1.0);
  r.authority.assign(n, 1.0);
  auto normalize = [](std::vector<double>& v) {
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (double& x : v) x /= norm;
    }
  };
  std::vector<double> prev_hub = r.hub;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    // authority(v) = sum of hub over in-neighbors; hub(v) = sum of
    // authority over out-neighbors.
    std::fill(r.authority.begin(), r.authority.end(), 0.0);
    for (const auto& a : g.arcs()) r.authority[a.to] += r.hub[a.from];
    normalize(r.authority);
    std::fill(r.hub.begin(), r.hub.end(), 0.0);
    for (const auto& a : g.arcs()) r.hub[a.from] += r.authority[a.to];
    normalize(r.hub);
    ++r.iterations;
    double delta = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      delta += std::abs(r.hub[v] - prev_hub[v]);
    }
    prev_hub = r.hub;
    if (delta < tolerance) {
      r.converged = true;
      break;
    }
  }
  return r;
}

}  // namespace structnet
