// Tests for src/core: graph containers, generators, IO, geometry.
#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "algo/traversal.hpp"
#include "core/csr.hpp"
#include "core/digraph.hpp"
#include "core/generators.hpp"
#include "core/geometry.hpp"
#include "core/graph.hpp"
#include "core/io.hpp"

namespace structnet {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddVertexAndEdge) {
  Graph g(3);
  EXPECT_EQ(g.add_vertex(), 3u);
  const EdgeId e = g.add_edge(0, 3);
  EXPECT_EQ(e, 0u);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(Graph, AddEdgeUniqueSkipsDuplicates) {
  Graph g(3);
  EXPECT_NE(g.add_edge_unique(0, 1), kInvalidEdge);
  EXPECT_EQ(g.add_edge_unique(1, 0), kInvalidEdge);
  EXPECT_EQ(g.add_edge_unique(1, 1), kInvalidEdge);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, DegreesVector) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  const auto d = g.degrees();
  EXPECT_EQ(d, (std::vector<std::size_t>{3, 1, 1, 1}));
}

TEST(Graph, InducedSubgraphRenumbers) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  std::vector<bool> keep{true, false, true, true, false};
  std::vector<VertexId> map;
  const Graph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.vertex_count(), 3u);
  EXPECT_EQ(sub.edge_count(), 1u);  // only (2,3) survives
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], kInvalidVertex);
  EXPECT_EQ(map[2], 1u);
  EXPECT_EQ(map[3], 2u);
  EXPECT_TRUE(sub.has_edge(1, 2));
}

TEST(Digraph, ArcDirectionality) {
  Digraph g(3);
  g.add_arc(0, 1);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(Digraph, ReversedSwapsArcs) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_arc(1, 0));
  EXPECT_TRUE(r.has_arc(2, 1));
  EXPECT_FALSE(r.has_arc(0, 1));
}

TEST(Digraph, ToUndirectedCollapsesAntiparallel) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  const Graph u = g.to_undirected();
  EXPECT_EQ(u.edge_count(), 1u);
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  Rng rng(1);
  const std::size_t n = 300;
  const double p = 0.05;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.2);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).edge_count(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).edge_count(), 45u);
}

TEST(Generators, BarabasiAlbertDegreeSum) {
  Rng rng(3);
  const std::size_t n = 200, m = 3;
  const Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.vertex_count(), n);
  // Seed clique (m+1 choose 2) + m edges per later vertex.
  EXPECT_EQ(g.edge_count(), (m + 1) * m / 2 + (n - m - 1) * m);
  // Preferential attachment produces a hub much bigger than the median.
  auto deg = g.degrees();
  std::sort(deg.begin(), deg.end());
  EXPECT_GT(deg.back(), 3 * deg[n / 2]);
}

TEST(Generators, WattsStrogatzKeepsDegreeTotal) {
  Rng rng(4);
  const Graph g = watts_strogatz(100, 3, 0.2, rng);
  EXPECT_EQ(g.vertex_count(), 100u);
  // Rewiring preserves the number of edges.
  EXPECT_EQ(g.edge_count(), 300u);
}

TEST(Generators, ConfigurationModelRoughDegrees) {
  Rng rng(5);
  std::vector<std::size_t> want(60, 4);
  const Graph g = configuration_model(want, rng);
  // Erased duplicates allowed, but most stubs must survive.
  EXPECT_GT(g.edge_count(), 90u);
  EXPECT_LE(g.edge_count(), 120u);
}

TEST(Generators, PowerLawDegreeSequenceEvenSum) {
  Rng rng(6);
  const auto seq = power_law_degree_sequence(101, 2.5, 1, 50, rng);
  std::size_t sum = 0;
  for (auto d : seq) sum += d;
  EXPECT_EQ(sum % 2, 0u);
  EXPECT_EQ(seq.size(), 101u);
}

TEST(Generators, UnitDiskGraphMatchesBruteForce) {
  Rng rng(7);
  const auto pts = random_points(80, rng);
  const double r = 0.2;
  const Graph fast = unit_disk_graph(pts, r);
  // Brute force oracle.
  std::size_t edges = 0;
  for (std::size_t a = 0; a < pts.size(); ++a) {
    for (std::size_t b = a + 1; b < pts.size(); ++b) {
      const bool close = squared_distance(pts[a], pts[b]) <= r * r;
      EXPECT_EQ(close, fast.has_edge(static_cast<VertexId>(a),
                                     static_cast<VertexId>(b)));
      edges += close;
    }
  }
  EXPECT_EQ(fast.edge_count(), edges);
}

TEST(Generators, DeterministicFamilies) {
  EXPECT_EQ(path_graph(5).edge_count(), 4u);
  EXPECT_EQ(cycle_graph(5).edge_count(), 5u);
  EXPECT_EQ(star_graph(6).edge_count(), 6u);
  EXPECT_EQ(star_graph(6).degree(0), 6u);
  EXPECT_EQ(complete_graph(6).edge_count(), 15u);
  EXPECT_EQ(grid_graph(3, 4).edge_count(), 3u * 3 + 2u * 4);
}

TEST(Generators, BinaryHypercubeStructure) {
  const Graph g = binary_hypercube(4);
  EXPECT_EQ(g.vertex_count(), 16u);
  EXPECT_EQ(g.edge_count(), 32u);  // n * 2^(n-1)
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0b0000, 0b0100));
  EXPECT_FALSE(g.has_edge(0b0000, 0b0110));
}

TEST(Generators, GeneralizedHypercubeFig6Shape) {
  // Fig. 6: gender x occupation x nationality = GH(2, 2, 3).
  const std::vector<std::size_t> radices{2, 2, 3};
  const Graph g = generalized_hypercube(radices);
  EXPECT_EQ(g.vertex_count(), 12u);
  // Degree = (2-1) + (2-1) + (3-1) = 4 for every vertex.
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(g.degree(v), 4u);
  // Edges differ in exactly one coordinate.
  for (const auto& e : g.edges()) {
    const auto a = gh_address(e.u, radices);
    const auto b = gh_address(e.v, radices);
    int diff = 0;
    for (std::size_t i = 0; i < radices.size(); ++i) diff += a[i] != b[i];
    EXPECT_EQ(diff, 1);
  }
}

TEST(Generators, GhAddressRoundTrip) {
  const std::vector<std::size_t> radices{3, 4, 2};
  for (std::size_t v = 0; v < gh_vertex_count(radices); ++v) {
    EXPECT_EQ(gh_vertex(gh_address(v, radices), radices), v);
  }
}

TEST(Io, EdgeListRoundTrip) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  std::stringstream ss;
  write_edge_list(ss, g);
  const auto back = read_edge_list(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Io, RejectsMalformedInput) {
  std::stringstream bad1("3 1\n0 7\n");   // vertex out of range
  EXPECT_FALSE(read_edge_list(bad1).has_value());
  std::stringstream bad2("3 2\n0 1\n0 1\n");  // duplicate edge
  EXPECT_FALSE(read_edge_list(bad2).has_value());
  std::stringstream bad3("3 2\n0 1\n");  // truncated
  EXPECT_FALSE(read_edge_list(bad3).has_value());
}

TEST(Io, ArcListRoundTrip) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(2, 1);
  std::stringstream ss;
  write_arc_list(ss, g);
  const auto back = read_arc_list(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, g);
}

TEST(Io, DotContainsEdges) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_NE(to_dot(g).find("0 -- 1"), std::string::npos);
  Digraph d(2);
  d.add_arc(1, 0);
  EXPECT_NE(to_dot(d).find("1 -> 0"), std::string::npos);
}

TEST(Csr, MirrorsAdjacency) {
  Rng rng(9);
  const Graph g = erdos_renyi(60, 0.1, rng);
  const CsrGraph csr(g);
  EXPECT_EQ(csr.vertex_count(), g.vertex_count());
  EXPECT_EQ(csr.edge_count(), g.edge_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    ASSERT_EQ(csr.degree(v), g.degree(v));
    auto expected = std::vector<VertexId>(g.neighbors(v).begin(),
                                          g.neighbors(v).end());
    std::sort(expected.begin(), expected.end());
    const auto got = csr.neighbors(v);
    EXPECT_TRUE(std::equal(expected.begin(), expected.end(), got.begin(),
                           got.end()));
  }
}

TEST(Csr, BfsMatchesGraphBfs) {
  Rng rng(10);
  const Graph g = erdos_renyi(80, 0.06, rng);
  const CsrGraph csr(g);
  for (VertexId s = 0; s < 80; s += 13) {
    EXPECT_EQ(csr_bfs_distances(csr, s), bfs_distances(g, s));
  }
}

TEST(Csr, EmptyGraph) {
  const CsrGraph csr{Graph(0)};
  EXPECT_EQ(csr.vertex_count(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
}

TEST(Geometry, DistanceAndMidpoint) {
  const Point2D a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  const Point2D m = midpoint(a, b);
  EXPECT_DOUBLE_EQ(m.x, 1.5);
  EXPECT_DOUBLE_EQ(m.y, 2.0);
}

}  // namespace
}  // namespace structnet
