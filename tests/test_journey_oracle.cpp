// Brute-force oracles: exhaustively enumerate journeys on small random
// time-evolving graphs and check that the three optimizers return truly
// optimal values (completion, hops, span), and that Brandes betweenness
// matches naive path counting on small static graphs.
#include <gtest/gtest.h>

#include <limits>

#include "algo/traversal.hpp"
#include "centrality/centrality.hpp"
#include "core/generators.hpp"
#include "temporal/journeys.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

struct OptimalJourneys {
  TimeUnit best_completion = kNeverTime;
  std::size_t best_hops = std::numeric_limits<std::size_t>::max();
  TimeUnit best_span = kNeverTime;
  bool reachable = false;
};

/// DFS over all label-respecting journeys from s to d with start >= t0.
/// Journeys never need to revisit a vertex for any of the three optima
/// (a revisit can be cut out without hurting completion/hops/span), so
/// the search is over simple journeys.
void enumerate(const TemporalGraph& eg, VertexId cur, VertexId d,
               TimeUnit min_label, TimeUnit first_label, std::size_t hops,
               std::vector<bool>& visited, OptimalJourneys& best) {
  if (cur == d) {
    best.reachable = true;
    const TimeUnit completion = min_label;  // label of last hop taken
    best.best_completion = std::min(best.best_completion, completion);
    best.best_hops = std::min(best.best_hops, hops);
    const TimeUnit span = completion - first_label;
    best.best_span = std::min(best.best_span, span);
    return;
  }
  for (EdgeId e : eg.incident_edges(cur)) {
    const VertexId next = eg.other_endpoint(e, cur);
    if (visited[next]) continue;
    for (TimeUnit t : eg.edge(e).labels) {
      if (t < min_label) continue;
      visited[next] = true;
      enumerate(eg, next, d, t, hops == 0 ? t : first_label, hops + 1,
                visited, best);
      visited[next] = false;
    }
  }
}

OptimalJourneys brute_force(const TemporalGraph& eg, VertexId s, VertexId d,
                            TimeUnit t0) {
  OptimalJourneys best;
  if (s == d) {
    best.reachable = true;
    best.best_completion = t0;
    best.best_hops = 0;
    best.best_span = 0;
    return best;
  }
  std::vector<bool> visited(eg.vertex_count(), false);
  visited[s] = true;
  // first_label is fixed on the first hop; pass t0 as the initial
  // min_label so only journeys departing >= t0 are generated.
  enumerate(eg, s, d, t0, /*first_label=*/0, 0, visited, best);
  return best;
}

// Oracle subtlety: enumerate() tracks completion as the label of the
// last hop, and span via first hop; both align with Journey's methods.

TemporalGraph random_eg(Rng& rng, std::size_t n, TimeUnit horizon,
                        std::size_t contacts) {
  TemporalGraph eg(n, horizon);
  for (std::size_t i = 0; i < contacts; ++i) {
    const auto u = static_cast<VertexId>(rng.index(n));
    const auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) continue;
    eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(horizon)));
  }
  return eg;
}

TEST(JourneyOracle, EarliestCompletionIsOptimal) {
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto eg = random_eg(rng, 6, 8, 10);
    for (VertexId s = 0; s < 6; ++s) {
      const auto ea = earliest_arrival(eg, s, 0);
      for (VertexId d = 0; d < 6; ++d) {
        if (s == d) continue;
        const auto oracle = brute_force(eg, s, d, 0);
        if (!oracle.reachable) {
          EXPECT_EQ(ea.completion[d], kNeverTime) << trial;
        } else {
          EXPECT_EQ(ea.completion[d], oracle.best_completion)
              << "trial " << trial << " " << s << "->" << d;
        }
      }
    }
  }
}

TEST(JourneyOracle, MinimumHopIsOptimal) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const auto eg = random_eg(rng, 6, 8, 10);
    for (VertexId s = 0; s < 6; ++s) {
      for (VertexId d = 0; d < 6; ++d) {
        if (s == d) continue;
        const auto oracle = brute_force(eg, s, d, 0);
        const auto mh = minimum_hop_journey(eg, s, d, 0);
        EXPECT_EQ(mh.has_value(), oracle.reachable) << trial;
        if (mh && oracle.reachable) {
          EXPECT_EQ(mh->hop_count(), oracle.best_hops)
              << "trial " << trial << " " << s << "->" << d;
          EXPECT_TRUE(mh->valid_for(eg));
        }
      }
    }
  }
}

TEST(JourneyOracle, FastestSpanIsOptimal) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const auto eg = random_eg(rng, 6, 8, 10);
    for (VertexId s = 0; s < 6; ++s) {
      for (VertexId d = 0; d < 6; ++d) {
        if (s == d) continue;
        const auto oracle = brute_force(eg, s, d, 0);
        const auto fp = fastest_journey(eg, s, d, 0);
        EXPECT_EQ(fp.has_value(), oracle.reachable) << trial;
        if (fp && oracle.reachable) {
          EXPECT_EQ(fp->span(), oracle.best_span)
              << "trial " << trial << " " << s << "->" << d;
          EXPECT_TRUE(fp->valid_for(eg));
        }
      }
    }
  }
}

TEST(JourneyOracle, StartTimeRespected) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto eg = random_eg(rng, 5, 8, 8);
    for (TimeUnit t0 : {2u, 5u}) {
      for (VertexId d = 1; d < 5; ++d) {
        const auto oracle = brute_force(eg, 0, d, t0);
        const auto ea = earliest_arrival(eg, 0, t0);
        if (!oracle.reachable) {
          EXPECT_EQ(ea.completion[d], kNeverTime);
        } else {
          EXPECT_EQ(ea.completion[d], oracle.best_completion) << trial;
        }
      }
    }
  }
}

// --------------------------- Brandes vs naive betweenness (static)

std::vector<double> naive_betweenness(const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> bc(n, 0.0);
  // All-pairs shortest path counting by BFS layers, per pair.
  for (VertexId s = 0; s < n; ++s) {
    const auto ds = bfs_distances(g, s);
    for (VertexId t = 0; t < n; ++t) {
      if (t == s || ds[t] == std::numeric_limits<std::uint32_t>::max()) {
        continue;
      }
      const auto dt = bfs_distances(g, t);
      // sigma_st = number of shortest s-t paths, counted by DP over the
      // DAG of tight edges.
      std::vector<double> sigma(n, 0.0);
      sigma[s] = 1.0;
      // order vertices by distance from s
      std::vector<VertexId> order;
      for (VertexId v = 0; v < n; ++v) {
        if (ds[v] <= ds[t]) order.push_back(v);
      }
      std::sort(order.begin(), order.end(),
                [&](VertexId a, VertexId b) { return ds[a] < ds[b]; });
      for (VertexId v : order) {
        for (VertexId w : g.neighbors(v)) {
          if (ds[w] == ds[v] + 1) sigma[w] += sigma[v];
        }
      }
      if (sigma[t] == 0.0) continue;
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (ds[v] + dt[v] == ds[t]) {
          // Paths through v: sigma_sv * sigma_vt; recompute sigma_vt by
          // symmetry from t.
          std::vector<double> sigma_t(n, 0.0);
          sigma_t[t] = 1.0;
          std::vector<VertexId> order_t;
          for (VertexId x = 0; x < n; ++x) {
            if (dt[x] <= dt[s]) order_t.push_back(x);
          }
          std::sort(order_t.begin(), order_t.end(),
                    [&](VertexId a, VertexId b) { return dt[a] < dt[b]; });
          for (VertexId x : order_t) {
            for (VertexId w : g.neighbors(x)) {
              if (dt[w] == dt[x] + 1) sigma_t[w] += sigma_t[x];
            }
          }
          bc[v] += sigma[v] * sigma_t[v] / sigma[t];
        }
      }
    }
  }
  for (double& x : bc) x /= 2.0;  // each unordered pair counted twice
  return bc;
}

TEST(BetweennessOracle, BrandesMatchesNaive) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = erdos_renyi(12, 0.25, rng);
    const auto fast = betweenness_centrality(g);
    const auto slow = naive_betweenness(g);
    for (std::size_t v = 0; v < 12; ++v) {
      EXPECT_NEAR(fast[v], slow[v], 1e-9) << "trial " << trial << " v " << v;
    }
  }
}

}  // namespace
}  // namespace structnet
