// Tests for src/mobility: mobility models, contact extraction,
// edge-Markovian process, and the social-feature contact generator.
#include <gtest/gtest.h>

#include <cmath>

#include "mobility/contact_trace.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "mobility/social_contacts.hpp"

namespace structnet {
namespace {

TEST(MobilityModels, RandomWaypointStaysInUnitSquare) {
  Rng rng(1);
  RandomWaypointParams p;
  p.nodes = 20;
  p.steps = 300;
  const auto traj = random_waypoint(p, rng);
  ASSERT_EQ(traj.size(), 300u);
  for (const auto& frame : traj) {
    ASSERT_EQ(frame.size(), 20u);
    for (const auto& pt : frame) {
      EXPECT_GE(pt.x, 0.0);
      EXPECT_LE(pt.x, 1.0);
      EXPECT_GE(pt.y, 0.0);
      EXPECT_LE(pt.y, 1.0);
    }
  }
}

TEST(MobilityModels, RandomWaypointSpeedBound) {
  Rng rng(2);
  RandomWaypointParams p;
  p.nodes = 10;
  p.steps = 200;
  p.min_speed = 0.01;
  p.max_speed = 0.03;
  p.max_pause = 0;
  const auto traj = random_waypoint(p, rng);
  for (std::size_t t = 1; t < traj.size(); ++t) {
    for (std::size_t i = 0; i < p.nodes; ++i) {
      EXPECT_LE(distance(traj[t][i], traj[t - 1][i]), p.max_speed + 1e-9);
    }
  }
}

TEST(MobilityModels, RandomWalkMoves) {
  Rng rng(3);
  RandomWalkParams p;
  p.nodes = 10;
  p.steps = 50;
  const auto traj = random_walk(p, rng);
  double moved = 0.0;
  for (std::size_t i = 0; i < p.nodes; ++i) {
    moved += distance(traj.front()[i], traj.back()[i]);
  }
  EXPECT_GT(moved, 0.0);
  for (const auto& frame : traj) {
    for (const auto& pt : frame) {
      EXPECT_GE(pt.x, 0.0);
      EXPECT_LE(pt.x, 1.0);
    }
  }
}

TEST(MobilityModels, CommunityMobilityClustersContacts) {
  // Same-community pairs should meet far more often than cross-community
  // pairs: the socially-clustered pattern Sec. III-C builds on.
  Rng rng(4);
  CommunityMobilityParams p;
  p.nodes = 40;
  p.steps = 400;
  p.communities = 4;
  p.roam_probability = 0.05;
  std::vector<std::size_t> home;
  const auto traj = community_mobility(p, rng, &home);
  const auto eg = contacts_from_trajectory(traj, 0.15);
  double same = 0.0, cross = 0.0;
  std::size_t same_pairs = 0, cross_pairs = 0;
  for (VertexId u = 0; u < p.nodes; ++u) {
    for (VertexId v = u + 1; v < p.nodes; ++v) {
      const EdgeId e = eg.find_edge(u, v);
      const double c =
          e == kInvalidEdge ? 0.0 : static_cast<double>(eg.edge(e).labels.size());
      if (home[u] == home[v]) {
        same += c;
        ++same_pairs;
      } else {
        cross += c;
        ++cross_pairs;
      }
    }
  }
  ASSERT_GT(same_pairs, 0u);
  ASSERT_GT(cross_pairs, 0u);
  EXPECT_GT(same / same_pairs, 3.0 * cross / cross_pairs);
}

TEST(ContactTrace, ExtractionMatchesGeometry) {
  // Two nodes orbiting in and out of range.
  Trajectory traj;
  for (int t = 0; t < 10; ++t) {
    const double d = (t % 2 == 0) ? 0.05 : 0.5;
    traj.push_back({Point2D{0.0, 0.0}, Point2D{d, 0.0}});
  }
  const auto eg = contacts_from_trajectory(traj, 0.1);
  for (TimeUnit t = 0; t < 10; ++t) {
    EXPECT_EQ(eg.has_contact(0, 1, t), t % 2 == 0) << t;
  }
}

TEST(ContactTrace, StatisticsRunsAndGaps) {
  TemporalGraph eg(2, 20);
  // Active 3..5 (run 3), gap 6..9 (gap 4), active 10 (run 1).
  for (TimeUnit t : {3, 4, 5, 10}) eg.add_contact(0, 1, t);
  const auto stats = contact_statistics(eg);
  EXPECT_EQ(stats.pair_count, 1u);
  EXPECT_EQ(stats.contact_duration.count_of(3), 1u);
  EXPECT_EQ(stats.contact_duration.count_of(1), 1u);
  EXPECT_EQ(stats.inter_contact_time.count_of(4), 1u);
}

TEST(EdgeMarkovian, StationaryDensityFormula) {
  EXPECT_DOUBLE_EQ(edge_markovian_stationary_density(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(edge_markovian_stationary_density(0.9, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(edge_markovian_stationary_density(0.0, 0.0), 0.0);
}

TEST(EdgeMarkovian, EmpiricalDensityMatchesStationary) {
  Rng rng(5);
  EdgeMarkovianParams p;
  p.nodes = 40;
  p.horizon = 200;
  p.death_probability = 0.3;
  p.birth_probability = 0.1;
  const auto eg = edge_markovian_graph(p, rng);
  std::size_t active = 0;
  for (const auto& edge : eg.edges()) active += edge.labels.size();
  const double pairs = 40.0 * 39.0 / 2.0;
  const double density =
      static_cast<double>(active) / (pairs * static_cast<double>(p.horizon));
  EXPECT_NEAR(density, 0.25, 0.02);
}

TEST(EdgeMarkovian, ZeroBirthDiesOut) {
  Rng rng(6);
  EdgeMarkovianParams p;
  p.nodes = 10;
  p.horizon = 60;
  p.death_probability = 0.5;
  p.birth_probability = 0.0;
  p.initial_density = 1.0;
  const auto eg = edge_markovian_graph(p, rng);
  // No edge should be alive in the last snapshot (decay 0.5^59).
  EXPECT_EQ(eg.snapshot(p.horizon - 1).edge_count(), 0u);
}

TEST(SocialContacts, FeatureDistance) {
  EXPECT_EQ(feature_distance({0, 1, 2}, {0, 1, 2}), 0u);
  EXPECT_EQ(feature_distance({0, 1, 2}, {1, 1, 2}), 1u);
  EXPECT_EQ(feature_distance({0, 1, 2}, {1, 0, 0}), 3u);
}

TEST(SocialContacts, RandomProfilesRespectRadices) {
  Rng rng(7);
  const std::vector<std::size_t> radices{2, 2, 3};
  const auto profiles = random_profiles(100, radices, rng);
  ASSERT_EQ(profiles.size(), 100u);
  for (const auto& p : profiles) {
    ASSERT_EQ(p.size(), 3u);
    for (std::size_t f = 0; f < 3; ++f) EXPECT_LT(p[f], radices[f]);
  }
}

TEST(SocialContacts, FrequencyDecaysWithFeatureDistance) {
  // The generated trace must obey the paper's law: closer profiles meet
  // more often, with ratio ~ decay per unit distance.
  Rng rng(8);
  SocialTraceParams p;
  p.people = 50;
  p.horizon = 2000;
  p.base_rate = 0.3;
  p.decay = 0.4;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  const auto freq = contact_frequency_by_distance(trace, profiles);
  ASSERT_EQ(freq.size(), 4u);
  EXPECT_NEAR(freq[0], 0.3, 0.05);
  for (std::size_t d = 1; d < freq.size(); ++d) {
    EXPECT_LT(freq[d], freq[d - 1]) << "distance " << d;
    EXPECT_NEAR(freq[d] / freq[d - 1], 0.4, 0.15) << "distance " << d;
  }
}

TEST(SocialContacts, InterContactTimesLookGeometric) {
  // The memoryless generator should yield inter-contact CV ~ 1.
  Rng rng(9);
  SocialTraceParams p;
  p.people = 12;
  p.horizon = 4000;
  p.radices = {2};
  p.base_rate = 0.1;
  p.decay = 1.0;  // uniform rate
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  const auto stats = contact_statistics(trace);
  const double mean = stats.inter_contact_time.mean();
  // Geometric with success 0.1 => mean gap ~ (1-p)/p = 9.
  EXPECT_NEAR(mean, 9.0, 2.0);
}

}  // namespace
}  // namespace structnet
