// Tests for the MIS -> CDS gateway construction (paper footnote 2).
#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "core/generators.hpp"
#include "labeling/mis_cds.hpp"
#include "labeling/static_labels.hpp"

namespace structnet {
namespace {

TEST(MisCds, StarNeedsNoGateways) {
  // MIS of a star is the leaf set or the center; with the center it is
  // already connected.
  const Graph g = star_graph(5);
  std::vector<bool> mis(6, false);
  mis[0] = true;  // center alone is a maximal independent dominating set
  const auto r = cds_from_mis(g, mis);
  EXPECT_EQ(r.gateways, 0u);
  EXPECT_TRUE(is_connected_dominating_set(g, r.cds));
}

TEST(MisCds, PathMisGetsConnected) {
  // P5 MIS {0, 2, 4}: gateways 1 and 3 must be added.
  const Graph g = path_graph(5);
  std::vector<bool> mis{true, false, true, false, true};
  ASSERT_TRUE(is_maximal_independent_set(g, mis));
  const auto r = cds_from_mis(g, mis);
  EXPECT_EQ(r.gateways, 2u);
  EXPECT_TRUE(is_connected_dominating_set(g, r.cds));
}

TEST(MisCds, RandomConnectedGraphsAlwaysYieldCds) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = erdos_renyi(50, 0.08, rng);
    for (VertexId v = 0; v + 1 < 50; ++v) g.add_edge_unique(v, v + 1);
    std::vector<double> prio(50);
    for (auto& p : prio) p = rng.uniform01();
    const auto mis = distributed_mis(g, prio);
    const auto r = cds_from_mis(g, mis.in_mis);
    EXPECT_TRUE(is_connected_dominating_set(g, r.cds)) << trial;
    // Every MIS node survives into the CDS.
    for (VertexId v = 0; v < 50; ++v) {
      if (mis.in_mis[v]) {
        EXPECT_TRUE(r.cds[v]);
      }
    }
  }
}

TEST(MisCds, GatewayCountBoundedByMisSize) {
  // Adjacent MIS fragments are <= 3 hops apart, so each connection adds
  // at most 2 gateways; total gateways <= 2 * (|MIS| - 1).
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(60, 0.3, rng, &pts);
    if (!is_connected(g)) continue;
    std::vector<double> prio(60);
    for (auto& p : prio) p = rng.uniform01();
    const auto mis = distributed_mis(g, prio);
    std::size_t mis_size = 0;
    for (bool b : mis.in_mis) mis_size += b;
    const auto r = cds_from_mis(g, mis.in_mis);
    EXPECT_LE(r.gateways, 2 * (mis_size - 1)) << trial;
    EXPECT_TRUE(is_connected_dominating_set(g, r.cds));
  }
}

TEST(MisCds, ComparableToMarkingTrimmedCds) {
  // Both constructions yield valid CDSs; report-style sanity that the
  // MIS-based one is in the same size regime (constant-factor story).
  Rng rng(3);
  int done = 0;
  while (done < 5) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(80, 0.28, rng, &pts);
    if (!is_connected(g)) continue;
    ++done;
    std::vector<double> prio(80);
    for (auto& p : prio) p = rng.uniform01();
    const auto mis = distributed_mis(g, prio);
    const auto from_mis = cds_from_mis(g, mis.in_mis);
    const auto trimmed = trim_cds(g, marking_process(g), prio);
    auto count = [](const std::vector<bool>& s) {
      std::size_t c = 0;
      for (bool b : s) c += b;
      return c;
    };
    EXPECT_TRUE(is_connected_dominating_set(g, from_mis.cds));
    EXPECT_TRUE(is_connected_dominating_set(g, trimmed));
    EXPECT_LE(count(from_mis.cds), 6 * count(trimmed));
  }
}

}  // namespace
}  // namespace structnet
