// Tests for src/sim: the synchronous round engine and the DTN routing
// simulator with its strategy zoo.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/traversal.hpp"
#include "core/generators.hpp"
#include "mobility/social_contacts.hpp"
#include "sim/dtn_routing.hpp"
#include "sim/round_engine.hpp"

namespace structnet {
namespace {

TEST(RoundEngine, DistributedBfsMatchesCentralized) {
  Rng rng(1);
  Graph g = erdos_renyi(50, 0.1, rng);
  for (VertexId v = 0; v + 1 < 50; ++v) g.add_edge_unique(v, v + 1);
  const auto result = distributed_bfs(g, 0);
  const auto oracle = bfs_distances(g, 0);
  EXPECT_EQ(result.distance, oracle);
  EXPECT_GT(result.messages, 0u);
}

TEST(RoundEngine, BfsRoundsTrackEccentricity) {
  const Graph g = path_graph(12);
  const auto result = distributed_bfs(g, 0);
  // Information needs ~eccentricity rounds plus the final quiet round.
  EXPECT_GE(result.rounds, 11u);
  EXPECT_LE(result.rounds, 14u);
}

TEST(RoundEngine, MessageCountsAccumulate) {
  struct S {
    int fired = 0;
  };
  const Graph g = complete_graph(4);
  SyncNetwork<S, int> net(g, std::vector<S>(4));
  net.step([&](VertexId self, S& s, auto, const auto& send) {
    if (s.fired == 0) {
      s.fired = 1;
      for (VertexId w : net.graph().neighbors(self)) send(w, 7);
    }
  });
  EXPECT_EQ(net.messages(), 12u);  // 4 nodes x 3 neighbors
  EXPECT_EQ(net.rounds(), 1u);
  EXPECT_FALSE(net.idle());
  net.step([](VertexId, S&, auto inbox, const auto&) {
    EXPECT_EQ(inbox.size(), 3u);
  });
  EXPECT_TRUE(net.idle());
}

// ---------------------------------------------------------- routing

TemporalGraph chain_trace() {
  // 0 meets 1 at t=1, 1 meets 2 at t=3, 2 meets 3 at t=5;
  // 0 meets 3 directly at t=9.
  TemporalGraph eg(4, 12);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 3);
  eg.add_contact(2, 3, 5);
  eg.add_contact(0, 3, 9);
  return eg;
}

TEST(DtnRouting, DirectWaitsForDestinationContact) {
  const auto trace = chain_trace();
  const auto r = simulate_routing(trace, 0, 3, 0, direct_strategy());
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 9u);
  EXPECT_EQ(r.hops, 1u);
  EXPECT_EQ(r.copies, 1u);
}

TEST(DtnRouting, EpidemicTakesTheRelayChain) {
  const auto trace = chain_trace();
  const auto r = simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 5u);
  EXPECT_EQ(r.hops, 3u);
  EXPECT_GE(r.copies, 3u);
}

TEST(DtnRouting, EpidemicNeverSlowerThanDirect) {
  Rng rng(2);
  SocialTraceParams p;
  p.people = 20;
  p.horizon = 300;
  p.base_rate = 0.05;
  p.decay = 0.5;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = static_cast<VertexId>(rng.index(20));
    const auto d = static_cast<VertexId>(rng.index(20));
    if (s == d) continue;
    const auto de = simulate_routing(trace, s, d, 0, epidemic_strategy(), 0);
    const auto dd = simulate_routing(trace, s, d, 0, direct_strategy());
    if (dd.delivered) {
      ASSERT_TRUE(de.delivered);
      EXPECT_LE(de.delivery_time, dd.delivery_time);
    }
  }
}

TEST(DtnRouting, SprayAndWaitBoundsCopies) {
  Rng rng(3);
  SocialTraceParams p;
  p.people = 30;
  p.horizon = 400;
  p.base_rate = 0.05;
  p.decay = 0.6;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<VertexId>(rng.index(30));
    const auto d = static_cast<VertexId>(rng.index(30));
    if (s == d) continue;
    const auto r =
        simulate_routing(trace, s, d, 0, spray_and_wait_strategy(), 8);
    EXPECT_LE(r.copies, 8u);
  }
}

TEST(DtnRouting, InstantaneousChainWithinUnit) {
  // Both contacts at t=2: the message must chain within the unit.
  TemporalGraph eg(3, 4);
  eg.add_contact(0, 1, 2);
  eg.add_contact(1, 2, 2);
  const auto r = simulate_routing(eg, 0, 2, 0, epidemic_strategy(), 0);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 2u);
}

TEST(DtnRouting, GreedyMetricFollowsGradient) {
  // Metric = distance to node 3 on the chain: 0 hands to 1, 1 to 2, ...
  const auto trace = chain_trace();
  const auto r = simulate_routing(
      trace, 0, 3, 0, greedy_metric_strategy({3.0, 2.0, 1.0, 0.0}));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 5u);
  EXPECT_EQ(r.copies, 1u);  // single copy moved along
}

TEST(DtnRouting, GreedyMetricRefusesUphill) {
  // Inverted metric: node 0 never forwards to 1; only the direct t=9
  // contact delivers.
  const auto trace = chain_trace();
  const auto r = simulate_routing(
      trace, 0, 3, 0, greedy_metric_strategy({0.5, 2.0, 3.0, 0.0}));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 9u);
}

TEST(DtnRouting, StartTimeRespected) {
  const auto trace = chain_trace();
  const auto r = simulate_routing(trace, 0, 3, 2, epidemic_strategy(), 0);
  // Contacts before t0=2 are gone; chain starts too late, direct at 9.
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.delivery_time, 9u);
}

TEST(DtnRouting, UndeliverableReportsFailure) {
  TemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 1);
  const auto r = simulate_routing(eg, 0, 2, 0, epidemic_strategy(), 0);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.delivery_time, kNeverTime);
}

// ------------------------------------------- utility forwarding (TOUR)

TEST(UtilityForwarding, ValueDecreasesOverTime) {
  const std::size_t n = 4;
  std::vector<double> meet(n * n, 0.05);
  UtilityForwarding uf(meet, n, 3, 100.0, 1.0, 80);
  for (VertexId x = 0; x < 3; ++x) {
    for (TimeUnit t = 1; t < 80; t += 13) {
      EXPECT_LE(uf.value(x, t), uf.value(x, t - 1) + 1e-9);
    }
  }
}

TEST(UtilityForwarding, BetterContactRateHigherValue) {
  const std::size_t n = 3;
  std::vector<double> meet(n * n, 0.0);
  // Node 1 meets destination 2 often; node 0 rarely.
  meet[0 * n + 2] = meet[2 * n + 0] = 0.01;
  meet[1 * n + 2] = meet[2 * n + 1] = 0.3;
  meet[0 * n + 1] = meet[1 * n + 0] = 0.05;
  UtilityForwarding uf(meet, n, 2, 50.0, 0.5, 60);
  EXPECT_GT(uf.value(1, 0), uf.value(0, 0));
  // So 1 is in 0's forwarding set...
  const auto set0 = uf.forwarding_set(0, 0);
  EXPECT_NE(std::find(set0.begin(), set0.end(), VertexId{1}), set0.end());
  // ... and 0 is not in 1's.
  const auto set1 = uf.forwarding_set(1, 0);
  EXPECT_EQ(std::find(set1.begin(), set1.end(), VertexId{0}), set1.end());
}

TEST(UtilityForwarding, StrategyBeatsDirectOnUtility) {
  // With a strong relay, utility routing should deliver earlier than
  // direct (thus at higher utility) on average.
  Rng rng(4);
  const std::size_t n = 12;
  std::vector<double> meet(n * n, 0.0);
  auto set_rate = [&](VertexId a, VertexId b, double r) {
    meet[a * n + b] = meet[b * n + a] = r;
  };
  // Hub 1 talks to everyone often; others talk to the hub only.
  for (VertexId v = 0; v < n; ++v) {
    if (v != 1) set_rate(1, v, 0.2);
  }
  set_rate(0, 11, 0.005);  // source barely meets destination
  const TimeUnit horizon = 150;
  UtilityForwarding uf(meet, n, 11, 100.0, 0.5, horizon);

  // Sample traces from the same probabilities.
  double direct_util = 0.0, tour_util = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    TemporalGraph trace(n, horizon);
    for (TimeUnit t = 0; t < horizon; ++t) {
      for (VertexId a = 0; a < n; ++a) {
        for (VertexId b = a + 1; b < n; ++b) {
          if (meet[a * n + b] > 0.0 && rng.bernoulli(meet[a * n + b])) {
            trace.add_contact(a, b, t);
          }
        }
      }
    }
    const auto rd = simulate_routing(trace, 0, 11, 0, direct_strategy());
    const auto rt = simulate_routing(trace, 0, 11, 0, uf.strategy());
    if (rd.delivered) direct_util += uf.utility_at(rd.delivery_time);
    if (rt.delivered) tour_util += uf.utility_at(rt.delivery_time);
  }
  EXPECT_GT(tour_util, direct_util);
}

TEST(UtilityForwarding, ForwardingSetShrinksOverTime) {
  // The paper's claim for time-sensitive utility: "the forwarding set at
  // the same intermediate node shrinks over time." Node 1 is a two-hop
  // relay (rarely meets the destination directly but reaches the strong
  // relay 2): early, the two-hop detour pays; near the deadline it no
  // longer amortizes, and 1 drops out of 0's set while 2 stays.
  const std::size_t n = 4;
  const VertexId dest = 3;
  std::vector<double> meet(n * n, 0.0);
  auto set_rate = [&](VertexId a, VertexId b, double r) {
    meet[a * n + b] = meet[b * n + a] = r;
  };
  set_rate(0, dest, 0.02);
  set_rate(2, dest, 0.3);
  set_rate(1, 2, 0.03);
  set_rate(0, 1, 0.1);
  const TimeUnit horizon = 120;
  UtilityForwarding uf(meet, n, dest, 50.0, 0.5, horizon);

  auto in_set = [&](VertexId c, TimeUnit t) {
    const auto set = uf.forwarding_set(0, t);
    return std::find(set.begin(), set.end(), c) != set.end();
  };
  // Early: both the strong relay and the two-hop relay are worth it.
  EXPECT_TRUE(in_set(2, 0));
  EXPECT_TRUE(in_set(1, 0));
  // Late (utility expires at t = 100): the two-hop relay has dropped out
  // while the strong relay remains -> the set shrank.
  EXPECT_TRUE(in_set(2, 90));
  EXPECT_FALSE(in_set(1, 90));
  // And set size is (weakly) monotone decreasing across the horizon.
  std::size_t prev = uf.forwarding_set(0, 0).size();
  for (TimeUnit t = 10; t <= 90; t += 10) {
    const std::size_t now = uf.forwarding_set(0, t).size();
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(UtilityForwarding, EstimateMeetProbabilities) {
  TemporalGraph eg(3, 100);
  for (TimeUnit t = 0; t < 100; t += 2) eg.add_contact(0, 1, t);  // p = 0.5
  for (TimeUnit t = 0; t < 100; t += 10) eg.add_contact(1, 2, t);  // 0.1
  const auto p = estimate_meet_probabilities(eg);
  EXPECT_NEAR(p[0 * 3 + 1], 0.5, 1e-9);
  EXPECT_NEAR(p[1 * 3 + 2], 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(p[0 * 3 + 2], 0.0);
  EXPECT_DOUBLE_EQ(p[1 * 3 + 0], 0.5);  // symmetric
}

}  // namespace
}  // namespace structnet
