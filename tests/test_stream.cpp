// Streaming engine: versioned dynamic graph, observer registry, replay
// drivers, and — the load-bearing guarantee — incremental == from-scratch
// for every observer after arbitrary churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/generators.hpp"
#include "layering/nsf.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "stream/replay.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

TEST(DynamicGraphTest, AppliesAndRejectsEvents) {
  DynamicGraph g(4);
  EXPECT_TRUE(g.apply(Event::edge_insert(0, 1)).accepted);
  EXPECT_FALSE(g.apply(Event::edge_insert(0, 1)).accepted);  // duplicate
  EXPECT_FALSE(g.apply(Event::edge_insert(2, 2)).accepted);  // self loop
  EXPECT_FALSE(g.apply(Event::edge_insert(0, 9)).accepted);  // out of range
  EXPECT_TRUE(g.apply(Event::edge_delete(1, 0)).accepted);
  EXPECT_FALSE(g.apply(Event::edge_delete(1, 0)).accepted);  // absent
  EXPECT_EQ(g.epoch(), 2u);
  EXPECT_EQ(g.edge_count(), 0u);
}

// Epoch monotonicity is what makes (query fingerprint, epoch) a sound
// result-cache key: every ACCEPTED event must advance the epoch by
// exactly one, every rejected event must leave it untouched, and the
// fast-path accessor must stay in lockstep with the event log.
TEST(DynamicGraphTest, EpochAdvancesExactlyOncePerAcceptedEvent) {
  Rng rng(11);
  DynamicGraph g(8);
  EXPECT_EQ(g.epoch(), 0u);
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    const auto u = static_cast<VertexId>(rng.index(g.vertex_count()));
    const auto v = static_cast<VertexId>(rng.index(g.vertex_count()));
    Event e;
    switch (rng.index(6)) {
      case 0: e = Event::edge_insert(u, v); break;
      case 1: e = Event::edge_delete(u, v); break;
      case 2: e = Event::contact_add(u, v, static_cast<TimeUnit>(i % 16)); break;
      case 3: e = Event::node_leave(u); break;
      case 4: e = Event::node_join(u); break;
      default: e = Event::edge_insert(u, u); break;  // always rejected
    }
    const std::uint64_t before = g.epoch();
    const bool ok = g.apply(e).accepted;
    ASSERT_EQ(g.epoch(), before + (ok ? 1 : 0))
        << "event " << i << (ok ? " accepted" : " rejected");
    accepted += ok ? 1 : 0;
    ASSERT_EQ(g.epoch(), g.log().size());  // fast path == log length
  }
  EXPECT_EQ(g.epoch(), accepted);
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, 400u);  // the mix provokes rejections too
}

TEST(DynamicGraphTest, NodeJoinAssignsAndRevives) {
  DynamicGraph g(2);
  const auto fresh = g.apply(Event::node_join());
  ASSERT_TRUE(fresh.accepted);
  EXPECT_EQ(fresh.vertex, 2u);
  EXPECT_EQ(g.vertex_count(), 3u);

  ASSERT_TRUE(g.apply(Event::edge_insert(0, 2)).accepted);
  const auto leave = g.apply(Event::node_leave(2));
  ASSERT_TRUE(leave.accepted);
  ASSERT_EQ(leave.removed_edges.size(), 1u);
  EXPECT_EQ(leave.removed_edges[0].u, 2u);
  EXPECT_EQ(leave.removed_edges[0].v, 0u);
  EXPECT_FALSE(g.alive(2));
  EXPECT_FALSE(g.apply(Event::edge_insert(0, 2)).accepted);  // dead endpoint
  EXPECT_FALSE(g.apply(Event::node_leave(2)).accepted);      // already dead

  const auto revive = g.apply(Event::node_join(2));
  ASSERT_TRUE(revive.accepted);
  EXPECT_EQ(revive.vertex, 2u);
  EXPECT_TRUE(g.alive(2));
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_FALSE(g.apply(Event::node_join(1)).accepted);  // alive already
}

TEST(DynamicGraphTest, SnapshotsAreStableUnderLaterChurn) {
  Rng rng(1);
  const Graph seed = erdos_renyi(24, 0.2, rng);
  DynamicGraph g(seed);
  const GraphSnapshot at0 = g.snapshot();
  const Graph frozen0 = g.materialize();

  ASSERT_TRUE(g.apply(Event::edge_insert(0, 23)).accepted ||
              g.apply(Event::edge_delete(0, 23)).accepted);
  g.apply(Event::node_leave(5));
  const GraphSnapshot mid = g.snapshot();
  const Graph frozen_mid = g.materialize();
  g.apply(Event::node_join());
  for (VertexId v = 0; v < 10; ++v) g.apply(Event::edge_insert(v, v + 10));

  // Reading an older epoch resets + replays the copy-on-read cache.
  EXPECT_EQ(at0.materialize(), frozen0);
  EXPECT_EQ(mid.materialize(), frozen_mid);
  // And the current epoch still materializes consistently afterwards.
  EXPECT_EQ(g.snapshot().materialize(), g.materialize());
  EXPECT_EQ(at0.epoch(), 0u);
}

TEST(DynamicGraphTest, InterleavedOldNewReadsReplayBoundedWork) {
  // Regression: backward snapshot reads used to reset the rolling cache
  // to epoch 0 and replay the whole history each time, making
  // interleaved old/new reads O(history) per read. The pinned
  // checkpoint makes them O(delta between the two epochs).
  const std::size_t n = 32;
  DynamicGraph g(n);
  Rng rng(9);
  auto churn_until = [&](std::uint64_t target_epoch) {
    while (g.epoch() < target_epoch) {
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      if (u == v) continue;
      g.apply(rng.bernoulli(0.6) ? Event::edge_insert(u, v)
                                 : Event::edge_delete(u, v));
    }
  };
  const std::uint64_t old_epoch = 1000;
  churn_until(old_epoch);
  const GraphSnapshot old_snap = g.snapshot();
  const Graph old_frozen = g.materialize();
  const std::uint64_t new_epoch = 1040;
  churn_until(new_epoch);
  const GraphSnapshot new_snap = g.snapshot();
  const Graph new_frozen = g.materialize();

  const std::uint64_t delta = new_epoch - old_epoch;
  const std::uint64_t before = g.replayed_events();
  const std::size_t rounds = 10;
  for (std::size_t r = 0; r < rounds; ++r) {
    EXPECT_EQ(old_snap.materialize(), old_frozen);
    EXPECT_EQ(new_snap.materialize(), new_frozen);
  }
  const std::uint64_t work = g.replayed_events() - before;
  // First backward read may pay O(old_epoch) once (the pin is still at
  // epoch 0); every later round costs at most one delta replay. Without
  // the checkpoint this loop replays rounds * old_epoch ≈ 10k events.
  EXPECT_LE(work, old_epoch + rounds * delta);
}

TEST(StreamEngineTest, CountsAcceptedAndRejected) {
  StreamEngine engine{DynamicGraph(3)};
  EXPECT_TRUE(engine.apply(Event::edge_insert(0, 1)));
  EXPECT_FALSE(engine.apply(Event::edge_insert(0, 1)));
  const std::vector<Event> batch{Event::edge_insert(1, 2),
                                 Event::edge_insert(1, 2),
                                 Event::edge_delete(0, 1)};
  EXPECT_EQ(engine.apply_batch(batch), 2u);
  EXPECT_EQ(engine.accepted(), 3u);
  EXPECT_EQ(engine.rejected(), 2u);
}

TEST(ReplayTest, SnapshotDiffsReproduceEverySnapshot) {
  Rng rng(3);
  EdgeMarkovianParams params;
  params.nodes = 24;
  params.horizon = 20;
  const TemporalGraph eg = edge_markovian_graph(params, rng);
  const auto events = snapshot_edge_events(eg);

  // Replaying the diff stream step by step must land on each G_t. Split
  // the stream at snapshot boundaries by replaying against a reference.
  DynamicGraph g(params.nodes);
  std::size_t cursor = 0;
  for (TimeUnit t = 0; t < params.horizon; ++t) {
    const Graph want = eg.snapshot(t);
    // Apply events until the live edge count and membership match G_t:
    // the diff stream is ordered per time unit, so apply until the next
    // event would belong to t+1. We detect the boundary by count.
    std::size_t inserts = 0;
    std::size_t deletes = 0;
    if (t == 0) {
      inserts = want.edge_count();
    } else {
      const Graph prev = eg.snapshot(t - 1);
      for (const auto& e : prev.edges()) {
        deletes += !want.has_edge(e.u, e.v);
      }
      for (const auto& e : want.edges()) {
        inserts += !prev.has_edge(e.u, e.v);
      }
    }
    for (std::size_t k = 0; k < inserts + deletes; ++k) {
      ASSERT_TRUE(g.apply(events[cursor++]).accepted);
    }
    const Graph got = g.materialize();
    ASSERT_EQ(got.edge_count(), want.edge_count()) << "t=" << t;
    for (const auto& e : want.edges()) {
      EXPECT_TRUE(got.has_edge(e.u, e.v)) << "t=" << t;
    }
  }
  EXPECT_EQ(cursor, events.size());
}

TEST(ReplayTest, ContactEventsRebuildTheTemporalView) {
  Rng rng(4);
  RandomWaypointParams mob;
  mob.nodes = 20;
  mob.steps = 30;
  const auto trajectory = random_waypoint(mob, rng);
  const auto events = trajectory_events(trajectory, 0.2);

  StreamEngine engine{DynamicGraph(mob.nodes)};
  TemporalViewObserver view(mob.nodes, static_cast<TimeUnit>(mob.steps));
  engine.attach(&view);
  const ReplayStats stats = replay(engine, events, 32);
  EXPECT_EQ(stats.events, events.size());
  EXPECT_EQ(stats.accepted, events.size());
  EXPECT_EQ(stats.batches, (events.size() + 31) / 32);

  const TemporalGraph rebuilt = TemporalGraph::from_contacts(
      mob.nodes, static_cast<TimeUnit>(mob.steps), view.contact_log());
  EXPECT_EQ(view.view(), rebuilt);
  // Same multiset of contacts as the offline extraction.
  auto offline = contacts_from_trajectory(trajectory, 0.2).contacts();
  auto streamed = view.view().contacts();
  EXPECT_EQ(offline.size(), streamed.size());
}

TEST(TemporalViewObserverTest, TrimCacheInvalidatesLazily) {
  StreamEngine engine{DynamicGraph(6)};
  TemporalViewObserver view(6, 10);
  engine.attach(&view);
  engine.apply(Event::contact_add(0, 1, 1));
  engine.apply(Event::contact_add(1, 2, 2));
  engine.apply(Event::contact_add(2, 3, 3));
  EXPECT_FALSE(view.trim_cache_valid());
  (void)view.trimmed();
  EXPECT_TRUE(view.trim_cache_valid());
  engine.apply(Event::contact_add(3, 4, 4));  // mutation invalidates
  EXPECT_FALSE(view.trim_cache_valid());
  (void)view.trimmed();
  EXPECT_TRUE(view.trim_cache_valid());
  engine.apply(Event::edge_insert(0, 1));  // structural: view untouched
  EXPECT_TRUE(view.trim_cache_valid());
  // Out-of-horizon contacts are dropped and counted, not applied.
  engine.apply(Event::contact_add(0, 5, 99));
  EXPECT_EQ(view.out_of_horizon(), 1u);
  EXPECT_TRUE(view.trim_cache_valid());
}

TEST(CoreObserverTest, TracksSimplePromotionsAndDemotions) {
  // Star + an extra edge between two leaves: the triangle is the 2-core.
  StreamEngine engine{DynamicGraph(5)};
  CoreObserver cores;
  engine.attach(&cores);
  for (VertexId leaf = 1; leaf < 5; ++leaf) {
    engine.apply(Event::edge_insert(0, leaf));
  }
  EXPECT_EQ(cores.core(0), 1u);
  EXPECT_EQ(cores.core(1), 1u);
  engine.apply(Event::edge_insert(1, 2));
  EXPECT_EQ(cores.core(0), 2u);
  EXPECT_EQ(cores.core(1), 2u);
  EXPECT_EQ(cores.core(2), 2u);
  EXPECT_EQ(cores.core(3), 1u);
  engine.apply(Event::edge_delete(0, 1));
  EXPECT_EQ(cores.core(0), 1u);
  EXPECT_EQ(cores.core(1), 1u);
  EXPECT_EQ(cores.core(2), 1u);
  // NodeLeave can drop cores by more than one level in one event.
  StreamEngine k5{DynamicGraph(5)};
  CoreObserver k5cores;
  k5.attach(&k5cores);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) k5.apply(Event::edge_insert(u, v));
  }
  EXPECT_EQ(k5cores.core(0), 4u);
  k5.apply(Event::node_leave(4));
  k5.apply(Event::node_leave(3));
  EXPECT_EQ(k5cores.core(0), 2u);
  EXPECT_EQ(k5cores.core(4), 0u);
}

// The headline randomized-churn equivalence: > 1000 mixed events, and
// after every batch each observer's incremental state must equal its own
// from-scratch recompute.
TEST(StreamChurnTest, IncrementalMatchesRecomputeForEveryObserver) {
  Rng rng(42);
  const std::size_t n0 = 48;
  const TimeUnit horizon = 32;
  const Graph seed = erdos_renyi(n0, 4.0 / double(n0), rng);

  StreamEngine engine{DynamicGraph(seed)};
  CoreObserver cores(0.5);
  MisObserver mis(1234);
  TemporalViewObserver view(n0, horizon);
  engine.attach(&cores);
  engine.attach(&mis);
  engine.attach(&view);

  const std::size_t batches = 80;
  const std::size_t batch_size = 16;  // 1280 events total
  std::size_t generated = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<Event> batch;
    while (batch.size() < batch_size) {
      const auto n = engine.graph().vertex_count();
      const auto u = static_cast<VertexId>(rng.index(n));
      const auto v = static_cast<VertexId>(rng.index(n));
      const double dice = rng.uniform01();
      if (dice < 0.30) {
        batch.push_back(Event::edge_insert(u, v));
      } else if (dice < 0.55) {
        batch.push_back(Event::edge_delete(u, v));
      } else if (dice < 0.70) {
        batch.push_back(Event::contact_add(
            u, v, static_cast<TimeUnit>(rng.index(horizon + 8))));
      } else if (dice < 0.80) {
        batch.push_back(Event::contact_relabel(
            u, v, static_cast<TimeUnit>(rng.index(horizon)),
            static_cast<TimeUnit>(rng.index(horizon + 8))));
      } else if (dice < 0.90) {
        batch.push_back(Event::node_leave(u));
      } else if (n < 64) {
        batch.push_back(Event::node_join());
      } else {
        batch.push_back(Event::node_join(u));  // revival attempt
      }
    }
    generated += batch.size();
    engine.apply_batch(batch);

    const DynamicGraph& g = engine.graph();

    // Core tracker: exact core numbers and the NSF membership they feed.
    CoreObserver fresh_cores = cores;
    fresh_cores.recompute(g);
    ASSERT_EQ(cores.cores(), fresh_cores.cores()) << "batch " << b;
    ASSERT_EQ(cores.nsf_members(g), fresh_cores.nsf_members(g))
        << "batch " << b;

    // MIS: the maintained set is a valid greedy MIS and identical to the
    // from-scratch greedy MIS under the same priorities.
    ASSERT_TRUE(mis.mis().verify()) << "batch " << b;
    MisObserver fresh_mis = mis;
    fresh_mis.recompute(g);
    for (VertexId x = 0; x < g.vertex_count(); ++x) {
      if (!g.alive(x)) continue;
      ASSERT_EQ(mis.in_mis(x), fresh_mis.in_mis(x))
          << "batch " << b << " vertex " << x;
    }

    // Temporal view: incremental structure equals a rebuild off the log.
    TemporalViewObserver fresh_view = view;
    fresh_view.recompute(g);
    ASSERT_EQ(view.view(), fresh_view.view()) << "batch " << b;
  }
  EXPECT_GE(generated, 1000u);
  EXPECT_GT(engine.accepted(), 0u);
  EXPECT_GT(engine.rejected(), 0u);  // churn mix provokes rejections too
}

// Safety levels on a faulty hypercube: NodeLeave = fault (localized
// incremental wave), NodeJoin = recovery (restabilization); both must
// match a cube rebuilt from the current fault set after every event.
TEST(StreamChurnTest, SafetyLevelsMatchRecomputeUnderFaultChurn) {
  const std::size_t dims = 6;
  Rng rng(5);
  StreamEngine engine{DynamicGraph(std::size_t{1} << dims)};
  SafetyLevelObserver safety(dims);
  engine.attach(&safety);

  std::size_t events = 0;
  for (std::size_t step = 0; step < 220; ++step) {
    const auto v =
        static_cast<VertexId>(rng.index(engine.graph().vertex_count()));
    const bool leave = engine.graph().alive(v) ? rng.bernoulli(0.7) : false;
    events += engine.apply(leave ? Event::node_leave(v) : Event::node_join(v));

    SafetyLevelObserver fresh = safety;
    fresh.recompute(engine.graph());
    for (std::size_t u = 0; u < safety.cube().node_count(); ++u) {
      ASSERT_EQ(safety.cube().level(u), fresh.cube().level(u))
          << "step " << step << " node " << u;
    }
  }
  EXPECT_GT(events, 100u);
}

TEST(MisObserverTest, JoinLeaveReviveKeepsInvariant) {
  Rng rng(8);
  StreamEngine engine{DynamicGraph(erdos_renyi(20, 0.2, rng))};
  MisObserver mis(99);
  engine.attach(&mis);
  ASSERT_TRUE(engine.apply(Event::node_leave(3)));
  ASSERT_TRUE(engine.apply(Event::node_join()));  // fresh id 20
  ASSERT_TRUE(engine.apply(Event::edge_insert(20, 0)));
  ASSERT_TRUE(engine.apply(Event::node_join(3)));  // revival
  ASSERT_TRUE(engine.apply(Event::edge_insert(3, 20)));
  EXPECT_TRUE(mis.mis().verify());
  EXPECT_EQ(mis.mis().vertex_count(), 21u);
}

// Per-reason rejection taxonomy: every reject is counted under exactly
// one RejectReason and the counts reconcile with rejected().
TEST(StreamEngineTest, CountsRejectionsPerReason) {
  StreamEngine engine{DynamicGraph(std::size_t{3})};
  const auto count = [&](RejectReason why) { return engine.rejected(why); };

  ASSERT_TRUE(engine.apply(Event::edge_insert(0, 1)));
  EXPECT_FALSE(engine.apply(Event::edge_insert(0, 1)));  // duplicate
  EXPECT_FALSE(engine.apply(Event::edge_insert(2, 2)));  // self loop
  EXPECT_FALSE(engine.apply(Event::edge_insert(0, 9)));  // unknown id
  EXPECT_FALSE(engine.apply(Event::edge_delete(1, 2)));  // missing edge
  ASSERT_TRUE(engine.apply(Event::node_leave(2)));
  EXPECT_FALSE(engine.apply(Event::edge_insert(0, 2)));  // dead endpoint
  EXPECT_FALSE(engine.apply(Event::contact_add(2, 0, 5)));  // dead too
  EXPECT_FALSE(engine.apply(Event::node_leave(2)));      // already dead
  EXPECT_FALSE(engine.apply(Event::node_join(0)));       // already alive
  EXPECT_FALSE(engine.apply(Event::node_join(7)));       // gap beyond fresh

  EXPECT_EQ(count(RejectReason::kDuplicateEdge), 1u);
  EXPECT_EQ(count(RejectReason::kSelfLoop), 1u);
  EXPECT_EQ(count(RejectReason::kUnknownVertex), 2u);
  EXPECT_EQ(count(RejectReason::kMissingEdge), 1u);
  EXPECT_EQ(count(RejectReason::kDeadVertex), 3u);
  EXPECT_EQ(count(RejectReason::kAlreadyAlive), 1u);
  EXPECT_EQ(count(RejectReason::kNone), 0u);  // accepted events never count

  std::uint64_t sum = 0;
  for (const std::uint64_t c : engine.reject_counts()) sum += c;
  EXPECT_EQ(sum, engine.rejected());
  EXPECT_EQ(engine.rejected(), 9u);
  EXPECT_EQ(engine.accepted(), 2u);

  EXPECT_EQ(to_string(RejectReason::kNone), "none");
  EXPECT_EQ(to_string(RejectReason::kUnknownVertex), "unknown_vertex");
  EXPECT_EQ(to_string(RejectReason::kDeadVertex), "dead_vertex");
  EXPECT_EQ(to_string(RejectReason::kSelfLoop), "self_loop");
  EXPECT_EQ(to_string(RejectReason::kDuplicateEdge), "duplicate_edge");
  EXPECT_EQ(to_string(RejectReason::kMissingEdge), "missing_edge");
  EXPECT_EQ(to_string(RejectReason::kAlreadyAlive), "already_alive");
}

}  // namespace
}  // namespace structnet
