// Tests for src/remapping: Euclidean greedy routing and its local
// minima, the guaranteed-delivery tree embedding, and the generalized-
// hypercube feature space (Fig. 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algo/components.hpp"
#include "algo/traversal.hpp"
#include "core/generators.hpp"
#include "remapping/feature_space.hpp"
#include "remapping/geo_routing.hpp"
#include "remapping/tree_embedding.hpp"

namespace structnet {
namespace {

TEST(GeoRouting, DeliversOnDenseOpenField) {
  Rng rng(1);
  std::vector<Point2D> pts;
  const Graph g = random_geometric(200, 0.2, rng, &pts);
  const auto mask = largest_component_mask(g);
  // Pick two far apart vertices in the big component.
  VertexId s = kInvalidVertex, t = kInvalidVertex;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!mask[v]) continue;
    if (s == kInvalidVertex || pts[v].x < pts[s].x) s = v;
    if (t == kInvalidVertex || pts[v].x > pts[t].x) t = v;
  }
  const auto r = greedy_route_euclidean(g, pts, s, t);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path.front(), s);
  EXPECT_EQ(r.path.back(), t);
}

TEST(GeoRouting, DistanceStrictlyDecreasesAlongPath) {
  Rng rng(2);
  std::vector<Point2D> pts;
  const Graph g = random_geometric(150, 0.25, rng, &pts);
  const auto r = greedy_route_euclidean(g, pts, 0, 37);
  for (std::size_t i = 1; i < r.path.size(); ++i) {
    EXPECT_LT(squared_distance(pts[r.path[i]], pts[37]),
              squared_distance(pts[r.path[i - 1]], pts[37]));
  }
}

TEST(GeoRouting, UShapedHoleTrapsGreedy) {
  // Fig. 5 (a): traffic crossing the pocket of a U gets stuck. With the
  // pocket opening right and the target to the left, sources due right
  // of the pocket fail often.
  Rng rng(3);
  const auto holes = u_shaped_hole();
  std::vector<Point2D> pts;
  const Graph g = random_geometric_with_holes(500, 0.07, holes, rng, &pts);
  std::size_t stuck = 0, attempts = 0;
  for (VertexId s = 0; s < g.vertex_count(); ++s) {
    if (pts[s].x < 0.55 || pts[s].x > 0.75 || pts[s].y < 0.4 ||
        pts[s].y > 0.6) {
      continue;  // want sources inside/near the pocket mouth
    }
    for (VertexId t = 0; t < g.vertex_count(); ++t) {
      if (pts[t].x > 0.15) continue;  // targets on the far left
      ++attempts;
      stuck += !greedy_route_euclidean(g, pts, s, t).delivered;
      if (attempts >= 50) break;
    }
    if (attempts >= 50) break;
  }
  ASSERT_GT(attempts, 10u);
  EXPECT_GT(stuck, attempts / 4);  // the hole really bites
}

TEST(GeoRouting, HoleFreePointsAvoidHoles) {
  Rng rng(4);
  const auto holes = u_shaped_hole();
  std::vector<Point2D> pts;
  random_geometric_with_holes(300, 0.1, holes, rng, &pts);
  for (const auto& p : pts) {
    for (const auto& h : holes) EXPECT_FALSE(h.contains(p));
  }
}

TEST(TreeEmbedding, TreeDistanceMatchesBfsOnTree) {
  // On a tree, embedding distance == exact graph distance.
  Rng rng(5);
  Graph g(40);
  for (VertexId v = 1; v < 40; ++v) {
    g.add_edge(v, static_cast<VertexId>(rng.index(v)));
  }
  const TreeEmbedding emb(g, 0);
  for (VertexId s = 0; s < 40; s += 7) {
    const auto d = bfs_distances(g, s);
    for (VertexId t = 0; t < 40; ++t) {
      EXPECT_EQ(emb.tree_distance(s, t), d[t]) << s << "->" << t;
    }
  }
}

TEST(TreeEmbedding, GreedyAlwaysDeliversWhereEuclideanFails) {
  // Fig. 5 (b)'s promise: after remapping, greedy always succeeds.
  Rng rng(6);
  const auto holes = u_shaped_hole();
  std::vector<Point2D> pts;
  Graph g = random_geometric_with_holes(400, 0.08, holes, rng, &pts);
  const auto mask = largest_component_mask(g);
  std::vector<VertexId> map;
  const Graph comp = g.induced_subgraph(mask, &map);
  ASSERT_TRUE(is_connected(comp));
  const TreeEmbedding emb(comp, 0);
  Rng pick(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(comp.vertex_count()));
    const auto t = static_cast<VertexId>(pick.index(comp.vertex_count()));
    const auto r = emb.greedy_route(comp, s, t);
    EXPECT_TRUE(r.delivered) << s << "->" << t;
  }
}

TEST(TreeEmbedding, ChordsShortcutTreeRoutes) {
  // A cycle: the tree is a path, but greedy over graph neighbors may use
  // the closing chord.
  const Graph g = cycle_graph(10);
  const TreeEmbedding emb(g, 0);
  const auto r = emb.greedy_route(g, 9, 1);
  ASSERT_TRUE(r.delivered);
  EXPECT_LE(r.path.size(), 4u);  // 9 -> 0 -> 1 (tree) or shorter
}

TEST(FeatureSpace, NodeProfileRoundTrip) {
  const FeatureSpace fs({2, 2, 3});
  EXPECT_EQ(fs.node_count(), 12u);
  for (std::size_t v = 0; v < fs.node_count(); ++v) {
    EXPECT_EQ(fs.node_of(fs.profile_of(v)), v);
  }
}

TEST(FeatureSpace, ShortestPathLengthEqualsFeatureDistance) {
  const FeatureSpace fs({2, 2, 3});
  const SocialProfile a{0, 0, 0};
  const SocialProfile b{1, 0, 2};
  const auto path = fs.shortest_path(a, b);
  EXPECT_EQ(path.size(), fs.distance(a, b) + 1);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), b);
  // Consecutive profiles differ in exactly one feature.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(feature_distance(path[i - 1], path[i]), 1u);
  }
}

TEST(FeatureSpace, ShortestPathMatchesHypercubeBfs) {
  const std::vector<std::size_t> radices{2, 3, 2};
  const FeatureSpace fs(radices);
  const Graph cube = fs.hypercube();
  for (std::size_t a = 0; a < fs.node_count(); ++a) {
    const auto d = bfs_distances(cube, static_cast<VertexId>(a));
    for (std::size_t b = 0; b < fs.node_count(); ++b) {
      EXPECT_EQ(d[b], fs.distance(fs.profile_of(a), fs.profile_of(b)));
    }
  }
}

TEST(FeatureSpace, DisjointPathsAreDisjointAndShortest) {
  const FeatureSpace fs({3, 3, 4, 2});
  const SocialProfile a{0, 1, 2, 0};
  const SocialProfile b{2, 2, 3, 1};  // distance 4
  const auto paths = fs.disjoint_paths(a, b);
  ASSERT_EQ(paths.size(), 4u);
  std::set<SocialProfile> interior_seen;
  for (const auto& path : paths) {
    EXPECT_EQ(path.size(), 5u);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(interior_seen.insert(path[i]).second)
          << "shared interior node";
    }
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_EQ(feature_distance(path[i - 1], path[i]), 1u);
    }
  }
}

TEST(FeatureSpace, DisjointPathsDegenerate) {
  const FeatureSpace fs({2, 2});
  const SocialProfile a{0, 0};
  EXPECT_TRUE(fs.disjoint_paths(a, a).empty());
  const auto one = fs.disjoint_paths(a, {1, 0});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 2u);
}

TEST(FeatureSpace, Fig6CubeIsTheGeneralizedHypercube) {
  // Fig. 6: gender (2) x occupation (2) x nationality (3).
  const FeatureSpace fs({2, 2, 3});
  const Graph cube = fs.hypercube();
  EXPECT_EQ(cube.vertex_count(), 12u);
  // Strong links = one feature apart.
  for (const auto& e : cube.edges()) {
    EXPECT_EQ(
        feature_distance(fs.profile_of(e.u), fs.profile_of(e.v)), 1u);
  }
}

}  // namespace
}  // namespace structnet
