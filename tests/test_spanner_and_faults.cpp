// Tests for greedy spanners (trimming) and failure injection in the DTN
// simulator (TTL expiry, lossy handovers).
#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "core/generators.hpp"
#include "mobility/social_contacts.hpp"
#include "sim/dtn_routing.hpp"
#include "trimming/spanner.hpp"

namespace structnet {
namespace {

// ------------------------------------------------------------ spanner

TEST(Spanner, KeepsAllEdgesOfATree) {
  // A tree has no redundancy: every edge survives any stretch.
  Rng rng(1);
  Graph g(20);
  std::vector<double> w;
  for (VertexId v = 1; v < 20; ++v) {
    g.add_edge(v, static_cast<VertexId>(rng.index(v)));
    w.push_back(rng.uniform(0.1, 1.0));
  }
  const auto kept = greedy_spanner(g, w, 2.0);
  EXPECT_EQ(kept.size(), g.edge_count());
}

TEST(Spanner, SparsifiesCompleteGraph) {
  Rng rng(2);
  const Graph g = complete_graph(24);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.5, 1.5);
  const auto kept = greedy_spanner(g, w, 3.0);
  EXPECT_LT(kept.size(), g.edge_count() / 2);
}

TEST(Spanner, PropertyHoldsOnRandomGraphs) {
  Rng rng(3);
  for (double stretch : {1.5, 2.0, 4.0}) {
    Graph g = erdos_renyi(40, 0.3, rng);
    for (VertexId v = 0; v + 1 < 40; ++v) g.add_edge_unique(v, v + 1);
    std::vector<double> w(g.edge_count());
    for (auto& x : w) x = rng.uniform(0.1, 2.0);
    const auto kept = greedy_spanner(g, w, stretch);
    const Graph sub = subgraph_of_edges(g, kept);
    std::vector<double> sub_w;
    for (EdgeId e : kept) sub_w.push_back(w[e]);
    EXPECT_TRUE(is_spanner(g, w, sub, sub_w, stretch)) << stretch;
    EXPECT_TRUE(is_connected(sub));
  }
}

TEST(Spanner, LargerStretchKeepsFewerEdges) {
  Rng rng(4);
  Graph g = erdos_renyi(40, 0.4, rng);
  for (VertexId v = 0; v + 1 < 40; ++v) g.add_edge_unique(v, v + 1);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.1, 2.0);
  const auto tight = greedy_spanner(g, w, 1.2);
  const auto loose = greedy_spanner(g, w, 5.0);
  EXPECT_GT(tight.size(), loose.size());
}

TEST(Spanner, VerifierCatchesViolations) {
  // A star minus its center edges can't 1.5-span a triangle.
  Graph g = complete_graph(3);
  const std::vector<double> w{1.0, 1.0, 1.0};
  Graph sub(3);
  sub.add_edge(0, 1);
  sub.add_edge(1, 2);
  const std::vector<double> sub_w{1.0, 1.0};
  // d_sub(0,2) = 2 > 1.5 * 1.
  EXPECT_FALSE(is_spanner(g, w, sub, sub_w, 1.5));
  EXPECT_TRUE(is_spanner(g, w, sub, sub_w, 2.0));
}

// ------------------------------------------------------ fault injection

TemporalGraph fault_chain() {
  TemporalGraph eg(4, 20);
  eg.add_contact(0, 1, 2);
  eg.add_contact(1, 2, 5);
  eg.add_contact(2, 3, 9);
  return eg;
}

TEST(FaultInjection, TtlExpiresMessages) {
  const auto trace = fault_chain();
  SimulationFaults ok;
  ok.ttl = 15;
  EXPECT_TRUE(
      simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0, ok).delivered);
  SimulationFaults tight;
  tight.ttl = 9;  // delivery happens AT t=9, needs ttl > 9
  EXPECT_FALSE(simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0, tight)
                   .delivered);
  SimulationFaults just;
  just.ttl = 10;
  EXPECT_TRUE(simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0, just)
                  .delivered);
}

TEST(FaultInjection, TtlRelativeToStart) {
  const auto trace = fault_chain();
  SimulationFaults f;
  f.ttl = 8;
  // Starting at 2: deadline 10, delivery at 9 fits.
  EXPECT_TRUE(
      simulate_routing(trace, 0, 3, 2, epidemic_strategy(), 0, f).delivered);
}

TEST(FaultInjection, TotalLossBlocksEverything) {
  const auto trace = fault_chain();
  SimulationFaults f;
  f.loss_probability = 1.0;
  EXPECT_FALSE(
      simulate_routing(trace, 0, 3, 0, epidemic_strategy(), 0, f).delivered);
}

TEST(FaultInjection, LossDegradesDeliveryMonotonically) {
  Rng rng(5);
  SocialTraceParams p;
  p.people = 25;
  p.horizon = 50;  // short horizon: losses cannot be retried forever
  p.base_rate = 0.06;
  p.decay = 0.6;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  auto delivery_rate = [&](double loss) {
    std::size_t ok = 0, total = 0;
    Rng pick(7);
    for (int trial = 0; trial < 60; ++trial) {
      const auto s = static_cast<VertexId>(pick.index(p.people));
      const auto d = static_cast<VertexId>(pick.index(p.people));
      if (s == d) continue;
      SimulationFaults f;
      f.loss_probability = loss;
      f.loss_seed = static_cast<std::uint64_t>(trial);
      ++total;
      ok += simulate_routing(trace, s, d, 0, epidemic_strategy(), 0, f)
                .delivered;
    }
    return static_cast<double>(ok) / static_cast<double>(total);
  };
  const double r0 = delivery_rate(0.0);
  const double r50 = delivery_rate(0.5);
  const double r95 = delivery_rate(0.95);
  EXPECT_GE(r0, r50);
  EXPECT_GE(r50, r95);
  EXPECT_GT(r0, r95);  // strict degradation overall
}

TEST(FaultInjection, EpidemicToleratesLossBetterThanSingleCopy) {
  // Redundant copies mask lossy handovers; a single moving copy just
  // stalls (it retries at later contacts but loses chain opportunities).
  Rng rng(6);
  SocialTraceParams p;
  p.people = 25;
  p.horizon = 150;
  p.base_rate = 0.1;
  p.decay = 0.5;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  std::size_t epi = 0, direct = 0, total = 0;
  Rng pick(8);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.people));
    const auto d = static_cast<VertexId>(pick.index(p.people));
    if (s == d) continue;
    SimulationFaults f;
    f.loss_probability = 0.6;
    f.loss_seed = static_cast<std::uint64_t>(trial);
    ++total;
    SimulationFaults f2 = f;
    epi += simulate_routing(trace, s, d, 0, epidemic_strategy(), 0, f)
               .delivered;
    direct +=
        simulate_routing(trace, s, d, 0, direct_strategy(), 1, f2).delivered;
  }
  EXPECT_GE(epi, direct);
}

}  // namespace
}  // namespace structnet
