// Cross-module integration tests: full pipelines that mirror the paper's
// narratives — mobility to EG to trimming; social features to F-space
// routing; scale-free graphs to NSF pub/sub; sessions to interval
// structures.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/chordal.hpp"
#include "algo/components.hpp"
#include "centrality/centrality.hpp"
#include "intersection/interval_graph.hpp"
#include "intersection/sessions.hpp"
#include "layering/nsf.hpp"
#include "layering/pubsub.hpp"
#include "labeling/static_labels.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/mobility_models.hpp"
#include "mobility/social_contacts.hpp"
#include "remapping/feature_space.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/journeys.hpp"
#include "trimming/eg_trimming.hpp"

namespace structnet {
namespace {

TEST(Integration, MobilityToTemporalToTrimmingPipeline) {
  // RWP trace -> EG -> label trimming -> identical earliest-arrival
  // matrix; the full Sec. II-B + III-A pipeline.
  Rng rng(1);
  RandomWaypointParams p;
  p.nodes = 12;
  p.steps = 20;
  const auto traj = random_waypoint(p, rng);
  const auto eg = contacts_from_trajectory(traj, 0.35);
  const auto trimmed = trim_labels(eg);
  for (VertexId s = 0; s < p.nodes; ++s) {
    EXPECT_EQ(earliest_arrival(eg, s, 0).completion,
              earliest_arrival(trimmed.trimmed, s, 0).completion);
  }
}

TEST(Integration, SocialFeatureRoutingBeatsDirectOnSyntheticTraces) {
  // The Fig. 6 story end to end: generate contacts that decay with
  // feature distance, then route in M-space guided by F-space greedy
  // (feature distance to the destination as the metric).
  Rng rng(2);
  SocialTraceParams p;
  p.people = 40;
  p.horizon = 600;
  p.base_rate = 0.15;
  p.decay = 0.25;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);

  std::size_t fspace_wins = 0, comparisons = 0;
  double fspace_delay = 0.0, direct_delay = 0.0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<VertexId>(rng.index(p.people));
    const auto d = static_cast<VertexId>(rng.index(p.people));
    if (s == d || feature_distance(profiles[s], profiles[d]) < 2) continue;
    std::vector<double> metric(p.people);
    for (VertexId v = 0; v < p.people; ++v) {
      metric[v] =
          static_cast<double>(feature_distance(profiles[v], profiles[d]));
    }
    const auto rf =
        simulate_routing(trace, s, d, 0, greedy_metric_strategy(metric));
    const auto rd = simulate_routing(trace, s, d, 0, direct_strategy());
    if (!rf.delivered || !rd.delivered) continue;
    ++comparisons;
    fspace_delay += rf.delivery_time;
    direct_delay += rd.delivery_time;
    fspace_wins += rf.delivery_time <= rd.delivery_time;
  }
  ASSERT_GT(comparisons, 10u);
  EXPECT_LT(fspace_delay, direct_delay);
  EXPECT_GT(static_cast<double>(fspace_wins),
            0.6 * static_cast<double>(comparisons));
}

TEST(Integration, NsfLevelsDrivePubSubOnScaleFreeGraph) {
  // BA graph -> NSF levels -> pub/sub; average delivery hops must be a
  // tiny fraction of flooding cost.
  Rng rng(3);
  const Graph g = barabasi_albert(500, 2, rng);
  const auto labeling = nsf_level_labels(g);
  HierarchicalPubSub ps(g, labeling.level);
  double hops = 0.0;
  int delivered = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<VertexId>(rng.index(500));
    const auto b = static_cast<VertexId>(rng.index(500));
    const auto d = ps.deliver(a, b);
    EXPECT_TRUE(d.delivered);
    hops += static_cast<double>(d.hops);
    ++delivered;
  }
  EXPECT_LT(hops / delivered,
            0.05 * static_cast<double>(ps.flooding_cost()));
}

TEST(Integration, SessionsToIntervalStructuresAreConsistent) {
  // Session workload -> flattened interval graph is chordal; per-user
  // multiple-interval graph is a supergraph of any single-session slice.
  Rng rng(4);
  SessionModel model;
  model.users = 30;
  model.sessions_per_user = 2;
  model.horizon = 200.0;
  model.mean_duration = 8.0;
  const auto sessions = generate_sessions(model, rng);
  const auto flat = flatten_sessions(sessions);
  EXPECT_TRUE(is_chordal(interval_graph(flat)));

  const Graph multi = multiple_interval_graph(sessions);
  // Any intersecting pair of single sessions implies the users' edge.
  for (std::size_t u = 0; u < model.users; ++u) {
    for (std::size_t v = u + 1; v < model.users; ++v) {
      bool intersects = false;
      for (const auto& a : sessions[u]) {
        for (const auto& b : sessions[v]) intersects |= a.intersects(b);
      }
      EXPECT_EQ(multi.has_edge(static_cast<VertexId>(u),
                               static_cast<VertexId>(v)),
                intersects);
    }
  }
}

TEST(Integration, CentralityPrioritiesImproveCdsSize) {
  // Priorities are pluggable (Sec. III-A: "assign priority, say using
  // node degree"): degree-based priorities should trim the CDS at least
  // as well as adversarial (inverse-degree) priorities on average.
  Rng rng(5);
  std::size_t degree_total = 0, inverse_total = 0;
  for (int trial = 0; trial < 14; ++trial) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(80, 0.25, rng, &pts);
    if (!is_connected(g)) continue;  // CDS is a per-component notion
    const auto black = marking_process(g);
    const auto deg = degree_centrality(g);
    std::vector<double> inv(deg.size());
    for (std::size_t v = 0; v < deg.size(); ++v) {
      // strictly monotone inversions keep priorities distinct via id
      inv[v] = -deg[v] + 1e-6 * static_cast<double>(v);
    }
    std::vector<double> degp(deg.size());
    for (std::size_t v = 0; v < deg.size(); ++v) {
      degp[v] = deg[v] + 1e-6 * static_cast<double>(v);
    }
    const auto by_degree = trim_cds(g, black, degp);
    const auto by_inverse = trim_cds(g, black, inv);
    degree_total += std::count(by_degree.begin(), by_degree.end(), true);
    inverse_total += std::count(by_inverse.begin(), by_inverse.end(), true);
    EXPECT_TRUE(is_connected_dominating_set(g, by_degree));
    EXPECT_TRUE(is_connected_dominating_set(g, by_inverse));
  }
  EXPECT_LE(degree_total, inverse_total + 8);
}

TEST(Integration, CommunityMobilityYieldsTrimmableEgs) {
  // Clustered traces carry redundancy; label trimming should remove a
  // visible fraction of labels while preserving all journeys.
  Rng rng(6);
  CommunityMobilityParams p;
  p.nodes = 14;
  p.steps = 15;
  p.communities = 2;
  const auto traj = community_mobility(p, rng, nullptr);
  const auto eg = contacts_from_trajectory(traj, 0.4);
  std::size_t labels = 0;
  for (const auto& e : eg.edges()) labels += e.labels.size();
  if (labels < 20) GTEST_SKIP() << "trace too sparse to be interesting";
  const auto trimmed = trim_labels(eg);
  EXPECT_GT(trimmed.removed_labels, 0u);
  const std::vector<bool> alive(p.nodes, true);
  EXPECT_TRUE(preserves_reachability(eg, trimmed.trimmed, alive, true));
}

TEST(Integration, EpidemicMatchesEarliestArrivalOracle) {
  // Epidemic routing IS a journey search: its delivery time must equal
  // the temporal-graph earliest completion time.
  Rng rng(7);
  SocialTraceParams p;
  p.people = 25;
  p.horizon = 200;
  p.base_rate = 0.08;
  p.decay = 0.5;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  for (int trial = 0; trial < 25; ++trial) {
    const auto s = static_cast<VertexId>(rng.index(p.people));
    const auto d = static_cast<VertexId>(rng.index(p.people));
    if (s == d) continue;
    const auto sim = simulate_routing(trace, s, d, 0, epidemic_strategy(), 0);
    const auto oracle = earliest_arrival(trace, s, 0).completion[d];
    if (oracle == kNeverTime) {
      EXPECT_FALSE(sim.delivered);
    } else {
      ASSERT_TRUE(sim.delivered);
      EXPECT_EQ(sim.delivery_time, oracle);
    }
  }
}

}  // namespace
}  // namespace structnet
