// Tests for src/algo: traversal, components, shortest paths, MST,
// max-flow (Dinic vs MPM cross-check), chordality and interval
// recognition.
#include <gtest/gtest.h>

#include <limits>

#include "algo/chordal.hpp"
#include "algo/components.hpp"
#include "algo/maxflow.hpp"
#include "algo/mst.hpp"
#include "algo/shortest_paths.hpp"
#include "algo/traversal.hpp"
#include "core/generators.hpp"

namespace structnet {
namespace {

constexpr auto kU32Max = std::numeric_limits<std::uint32_t>::max();

TEST(Traversal, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Traversal, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kU32Max);
}

TEST(Traversal, BfsTreeParents) {
  const Graph g = path_graph(4);
  const auto p = bfs_tree(g, 0);
  EXPECT_EQ(p[0], kInvalidVertex);
  EXPECT_EQ(p[1], 0u);
  EXPECT_EQ(p[2], 1u);
  EXPECT_EQ(p[3], 2u);
}

TEST(Traversal, KHopNeighborhood) {
  const Graph g = path_graph(7);
  const auto nb = k_hop_neighborhood(g, 3, 2);
  EXPECT_EQ(nb, (std::vector<VertexId>{1, 2, 3, 4, 5}));
}

TEST(Traversal, DiameterOfCycleAndGrid) {
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(grid_graph(3, 3)), 4u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
}

TEST(Traversal, DfsPreorderVisitsAllReachable) {
  const Graph g = grid_graph(4, 4);
  const auto order = dfs_preorder(g, 0);
  EXPECT_EQ(order.size(), 16u);
  EXPECT_EQ(order[0], 0u);
}

TEST(Components, CountsAndLabels) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(component_count(g), 3u);
  EXPECT_FALSE(is_connected(g));
  const auto label = connected_components(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[4]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[5], label[0]);
}

TEST(Components, LargestComponentMask) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto mask = largest_component_mask(g);
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[2]);
  EXPECT_TRUE(mask[3]);
  EXPECT_TRUE(mask[4]);
}

TEST(Components, SccOnDirectedCycleAndChain) {
  Digraph g(5);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);  // cycle {0,1,2}
  g.add_arc(2, 3);
  g.add_arc(3, 4);
  const auto scc = strongly_connected_components(g);
  EXPECT_EQ(scc[0], scc[1]);
  EXPECT_EQ(scc[1], scc[2]);
  EXPECT_NE(scc[2], scc[3]);
  EXPECT_NE(scc[3], scc[4]);
  const auto mask = largest_scc_mask(g);
  EXPECT_TRUE(mask[0] && mask[1] && mask[2]);
  EXPECT_FALSE(mask[3] || mask[4]);
}

TEST(ShortestPaths, DijkstraOnWeightedTriangle) {
  Graph g(3);
  g.add_edge(0, 1);  // weight 5
  g.add_edge(1, 2);  // weight 1
  g.add_edge(0, 2);  // weight 10
  const std::vector<double> w{5.0, 1.0, 10.0};
  const auto sp = dijkstra(g, w, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 6.0);
  EXPECT_EQ(extract_path(sp.parent, 0, 2),
            (std::vector<VertexId>{0, 1, 2}));
}

TEST(ShortestPaths, DijkstraAgreesWithBfsOnUnitWeights) {
  Rng rng(5);
  const Graph g = erdos_renyi(60, 0.1, rng);
  const std::vector<double> w(g.edge_count(), 1.0);
  const auto sp = dijkstra(g, w, 0);
  const auto bfs = unweighted_shortest_paths(g, 0);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_DOUBLE_EQ(sp.distance[v], bfs.distance[v]);
  }
}

TEST(ShortestPaths, BellmanFordMatchesDijkstra) {
  Rng rng(6);
  const Graph g = erdos_renyi(40, 0.15, rng);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.1, 2.0);
  const auto bf = bellman_ford(g, w, 0);
  const auto dj = dijkstra(g, w, 0);
  EXPECT_FALSE(bf.negative_cycle);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (dj.distance[v] == kInfDistance) {
      EXPECT_EQ(bf.paths.distance[v], kInfDistance);
    } else {
      EXPECT_NEAR(bf.paths.distance[v], dj.distance[v], 1e-9);
    }
  }
}

TEST(ShortestPaths, BellmanFordRoundsBoundedByEccentricity) {
  const Graph g = path_graph(20);
  const std::vector<double> w(g.edge_count(), 1.0);
  const auto bf = bellman_ford(g, w, 0);
  EXPECT_EQ(bf.rounds, 19u);  // information travels one hop per round
}

TEST(ShortestPaths, NegativeCycleDetected) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  // Undirected negative edge = negative cycle of length 2.
  const std::vector<double> w{1.0, -5.0, 1.0};
  const auto bf = bellman_ford(g, w, 0);
  EXPECT_TRUE(bf.negative_cycle);
}

TEST(ShortestPaths, ExtractPathUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto sp = unweighted_shortest_paths(g, 0);
  EXPECT_TRUE(extract_path(sp.parent, 0, 2).empty());
}

TEST(Mst, UnionFindBasics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.set_count(), 4u);
}

TEST(Mst, KruskalKnownTree) {
  Graph g(4);
  g.add_edge(0, 1);  // 1
  g.add_edge(1, 2);  // 2
  g.add_edge(2, 3);  // 3
  g.add_edge(0, 3);  // 10
  g.add_edge(0, 2);  // 4
  const std::vector<double> w{1, 2, 3, 10, 4};
  const auto tree = kruskal_mst(g, w);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_DOUBLE_EQ(total_weight(tree, w), 6.0);
}

TEST(Mst, PrimMatchesKruskalWeight) {
  Rng rng(7);
  Graph g = erdos_renyi(50, 0.2, rng);
  // Ensure connectivity by adding a path.
  for (VertexId v = 0; v + 1 < 50; ++v) g.add_edge_unique(v, v + 1);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.0, 1.0);
  const auto k = kruskal_mst(g, w);
  const auto p = prim_mst(g, w, 0);
  EXPECT_EQ(k.size(), 49u);
  EXPECT_EQ(p.size(), 49u);
  EXPECT_NEAR(total_weight(k, w), total_weight(p, w), 1e-9);
}

TEST(MaxFlow, KnownSmallNetwork) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 3);
  net.add_arc(0, 2, 2);
  net.add_arc(1, 2, 5);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 3);
  EXPECT_EQ(net.max_flow_dinic(0, 3), 5);
  net.reset_flow();
  EXPECT_EQ(net.max_flow_mpm(0, 3), 5);
}

TEST(MaxFlow, MinCutMatchesFlow) {
  FlowNetwork net(4);
  const auto a = net.add_arc(0, 1, 4);
  net.add_arc(0, 2, 3);
  net.add_arc(1, 3, 2);
  net.add_arc(2, 3, 5);
  const auto flow = net.max_flow_dinic(0, 3);
  EXPECT_EQ(flow, 5);
  const auto cut = net.min_cut_source_side(0);
  EXPECT_TRUE(cut[0]);
  EXPECT_FALSE(cut[3]);
  EXPECT_LE(net.flow_on(a), 4);
}

TEST(MaxFlow, MpmAgreesWithDinicOnRandomNetworks) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.index(12);
    FlowNetwork dinic(n), mpm(n);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.3)) {
          const auto cap = static_cast<std::int64_t>(rng.uniform_u64(0, 10));
          dinic.add_arc(u, v, cap);
          mpm.add_arc(u, v, cap);
        }
      }
    }
    const VertexId s = 0;
    const auto t = static_cast<VertexId>(n - 1);
    EXPECT_EQ(dinic.max_flow_dinic(s, t), mpm.max_flow_mpm(s, t))
        << "trial " << trial;
  }
}

TEST(MaxFlow, ResidualLevelsFormDag) {
  FlowNetwork net(5);
  net.add_arc(0, 1, 2);
  net.add_arc(1, 2, 2);
  net.add_arc(2, 3, 2);
  net.add_arc(3, 4, 2);
  const auto levels = net.residual_levels(0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(levels[v], v);
}

TEST(Chordal, PathsAndTreesAreChordal) {
  EXPECT_TRUE(is_chordal(path_graph(8)));
  EXPECT_TRUE(is_chordal(star_graph(7)));
  EXPECT_TRUE(is_chordal(complete_graph(6)));
}

TEST(Chordal, C4IsNotChordal) {
  EXPECT_FALSE(is_chordal(cycle_graph(4)));
  EXPECT_FALSE(is_chordal(cycle_graph(6)));
  EXPECT_TRUE(is_chordal(cycle_graph(3)));
}

TEST(Chordal, ChordedCycleIsChordal) {
  Graph g = cycle_graph(4);
  g.add_edge(0, 2);
  EXPECT_TRUE(is_chordal(g));
}

TEST(Chordal, PeoVerifierRejectsBadOrder) {
  // C4 has no PEO at all.
  const Graph g = cycle_graph(4);
  EXPECT_FALSE(is_perfect_elimination_ordering(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_perfect_elimination_ordering(g, {0, 2, 1, 3}));
}

TEST(Chordal, MaximalCliquesOfTriangleChain) {
  // Two triangles sharing an edge: cliques {0,1,2} and {1,2,3}.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  auto cliques = chordal_maximal_cliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  std::sort(cliques.begin(), cliques.end());
  EXPECT_EQ(cliques[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(cliques[1], (std::vector<VertexId>{1, 2, 3}));
}

TEST(Chordal, IntervalRecognitionAcceptsPathsRejectsCycles) {
  EXPECT_EQ(is_interval_graph(path_graph(6)), std::optional<bool>(true));
  EXPECT_EQ(is_interval_graph(cycle_graph(5)), std::optional<bool>(false));
  EXPECT_EQ(is_interval_graph(complete_graph(4)), std::optional<bool>(true));
}

TEST(Chordal, StarIsInterval) {
  // K_{1,n} is an interval graph (center spans all leaves).
  EXPECT_EQ(is_interval_graph(star_graph(6)), std::optional<bool>(true));
}

TEST(Chordal, ChordalButNotInterval) {
  // The "bull with a long horn"? Use the classic non-interval chordal
  // graph: a star with three subdivided legs is NOT chordal; instead use
  // the trampoline-free witness: three triangles glued to a central
  // triangle pairwise ("3-sun" / S3) is chordal but not interval.
  Graph g(6);
  // central triangle {0,1,2}
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  // corner 3 adjacent to 0,1; corner 4 adjacent to 1,2; corner 5 to 2,0.
  g.add_edge(3, 0);
  g.add_edge(3, 1);
  g.add_edge(4, 1);
  g.add_edge(4, 2);
  g.add_edge(5, 2);
  g.add_edge(5, 0);
  ASSERT_TRUE(is_chordal(g));
  EXPECT_EQ(is_interval_graph(g), std::optional<bool>(false));
}

}  // namespace
}  // namespace structnet
