// Second parameterized property suite: weighted-journey cost oracle,
// spanner stretch sweeps, and edge-Markovian density laws.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "core/generators.hpp"
#include "mobility/edge_markovian.hpp"
#include "temporal/weighted.hpp"
#include "trimming/spanner.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

// ---------------------------------------- min-delay brute-force oracle

void enumerate_cost(const WeightedTemporalGraph& eg, VertexId cur, VertexId d,
                    TimeUnit min_label, double cost, std::vector<bool>& visited,
                    double& best) {
  if (cur == d) {
    best = std::min(best, cost);
    return;
  }
  if (cost >= best) return;  // positive weights: prune dominated prefixes
  for (EdgeId e : eg.unweighted().incident_edges(cur)) {
    const VertexId next = eg.unweighted().other_endpoint(e, cur);
    if (visited[next]) continue;
    for (TimeUnit t : eg.unweighted().edge(e).labels) {
      if (t < min_label) continue;
      visited[next] = true;
      const double w = *eg.weight_of(cur, next, t);
      enumerate_cost(eg, next, d, t, cost + w, visited, best);
      visited[next] = false;
    }
  }
}

class WeightedOracle : public ::testing::TestWithParam<int> {};

TEST_P(WeightedOracle, MinDelayMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  WeightedTemporalGraph eg(6, 8);
  for (int c = 0; c < 12; ++c) {
    const auto u = static_cast<VertexId>(rng.index(6));
    const auto v = static_cast<VertexId>(rng.index(6));
    if (u == v) continue;
    eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(8)),
                   rng.uniform(0.1, 1.0));
  }
  for (VertexId d = 1; d < 6; ++d) {
    double oracle = std::numeric_limits<double>::infinity();
    std::vector<bool> visited(6, false);
    visited[0] = true;
    enumerate_cost(eg, 0, d, 0, 0.0, visited, oracle);
    const auto md = min_delay_journey(eg, 0, d, 0);
    if (std::isinf(oracle)) {
      EXPECT_FALSE(md.has_value());
    } else {
      ASSERT_TRUE(md.has_value()) << "d=" << d;
      EXPECT_NEAR(md->value, oracle, 1e-9) << "d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedOracle, ::testing::Range(1, 21));

// ------------------------------------------------- spanner stretch sweep

class SpannerSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SpannerSweep, PropertyAndMonotonicity) {
  const auto [seed, stretch] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  Graph g = erdos_renyi(30, 0.25, rng);
  for (VertexId v = 0; v + 1 < 30; ++v) g.add_edge_unique(v, v + 1);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.1, 2.0);
  const auto kept = greedy_spanner(g, w, stretch);
  const Graph sub = subgraph_of_edges(g, kept);
  std::vector<double> sw;
  for (EdgeId e : kept) sw.push_back(w[e]);
  EXPECT_TRUE(is_spanner(g, w, sub, sw, stretch));
  // The spanner always contains a spanning structure of each component.
  EXPECT_GE(kept.size(), g.vertex_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpannerSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1.3, 2.0, 3.5)));

// --------------------------------------------- edge-Markovian densities

class MarkovDensity
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MarkovDensity, EmpiricalMatchesStationary) {
  const auto [p, q] = GetParam();
  Rng rng(99);
  EdgeMarkovianParams params;
  params.nodes = 30;
  params.horizon = 300;
  params.death_probability = p;
  params.birth_probability = q;
  const auto eg = edge_markovian_graph(params, rng);
  std::size_t active = 0;
  for (const auto& edge : eg.edges()) active += edge.labels.size();
  const double pairs = 30.0 * 29.0 / 2.0;
  const double density =
      static_cast<double>(active) / (pairs * params.horizon);
  const double stationary = edge_markovian_stationary_density(p, q);
  EXPECT_NEAR(density, stationary, 0.05 + stationary * 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MarkovDensity,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(0.02, 0.1, 0.3)));

}  // namespace
}  // namespace structnet
