// Tests for src/labeling: the Fig. 8 DS/CDS/MIS example with every
// statement of the paper checked, safety levels with the Fig. 9 example,
// and dynamic MIS maintenance.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/generators.hpp"
#include "labeling/dynamic_mis.hpp"
#include "labeling/fig8_example.hpp"
#include "labeling/fig9_example.hpp"
#include "labeling/safety_levels.hpp"
#include "labeling/static_labels.hpp"

namespace structnet {
namespace {

// ----------------------------------------------------------- Fig. 8

TEST(Fig8, MarkingBlackensEveryoneButA) {
  // "In Fig. 8, all nodes except A are labeled black."
  const Graph g = fig8::build();
  const auto black = marking_process(g);
  EXPECT_FALSE(black[fig8::A]);
  for (VertexId v = 1; v < 6; ++v) EXPECT_TRUE(black[v]) << "node " << v;
  EXPECT_TRUE(is_connected_dominating_set(g, black));
}

TEST(Fig8, TrimmingLeavesBCD) {
  // "B, C, and D are three black nodes remained after the trimming."
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto trimmed = trim_cds(g, marking_process(g), prio);
  EXPECT_TRUE(trimmed[fig8::B]);
  EXPECT_TRUE(trimmed[fig8::C]);
  EXPECT_TRUE(trimmed[fig8::D]);
  EXPECT_FALSE(trimmed[fig8::A]);
  EXPECT_FALSE(trimmed[fig8::E]);
  EXPECT_FALSE(trimmed[fig8::F]);
  EXPECT_TRUE(is_connected_dominating_set(g, trimmed));
}

TEST(Fig8, MisRoundsAndResult) {
  // "A and B are colored black [in the first round] ... The final MIS
  // ... is A, B, and E."
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto mis = distributed_mis(g, prio);
  EXPECT_TRUE(mis.in_mis[fig8::A]);
  EXPECT_TRUE(mis.in_mis[fig8::B]);
  EXPECT_TRUE(mis.in_mis[fig8::E]);
  EXPECT_FALSE(mis.in_mis[fig8::C]);
  EXPECT_FALSE(mis.in_mis[fig8::D]);
  EXPECT_FALSE(mis.in_mis[fig8::F]);
  EXPECT_EQ(mis.rounds, 2u);
  EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis));
}

TEST(Fig8, NeighborDesignatedDsIsABC) {
  // "A, B, and C are selected as DS (but not a CDS or an IS)."
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto ds = neighbor_designated_ds(g, prio);
  EXPECT_TRUE(ds[fig8::A]);
  EXPECT_TRUE(ds[fig8::B]);
  EXPECT_TRUE(ds[fig8::C]);
  EXPECT_FALSE(ds[fig8::D]);
  EXPECT_FALSE(ds[fig8::E]);
  EXPECT_FALSE(ds[fig8::F]);
  EXPECT_TRUE(is_dominating_set(g, ds));
  EXPECT_FALSE(is_connected_dominating_set(g, ds));
  EXPECT_FALSE(is_independent_set(g, ds));
}

// ------------------------------------------- static labels, general

TEST(StaticLabels, MarkingYieldsCdsOnConnectedUdgs) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Point2D> pts;
    Graph g = random_geometric(60, 0.3, rng, &pts);
    // Work on the largest component only.
    // (Marking guarantees a CDS for connected graphs that are not
    // complete; for complete graphs no node is marked.)
    std::vector<bool> keep(g.vertex_count(), true);
    const auto black = marking_process(g);
    if (std::none_of(black.begin(), black.end(), [](bool b) { return b; })) {
      continue;  // complete neighborhood case
    }
    // Dominating over each connected component that has >= 2 vertices.
    EXPECT_TRUE([&] {
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        if (black[v] || g.degree(v) == 0) continue;
        bool dominated = false;
        for (VertexId w : g.neighbors(v)) dominated |= black[w];
        if (!dominated) return false;
      }
      return true;
    }()) << trial;
  }
}

TEST(StaticLabels, TrimmedCdsStillCdsOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = erdos_renyi(40, 0.12, rng);
    for (VertexId v = 0; v + 1 < 40; ++v) g.add_edge_unique(v, v + 1);
    const auto black = marking_process(g);
    std::vector<double> prio(40);
    for (std::size_t v = 0; v < 40; ++v) prio[v] = rng.uniform01();
    const auto trimmed = trim_cds(g, black, prio);
    EXPECT_TRUE(is_connected_dominating_set(g, trimmed)) << trial;
    // Trimming never adds nodes.
    for (std::size_t v = 0; v < 40; ++v) {
      EXPECT_LE(trimmed[v], black[v]);
    }
  }
}

TEST(StaticLabels, DistributedMisIsMaximalIndependent) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(50, 0.1, rng);
    std::vector<double> prio(50);
    for (auto& p : prio) p = rng.uniform01();
    const auto mis = distributed_mis(g, prio);
    EXPECT_TRUE(is_maximal_independent_set(g, mis.in_mis)) << trial;
  }
}

TEST(StaticLabels, MisRoundsLogarithmicOnRandomGraphs) {
  // log n expected rounds: for n = 128 with random priorities, rounds
  // should be well below n.
  Rng rng(4);
  const Graph g = erdos_renyi(128, 0.08, rng);
  std::vector<double> prio(128);
  for (auto& p : prio) p = rng.uniform01();
  const auto mis = distributed_mis(g, prio);
  EXPECT_LE(mis.rounds, 24u);
}

TEST(StaticLabels, NeighborDesignatedDsOneRoundProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(40, 0.15, rng);
    std::vector<double> prio(40);
    for (auto& p : prio) p = rng.uniform01();
    const auto ds = neighbor_designated_ds(g, prio);
    EXPECT_TRUE(is_dominating_set(g, ds)) << trial;
  }
}

TEST(StaticLabels, VerifiersCatchBadSets) {
  const Graph g = path_graph(4);
  std::vector<bool> empty(4, false);
  EXPECT_FALSE(is_dominating_set(g, empty));
  std::vector<bool> ends{true, false, false, true};
  EXPECT_TRUE(is_independent_set(g, ends));
  // On P4 = 0-1-2-3, {0,3} is maximal: 1 is blocked by 0 and 2 by 3.
  EXPECT_TRUE(is_maximal_independent_set(g, ends));
  std::vector<bool> middle{false, true, false, false};
  EXPECT_FALSE(is_maximal_independent_set(g, middle));  // 3 addable
  std::vector<bool> disconnected{true, false, false, true};
  EXPECT_FALSE(is_connected_dominating_set(g, disconnected));
}

// -------------------------------------------------------- Fig. 9

TEST(Fig9, StatedSafetyLevels) {
  const SafetyLevelCube cube(fig9::kDimensions, fig9::faulty_nodes());
  // Faulty nodes are level 0.
  for (std::size_t f : fig9::faulty_nodes()) EXPECT_EQ(cube.level(f), 0u);
  // "0101 (with a safety level of 2)".
  EXPECT_EQ(cube.level(0b0101), 2u);
  // Nodes with two faulty neighbors are level 1.
  EXPECT_EQ(cube.level(0b0001), 1u);
  EXPECT_EQ(cube.level(0b1101), 1u);
  EXPECT_EQ(cube.level(0b0100), 1u);
  EXPECT_EQ(cube.level(0b1000), 1u);
}

TEST(Fig9, RoutingPicksNeighbor0101) {
  // "node 1101 selects 0101 ... between two neighbors 1001 and 0101 on
  // route to 0001."
  const SafetyLevelCube cube(fig9::kDimensions, fig9::faulty_nodes());
  const auto path = cube.route(0b1101, 0b0001);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);  // shortest: 2 hops
  EXPECT_EQ((*path)[0], 0b1101u);
  EXPECT_EQ((*path)[1], 0b0101u);
  EXPECT_EQ((*path)[2], 0b0001u);
}

TEST(SafetyLevels, NoFaultsAllSafe) {
  const SafetyLevelCube cube(4, {});
  for (std::size_t v = 0; v < 16; ++v) EXPECT_EQ(cube.level(v), 4u);
  EXPECT_EQ(cube.rounds_used(), 0u);
}

TEST(SafetyLevels, StabilizesWithinNMinusOneRounds) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    const std::size_t faults = 1 + rng.index(6);
    std::vector<std::size_t> faulty;
    for (auto f : rng.sample_without_replacement(1u << n, faults)) {
      faulty.push_back(f);
    }
    const SafetyLevelCube cube(n, faulty);
    EXPECT_LE(cube.rounds_used(), n - 1) << trial;
  }
}

TEST(SafetyLevels, LevelIDecidedInRoundI) {
  // The paper: "if the safety level of a node is i, then the level of
  // this node is decided exactly in round i."
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> faulty;
    for (auto f : rng.sample_without_replacement(32, 4)) faulty.push_back(f);
    const SafetyLevelCube cube(5, faulty);
    for (std::size_t v = 0; v < 32; ++v) {
      if (cube.is_faulty(v)) continue;
      const auto lvl = cube.level(v);
      if (lvl < 5) {
        EXPECT_EQ(cube.decided_round(v), lvl) << "node " << v;
      } else {
        EXPECT_EQ(cube.decided_round(v), 0u) << "node " << v;
      }
    }
  }
}

TEST(SafetyLevels, SafeSourceAlwaysRoutesShortest) {
  // "When the safety level of a node is n ... this node can reach any
  // node through a shortest path."
  Rng rng(8);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::size_t> faulty;
    for (auto f : rng.sample_without_replacement(32, 3)) faulty.push_back(f);
    const SafetyLevelCube cube(5, faulty);
    for (std::size_t s = 0; s < 32; ++s) {
      if (cube.level(s) != 5) continue;
      for (std::size_t t = 0; t < 32; ++t) {
        if (cube.is_faulty(t) || t == s) continue;
        const auto path = cube.route(s, t);
        ASSERT_TRUE(path.has_value()) << s << "->" << t;
        EXPECT_EQ(path->size() - 1, SafetyLevelCube::hamming(s, t));
      }
    }
  }
}

TEST(SafetyLevels, LevelGuaranteesRoutingWithinLevelHops) {
  // Level l >= hamming distance d => optimal routing guaranteed.
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::size_t> faulty;
    for (auto f : rng.sample_without_replacement(64, 6)) faulty.push_back(f);
    const SafetyLevelCube cube(6, faulty);
    for (std::size_t s = 0; s < 64; ++s) {
      if (cube.is_faulty(s)) continue;
      for (std::size_t t = 0; t < 64; ++t) {
        if (cube.is_faulty(t) || t == s) continue;
        const auto d = SafetyLevelCube::hamming(s, t);
        if (cube.level(s) < d) continue;
        const auto path = cube.route(s, t);
        ASSERT_TRUE(path.has_value()) << s << "->" << t;
        EXPECT_EQ(path->size() - 1, d);
      }
    }
  }
}

TEST(SafetyLevels, BroadcastFromSafeNodeCoversEverything) {
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::size_t> faulty;
    for (auto f : rng.sample_without_replacement(32, 2)) faulty.push_back(f);
    const SafetyLevelCube cube(5, faulty);
    for (std::size_t s = 0; s < 32; ++s) {
      if (cube.level(s) != 5) continue;
      const auto b = cube.broadcast(s);
      for (std::size_t v = 0; v < 32; ++v) {
        if (!cube.is_faulty(v)) {
          EXPECT_TRUE(b.reached[v]) << "from " << s << " missing " << v;
        }
      }
      break;  // one safe source per trial is enough
    }
  }
}

TEST(SafetyLevels, BroadcastNoFaultsUsesMinimalMessages) {
  const SafetyLevelCube cube(4, {});
  const auto b = cube.broadcast(0);
  EXPECT_EQ(b.messages, 15u);  // binomial tree: 2^n - 1 sends
  EXPECT_TRUE(std::all_of(b.reached.begin(), b.reached.end(),
                          [](bool r) { return r; }));
}

// -------------------------------------------------- dynamic MIS

TEST(DynamicMis, MatchesStaticGreedyAfterConstruction) {
  Rng rng(11);
  const Graph g = erdos_renyi(60, 0.1, rng);
  DynamicMis mis(g, rng);
  EXPECT_TRUE(mis.verify());
}

TEST(DynamicMis, EdgeInsertionKeepsInvariant) {
  Rng rng(12);
  Graph g = erdos_renyi(40, 0.05, rng);
  DynamicMis mis(g, rng);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.index(40));
    const auto v = static_cast<VertexId>(rng.index(40));
    if (u == v || mis.has_edge(u, v)) continue;
    mis.add_edge(u, v);
    ASSERT_TRUE(mis.verify()) << "insert " << i;
  }
}

TEST(DynamicMis, EdgeDeletionKeepsInvariant) {
  Rng rng(13);
  Graph g = erdos_renyi(40, 0.2, rng);
  DynamicMis mis(g, rng);
  for (int i = 0; i < 100; ++i) {
    const auto u = static_cast<VertexId>(rng.index(40));
    const auto v = static_cast<VertexId>(rng.index(40));
    if (!mis.has_edge(u, v)) continue;
    mis.remove_edge(u, v);
    ASSERT_TRUE(mis.verify()) << "delete " << i;
  }
}

TEST(DynamicMis, VertexOperationsKeepInvariant) {
  Rng rng(14);
  Graph g = erdos_renyi(30, 0.15, rng);
  DynamicMis mis(g, rng);
  const VertexId nv = mis.add_vertex(rng);
  EXPECT_TRUE(mis.in_mis(nv));  // isolated vertex
  mis.add_edge(nv, 0);
  EXPECT_TRUE(mis.verify());
  mis.remove_vertex(3);
  EXPECT_TRUE(mis.verify());
  EXPECT_FALSE(mis.in_mis(3));
}

TEST(DynamicMis, UpdateCostIsSmallOnAverage) {
  // The [30] headline: expected O(1) adjustments per update under random
  // priorities. We check the empirical average is tiny compared to n.
  Rng rng(15);
  Graph g = erdos_renyi(300, 0.02, rng);
  DynamicMis mis(g, rng);
  double total = 0.0;
  int updates = 0;
  for (int i = 0; i < 600; ++i) {
    const auto u = static_cast<VertexId>(rng.index(300));
    const auto v = static_cast<VertexId>(rng.index(300));
    if (u == v) continue;
    total += mis.has_edge(u, v) ? mis.remove_edge(u, v) : mis.add_edge(u, v);
    ++updates;
  }
  ASSERT_GT(updates, 0);
  EXPECT_LT(total / updates, 12.0);  // n/25, comfortably "local"
  EXPECT_TRUE(mis.verify());
}

}  // namespace
}  // namespace structnet
