// DeltaCsrObserver equivalence: the stream-tracked delta index against
// a fresh TemporalCsr rebuilt from the TemporalViewObserver's graph,
// under randomized engine churn (contact adds incl. out-of-horizon,
// relabels with and without a live old label, node joins growing the
// vertex space, leave/edge noise), across compaction boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "stream/csr_observer.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "temporal/temporal_csr.hpp"
#include "temporal/temporal_delta.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

// The merged index must reproduce a fresh rebuild of the view exactly:
// same layout (unit streams in order, labels) and bit-identical
// earliest-arrival sweeps (completion + via) from every source.
void expect_index_equals_view(const DeltaCsrObserver& obs,
                              const TemporalGraph& view) {
  const TemporalCsr fresh(view);
  const DeltaTemporalCsr& delta = obs.index();
  ASSERT_EQ(delta.vertex_count(), fresh.vertex_count());
  ASSERT_EQ(delta.edge_count(), fresh.edge_count());
  ASSERT_EQ(delta.contact_count(), fresh.contact_count());
  for (TimeUnit t = 0; t < fresh.horizon(); ++t) {
    const auto want = fresh.edges_at(t);
    std::vector<EdgeId> got;
    delta.for_each_edge_at(t, [&](EdgeId e) {
      got.push_back(e);
      return true;
    });
    ASSERT_EQ(got.size(), want.size()) << "t=" << t;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "t=" << t << " i=" << i;
    }
  }
  TemporalWorkspace wsa, wsb;
  for (VertexId s = 0; s < fresh.vertex_count(); ++s) {
    csr_earliest_arrival(fresh, s, 0, wsa);
    csr_earliest_arrival(delta, s, 0, wsb);
    for (VertexId v = 0; v < fresh.vertex_count(); ++v) {
      ASSERT_EQ(wsb.arrival(v), wsa.arrival(v)) << "s=" << s << " v=" << v;
      ASSERT_EQ(wsb.via(v), wsa.via(v)) << "s=" << s << " v=" << v;
    }
  }
}

TEST(DeltaCsrObserver, TracksEngineBitIdenticalToViewRebuild) {
  constexpr std::size_t kN = 14;
  constexpr TimeUnit kHorizon = 10;
  StreamEngine engine{DynamicGraph(kN)};
  TemporalViewObserver view(kN, kHorizon);
  DeltaCsrObserver delta(view, /*compact_ratio=*/0.15);
  engine.attach(&view);
  engine.attach(&delta);  // after the view: recompute() reads it

  Rng rng(17);
  std::size_t joins = 0;
  for (int step = 0; step < 600; ++step) {
    const std::size_t n = engine.graph().vertex_count();
    const auto u = static_cast<VertexId>(rng.index(n));
    auto v = static_cast<VertexId>(rng.index(n));
    if (u == v) v = static_cast<VertexId>((v + 1) % n);
    // Times deliberately overflow the horizon sometimes: the view drops
    // those (out_of_horizon) and the delta must drop them identically.
    const auto t = static_cast<TimeUnit>(rng.index(kHorizon + 3));
    const auto t2 = static_cast<TimeUnit>(rng.index(kHorizon + 3));
    switch (rng.index(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
      case 5:
        engine.apply(Event::contact_add(u, v, t));
        break;
      case 6:
      case 7:
        engine.apply(Event::contact_relabel(u, v, t, t2));
        break;
      case 8:
        engine.apply(rng.bernoulli(0.5) ? Event::edge_insert(u, v)
                                        : Event::edge_delete(u, v));
        break;
      case 9:
        if (joins < 4 && rng.bernoulli(0.3)) {
          engine.apply(Event::node_join());  // fresh vertex
          ++joins;
        } else {
          engine.apply(Event::node_leave(u));
          engine.apply(Event::node_join(u));  // revive for later contacts
        }
        break;
      default:
        break;
    }
    // Let the ratio policy fire mid-stream so equivalence holds across
    // compaction boundaries too.
    if (step % 50 == 49) delta.advance();
    if (step % 40 == 39) expect_index_equals_view(delta, view.view());
  }
  expect_index_equals_view(delta, view.view());

  // Force-compacting for a full base leaves an empty delta and an
  // unchanged merged view.
  delta.advance(/*force_full_base=*/true);
  EXPECT_TRUE(delta.index().delta_empty());
  expect_index_equals_view(delta, view.view());
  engine.detach(&delta);
  engine.detach(&view);
}

TEST(DeltaCsrObserver, NodeJoinGrowsVertexSpaceMidStream) {
  StreamEngine engine{DynamicGraph(3)};
  TemporalViewObserver view(3, 8);
  DeltaCsrObserver delta(view);
  engine.attach(&view);
  engine.attach(&delta);

  ASSERT_TRUE(engine.apply(Event::contact_add(0, 1, 2)));
  const auto join = engine.graph().log().empty();  // silence unused warn
  (void)join;
  ASSERT_TRUE(engine.apply(Event::node_join()));  // vertex 3
  ASSERT_TRUE(engine.apply(Event::contact_add(3, 0, 4)));
  ASSERT_TRUE(engine.apply(Event::contact_add(3, 2, 5)));
  EXPECT_EQ(delta.index().vertex_count(), 4u);
  expect_index_equals_view(delta, view.view());
  engine.detach(&delta);
  engine.detach(&view);
}

TEST(DeltaCsrObserver, CountersTrackFoldsAndCompactions) {
  obs::MetricsRegistry reg;
  StreamEngine engine{DynamicGraph(6)};
  TemporalViewObserver view(6, 8);
  DeltaCsrObserver delta(view, 0.25, &reg, "serve");
  engine.attach(&view);
  engine.attach(&delta);
  EXPECT_EQ(delta.builds(), 1u);  // the attach-time recompute

  ASSERT_TRUE(engine.apply(Event::contact_add(0, 1, 2)));
  ASSERT_TRUE(engine.apply(Event::contact_add(1, 2, 3)));
  engine.apply(Event::contact_add(0, 1, 2));   // duplicate: no fold
  engine.apply(Event::contact_add(0, 1, 20));  // out of horizon: no fold
  ASSERT_TRUE(engine.apply(Event::contact_relabel(0, 1, 2, 4)));  // 2 folds
  EXPECT_EQ(delta.delta_appends(), 4u);
  EXPECT_EQ(delta.compactions(), 0u);

  EXPECT_TRUE(delta.advance(/*force_full_base=*/true));
  EXPECT_FALSE(delta.advance(/*force_full_base=*/true));  // already empty
  EXPECT_EQ(delta.compactions(), 1u);
  EXPECT_EQ(delta.builds(), 2u);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("serve.csr_delta_appends"),
            delta.delta_appends());
  EXPECT_EQ(snap.counter_value("serve.csr_compactions"), delta.compactions());
  EXPECT_EQ(snap.counter_value("serve.csr_builds"), delta.builds());
  engine.detach(&delta);
  engine.detach(&view);
}

}  // namespace
}  // namespace structnet
