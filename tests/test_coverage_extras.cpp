// Supplementary coverage: edge cases across modules that the focused
// suites do not reach.
#include <gtest/gtest.h>

#include <sstream>

#include "algo/chordal.hpp"
#include "algo/maxflow.hpp"
#include "centrality/link_analysis.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "layering/fig4_example.hpp"
#include "layering/link_reversal.hpp"
#include "layering/nsf.hpp"
#include "layering/pubsub.hpp"
#include "temporal/fig2_example.hpp"
#include "temporal/journeys.hpp"

namespace structnet {
namespace {

TEST(CoverageExtras, EmptyAndSingletonGraphs) {
  const Graph empty(0);
  EXPECT_TRUE(is_chordal(empty));
  EXPECT_EQ(is_interval_graph(empty), std::optional<bool>(true));
  const Graph one(1);
  EXPECT_TRUE(is_chordal(one));
  EXPECT_EQ(nsf_level_labels(one).rounds, 1u);
}

TEST(CoverageExtras, PagerankEmptyAndSingle) {
  const auto pr_empty = pagerank(Graph(0));
  EXPECT_TRUE(pr_empty.converged);
  EXPECT_TRUE(pr_empty.score.empty());
  const auto pr_one = pagerank(Graph(1));
  ASSERT_EQ(pr_one.score.size(), 1u);
  EXPECT_NEAR(pr_one.score[0], 1.0, 1e-9);
}

TEST(CoverageExtras, HitsEmptyGraph) {
  const auto h = hits(Digraph(0));
  EXPECT_TRUE(h.converged);
}

TEST(CoverageExtras, WattsStrogatzFullRewire) {
  Rng rng(1);
  const Graph g = watts_strogatz(60, 2, 1.0, rng);
  EXPECT_EQ(g.vertex_count(), 60u);
  EXPECT_EQ(g.edge_count(), 120u);
}

TEST(CoverageExtras, MaxFlowZeroWhenDisconnected) {
  FlowNetwork net(4);
  net.add_arc(0, 1, 5);
  net.add_arc(2, 3, 5);
  EXPECT_EQ(net.max_flow_dinic(0, 3), 0);
  EXPECT_EQ(net.last_phase_count(), 0u);
  net.reset_flow();
  EXPECT_EQ(net.max_flow_mpm(0, 3), 0);
}

TEST(CoverageExtras, MinCutCapacityEqualsFlow) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8;
    FlowNetwork net(n);
    struct ArcRec {
      VertexId u, v;
      std::int64_t cap;
      std::size_t id;
    };
    std::vector<ArcRec> arcs;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.35)) {
          const auto cap = static_cast<std::int64_t>(rng.uniform_u64(1, 9));
          arcs.push_back({u, v, cap, net.add_arc(u, v, cap)});
        }
      }
    }
    const auto flow = net.max_flow_dinic(0, 7);
    const auto side = net.min_cut_source_side(0);
    std::int64_t cut = 0;
    for (const auto& a : arcs) {
      if (side[a.u] && !side[a.v]) cut += a.cap;
    }
    EXPECT_EQ(flow, cut) << trial;  // max-flow = min-cut
  }
}

TEST(CoverageExtras, PubSubSelfDelivery) {
  const Graph g = star_graph(4);
  const auto labeling = nsf_level_labels(g);
  const HierarchicalPubSub ps(g, labeling.level);
  const auto d = ps.deliver(2, 2);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.hops, 0u);
  EXPECT_EQ(d.meeting_node, 2u);
}

TEST(CoverageExtras, LinkReversalAlreadyOrientedIsFree) {
  const Graph g = fig4::initial_graph();
  auto heights = fig4::initial_heights();
  Orientation o = orientation_from_heights(g, heights);
  const auto stats = full_reversal_by_heights(g, heights, fig4::D, o);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rounds, 0u);
  EXPECT_EQ(stats.node_reversals, 0u);
}

TEST(CoverageExtras, TemporalDistancesWrapper) {
  const auto eg = fig2::build_core();
  const auto d = temporal_distances(eg, fig2::A, 0);
  EXPECT_EQ(d[fig2::A], 0u);
  EXPECT_EQ(d[fig2::C], 2u);
}

TEST(CoverageExtras, TimeConnectivityOnFig2Core) {
  const auto eg = fig2::build_core();
  // Not time-0-connected: C cannot reach A (C's contacts: 2,5 to B and
  // 0,6 to D; B's to A at 4 works... check via API rather than assert a
  // guess).
  const bool claim = is_time_connected(eg, 0);
  // Verify against pairwise queries.
  bool all = true;
  for (VertexId u = 0; u < eg.vertex_count(); ++u) {
    for (VertexId v = 0; v < eg.vertex_count(); ++v) {
      all &= is_connected_at(eg, u, v, 0);
    }
  }
  EXPECT_EQ(claim, all);
  // And time-6-connected is definitely false (only (B,D),(C,D) remain).
  EXPECT_FALSE(is_time_connected(eg, 6));
}

TEST(CoverageExtras, DotOutputForDigraphs) {
  Digraph d(3);
  d.add_arc(0, 2);
  const auto text = to_dot(d, "flow");
  EXPECT_NE(text.find("digraph flow"), std::string::npos);
  EXPECT_NE(text.find("0 -> 2"), std::string::npos);
}

TEST(CoverageExtras, DegreeRankOnRegularGraphIsFlat) {
  const auto rank = degree_rank_labels(cycle_graph(10));
  for (auto l : rank) EXPECT_EQ(l, 1u);
}

TEST(CoverageExtras, JourneyValidatorRejectsBrokenChains) {
  const auto eg = fig2::build_core();
  Journey broken{{{fig2::A, fig2::B, 4}, {fig2::C, fig2::D, 6}}};  // gap
  EXPECT_FALSE(broken.valid_for(eg));
  Journey decreasing{{{fig2::A, fig2::B, 4}, {fig2::B, fig2::C, 2}}};
  EXPECT_FALSE(decreasing.valid_for(eg));
  Journey phantom{{{fig2::A, fig2::C, 1}}};  // contact does not exist
  EXPECT_FALSE(phantom.valid_for(eg));
}

}  // namespace
}  // namespace structnet
