// Tests for src/layering: NSF peeling and levels, pub/sub over the
// hierarchy, and link reversal (full heights, binary-label machine,
// Fig. 4 replay).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/generators.hpp"
#include "layering/fig4_example.hpp"
#include "layering/link_reversal.hpp"
#include "layering/nsf.hpp"
#include "layering/pubsub.hpp"

namespace structnet {
namespace {

TEST(Nsf, PeelRemovesLocalMinima) {
  // Star: all leaves are local minima; one peel leaves the center.
  const Graph g = star_graph(5);
  std::vector<bool> alive(6, true);
  const auto next = peel_local_minimum_degree(g, alive);
  EXPECT_TRUE(next[0]);
  for (VertexId v = 1; v <= 5; ++v) EXPECT_FALSE(next[v]);
}

TEST(Nsf, PeelSequenceShrinksMonotonically) {
  Rng rng(1);
  const Graph g = barabasi_albert(400, 2, rng);
  const auto rounds = peel_sequence(g, 0.25);
  ASSERT_FALSE(rounds.empty());
  std::size_t prev = g.vertex_count();
  for (const auto& mask : rounds) {
    const auto now = static_cast<std::size_t>(
        std::count(mask.begin(), mask.end(), true));
    EXPECT_LT(now, prev);
    prev = now;
  }
  EXPECT_LE(prev, g.vertex_count());
}

TEST(Nsf, LevelLabelsCoverEveryoneOncePerRound) {
  Rng rng(2);
  const Graph g = barabasi_albert(200, 2, rng);
  const auto labeling = nsf_level_labels(g);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_GE(labeling.level[v], 1u);
    EXPECT_LE(labeling.level[v], labeling.rounds);
  }
  EXPECT_FALSE(labeling.top_nodes().empty());
}

TEST(Nsf, LevelsOnStarPutCenterOnTop) {
  const Graph g = star_graph(6);
  const auto labeling = nsf_level_labels(g);
  EXPECT_EQ(labeling.rounds, 2u);
  EXPECT_EQ(labeling.level[0], 2u);
  for (VertexId v = 1; v <= 6; ++v) EXPECT_EQ(labeling.level[v], 1u);
  EXPECT_EQ(labeling.top_nodes(), (std::vector<VertexId>{0}));
}

TEST(Nsf, DegreeRankLabelsDifferFromNested) {
  // Fig. 7's contrast: a path has one degree class for interior nodes
  // (rank labels), but nested labels peel ends inward.
  const Graph g = path_graph(6);
  const auto rank = degree_rank_labels(g);
  EXPECT_EQ(rank[0], 1u);   // degree 1
  EXPECT_EQ(rank[2], 2u);   // degree 2
  const auto nested = nsf_level_labels(g);
  EXPECT_GT(nested.rounds, 2u);  // peeling a path takes several rounds
}

TEST(Nsf, ReportFindsBaScaleFreeNested) {
  Rng rng(3);
  const Graph g = barabasi_albert(4000, 3, rng);
  const auto report = nsf_report(g, 0.5);
  ASSERT_GE(report.fits.size(), 2u);
  // Exponents should be consistent across peel levels (the NSF property).
  EXPECT_LT(report.exponent_stddev, 0.6);
  for (const auto& fit : report.fits) {
    EXPECT_GT(fit.alpha, 1.5);
  }
}

TEST(Nsf, ReportRejectsRegularGraph) {
  const Graph g = grid_graph(20, 20);
  const auto report = nsf_report(g, 0.5);
  EXPECT_FALSE(report.all_scale_free);
}

TEST(PubSub, DeliveryWithinTree) {
  const Graph g = star_graph(4);
  const auto labeling = nsf_level_labels(g);
  HierarchicalPubSub ps(g, labeling.level);
  const auto d = ps.deliver(1, 2);
  EXPECT_TRUE(d.delivered);
  EXPECT_EQ(d.meeting_node, 0u);  // the hub
  EXPECT_EQ(d.hops, 2u);
  EXPECT_FALSE(d.used_external_server);
}

TEST(PubSub, UpwardPathEndsAtLocalTop) {
  Rng rng(4);
  const Graph g = barabasi_albert(150, 2, rng);
  const auto labeling = nsf_level_labels(g);
  HierarchicalPubSub ps(g, labeling.level);
  for (VertexId v = 0; v < 20; ++v) {
    const auto path = ps.upward_path(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), v);
    // Levels strictly increase along the path.
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_GT(labeling.level[path[i]], labeling.level[path[i - 1]]);
    }
  }
}

TEST(PubSub, CrossComponentUsesExternalServer) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto labeling = nsf_level_labels(g);
  HierarchicalPubSub ps(g, labeling.level);
  const auto d = ps.deliver(0, 3);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(d.used_external_server);
}

TEST(PubSub, CheaperThanFloodingOnScaleFree) {
  Rng rng(5);
  const Graph g = barabasi_albert(300, 2, rng);
  const auto labeling = nsf_level_labels(g);
  HierarchicalPubSub ps(g, labeling.level);
  const auto d = ps.deliver(17, 230);
  EXPECT_TRUE(d.delivered);
  EXPECT_LT(d.hops, ps.flooding_cost());
}

// --------------------------------------------------- link reversal

TEST(LinkReversal, MakeDagIsDestinationOriented) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = erdos_renyi(30, 0.15, rng);
    for (VertexId v = 0; v + 1 < 30; ++v) g.add_edge_unique(v, v + 1);
    const auto o = make_destination_oriented_dag(g, 0);
    EXPECT_TRUE(is_destination_oriented_dag(g, o, 0)) << trial;
  }
}

TEST(LinkReversal, OrientationFromHeights) {
  const Graph g = path_graph(3);
  const auto o = orientation_from_heights(g, {2.0, 1.0, 0.0});
  EXPECT_TRUE(o.points_from(g, 0, 0));   // 0 -> 1
  EXPECT_TRUE(o.points_from(g, 1, 1));   // 1 -> 2
  EXPECT_TRUE(is_destination_oriented_dag(g, o, 2));
}

TEST(LinkReversal, Fig4FullReversalReplay) {
  // The reconstructed Fig. 4 cascade: A reverses, then B, then A again;
  // three rounds, A reversing twice.
  const Graph g = fig4::broken_graph();
  auto heights = fig4::initial_heights();
  Orientation o = orientation_from_heights(g, heights);
  ASSERT_FALSE(is_destination_oriented_dag(g, o, fig4::D));  // A is a sink
  const auto stats = full_reversal_by_heights(g, heights, fig4::D, o);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.node_reversals, 3u);
  EXPECT_EQ(stats.reversals_of[fig4::A], 2u);
  EXPECT_EQ(stats.reversals_of[fig4::B], 1u);
  EXPECT_EQ(stats.reversals_of[fig4::C], 0u);
  EXPECT_TRUE(is_destination_oriented_dag(g, o, fig4::D));
}

TEST(LinkReversal, Fig4InitialGraphIsAlreadyOriented) {
  const Graph g = fig4::initial_graph();
  const auto o = orientation_from_heights(g, fig4::initial_heights());
  EXPECT_TRUE(is_destination_oriented_dag(g, o, fig4::D));
}

TEST(LinkReversal, BinaryFullMatchesHeightFullOnFig4) {
  // All labels 1 + Rule 2 == classic full reversal: same round count.
  const Graph g = fig4::broken_graph();
  auto heights = fig4::initial_heights();
  Orientation ho = orientation_from_heights(g, heights);
  const auto height_stats = full_reversal_by_heights(g, heights, fig4::D, ho);

  BinaryLinkReversal machine(g,
                             orientation_from_heights(g, fig4::initial_heights()),
                             fig4::D, ReversalMode::kFull);
  const auto stats = machine.run();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.rounds, height_stats.rounds);
  EXPECT_EQ(stats.node_reversals, height_stats.node_reversals);
  EXPECT_TRUE(
      is_destination_oriented_dag(g, machine.orientation(), fig4::D));
}

TEST(LinkReversal, BothModesConvergeOnRandomGraphs) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = erdos_renyi(20, 0.2, rng);
    for (VertexId v = 0; v + 1 < 20; ++v) g.add_edge_unique(v, v + 1);
    // Destination-oriented DAG toward 0, then break it by re-orienting
    // from random heights (still acyclic) and repair.
    std::vector<double> heights(20);
    for (auto& h : heights) h = rng.uniform(0.0, 10.0);
    heights[0] = -1.0;  // destination lowest
    const Orientation o = orientation_from_heights(g, heights);
    for (const ReversalMode mode :
         {ReversalMode::kFull, ReversalMode::kPartial}) {
      BinaryLinkReversal machine(g, o, 0, mode);
      const auto stats = machine.run();
      EXPECT_TRUE(stats.converged) << trial;
      EXPECT_TRUE(is_destination_oriented_dag(g, machine.orientation(), 0))
          << trial;
    }
  }
}

TEST(LinkReversal, PartialNeverReversesMoreLinksThanFull) {
  // On a long chain with the far end broken, partial reversal's
  // per-round link work is bounded by full reversal's.
  const Graph g = path_graph(12);
  std::vector<double> heights(12);
  for (std::size_t v = 0; v < 12; ++v) {
    heights[v] = static_cast<double>(v);
  }
  // Destination is 11 (highest currently => everything points away from
  // it; every orientation step must cascade).
  const Orientation o = orientation_from_heights(g, heights);
  BinaryLinkReversal full(g, o, 11, ReversalMode::kFull);
  BinaryLinkReversal partial(g, o, 11, ReversalMode::kPartial);
  const auto fs = full.run();
  const auto ps = partial.run();
  EXPECT_TRUE(fs.converged);
  EXPECT_TRUE(ps.converged);
  EXPECT_LE(ps.link_reversals, fs.link_reversals);
  EXPECT_TRUE(is_destination_oriented_dag(g, full.orientation(), 11));
  EXPECT_TRUE(is_destination_oriented_dag(g, partial.orientation(), 11));
}

TEST(LinkReversal, QuadraticWorkloadShape) {
  // O(n^2) total reversals: doubling the chain roughly quadruples work
  // in the worst case orientation.
  auto work = [](std::size_t n) {
    const Graph g = path_graph(n);
    std::vector<double> heights(n);
    for (std::size_t v = 0; v < n; ++v) heights[v] = static_cast<double>(v);
    BinaryLinkReversal machine(g, orientation_from_heights(g, heights),
                               static_cast<VertexId>(n - 1),
                               ReversalMode::kFull);
    return machine.run().node_reversals;
  };
  const auto w8 = work(8);
  const auto w16 = work(16);
  EXPECT_GT(w16, 2 * w8);  // superlinear growth
}

TEST(LinkReversal, DisconnectedComponentDoesNotConverge) {
  // The classic partition case: a component with no path to the
  // destination reverses forever; the bound must kick in.
  Graph g(4);
  g.add_edge(0, 1);  // destination side
  g.add_edge(2, 3);  // partitioned pair
  const Orientation o = orientation_from_heights(g, {0.0, 1.0, 1.0, 2.0});
  BinaryLinkReversal machine(g, o, 0, ReversalMode::kFull);
  const auto stats = machine.run(200);
  EXPECT_FALSE(stats.converged);
}

}  // namespace
}  // namespace structnet
