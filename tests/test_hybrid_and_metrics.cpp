// Tests for the Sec. IV-C hybrid mechanisms and the temporal
// small-world metrics: hybrid central guidance (fake links), distributed
// Dijkstra cost accounting, clustering coefficients, and temporal
// correlation / path length.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/shortest_paths.hpp"
#include "algo/traversal.hpp"
#include "centrality/centrality.hpp"
#include "core/generators.hpp"
#include "mobility/contact_trace.hpp"
#include "mobility/edge_markovian.hpp"
#include "mobility/mobility_models.hpp"
#include "sim/distributed_dijkstra.hpp"
#include "sim/hybrid_control.hpp"
#include "temporal/smallworld_metrics.hpp"

namespace structnet {
namespace {

// ----------------------------------------------------- hybrid control

TEST(HybridControl, ShortcutsConnectFarthestPairs) {
  const Graph g = path_graph(32);
  const auto shortcuts = select_shortcuts(g, 1);
  ASSERT_EQ(shortcuts.size(), 1u);
  // The farthest pair on a path is its two ends.
  EXPECT_EQ(std::min(shortcuts[0].u, shortcuts[0].v), 0u);
  EXPECT_EQ(std::max(shortcuts[0].u, shortcuts[0].v), 31u);
  // The tunnel is the real path between them.
  EXPECT_EQ(shortcuts[0].real_path.size(), 32u);
}

TEST(HybridControl, AugmentationAddsExactlyTheFakeLinks) {
  const Graph g = cycle_graph(20);
  const auto shortcuts = select_shortcuts(g, 3);
  const Graph aug = augment(g, shortcuts);
  EXPECT_EQ(aug.edge_count(), g.edge_count() + shortcuts.size());
  for (const auto& sc : shortcuts) {
    EXPECT_TRUE(aug.has_edge(sc.u, sc.v));
  }
}

TEST(HybridControl, FakeLinksCutConvergenceRounds) {
  // The paper's promise: central guidance accelerates the distributed
  // protocol. On a long path, a few shortcuts slash BF rounds.
  const Graph g = path_graph(128);
  const auto r0 = hybrid_route_to(g, {}, 0);
  const auto r4 = hybrid_route_to(g, select_shortcuts(g, 4), 0);
  EXPECT_EQ(r0.rounds, 127u);
  EXPECT_LT(r4.rounds, r0.rounds / 2);
}

TEST(HybridControl, ExpandedRoutesAreRealAndBounded) {
  Rng rng(1);
  Graph g = erdos_renyi(60, 0.06, rng);
  for (VertexId v = 0; v + 1 < 60; ++v) g.add_edge_unique(v, v + 1);
  const auto shortcuts = select_shortcuts(g, 3);
  const auto r = hybrid_route_to(g, shortcuts, 5);
  EXPECT_GE(r.average_stretch, 1.0);
  EXPECT_GE(r.max_stretch, r.average_stretch);
  // Tunnels ride shortest real paths, so stretch stays moderate.
  EXPECT_LT(r.average_stretch, 3.0);
}

TEST(HybridControl, NoShortcutsIsPlainBellmanFord) {
  const Graph g = grid_graph(6, 6);
  const auto r = hybrid_route_to(g, {}, 0);
  const std::vector<double> w(g.edge_count(), 1.0);
  EXPECT_EQ(r.rounds, bellman_ford(g, w, 0).rounds);
  EXPECT_DOUBLE_EQ(r.average_stretch, 1.0);
}

// ----------------------------------------------- distributed Dijkstra

TEST(DistributedDijkstra, DistancesMatchCentralized) {
  Rng rng(2);
  Graph g = erdos_renyi(40, 0.12, rng);
  for (VertexId v = 0; v + 1 < 40; ++v) g.add_edge_unique(v, v + 1);
  std::vector<double> w(g.edge_count());
  for (auto& x : w) x = rng.uniform(0.1, 2.0);
  const auto dd = distributed_dijkstra(g, w, 0);
  const auto oracle = dijkstra(g, w, 0);
  for (std::size_t v = 0; v < 40; ++v) {
    EXPECT_NEAR(dd.distance[v], oracle.distance[v], 1e-9) << v;
  }
  EXPECT_EQ(dd.expansions, 39u);
}

TEST(DistributedDijkstra, BackAndForthIsExpensive) {
  // The inefficiency the paper calls out: on a path, root-coordinated
  // Dijkstra pays Theta(n^2) rounds while Bellman-Ford pays n - 1.
  const Graph g = path_graph(64);
  const std::vector<double> w(g.edge_count(), 1.0);
  const auto dd = distributed_dijkstra(g, w, 0);
  const auto bf = bellman_ford(g, w, 0);
  EXPECT_GT(dd.rounds, 20 * bf.rounds);
}

TEST(DistributedDijkstra, HandlesDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  const std::vector<double> w(1, 1.0);
  const auto dd = distributed_dijkstra(g, w, 0);
  EXPECT_EQ(dd.expansions, 1u);
  EXPECT_EQ(dd.distance[2], kInfDistance);
}

// ------------------------------------------------------- clustering

TEST(Clustering, TriangleAndPath) {
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(complete_graph(3)), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(path_graph(5)), 0.0);
}

TEST(Clustering, WattsStrogatzRewiringLowersClustering) {
  Rng rng(3);
  const Graph lattice = watts_strogatz(200, 4, 0.0, rng);
  const Graph rewired = watts_strogatz(200, 4, 0.5, rng);
  EXPECT_GT(average_clustering_coefficient(lattice), 0.5);
  EXPECT_LT(average_clustering_coefficient(rewired),
            average_clustering_coefficient(lattice));
}

// ------------------------------------------- temporal small-world [15]

TEST(TemporalSmallWorld, PersistentGraphHasFullCorrelation) {
  TemporalGraph eg(4, 10);
  for (TimeUnit t = 0; t < 10; ++t) {
    eg.add_contact(0, 1, t);
    eg.add_contact(1, 2, t);
    eg.add_contact(2, 3, t);
  }
  EXPECT_DOUBLE_EQ(temporal_correlation_coefficient(eg), 1.0);
}

TEST(TemporalSmallWorld, CorrelationAveragesOverAllVertexPairSamples) {
  // Hand-computed 3-snapshot example pinning the [15] convention:
  // C = (1 / (N * (T-1))) * Σ_v Σ_t overlap_v(t, t+1), where an empty
  // neighborhood on either side gives overlap 0 (0/0 := 0) and NO
  // sample is skipped — vertices inactive in both snapshots still
  // count in the denominator.
  TemporalGraph eg(4, 3);
  eg.add_contact(0, 1, 0);  // t=0: 0-1, 1-2
  eg.add_contact(1, 2, 0);
  eg.add_contact(0, 1, 1);  // t=1: 0-1
  eg.add_contact(0, 1, 2);  // t=2: 0-1, 2-3
  eg.add_contact(2, 3, 2);
  // Pair (t0,t1): v0 {1}∩{1} -> 1; v1 {0,2}∩{0} -> 1/sqrt(2);
  //               v2 {1}∩{}  -> 0; v3 {}∩{}   -> 0.
  // Pair (t1,t2): v0 -> 1; v1 -> 1; v2 {}∩{3} -> 0; v3 {}∩{2} -> 0.
  // C = (1 + 1/sqrt(2) + 1 + 1) / (4 * 2) = (3 + 1/sqrt(2)) / 8.
  EXPECT_NEAR(temporal_correlation_coefficient(eg),
              (3.0 + 1.0 / std::sqrt(2.0)) / 8.0, 1e-12);
}

TEST(TemporalSmallWorld, MemorylessGraphHasLowCorrelation) {
  Rng rng(4);
  EdgeMarkovianParams p;
  p.nodes = 30;
  p.horizon = 50;
  p.death_probability = 0.8;  // contacts barely persist
  p.birth_probability = 0.1;
  const auto eg = edge_markovian_graph(p, rng);
  EXPECT_LT(temporal_correlation_coefficient(eg), 0.4);
}

TEST(TemporalSmallWorld, MobilityPersistsMoreThanMarkovNoise) {
  // Physical movement changes neighborhoods slowly: RWP contacts carry
  // far more temporal correlation than density-matched Markov noise.
  Rng rng(5);
  RandomWaypointParams rwp;
  rwp.nodes = 30;
  rwp.steps = 60;
  rwp.max_speed = 0.02;
  const auto mobile = contacts_from_trajectory(random_waypoint(rwp, rng), 0.2);
  EdgeMarkovianParams m;
  m.nodes = 30;
  m.horizon = 60;
  m.death_probability = 0.5;
  m.birth_probability = 0.05;
  const auto noise = edge_markovian_graph(m, rng);
  EXPECT_GT(temporal_correlation_coefficient(mobile),
            temporal_correlation_coefficient(noise) + 0.2);
}

TEST(TemporalSmallWorld, PathLengthOnKnownChain) {
  TemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 3);
  const auto l = characteristic_temporal_path_length(eg);
  // Reachable ordered pairs: 0->1 (1), 1->0 (1), 0->2 (3), 1->2 (3),
  // 2->1 (3); 2->0 is unreachable (labels would have to decrease).
  EXPECT_NEAR(l.characteristic_length, 11.0 / 5.0, 1e-12);
  EXPECT_NEAR(l.reachable_fraction, 5.0 / 6.0, 1e-12);
}

TEST(TemporalSmallWorld, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(temporal_correlation_coefficient(TemporalGraph(5, 1)), 0.0);
  const auto l = characteristic_temporal_path_length(TemporalGraph(5, 3));
  EXPECT_DOUBLE_EQ(l.reachable_fraction, 0.0);
}

}  // namespace
}  // namespace structnet
