// Tests for src/centrality: centralities, PageRank/HITS dynamic labels,
// and power-law fitting.
#include <gtest/gtest.h>

#include <algorithm>

#include "centrality/centrality.hpp"
#include "centrality/link_analysis.hpp"
#include "centrality/powerlaw.hpp"
#include "core/generators.hpp"

namespace structnet {
namespace {

TEST(Centrality, DegreeOnStar) {
  const Graph g = star_graph(5);
  const auto c = degree_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  for (VertexId v = 1; v <= 5; ++v) EXPECT_DOUBLE_EQ(c[v], 1.0);
}

TEST(Centrality, ClosenessOnPathPeaksAtCenter) {
  const Graph g = path_graph(5);
  const auto c = closeness_centrality(g);
  EXPECT_GT(c[2], c[1]);
  EXPECT_GT(c[1], c[0]);
  // Known value for the center of P5: 4 / (2+1+1+2).
  EXPECT_DOUBLE_EQ(c[2], 4.0 / 6.0);
}

TEST(Centrality, ClosenessHandlesDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto c = closeness_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // reaches one node at distance 1
  EXPECT_DOUBLE_EQ(c[2], 0.0);  // isolated
}

TEST(Centrality, BetweennessOnPath) {
  // On P5, interior node i lies on (i)(4-i) shortest pairs.
  const Graph g = path_graph(5);
  const auto b = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[1], 3.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 3.0);
}

TEST(Centrality, BetweennessBridgeDominates) {
  // Two triangles joined by a bridge node.
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(4, 6);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const auto b = betweenness_centrality(g);
  const double peak = *std::max_element(b.begin(), b.end());
  EXPECT_DOUBLE_EQ(b[3], peak);
}

TEST(Centrality, EigenvectorSymmetricOnCycle) {
  const Graph g = cycle_graph(6);
  const auto c = eigenvector_centrality(g);
  for (VertexId v = 1; v < 6; ++v) EXPECT_NEAR(c[v], c[0], 1e-9);
}

TEST(Centrality, EigenvectorPrefersHub) {
  const Graph g = star_graph(6);
  const auto c = eigenvector_centrality(g);
  for (VertexId v = 1; v <= 6; ++v) EXPECT_GT(c[0], c[v]);
}

TEST(PageRank, SumsToOneAndConverges) {
  Rng rng(3);
  const Graph g = barabasi_albert(100, 2, rng);
  const auto pr = pagerank(g);
  EXPECT_TRUE(pr.converged);
  double sum = 0.0;
  for (double s : pr.score) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, DirectedChainAccumulatesAtEnd) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  const auto pr = pagerank(g);
  EXPECT_GT(pr.score[3], pr.score[0]);
  EXPECT_GT(pr.score[2], pr.score[1]);
}

TEST(PageRank, IterationCountIsDynamicLabelMetric) {
  // The convergence metric of experiment E10: more damping, slower.
  Rng rng(4);
  const Graph g = watts_strogatz(80, 3, 0.1, rng);
  const auto fast = pagerank(g, 0.5);
  const auto slow = pagerank(g, 0.95);
  EXPECT_TRUE(fast.converged);
  EXPECT_TRUE(slow.converged);
  EXPECT_LT(fast.iterations, slow.iterations);
}

TEST(Hits, HubAndAuthoritySeparation) {
  // 0 and 1 point at 2 and 3: {0,1} hubs, {2,3} authorities.
  Digraph g(4);
  g.add_arc(0, 2);
  g.add_arc(0, 3);
  g.add_arc(1, 2);
  g.add_arc(1, 3);
  const auto h = hits(g);
  EXPECT_TRUE(h.converged);
  EXPECT_GT(h.hub[0], h.hub[2]);
  EXPECT_GT(h.authority[2], h.authority[0]);
  EXPECT_NEAR(h.hub[0], h.hub[1], 1e-9);
  EXPECT_NEAR(h.authority[2], h.authority[3], 1e-9);
}

TEST(PowerLaw, RecoverExponentFromParetoSamples) {
  Rng rng(5);
  std::vector<std::size_t> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(static_cast<std::size_t>(rng.pareto(1.0, 2.5)));
  }
  const auto fit = fit_power_law(samples, 2);
  // Flooring continuous Pareto draws biases the discrete MLE slightly and
  // puts a staircase into the empirical CCDF; allow for both.
  EXPECT_NEAR(fit.alpha, 2.5, 0.4);
  EXPECT_LT(fit.ks, 0.2);
}

TEST(PowerLaw, BaGraphLooksScaleFree) {
  Rng rng(6);
  const Graph g = barabasi_albert(3000, 3, rng);
  const auto fit = fit_degree_power_law(g, 3);
  // BA exponent is ~3 in theory; accept the usual finite-size window.
  EXPECT_GT(fit.alpha, 2.0);
  EXPECT_LT(fit.alpha, 4.0);
  EXPECT_LT(fit.ks, 0.25);
}

TEST(PowerLaw, UniformDegreesFitPoorly) {
  // A regular graph is as far from a power law as it gets: the fitted
  // alpha collapses toward its defined floor or the KS distance is huge.
  const Graph g = cycle_graph(200);
  const auto fit = fit_degree_power_law(g, 1);
  EXPECT_TRUE(fit.ks > 0.3 || fit.alpha > 5.0);
}

TEST(PowerLaw, AutoKminPicksBetterFit) {
  Rng rng(7);
  std::vector<std::size_t> samples;
  // Pareto tail above 4 with uniform noise below.
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(static_cast<std::size_t>(rng.pareto(4.0, 2.2)));
    samples.push_back(1 + rng.index(3));
  }
  const auto fixed = fit_power_law(samples, 1);
  const auto culled = fit_power_law_auto_kmin(samples, 8);
  EXPECT_LE(culled.ks, fixed.ks);
  EXPECT_GE(culled.k_min, 1u);
}

TEST(PowerLaw, DegenerateInputs) {
  const std::vector<std::size_t> empty;
  EXPECT_EQ(fit_power_law(empty, 1).samples, 0u);
  const std::vector<std::size_t> one{5};
  EXPECT_EQ(fit_power_law(one, 1).samples, 1u);
  EXPECT_EQ(fit_power_law(one, 1).alpha, 0.0);
}

}  // namespace
}  // namespace structnet
