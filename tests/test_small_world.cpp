// Tests for src/remapping/small_world: Kleinberg's lattice and the
// inverse-square greedy-routing phenomenon the paper's introduction
// highlights.
#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algo/traversal.hpp"
#include "remapping/small_world.hpp"

namespace structnet {
namespace {

TEST(SmallWorld, LatticeDistanceOnTorus) {
  Rng rng(1);
  const SmallWorldLattice lattice(8, 2.0, rng);
  EXPECT_EQ(lattice.lattice_distance(0, 1), 1u);
  EXPECT_EQ(lattice.lattice_distance(0, 7), 1u);   // wraps
  EXPECT_EQ(lattice.lattice_distance(0, 8), 1u);   // one row down
  EXPECT_EQ(lattice.lattice_distance(0, 9), 2u);
  // Farthest point on an 8-torus: (4, 4).
  EXPECT_EQ(lattice.lattice_distance(0, 4 * 8 + 4), 8u);
}

TEST(SmallWorld, EveryNodeHasALongLink) {
  Rng rng(2);
  const SmallWorldLattice lattice(10, 2.0, rng);
  for (VertexId v = 0; v < lattice.node_count(); ++v) {
    EXPECT_NE(lattice.long_link(v), v);
    EXPECT_LT(lattice.long_link(v), lattice.node_count());
  }
}

TEST(SmallWorld, GraphIsConnectedWithCorrectDegrees) {
  Rng rng(3);
  const SmallWorldLattice lattice(12, 2.0, rng);
  const Graph g = lattice.graph();
  EXPECT_TRUE(is_connected(g));
  // Torus lattice alone: degree 4; long links add 1-ish per endpoint.
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_GE(g.degree(v), 4u);
  }
}

TEST(SmallWorld, GreedyAlwaysDelivers) {
  Rng rng(4);
  const SmallWorldLattice lattice(16, 2.0, rng);
  Rng pick(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(lattice.node_count()));
    const auto t = static_cast<VertexId>(pick.index(lattice.node_count()));
    const std::size_t hops = lattice.greedy_route_hops(s, t);
    // Greedy descends in lattice distance, so hops <= initial distance.
    EXPECT_LE(hops, lattice.lattice_distance(s, t) + 1);
  }
}

TEST(SmallWorld, LongLinksShortcutRouting) {
  // Greedy hops with long links must beat the plain lattice distance on
  // average at r = 2.
  Rng rng(6);
  const SmallWorldLattice lattice(24, 2.0, rng);
  Rng pick(7);
  double greedy = 0.0, lattice_d = 0.0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(lattice.node_count()));
    const auto t = static_cast<VertexId>(pick.index(lattice.node_count()));
    greedy += static_cast<double>(lattice.greedy_route_hops(s, t));
    lattice_d += static_cast<double>(lattice.lattice_distance(s, t));
  }
  EXPECT_LT(greedy, 0.9 * lattice_d);
}

TEST(SmallWorld, InverseSquareBeatsLocalExponents) {
  // Kleinberg's phenomenon, finite-size version: r = 2 routes much
  // faster than very local long links (r = 4, nearly lattice-only).
  // (Against r = 0 the asymptotic gap needs lattices far beyond unit-
  // test scale; the bench sweeps the full exponent curve.)
  Rng rng(8);
  double hops_r2 = 0.0, hops_r4 = 0.0;
  for (int instance = 0; instance < 3; ++instance) {
    const SmallWorldLattice l2(20, 2.0, rng);
    const SmallWorldLattice l4(20, 4.0, rng);
    Rng pick(instance);
    hops_r2 += average_greedy_hops(l2, 200, pick);
    hops_r4 += average_greedy_hops(l4, 200, pick);
  }
  EXPECT_LT(hops_r2, 0.9 * hops_r4);
}

TEST(SmallWorld, AverageHopsHandlesDegeneratePairs) {
  Rng rng(9);
  const SmallWorldLattice lattice(4, 2.0, rng);
  Rng pick(10);
  const double avg = average_greedy_hops(lattice, 50, pick);
  EXPECT_GE(avg, 0.0);
  EXPECT_LE(avg, 8.0);
}

}  // namespace
}  // namespace structnet
