// Tests for temporal centralities and the copy-varying forwarding
// strategy.
#include <gtest/gtest.h>

#include "mobility/social_contacts.hpp"
#include "sim/dtn_routing.hpp"
#include "temporal/temporal_centrality.hpp"

namespace structnet {
namespace {

TemporalGraph relay_chain() {
  // 0 -1-> 1 -2-> 2 -3-> 3: node 1 and 2 relay everything rightward.
  TemporalGraph eg(4, 6);
  eg.add_contact(0, 1, 1);
  eg.add_contact(1, 2, 2);
  eg.add_contact(2, 3, 3);
  return eg;
}

TEST(TemporalCentrality, DegreeCountsContacts) {
  TemporalGraph eg(3, 6);
  eg.add_contact(0, 1, 1);
  eg.add_contact(0, 1, 3);
  eg.add_contact(1, 2, 2);
  const auto d = temporal_degree(eg);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(TemporalCentrality, ClosenessFavorsEarlyReach) {
  const auto eg = relay_chain();
  const auto c = temporal_closeness(eg);
  // 0 reaches everyone (at 1, 2, 3); 3 only reaches 2 (at time 3).
  EXPECT_NEAR(c[0], (0.5 + 1.0 / 3.0 + 0.25) / 3.0, 1e-12);
  EXPECT_NEAR(c[3], (1.0 / 4.0) / 3.0, 1e-12);
  EXPECT_GT(c[0], c[3]);
}

TEST(TemporalCentrality, BetweennessCreditsRelays) {
  const auto eg = relay_chain();
  const auto b = temporal_betweenness(eg);
  // Journeys: 0->2 (via 1), 0->3 (via 1, 2), 1->3 (via 2), plus
  // single-hop journeys crediting nobody.
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 2.0);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[3], 0.0);
}

TEST(TemporalCentrality, HubDominatesBetweennessOnStarTrace) {
  // Star contact pattern: everything relays through node 0.
  TemporalGraph eg(6, 20);
  for (TimeUnit t = 0; t < 20; ++t) {
    for (VertexId v = 1; v < 6; ++v) eg.add_contact(0, v, t);
  }
  const auto b = temporal_betweenness(eg);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_GT(b[0], b[v]);
  }
}

TEST(CopyVarying, LastCopyWaitsForDestination) {
  const auto strategy = copy_varying_strategy({1.0, 0.0}, 0.5);
  EXPECT_EQ(strategy(0, 1, 0, 1), ForwardDecision::kSkip);
  EXPECT_EQ(strategy(0, 1, 0, 4), ForwardDecision::kCopy);
}

TEST(CopyVarying, SlackShrinksWithBudget) {
  // metric(holder)=1.0, metric(contact)=1.4: acceptable only while the
  // budget-driven slack exceeds 0.4.
  const auto strategy = copy_varying_strategy({1.0, 1.4}, 0.25);
  EXPECT_EQ(strategy(0, 1, 0, 8), ForwardDecision::kCopy);   // slack 1.75
  EXPECT_EQ(strategy(0, 1, 0, 3), ForwardDecision::kCopy);   // slack 0.5
  EXPECT_EQ(strategy(0, 1, 0, 2), ForwardDecision::kSkip);   // slack 0.25
}

TEST(CopyVarying, FirstCopyDeliveryBeatsPlainSprayOnStructuredTraces) {
  Rng rng(1);
  SocialTraceParams p;
  p.people = 40;
  p.horizon = 400;
  p.base_rate = 0.1;
  p.decay = 0.3;
  const auto profiles = random_profiles(p.people, p.radices, rng);
  const auto trace = social_contact_trace(p, profiles, rng);
  double cv_delay = 0.0, sw_delay = 0.0;
  std::size_t both = 0;
  Rng pick(2);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = static_cast<VertexId>(pick.index(p.people));
    const auto d = static_cast<VertexId>(pick.index(p.people));
    if (s == d) continue;
    std::vector<double> metric(p.people);
    for (VertexId v = 0; v < p.people; ++v) {
      metric[v] =
          static_cast<double>(feature_distance(profiles[v], profiles[d]));
    }
    const auto cv = simulate_routing(trace, s, d, 0,
                                     copy_varying_strategy(metric, 1.0), 8);
    const auto sw =
        simulate_routing(trace, s, d, 0, spray_and_wait_strategy(), 8);
    if (!cv.delivered || !sw.delivered) continue;
    ++both;
    cv_delay += static_cast<double>(cv.delivery_time);
    sw_delay += static_cast<double>(sw.delivery_time);
    EXPECT_LE(cv.copies, 8u);
  }
  ASSERT_GT(both, 20u);
  // Metric-aware copy spending should not be slower on average.
  EXPECT_LE(cv_delay, sw_delay * 1.05);
}

}  // namespace
}  // namespace structnet
