// Query-serving layer: result-cache semantics, broker admission control
// and per-kind correctness, and — the load-bearing guarantee — served
// results bit-identical to fresh uncached recomputes at the same epoch,
// at any thread count, under interleaved churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "centrality/centrality.hpp"
#include "core/generators.hpp"
#include "fault/fault_plan.hpp"
#include "layering/nsf.hpp"
#include "serve/broker.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "sim/dtn_routing.hpp"
#include "stream/engine.hpp"
#include "stream/observers.hpp"
#include "temporal/journeys.hpp"
#include "temporal/temporal_centrality.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

QueryPayload make_payload(std::vector<TimeUnit> v) {
  return QueryPayload(std::move(v));
}

TEST(ResultCacheTest, HitsMissesAndLruEviction) {
  ResultCache cache(payload_bytes(make_payload({1, 2, 3})) * 2);

  EXPECT_FALSE(cache.lookup("a", 1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.insert("a", 1, make_payload({1, 2, 3}));
  cache.insert("b", 1, make_payload({4, 5, 6}));
  ASSERT_TRUE(cache.lookup("a", 1).has_value());
  EXPECT_TRUE(payload_equal(*cache.lookup("a", 1), make_payload({1, 2, 3})));
  EXPECT_EQ(cache.stats().entries, 2u);

  // "a" was refreshed by the lookups, so inserting "c" evicts "b".
  cache.insert("c", 1, make_payload({7, 8, 9}));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.lookup("a", 1).has_value());
  EXPECT_FALSE(cache.lookup("b", 1).has_value());
  EXPECT_TRUE(cache.lookup("c", 1).has_value());
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  ResultCache cache(1 << 20);
  cache.insert("q", 3, make_payload({1}));
  EXPECT_FALSE(cache.lookup("q", 4).has_value());
  EXPECT_TRUE(cache.lookup("q", 3).has_value());
}

TEST(ResultCacheTest, InvalidateBeforeDropsOnlyStaleEpochs) {
  ResultCache cache(1 << 20);
  cache.insert("a", 1, make_payload({1}));
  cache.insert("b", 2, make_payload({2}));
  cache.insert("c", 5, make_payload({3}));
  cache.invalidate_before(5);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_FALSE(cache.lookup("a", 1).has_value());
  EXPECT_FALSE(cache.lookup("b", 2).has_value());
  EXPECT_TRUE(cache.lookup("c", 5).has_value());
  // Fast path: nothing below 5 remains, so this is a no-op.
  cache.invalidate_before(5);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(ResultCacheTest, InsertReplacesExistingKey) {
  ResultCache cache(1 << 20);
  cache.insert("k", 1, make_payload({1, 2}));
  cache.insert("k", 1, make_payload({9}));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_TRUE(payload_equal(*cache.lookup("k", 1), make_payload({9})));
}

TEST(ResultCacheTest, QueryFingerprintsDistinguishKindsAndValues) {
  const Query a = TemporalDistancesQuery{3, 7};
  const Query b = TemporalDistancesQuery{3, 8};
  const Query c = FastestJourneyQuery{3, 7, 0};
  EXPECT_NE(query_fingerprint(a), query_fingerprint(b));
  EXPECT_NE(query_fingerprint(a), query_fingerprint(c));
  EXPECT_EQ(query_fingerprint(a),
            query_fingerprint(Query(TemporalDistancesQuery{3, 7})));

  FaultPlan plan;
  RoutingTrialsQuery rt;
  EXPECT_TRUE(query_cacheable(Query(rt)));
  rt.plan = &plan;
  EXPECT_FALSE(query_cacheable(Query(rt)));
}

// ------------------------------------------------------------- fixture

/// A small engine + temporal view with deterministic churn material.
struct ServeRig {
  static constexpr std::size_t kNodes = 24;
  static constexpr TimeUnit kHorizon = 16;

  StreamEngine engine;
  TemporalViewObserver view{kNodes, kHorizon};

  explicit ServeRig(std::uint64_t seed = 7) : engine{DynamicGraph(kNodes)} {
    engine.attach(&view);
    Rng rng(seed);
    std::vector<Event> events;
    for (std::size_t i = 0; i < 120; ++i) {
      const auto u = static_cast<VertexId>(rng.index(kNodes));
      const auto v = static_cast<VertexId>(rng.index(kNodes));
      if (rng.uniform01() < 0.5) {
        events.push_back(Event::edge_insert(u, v));
      } else {
        events.push_back(Event::contact_add(
            u, v, static_cast<TimeUnit>(rng.index(kHorizon))));
      }
    }
    engine.apply_batch(events);
  }
};

QueryResult run_one(QueryBroker& broker, Query q, SubmitOptions opt = {}) {
  auto f = broker.submit(std::move(q), opt);
  broker.flush();
  return f.get();
}

TEST(QueryBrokerTest, EachKindMatchesDirectComputation) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.threads = 1;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  const TemporalGraph& tg = rig.view.view();
  const Graph g = rig.engine.graph().materialize();
  const std::uint64_t epoch = rig.engine.graph().epoch();

  {
    auto r = run_one(broker, TemporalDistancesQuery{2, 1});
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(r.epoch, epoch);
    EXPECT_EQ(std::get<std::vector<TimeUnit>>(r.payload),
              earliest_arrival(tg, 2, 1).completion);
  }
  {
    auto r = run_one(broker, FastestJourneyQuery{0, 5, 0});
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(std::get<std::optional<Journey>>(r.payload),
              fastest_journey(tg, 0, 5, 0));
  }
  {
    auto r = run_one(broker, MinHopJourneyQuery{1, 9, 0});
    ASSERT_EQ(r.status, QueryStatus::kOk);
    EXPECT_EQ(std::get<std::optional<Journey>>(r.payload),
              minimum_hop_journey(tg, 1, 9, 0));
  }
  {
    auto r = run_one(broker, NsfReportQuery{0.5, 0.15});
    ASSERT_EQ(r.status, QueryStatus::kOk);
    const auto& served = std::get<NsfReport>(r.payload);
    EXPECT_TRUE(payload_equal(r.payload,
                              QueryPayload(nsf_report(g, 0.5, 0.15, 1))));
    EXPECT_EQ(served.sizes.front(), g.vertex_count());
  }
  for (const auto measure :
       {CentralityMeasure::kDegree, CentralityMeasure::kCloseness,
        CentralityMeasure::kBetweenness, CentralityMeasure::kClustering}) {
    auto r = run_one(broker, CentralityQuery{measure});
    ASSERT_EQ(r.status, QueryStatus::kOk);
    std::vector<double> expect;
    switch (measure) {
      case CentralityMeasure::kDegree: expect = degree_centrality(g); break;
      case CentralityMeasure::kCloseness:
        expect = closeness_centrality(g);
        break;
      case CentralityMeasure::kBetweenness:
        expect = betweenness_centrality(g);
        break;
      case CentralityMeasure::kClustering:
        expect = clustering_coefficients(g);
        break;
    }
    EXPECT_EQ(std::get<std::vector<double>>(r.payload), expect);
  }
  {
    RoutingTrialsQuery q;
    q.source = 0;
    q.destination = 7;
    q.strategy = RoutingStrategy::kEpidemic;
    q.trials = 8;
    q.loss_probability = 0.2;
    q.loss_seed = 99;
    auto r = run_one(broker, q);
    ASSERT_EQ(r.status, QueryStatus::kOk);
    SimulationFaults faults;
    faults.loss_probability = 0.2;
    faults.loss_seed = 99;
    const RoutingTrialStats expect = simulate_routing_trials(
        tg, 0, 7, 0, epidemic_strategy(), 1, faults, 8, 1);
    EXPECT_TRUE(payload_equal(r.payload, QueryPayload(expect)));
  }

  const ServeStats stats = broker.stats();
  EXPECT_EQ(stats.executed, stats.admitted);
  EXPECT_EQ(stats.csr_builds, 1u);   // one contact index for all batches
  EXPECT_EQ(stats.graph_builds, 1u); // one materialization likewise
  EXPECT_GT(stats.csr_reuses + stats.graph_reuses, 0u);
}

TEST(QueryBrokerTest, CacheHitIsBitIdenticalAndFlagged) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);

  const Query q = TemporalDistancesQuery{4, 0};
  const auto first = run_one(broker, q);
  const auto second = run_one(broker, q);
  ASSERT_EQ(first.status, QueryStatus::kOk);
  ASSERT_EQ(second.status, QueryStatus::kOk);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(payload_equal(first.payload, second.payload));
  EXPECT_EQ(broker.stats().cache_hits, 1u);
}

TEST(QueryBrokerTest, EngineAdvanceInvalidatesCache) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);

  const Query q = TemporalDistancesQuery{0, 0};
  ASSERT_FALSE(run_one(broker, q).from_cache);
  ASSERT_TRUE(run_one(broker, q).from_cache);

  // Mutate through the broker: epoch bumps, cache entries below it die.
  const Event event = Event::contact_add(0, 1, 2);
  ASSERT_EQ(broker.apply_events({&event, 1}), 1u);

  const auto after = run_one(broker, q);
  ASSERT_EQ(after.status, QueryStatus::kOk);
  EXPECT_FALSE(after.from_cache);
  EXPECT_EQ(after.epoch, rig.engine.graph().epoch());
  EXPECT_GT(broker.stats().cache_invalidations, 0u);

  // And the new result reflects the new contact.
  EXPECT_EQ(std::get<std::vector<TimeUnit>>(after.payload),
            earliest_arrival(rig.view.view(), 0, 0).completion);
}

TEST(QueryBrokerTest, SaturatedQueueShedsInsteadOfBlocking) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.max_queue = 4;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  std::vector<std::future<QueryResult>> futures;
  for (VertexId s = 0; s < 10; ++s) {
    futures.push_back(broker.submit(TemporalDistancesQuery{s, 0}));
  }
  // Submissions 5..10 must already be resolved (shed), not blocked.
  std::size_t shed = 0;
  for (std::size_t i = 4; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto r = futures[i].get();
    EXPECT_EQ(r.status, QueryStatus::kRejected);
    EXPECT_EQ(r.cause, RejectCause::kQueueFull);
    ++shed;
  }
  EXPECT_EQ(shed, 6u);

  broker.flush();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(futures[i].get().status, QueryStatus::kOk);
  }
  const ServeStats stats = broker.stats();
  EXPECT_EQ(stats.shed_queue_full, 6u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.max_queue_depth, 4u);
}

TEST(QueryBrokerTest, ExpiredDeadlineResolvesTimedOut) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);

  SubmitOptions opt;
  opt.deadline = std::chrono::nanoseconds(1);
  auto f = broker.submit(TemporalDistancesQuery{0, 0}, opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  broker.flush();
  EXPECT_EQ(f.get().status, QueryStatus::kTimedOut);
  EXPECT_EQ(broker.stats().timed_out, 1u);

  // Deterministic mode ignores the wall clock entirely.
  BrokerConfig det;
  det.deterministic = true;
  QueryBroker dbroker(rig.engine, &rig.view, det);
  auto g = dbroker.submit(TemporalDistancesQuery{0, 0}, opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dbroker.flush();
  EXPECT_EQ(g.get().status, QueryStatus::kOk);
}

TEST(QueryBrokerTest, InvalidArgumentsAreRejectedTyped) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);

  auto r = run_one(broker, TemporalDistancesQuery{ServeRig::kNodes + 5, 0});
  EXPECT_EQ(r.status, QueryStatus::kRejected);
  EXPECT_EQ(r.cause, RejectCause::kInvalidArgument);

  auto nan = run_one(broker, NsfReportQuery{-1.0, 0.15});
  EXPECT_EQ(nan.status, QueryStatus::kRejected);
  EXPECT_EQ(nan.cause, RejectCause::kInvalidArgument);

  // A broker without a temporal view rejects temporal queries but still
  // serves static ones.
  QueryBroker blind(rig.engine, nullptr);
  EXPECT_EQ(run_one(blind, TemporalDistancesQuery{0, 0}).cause,
            RejectCause::kInvalidArgument);
  EXPECT_EQ(run_one(blind, CentralityQuery{}).status, QueryStatus::kOk);
}

TEST(QueryBrokerTest, ShutdownResolvesLeftoverQueries) {
  ServeRig rig;
  std::future<QueryResult> orphan;
  {
    QueryBroker broker(rig.engine, &rig.view);
    orphan = broker.submit(TemporalDistancesQuery{0, 0});
    // No flush: the destructor must still resolve the promise.
  }
  const auto r = orphan.get();
  EXPECT_EQ(r.status, QueryStatus::kRejected);
  EXPECT_EQ(r.cause, RejectCause::kShutdown);
}

TEST(QueryBrokerTest, PlanBearingRoutingQueriesBypassCache) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);

  FaultPlan plan(11);
  plan.set_contact_loss(0.3);
  RoutingTrialsQuery q;
  q.source = 0;
  q.destination = 3;
  q.trials = 4;
  q.plan = &plan;
  const auto a = run_one(broker, q);
  const auto b = run_one(broker, q);
  ASSERT_EQ(a.status, QueryStatus::kOk);
  ASSERT_EQ(b.status, QueryStatus::kOk);
  EXPECT_FALSE(a.from_cache);
  EXPECT_FALSE(b.from_cache);  // same query, still never cached
  EXPECT_TRUE(payload_equal(a.payload, b.payload));  // but deterministic
  EXPECT_EQ(broker.stats().cache_hits, 0u);
}

TEST(QueryBrokerTest, DispatcherDrainsOnStop) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.max_queue = 4096;
  QueryBroker broker(rig.engine, &rig.view, cfg);
  broker.start();
  EXPECT_TRUE(broker.dispatching());

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 200; ++i) {
    futures.push_back(broker.submit(
        TemporalDistancesQuery{static_cast<VertexId>(i % ServeRig::kNodes),
                               static_cast<TimeUnit>(i % 4)}));
  }
  broker.stop();  // drains: every admitted future is resolved after this
  EXPECT_FALSE(broker.dispatching());
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  EXPECT_GT(broker.stats().cache_hits, 0u);  // duplicates in the mix
}

TEST(ServeStatsTest, JsonLineIsMachineReadable) {
  ServeRig rig;
  QueryBroker broker(rig.engine, &rig.view);
  (void)run_one(broker, TemporalDistancesQuery{0, 0});
  (void)run_one(broker, TemporalDistancesQuery{0, 0});

  const std::string line = broker.stats().json("serve_smoke");
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"bench\": \"serve_smoke\""), std::string::npos);
  EXPECT_NE(line.find("\"cache_hits\": 1"), std::string::npos);
  EXPECT_NE(line.find("temporal_distances_count"), std::string::npos);
}

// -------------------------------------------------------------- churn

/// The acceptance gate: interleave churn with a query mix; at every
/// checkpoint, served results (cache on, batched, parallel) must be
/// bit-identical to fresh uncached recomputes at the same epoch, and
/// identical across thread counts 1 / 2 / 8.
struct ChurnRun {
  std::vector<QueryPayload> payloads;
  ServeStats stats;
};

ChurnRun churn_run(std::size_t threads, bool delta_index = true) {
  constexpr std::size_t kNodes = 32;
  constexpr TimeUnit kHorizon = 20;
  StreamEngine engine{DynamicGraph(kNodes)};
  TemporalViewObserver view(kNodes, kHorizon);
  engine.attach(&view);

  BrokerConfig cfg;
  cfg.threads = threads;
  cfg.deterministic = true;
  cfg.delta_index = delta_index;
  QueryBroker broker(engine, &view, cfg);

  Rng rng(2024);
  ChurnRun run;
  for (std::size_t round = 0; round < 12; ++round) {
    // Churn: a batch of mixed events (same sequence at every thread
    // count: the RNG draws are independent of `threads`).
    std::vector<Event> batch;
    for (std::size_t i = 0; i < 20; ++i) {
      const auto u = static_cast<VertexId>(rng.index(kNodes));
      const auto v = static_cast<VertexId>(rng.index(kNodes));
      const double dice = rng.uniform01();
      if (dice < 0.35) {
        batch.push_back(Event::edge_insert(u, v));
      } else if (dice < 0.55) {
        batch.push_back(Event::edge_delete(u, v));
      } else if (dice < 0.85) {
        batch.push_back(Event::contact_add(
            u, v, static_cast<TimeUnit>(rng.index(kHorizon))));
      } else {
        batch.push_back(Event::contact_relabel(
            u, v, static_cast<TimeUnit>(rng.index(kHorizon)),
            static_cast<TimeUnit>(rng.index(kHorizon))));
      }
    }
    broker.apply_events(batch);

    // Query mix for this round — includes a duplicate to exercise the
    // cache inside the equivalence gate.
    std::vector<Query> queries;
    const auto s = static_cast<VertexId>(rng.index(kNodes));
    const auto t = static_cast<VertexId>(rng.index(kNodes));
    queries.emplace_back(TemporalDistancesQuery{s, 0});
    queries.emplace_back(TemporalDistancesQuery{s, 0});  // cache hit
    queries.emplace_back(FastestJourneyQuery{s, t, 0});
    queries.emplace_back(MinHopJourneyQuery{t, s, 0});
    queries.emplace_back(CentralityQuery{CentralityMeasure::kDegree});
    if (round % 3 == 0) {
      queries.emplace_back(NsfReportQuery{0.5, 0.15});
      RoutingTrialsQuery rt;
      rt.source = s;
      rt.destination = t;
      rt.trials = 4;
      rt.loss_probability = 0.15;
      rt.loss_seed = 7 + round;
      queries.emplace_back(rt);
    }

    std::vector<std::future<QueryResult>> futures;
    for (const Query& q : queries) futures.push_back(broker.submit(q));
    broker.flush();

    const std::uint64_t epoch = engine.graph().epoch();
    const TemporalGraph& tg = view.view();
    const Graph g = engine.graph().materialize();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      QueryResult r = futures[i].get();
      EXPECT_EQ(r.status, QueryStatus::kOk) << "round " << round;
      EXPECT_EQ(r.epoch, epoch) << "round " << round;

      // Fresh, uncached, serial recompute through the public API.
      QueryPayload fresh = std::visit(
          [&](const auto& q) -> QueryPayload {
            using T = std::decay_t<decltype(q)>;
            if constexpr (std::is_same_v<T, TemporalDistancesQuery>) {
              return earliest_arrival(tg, q.source, q.t_start).completion;
            } else if constexpr (std::is_same_v<T, FastestJourneyQuery>) {
              return fastest_journey(tg, q.source, q.target, q.t_start);
            } else if constexpr (std::is_same_v<T, MinHopJourneyQuery>) {
              return minimum_hop_journey(tg, q.source, q.target, q.t_start);
            } else if constexpr (std::is_same_v<T, NsfReportQuery>) {
              return nsf_report(g, q.stop_fraction, q.ks_threshold, 1);
            } else if constexpr (std::is_same_v<T, CentralityQuery>) {
              return degree_centrality(g);
            } else {
              SimulationFaults faults;
              faults.loss_probability = q.loss_probability;
              faults.loss_seed = q.loss_seed;
              return simulate_routing_trials(tg, q.source, q.destination,
                                             q.t0, epidemic_strategy(), 1,
                                             faults, q.trials, 1);
            }
          },
          queries[i]);
      EXPECT_TRUE(payload_equal(r.payload, fresh))
          << "round " << round << " query " << i << " threads " << threads;
      run.payloads.push_back(std::move(r.payload));
    }
  }
  run.stats = broker.stats();
  return run;
}

TEST(ServeChurnTest, ServedEqualsFreshRecomputeAtAnyThreadCount) {
  const ChurnRun serial = churn_run(1);
  EXPECT_GT(serial.stats.cache_hits, 0u);  // the duplicate query hits
  EXPECT_GT(serial.stats.executed, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const ChurnRun parallel_run = churn_run(threads);
    ASSERT_EQ(parallel_run.payloads.size(), serial.payloads.size());
    for (std::size_t i = 0; i < serial.payloads.size(); ++i) {
      EXPECT_TRUE(
          payload_equal(serial.payloads[i], parallel_run.payloads[i]))
          << "payload " << i << " differs at threads=" << threads;
    }
    EXPECT_EQ(parallel_run.stats.cache_hits, serial.stats.cache_hits);
    EXPECT_EQ(parallel_run.stats.executed, serial.stats.executed);
  }
}

TEST(ServeChurnTest, ConcurrentSubmitAndApplyNeverDeadlocks) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.max_queue = 64;  // small queue: shedding is expected and fine
  QueryBroker broker(rig.engine, &rig.view, cfg);
  broker.start();

  std::atomic<bool> go{true};
  std::thread mutator([&] {
    Rng rng(5);
    while (go.load()) {
      const auto u = static_cast<VertexId>(rng.index(ServeRig::kNodes));
      const auto v = static_cast<VertexId>(rng.index(ServeRig::kNodes));
      const Event e = Event::contact_add(
          u, v, static_cast<TimeUnit>(rng.index(ServeRig::kHorizon)));
      broker.apply_events({&e, 1});
    }
  });

  std::vector<std::future<QueryResult>> futures;
  Rng rng(6);
  for (std::size_t i = 0; i < 500; ++i) {
    futures.push_back(broker.submit(TemporalDistancesQuery{
        static_cast<VertexId>(rng.index(ServeRig::kNodes)), 0}));
  }
  go.store(false);
  mutator.join();
  broker.stop();

  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == QueryStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.cause, RejectCause::kQueueFull);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 500u);
  EXPECT_GT(ok, 0u);
}

// ---------------------------------------------- accounting regressions

TEST(ResultCacheTest, ChurnKeepsByteAccountingExact) {
  // Deterministic churn across every mutation path — same-key
  // overwrites (shrinking and growing), budget evictions, epoch
  // invalidations, clear — asserting after every operation that the
  // tracked bytes/entries equal a full recount of the live entries.
  Rng rng(99);
  ResultCache cache(/*byte_budget=*/600);
  const auto assert_exact = [&](const char* where, std::size_t step) {
    const ResultCache::Recount r = cache.recount();
    const ResultCache::Stats s = cache.stats();
    ASSERT_EQ(s.bytes, r.bytes) << where << " step " << step;
    ASSERT_EQ(s.entries, r.entries) << where << " step " << step;
    ASSERT_LE(s.bytes, cache.byte_budget()) << where << " step " << step;
  };
  std::uint64_t epoch = 1;
  for (std::size_t step = 0; step < 500; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55) {
      // Insert / overwrite under a handful of keys so overwrites with a
      // different payload size happen constantly.
      const std::string key = "k" + std::to_string(rng.index(6));
      std::vector<TimeUnit> payload(rng.index(40));
      for (TimeUnit& t : payload) t = static_cast<TimeUnit>(rng.index(100));
      cache.insert(key, epoch, QueryPayload(std::move(payload)));
      assert_exact("insert", step);
    } else if (roll < 0.75) {
      (void)cache.lookup("k" + std::to_string(rng.index(8)), epoch);
      assert_exact("lookup", step);
    } else if (roll < 0.92) {
      ++epoch;
      if (rng.uniform01() < 0.5) cache.invalidate_before(epoch);
      assert_exact("advance", step);
    } else {
      cache.clear();
      assert_exact("clear", step);
    }
  }
  // Drain and confirm the empty cache accounts to zero.
  cache.invalidate_before(epoch + 1);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.recount().bytes, 0u);
}

TEST(LatencyHistogramTest, PercentileEdgeCases) {
  // Empty: every quantile is 0.
  LatencyHistogram empty;
  EXPECT_EQ(empty.quantile_upper_ns(0.99), 0u);
  EXPECT_EQ(empty.quantile_upper_ns(0.0), 0u);
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);

  // Single sample: every quantile bounds it tightly (max-tightened).
  LatencyHistogram one;
  one.add(777);
  EXPECT_EQ(one.quantile_upper_ns(0.0), 777u);
  EXPECT_EQ(one.quantile_upper_ns(0.99), 777u);
  EXPECT_EQ(one.quantile_upper_ns(1.0), 777u);

  // p99 of exactly 100 samples is the 99th order statistic, not the
  // 100th (the legacy floor-rank off-by-one): 99 small samples in
  // [16, 32) and one huge outlier must keep p99 at the small bucket.
  LatencyHistogram hundred;
  for (int i = 0; i < 99; ++i) hundred.add(20);
  hundred.add(1'000'000);
  ASSERT_EQ(hundred.count(), 100u);
  EXPECT_LE(hundred.quantile_upper_ns(0.99), 32u);
  EXPECT_EQ(hundred.quantile_upper_ns(1.0), 1'000'000u);

  // Samples at/above 2^39 clamp into the last bucket but are never
  // dropped, and quantiles landing there report the recorded max (the
  // bucket edge would lie low).
  LatencyHistogram sat;
  const std::uint64_t huge = (std::uint64_t{1} << 62) + 5;
  sat.add(huge);
  sat.add(huge);
  EXPECT_EQ(sat.count(), 2u);
  EXPECT_EQ(sat.max_ns(), huge);
  EXPECT_EQ(sat.quantile_upper_ns(0.5), huge);
  EXPECT_EQ(sat.quantile_upper_ns(0.99), huge);

  // Bucket-boundary off-by-one: 2^k lands in bucket k, so a quantile
  // resolving to that bucket is bounded by 2^(k+1), not 2^k.
  LatencyHistogram edge;
  edge.add(16);  // bucket 4: [16, 32)
  EXPECT_EQ(edge.quantile_upper_ns(1.0), 16u);  // tightened by max
  edge.add(31);
  EXPECT_EQ(edge.quantile_upper_ns(1.0), 31u);  // still inside bucket 4
}

// ------------------------------------------------- deterministic clock

std::atomic<std::int64_t> g_fake_now_ns{0};

std::chrono::steady_clock::time_point fake_now() {
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(g_fake_now_ns.load()));
}

TEST(QueryBrokerTest, DeadlineExpiringExactlyAtDequeueTimesOut) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.now_fn = &fake_now;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  SubmitOptions opt;
  opt.deadline = std::chrono::nanoseconds(100);

  // Zero budget remaining at the admission gate: boundary-exact expiry.
  g_fake_now_ns.store(0);
  auto exact = broker.submit(TemporalDistancesQuery{0, 0}, opt);
  g_fake_now_ns.store(100);  // now == deadline
  broker.flush();
  EXPECT_EQ(exact.get().status, QueryStatus::kTimedOut);

  // One nanosecond of budget left: runs and resolves Ok.
  g_fake_now_ns.store(1000);
  auto alive = broker.submit(TemporalDistancesQuery{0, 0}, opt);
  g_fake_now_ns.store(1099);  // now < deadline (1100)
  broker.flush();
  EXPECT_EQ(alive.get().status, QueryStatus::kOk);
  EXPECT_EQ(broker.stats().timed_out, 1u);
}

TEST(QueryBrokerTest, BackwardsClockYieldsZeroLatencyNotUnderflow) {
  // A non-monotonic clock (or a fake one stepping backwards) must never
  // wrap the unsigned latency into ~2^64 ns.
  ServeRig rig;
  BrokerConfig cfg;
  cfg.now_fn = &fake_now;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  g_fake_now_ns.store(1'000'000);
  auto f = broker.submit(TemporalDistancesQuery{0, 0});
  g_fake_now_ns.store(500);  // clock stepped backwards before the flush
  broker.flush();
  EXPECT_EQ(f.get().status, QueryStatus::kOk);

  const ServeStats stats = broker.stats();
  const LatencyHistogram& h =
      stats.latency[static_cast<std::size_t>(QueryKind::kTemporalDistances)];
  ASSERT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

// ------------------------------------------- registry / legacy surface

TEST(QueryBrokerTest, StatsMatchesRegistrySnapshotBitForBit) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.threads = 1;
  cfg.deterministic = true;
  cfg.max_queue = 4;  // force shedding
  QueryBroker broker(rig.engine, &rig.view, cfg);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t round = 0; round < 3; ++round) {
    futures.push_back(
        broker.submit(TemporalDistancesQuery{ServeRig::kNodes + 9, 0}));
    for (std::size_t i = 0; i < 8; ++i) {  // queue bound 4: the rest shed
      futures.push_back(broker.submit(
          TemporalDistancesQuery{static_cast<VertexId>(i % 3), 0}));
    }
    broker.flush();
    broker.flush();
  }
  for (auto& f : futures) f.get();

  const ServeStats stats = broker.stats();
  const obs::MetricsRegistry::Snapshot snap = broker.metrics().snapshot();
  EXPECT_EQ(stats.submitted, snap.counter_value("serve.submitted"));
  EXPECT_EQ(stats.admitted, snap.counter_value("serve.admitted"));
  EXPECT_EQ(stats.shed_queue_full,
            snap.counter_value("serve.shed_queue_full"));
  EXPECT_EQ(stats.rejected_invalid,
            snap.counter_value("serve.rejected_invalid"));
  EXPECT_EQ(stats.timed_out, snap.counter_value("serve.timed_out"));
  EXPECT_EQ(stats.executed, snap.counter_value("serve.executed"));
  EXPECT_EQ(stats.batches, snap.counter_value("serve.batches"));
  EXPECT_EQ(stats.csr_builds, snap.counter_value("serve.csr_builds"));
  EXPECT_EQ(stats.csr_reuses, snap.counter_value("serve.csr_reuses"));
  EXPECT_EQ(stats.csr_delta_appends,
            snap.counter_value("serve.csr_delta_appends"));
  EXPECT_EQ(stats.csr_compactions,
            snap.counter_value("serve.csr_compactions"));
  EXPECT_EQ(stats.cache_hits, snap.counter_value("serve.cache.hits"));
  EXPECT_EQ(stats.cache_misses, snap.counter_value("serve.cache.misses"));
  EXPECT_EQ(stats.cache_evictions,
            snap.counter_value("serve.cache.evictions"));
  EXPECT_EQ(stats.cache_invalidations,
            snap.counter_value("serve.cache.invalidations"));
  EXPECT_EQ(static_cast<std::int64_t>(stats.cache_bytes),
            snap.gauge_value("serve.cache.bytes"));
  EXPECT_EQ(static_cast<std::int64_t>(stats.cache_entries),
            snap.gauge_value("serve.cache.entries"));
  EXPECT_EQ(static_cast<std::int64_t>(stats.max_queue_depth),
            snap.gauge_value("serve.max_queue_depth"));

  // Latency histograms reconstruct from the same registry cells.
  const obs::HistogramSnapshot* lat =
      snap.histogram_snapshot("serve.latency.temporal_distances");
  ASSERT_NE(lat, nullptr);
  const LatencyHistogram& h =
      stats.latency[static_cast<std::size_t>(QueryKind::kTemporalDistances)];
  EXPECT_EQ(h.count(), lat->count);
  EXPECT_EQ(h.max_ns(), lat->max);
  EXPECT_EQ(h.buckets(), lat->buckets);

  // There was real traffic behind the equalities.
  EXPECT_GT(stats.shed_queue_full, 0u);
  EXPECT_GT(stats.rejected_invalid, 0u);
  EXPECT_GT(stats.cache_hits, 0u);
}

// The executor's per-worker TemporalWorkspaces persist across batches;
// a NodeJoin between batches grows the vertex space, and the next sweep
// must re-bind them to the new count instead of reading stale bounds.
TEST(QueryBrokerTest, WorkspaceRebindsAfterVertexGrowthBetweenBatches) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.threads = 2;
  cfg.deterministic = true;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  // Batch 1 binds every worker workspace to the current vertex count.
  {
    auto r = run_one(broker, TemporalDistancesQuery{0, 0});
    ASSERT_EQ(r.status, QueryStatus::kOk);
  }
  const std::size_t old_n = rig.view.view().vertex_count();

  // Grow the vertex space between batches; contacts touch the newcomer.
  const std::vector<Event> growth{Event::node_join()};
  ASSERT_EQ(broker.apply_events(growth), 1u);
  const auto fresh_v = static_cast<VertexId>(old_n);
  const std::vector<Event> contacts{Event::contact_add(fresh_v, 0, 1),
                                    Event::contact_add(fresh_v, 3, 2)};
  ASSERT_EQ(broker.apply_events(contacts), 2u);
  ASSERT_EQ(rig.view.view().vertex_count(), old_n + 1);

  // Batch 2 sweeps from (and to) the grown vertex.
  auto r1 = run_one(broker, TemporalDistancesQuery{fresh_v, 0});
  ASSERT_EQ(r1.status, QueryStatus::kOk);
  EXPECT_EQ(std::get<std::vector<TimeUnit>>(r1.payload),
            earliest_arrival(rig.view.view(), fresh_v, 0).completion);
  auto r2 = run_one(broker, FastestJourneyQuery{0, fresh_v, 0});
  ASSERT_EQ(r2.status, QueryStatus::kOk);
  EXPECT_EQ(std::get<std::optional<Journey>>(r2.payload),
            fastest_journey(rig.view.view(), 0, fresh_v, 0));
}

// Delta-advance planning must be indistinguishable from legacy
// rebuild-on-epoch-change planning in every served byte — only the
// amortization counters may differ, and they differ in the delta
// planner's favor.
TEST(ServeChurnTest, DeltaPlannerMatchesLegacyRebuildBitForBit) {
  const ChurnRun delta = churn_run(1, /*delta_index=*/true);
  const ChurnRun legacy = churn_run(1, /*delta_index=*/false);
  ASSERT_EQ(delta.payloads.size(), legacy.payloads.size());
  for (std::size_t i = 0; i < delta.payloads.size(); ++i) {
    EXPECT_TRUE(payload_equal(delta.payloads[i], legacy.payloads[i]))
        << "payload " << i;
  }

  // Counter shape: the legacy planner rebuilds on every epoch change;
  // the delta planner pays one attach-time build plus compactions while
  // the fold counter absorbs the churn.
  EXPECT_EQ(legacy.stats.csr_delta_appends, 0u);
  EXPECT_EQ(legacy.stats.csr_compactions, 0u);
  EXPECT_GT(delta.stats.csr_delta_appends, 0u);
  EXPECT_EQ(delta.stats.csr_builds, 1u + delta.stats.csr_compactions);
  EXPECT_LT(delta.stats.csr_builds, legacy.stats.csr_builds);
}

// --------------------------------------------- self-healing update path

TEST(HealthMonitorTest, StateMachineFollowsTheDiagram) {
  obs::MetricsRegistry reg;
  HealthMonitor hm(HealthConfig{2, std::chrono::nanoseconds(100)}, reg);
  const auto at = [](std::int64_t ns) {
    return HealthMonitor::TimePoint(std::chrono::nanoseconds(ns));
  };

  EXPECT_EQ(hm.state(), HealthState::kHealthy);
  hm.begin_probe(at(0));  // only legal from ReadOnly: no-op here
  EXPECT_EQ(hm.state(), HealthState::kHealthy);

  hm.on_failure(at(0));
  EXPECT_EQ(hm.state(), HealthState::kDegraded);
  EXPECT_EQ(hm.consecutive_failures(), 1u);
  hm.on_success(at(1));
  EXPECT_EQ(hm.state(), HealthState::kHealthy);
  EXPECT_EQ(hm.consecutive_failures(), 0u);

  // A streak at the threshold trips the circuit.
  hm.on_failure(at(10));
  hm.on_failure(at(20));
  EXPECT_EQ(hm.state(), HealthState::kReadOnly);
  EXPECT_FALSE(hm.probe_due(at(100)));  // 80ns dwelt < 100ns backoff
  EXPECT_TRUE(hm.probe_due(at(120)));

  hm.begin_probe(at(120));
  EXPECT_EQ(hm.state(), HealthState::kRecovering);
  EXPECT_FALSE(hm.probe_due(at(1000)));  // only due while ReadOnly

  // A failed probe re-opens the circuit and re-arms the backoff.
  hm.on_failure(at(130));
  EXPECT_EQ(hm.state(), HealthState::kReadOnly);
  EXPECT_FALSE(hm.probe_due(at(200)));  // re-armed from 130
  EXPECT_TRUE(hm.probe_due(at(230)));
  hm.begin_probe(at(230));
  hm.on_success(at(240));
  EXPECT_EQ(hm.state(), HealthState::kHealthy);
  EXPECT_EQ(hm.consecutive_failures(), 0u);

  // Every transition landed in the registry.
  const obs::MetricsRegistry::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.gauge_value("serve.health.state"),
            static_cast<std::int64_t>(HealthState::kHealthy));
  // H->D, D->H, H->D, D->RO, RO->Rec, Rec->RO, RO->Rec, Rec->H.
  EXPECT_EQ(hm.transitions(), 8u);
  EXPECT_EQ(snap.counter_value("serve.health.transitions"), 8u);
  EXPECT_EQ(snap.counter_value("serve.health.to_degraded"), 2u);
  EXPECT_EQ(snap.counter_value("serve.health.to_read_only"), 2u);
  EXPECT_EQ(snap.counter_value("serve.health.to_recovering"), 2u);
  EXPECT_EQ(snap.counter_value("serve.health.to_healthy"), 2u);
}

// Fault / sleep seams are function pointers, so the scripts are globals.
std::atomic<int> g_fault_budget{0};  // fail the next N fault checks
bool budgeted_fault() {
  int cur = g_fault_budget.load();
  while (cur > 0 && !g_fault_budget.compare_exchange_weak(cur, cur - 1)) {
  }
  return cur > 0;
}
std::atomic<bool> g_fault_on{false};
bool toggled_fault() { return g_fault_on.load(); }
std::atomic<std::int64_t> g_slept_ns{0};
void recording_sleep(std::chrono::nanoseconds d) { g_slept_ns += d.count(); }

TEST(QueryBrokerTest, TransientUpdateFaultRetriesWithBackoffThenApplies) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.update_fault_fn = &budgeted_fault;
  cfg.sleep_fn = &recording_sleep;
  cfg.update_max_attempts = 3;
  cfg.update_backoff_base = std::chrono::nanoseconds(1000);
  cfg.update_backoff_factor = 2;
  cfg.update_backoff_cap = std::chrono::milliseconds(5);
  QueryBroker broker(rig.engine, &rig.view, cfg);

  const std::uint64_t epoch0 = rig.engine.graph().epoch();
  g_fault_budget.store(2);  // two transient faults, third attempt clean
  g_slept_ns.store(0);
  const Event e = Event::contact_add(0, 1, 3);
  EXPECT_EQ(broker.apply_events({&e, 1}), 1u);
  EXPECT_EQ(rig.engine.graph().epoch(), epoch0 + 1);  // applied exactly once
  EXPECT_EQ(broker.health(), HealthState::kHealthy);
  EXPECT_EQ(g_slept_ns.load(), 1000 + 2000);  // base, then base*factor

  const ServeStats stats = broker.stats();
  EXPECT_EQ(stats.update_faults, 2u);
  EXPECT_EQ(stats.update_retries, 2u);
  EXPECT_EQ(stats.update_failures, 0u);
  EXPECT_EQ(stats.health_transitions, 0u);
}

TEST(QueryBrokerTest, PersistentFaultTripsCircuitServesStaleThenHeals) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.now_fn = &fake_now;  // deterministic probe-backoff clock
  cfg.update_fault_fn = &toggled_fault;
  cfg.sleep_fn = &recording_sleep;
  cfg.update_max_attempts = 1;  // no retries: each call is one failure
  cfg.circuit_threshold = 2;
  cfg.probe_backoff = std::chrono::nanoseconds(1000);
  QueryBroker broker(rig.engine, &rig.view, cfg);

  const std::uint64_t good_epoch = rig.engine.graph().epoch();
  const Event e = Event::contact_add(0, 1, 3);

  // Two exhausted updates: Healthy -> Degraded -> ReadOnly.
  g_fake_now_ns.store(0);
  g_fault_on.store(true);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.health(), HealthState::kDegraded);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.health(), HealthState::kReadOnly);
  EXPECT_EQ(rig.engine.graph().epoch(), good_epoch);  // engine untouched

  // Circuit open, backoff not elapsed: updates fast-fail without
  // touching the fault seam (no retry burn).
  g_fake_now_ns.store(500);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.stats().rejected_read_only, 1u);

  // Queries keep serving the last good epoch, annotated stale.
  const auto stale = run_one(broker, TemporalDistancesQuery{2, 0});
  ASSERT_EQ(stale.status, QueryStatus::kOk);
  EXPECT_EQ(stale.epoch, good_epoch);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(stale.health, HealthState::kReadOnly);
  EXPECT_EQ(std::get<std::vector<TimeUnit>>(stale.payload),
            earliest_arrival(rig.view.view(), 2, 0).completion);
  EXPECT_GE(broker.stats().stale_served, 1u);

  // Backoff elapsed but the fault persists: the update doubles as the
  // probe, fails, and re-opens the circuit (backoff re-armed).
  g_fake_now_ns.store(2000);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.health(), HealthState::kReadOnly);
  g_fake_now_ns.store(2500);  // 500ns since the re-arm: not due yet
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.stats().rejected_read_only, 2u);

  // Fault clears, backoff elapses: probe succeeds, the update applies,
  // and the broker returns to Healthy — results lose the stale mark.
  g_fault_on.store(false);
  g_fake_now_ns.store(4000);
  EXPECT_EQ(broker.apply_events({&e, 1}), 1u);
  EXPECT_EQ(broker.health(), HealthState::kHealthy);
  EXPECT_EQ(rig.engine.graph().epoch(), good_epoch + 1);
  const auto fresh = run_one(broker, TemporalDistancesQuery{2, 0});
  ASSERT_EQ(fresh.status, QueryStatus::kOk);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.health, HealthState::kHealthy);
  EXPECT_EQ(fresh.epoch, good_epoch + 1);

  // The whole episode is visible in the metrics registry.
  const ServeStats stats = broker.stats();
  EXPECT_EQ(stats.update_failures, 3u);  // two trips + one failed probe
  EXPECT_EQ(stats.update_probes, 2u);    // failed + successful
  // H->D, D->RO, RO->Rec, Rec->RO, RO->Rec, Rec->H.
  EXPECT_EQ(stats.health_transitions, 6u);
  const obs::MetricsRegistry::Snapshot snap = broker.metrics().snapshot();
  EXPECT_EQ(snap.counter_value("serve.health.transitions"), 6u);
  EXPECT_EQ(snap.counter_value("serve.update.failures"), 3u);
  EXPECT_EQ(snap.counter_value("serve.update.rejected_read_only"), 2u);
  EXPECT_EQ(snap.gauge_value("serve.health.state"),
            static_cast<std::int64_t>(HealthState::kHealthy));
}

TEST(QueryBrokerTest, ManualProbeRespectsBackoffAndOutcome) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.now_fn = &fake_now;
  cfg.update_fault_fn = &toggled_fault;
  cfg.update_max_attempts = 1;
  cfg.circuit_threshold = 1;
  cfg.probe_backoff = std::chrono::nanoseconds(1000);
  QueryBroker broker(rig.engine, &rig.view, cfg);

  g_fake_now_ns.store(0);
  g_fault_on.store(true);
  const Event e = Event::contact_add(0, 1, 3);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  ASSERT_EQ(broker.health(), HealthState::kReadOnly);

  EXPECT_FALSE(broker.probe());  // not due yet: no state change
  EXPECT_EQ(broker.health(), HealthState::kReadOnly);

  g_fake_now_ns.store(1500);
  EXPECT_FALSE(broker.probe());  // due, but the fault persists
  EXPECT_EQ(broker.health(), HealthState::kReadOnly);

  g_fault_on.store(false);
  g_fake_now_ns.store(3000);
  EXPECT_TRUE(broker.probe());
  EXPECT_EQ(broker.health(), HealthState::kHealthy);
  EXPECT_EQ(broker.apply_events({&e, 1}), 1u);
}

TEST(QueryBrokerTest, WatchdogHealsCircuitWithoutTraffic) {
  // Real clock: the background dispatcher must re-probe on its own —
  // no queries, no update calls — once the fault clears.
  ServeRig rig;
  BrokerConfig cfg;
  cfg.update_fault_fn = &toggled_fault;
  cfg.update_max_attempts = 1;
  cfg.circuit_threshold = 1;
  cfg.probe_backoff = std::chrono::milliseconds(1);
  QueryBroker broker(rig.engine, &rig.view, cfg);
  broker.start();

  g_fault_on.store(true);
  const Event e = Event::contact_add(0, 1, 3);
  EXPECT_EQ(broker.apply_events({&e, 1}), 0u);
  EXPECT_EQ(broker.health(), HealthState::kReadOnly);

  g_fault_on.store(false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (broker.health() != HealthState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(broker.health(), HealthState::kHealthy);
  EXPECT_GE(broker.stats().update_probes, 1u);
  broker.stop();
  EXPECT_EQ(broker.apply_events({&e, 1}), 1u);  // path really works again
}

void run_stop_race(std::size_t threads) {
  ServeRig rig;
  BrokerConfig cfg;
  cfg.threads = threads;
  cfg.max_queue = 4096;
  std::vector<std::future<QueryResult>> futures;
  {
    QueryBroker broker(rig.engine, &rig.view, cfg);
    broker.start();

    std::atomic<bool> go{true};
    std::thread mutator([&] {
      Rng rng(17);
      while (go.load()) {
        std::vector<Event> batch;
        for (int i = 0; i < 8; ++i) {
          batch.push_back(Event::contact_add(
              static_cast<VertexId>(rng.index(ServeRig::kNodes)),
              static_cast<VertexId>(rng.index(ServeRig::kNodes)),
              static_cast<TimeUnit>(rng.index(ServeRig::kHorizon))));
        }
        broker.apply_events(batch);
      }
    });

    Rng rng(18);
    for (std::size_t i = 0; i < 300; ++i) {
      futures.push_back(broker.submit(TemporalDistancesQuery{
          static_cast<VertexId>(rng.index(ServeRig::kNodes)), 0}));
      if (i == 150) broker.stop();  // stop() races the in-flight updates
    }
    go.store(false);
    mutator.join();
    // Destructor: whatever the drain left queued resolves as shutdown.
  }
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "unresolved future at threads=" << threads;
    const auto r = f.get();
    if (r.status == QueryStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, QueryStatus::kRejected);
      ASSERT_TRUE(r.cause == RejectCause::kShutdown ||
                  r.cause == RejectCause::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 300u);
  EXPECT_GT(ok, 0u) << "threads=" << threads;
}

TEST(QueryBrokerTest, StopRacingApplyEventsDrainsCleanly) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    run_stop_race(threads);
  }
}

/// One flush of the same mixed batch on a broker with the given
/// lane-pack setting; cache off so duplicates stay in the execution
/// list (exercising lane sharing instead of the cache dedup).
std::vector<QueryResult> lane_pack_run(bool lane_pack, std::size_t threads,
                                       ServeStats* stats_out = nullptr) {
  ServeRig rig(404);
  BrokerConfig cfg;
  cfg.threads = threads;
  cfg.deterministic = true;
  cfg.cache_bytes = 0;
  cfg.lane_pack = lane_pack;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  std::vector<std::future<QueryResult>> futures;
  const auto submit = [&](Query q) {
    futures.push_back(broker.submit(std::move(q)));
  };
  // Mixed kinds, duplicate (source, t_start) pairs, several t_starts —
  // all in one batch so the lane-pack plan sees everything at once.
  Rng rng(9);
  for (std::size_t i = 0; i < 40; ++i) {
    submit(TemporalDistancesQuery{
        static_cast<VertexId>(rng.index(ServeRig::kNodes)),
        static_cast<TimeUnit>(rng.index(3))});
  }
  submit(TemporalDistancesQuery{1, 0});
  submit(TemporalDistancesQuery{1, 0});  // duplicate pair shares a lane
  submit(FastestJourneyQuery{0, 5, 0});  // journeys stay scalar
  submit(MinHopJourneyQuery{5, 0, 0});
  submit(CentralityQuery{CentralityMeasure::kDegree});
  submit(CentralityQuery{CentralityMeasure::kTemporalCloseness});
  broker.flush();

  std::vector<QueryResult> results;
  for (auto& f : futures) results.push_back(f.get());
  if (stats_out != nullptr) *stats_out = broker.stats();
  return results;
}

TEST(QueryBrokerLanePack, PackedPayloadsByteIdenticalToScalarPlanner) {
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ServeStats packed_stats, scalar_stats;
    const auto packed = lane_pack_run(true, threads, &packed_stats);
    const auto scalar = lane_pack_run(false, threads, &scalar_stats);
    ASSERT_EQ(packed.size(), scalar.size());
    for (std::size_t i = 0; i < packed.size(); ++i) {
      ASSERT_EQ(packed[i].status, QueryStatus::kOk) << "i=" << i;
      ASSERT_EQ(scalar[i].status, QueryStatus::kOk) << "i=" << i;
      EXPECT_TRUE(payload_equal(packed[i].payload, scalar[i].payload))
          << "i=" << i << " threads=" << threads;
    }
    EXPECT_GT(packed_stats.lanes_packed, 0u);
    EXPECT_GT(packed_stats.sweeps_saved, 0u);
    EXPECT_EQ(scalar_stats.lanes_packed, 0u);
    EXPECT_EQ(scalar_stats.sweeps_saved, 0u);
  }
}

TEST(QueryBrokerLanePack, CountersReflectExactPlan) {
  ServeRig rig(11);
  BrokerConfig cfg;
  cfg.threads = 1;
  cfg.deterministic = true;
  cfg.cache_bytes = 0;
  QueryBroker broker(rig.engine, &rig.view, cfg);

  std::vector<std::future<QueryResult>> futures;
  // Group t=0: sources {1, 2, 3, 1} -> 3 lanes, 4 packed queries.
  for (const VertexId s : {1u, 2u, 3u, 1u}) {
    futures.push_back(broker.submit(TemporalDistancesQuery{s, 0}));
  }
  // Group t=2: sources {4, 5} -> 2 lanes, 2 packed queries.
  futures.push_back(broker.submit(TemporalDistancesQuery{4, 2}));
  futures.push_back(broker.submit(TemporalDistancesQuery{5, 2}));
  // Singleton group t=5: stays scalar (packing saves nothing).
  futures.push_back(broker.submit(TemporalDistancesQuery{6, 5}));
  broker.flush();
  for (auto& f : futures) EXPECT_EQ(f.get().status, QueryStatus::kOk);

  const ServeStats stats = broker.stats();
  EXPECT_EQ(stats.lanes_packed, 5u);   // 3 + 2 distinct (source, t) lanes
  EXPECT_EQ(stats.sweeps_saved, 4u);   // 6 packed queries - 2 sweeps
  EXPECT_EQ(stats.executed, 7u);
}

TEST(QueryBrokerLanePack, TemporalClosenessServedMatchesDirect) {
  ServeRig rig(13);
  BrokerConfig cfg;
  cfg.threads = 1;
  cfg.deterministic = true;
  QueryBroker broker(rig.engine, &rig.view, cfg);
  const QueryResult r =
      run_one(broker, CentralityQuery{CentralityMeasure::kTemporalCloseness});
  ASSERT_EQ(r.status, QueryStatus::kOk);
  const QueryPayload want(temporal_closeness(rig.view.view(), 1));
  EXPECT_TRUE(payload_equal(r.payload, want));
}

}  // namespace
}  // namespace structnet
