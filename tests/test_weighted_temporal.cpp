// Tests for src/temporal/weighted: weighted time-evolving graphs and the
// delay / reliability / bandwidth journey objectives of Sec. II-B.
#include <gtest/gtest.h>

#include "temporal/weighted.hpp"
#include "util/rng.hpp"

namespace structnet {
namespace {

TEST(WeightedTemporal, WeightStorageAndOverwrite) {
  WeightedTemporalGraph eg(3, 10);
  eg.add_contact(0, 1, 4, 2.5);
  EXPECT_EQ(eg.weight_of(0, 1, 4), 2.5);
  EXPECT_EQ(eg.weight_of(1, 0, 4), 2.5);  // symmetric
  EXPECT_FALSE(eg.weight_of(0, 1, 5).has_value());
  eg.add_contact(1, 0, 4, 7.0);
  EXPECT_EQ(eg.weight_of(0, 1, 4), 7.0);  // overwrite
  EXPECT_EQ(eg.unweighted().edge_count(), 1u);
}

TEST(WeightedTemporal, ContactsCarryWeights) {
  WeightedTemporalGraph eg(3, 10);
  eg.add_contact(0, 1, 2, 0.5);
  eg.add_contact(1, 2, 7, 0.25);
  const auto cs = eg.contacts();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].t, 2u);
  EXPECT_EQ(cs[0].weight, 0.5);
  EXPECT_EQ(cs[1].weight, 0.25);
}

TEST(WeightedTemporal, MinDelayPrefersCheapLaterPath) {
  // Expensive early direct contact vs cheap later 2-hop chain.
  WeightedTemporalGraph eg(3, 10);
  eg.add_contact(0, 2, 1, 10.0);  // direct, cost 10
  eg.add_contact(0, 1, 3, 1.0);
  eg.add_contact(1, 2, 5, 1.0);
  const auto j = min_delay_journey(eg, 0, 2, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->value, 2.0);
  EXPECT_EQ(j->journey.hop_count(), 2u);
  EXPECT_TRUE(j->journey.valid_for(eg.unweighted()));
}

TEST(WeightedTemporal, MinDelayRespectsLabelOrder) {
  // The cheap chain is label-infeasible (second hop earlier than first).
  WeightedTemporalGraph eg(3, 10);
  eg.add_contact(0, 2, 8, 10.0);
  eg.add_contact(0, 1, 6, 1.0);
  eg.add_contact(1, 2, 3, 1.0);  // before the 0-1 contact: unusable
  const auto j = min_delay_journey(eg, 0, 2, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->value, 10.0);
  EXPECT_EQ(j->journey.hop_count(), 1u);
}

TEST(WeightedTemporal, MaxReliabilityMultiplies) {
  WeightedTemporalGraph eg(4, 10);
  eg.add_contact(0, 3, 1, 0.5);   // direct: 0.5
  eg.add_contact(0, 1, 2, 0.9);
  eg.add_contact(1, 2, 4, 0.9);
  eg.add_contact(2, 3, 6, 0.9);   // chain: 0.729
  const auto j = max_reliability_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_NEAR(j->value, 0.729, 1e-12);
  EXPECT_EQ(j->journey.hop_count(), 3u);
}

TEST(WeightedTemporal, MaxBandwidthBottleneck) {
  WeightedTemporalGraph eg(4, 10);
  eg.add_contact(0, 3, 1, 2.0);   // direct: bottleneck 2
  eg.add_contact(0, 1, 2, 10.0);
  eg.add_contact(1, 3, 5, 5.0);   // chain: bottleneck 5
  const auto j = max_bandwidth_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->value, 5.0);
  EXPECT_EQ(j->journey.hop_count(), 2u);
}

TEST(WeightedTemporal, StartTimeFiltersContacts) {
  WeightedTemporalGraph eg(2, 10);
  eg.add_contact(0, 1, 2, 1.0);
  eg.add_contact(0, 1, 8, 4.0);
  const auto early = min_delay_journey(eg, 0, 1, 0);
  const auto late = min_delay_journey(eg, 0, 1, 5);
  ASSERT_TRUE(early && late);
  EXPECT_DOUBLE_EQ(early->value, 1.0);
  EXPECT_DOUBLE_EQ(late->value, 4.0);
}

TEST(WeightedTemporal, UnreachableReturnsNullopt) {
  WeightedTemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 1, 1.0);
  EXPECT_FALSE(min_delay_journey(eg, 0, 2, 0).has_value());
  EXPECT_FALSE(max_reliability_journey(eg, 0, 2, 0).has_value());
  EXPECT_FALSE(max_bandwidth_journey(eg, 0, 2, 0).has_value());
}

TEST(WeightedTemporal, SelfJourneyValues) {
  WeightedTemporalGraph eg(2, 5);
  eg.add_contact(0, 1, 1, 0.5);
  EXPECT_DOUBLE_EQ(min_delay_journey(eg, 0, 0, 0)->value, 0.0);
  EXPECT_DOUBLE_EQ(max_reliability_journey(eg, 0, 0, 0)->value, 1.0);
}

TEST(WeightedTemporal, LaterImprovementDoesNotCorruptUsedPrefix) {
  // Relay 1 improves AFTER node 2 already forwarded through it; the
  // reconstructed journey for 3 must still be label-consistent.
  WeightedTemporalGraph eg(4, 10);
  eg.add_contact(0, 1, 1, 3.0);  // first way into 1 (cost 3)
  eg.add_contact(1, 2, 2, 1.0);  // 2 uses 1's cost-3 record
  eg.add_contact(2, 3, 3, 1.0);  // 3 uses 2's record
  eg.add_contact(0, 1, 4, 0.5);  // 1 improves later (cost 0.5) — too late
  const auto j = min_delay_journey(eg, 0, 3, 0);
  ASSERT_TRUE(j.has_value());
  EXPECT_DOUBLE_EQ(j->value, 5.0);
  EXPECT_TRUE(j->journey.valid_for(eg.unweighted()));
}

TEST(WeightedTemporal, ParetoFrontierOnKnownGraph) {
  // Fast-but-expensive direct contact at 2 (cost 10); cheap chain
  // completing at 6 (cost 2).
  WeightedTemporalGraph eg(3, 10);
  eg.add_contact(0, 2, 2, 10.0);
  eg.add_contact(0, 1, 4, 1.0);
  eg.add_contact(1, 2, 6, 1.0);
  const auto frontier = cost_completion_frontier(eg, 0, 2, 0);
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0], (ParetoPoint{10.0, 2}));
  EXPECT_EQ(frontier[1], (ParetoPoint{2.0, 6}));
}

TEST(WeightedTemporal, ParetoFrontierEndpointsMatchOptima) {
  // First point = earliest completion; last point = min total delay.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    WeightedTemporalGraph eg(8, 20);
    for (int c = 0; c < 40; ++c) {
      const auto u = static_cast<VertexId>(rng.index(8));
      const auto v = static_cast<VertexId>(rng.index(8));
      if (u == v) continue;
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(20)),
                     rng.uniform(0.1, 1.0));
    }
    for (VertexId d = 1; d < 8; ++d) {
      const auto frontier = cost_completion_frontier(eg, 0, d, 0);
      const auto md = min_delay_journey(eg, 0, d, 0);
      EXPECT_EQ(frontier.empty(), !md.has_value());
      if (frontier.empty()) continue;
      EXPECT_NEAR(frontier.back().cost, md->value, 1e-9);
      // Frontier is strictly decreasing in cost, increasing in time.
      for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_LT(frontier[i].cost, frontier[i - 1].cost);
        EXPECT_GT(frontier[i].completion, frontier[i - 1].completion);
      }
    }
  }
}

TEST(WeightedTemporal, ParetoSelfAndUnreachable) {
  WeightedTemporalGraph eg(3, 5);
  eg.add_contact(0, 1, 1, 1.0);
  EXPECT_EQ(cost_completion_frontier(eg, 0, 0, 3),
            (std::vector<ParetoPoint>{ParetoPoint{0.0, 3}}));
  EXPECT_TRUE(cost_completion_frontier(eg, 0, 2, 0).empty());
}

TEST(WeightedTemporal, RandomizedJourneysAreAlwaysValid) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedTemporalGraph eg(8, 20);
    for (int c = 0; c < 40; ++c) {
      const auto u = static_cast<VertexId>(rng.index(8));
      const auto v = static_cast<VertexId>(rng.index(8));
      if (u == v) continue;
      eg.add_contact(u, v, static_cast<TimeUnit>(rng.index(20)),
                     rng.uniform(0.1, 1.0));
    }
    for (VertexId t = 1; t < 8; ++t) {
      for (auto& j : {min_delay_journey(eg, 0, t, 0),
                      max_reliability_journey(eg, 0, t, 0),
                      max_bandwidth_journey(eg, 0, t, 0)}) {
        if (j) {
          EXPECT_TRUE(j->journey.valid_for(eg.unweighted()))
              << "trial " << trial << " target " << t;
        }
      }
    }
  }
}

}  // namespace
}  // namespace structnet
