// Tests for the message-passing labeling protocols: every engine-based
// protocol must reproduce its centralized counterpart exactly.
#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "labeling/fig8_example.hpp"
#include "labeling/static_labels.hpp"
#include "sim/local_protocols.hpp"

namespace structnet {
namespace {

TEST(LocalProtocols, MarkingMatchesCentralizedOnFig8) {
  const Graph g = fig8::build();
  const auto distributed = distributed_marking(g);
  EXPECT_EQ(distributed.selected, marking_process(g));
  EXPECT_LE(distributed.rounds, 4u);  // 2-hop info: constant rounds
  EXPECT_GT(distributed.messages, 0u);
}

TEST(LocalProtocols, MarkingMatchesCentralizedOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi(40, 0.1, rng);
    EXPECT_EQ(distributed_marking(g).selected, marking_process(g)) << trial;
  }
}

TEST(LocalProtocols, MarkingMessageCostIsTwoM) {
  // One neighbor-list message per directed edge.
  const Graph g = grid_graph(5, 5);
  const auto r = distributed_marking(g);
  EXPECT_EQ(r.messages, 2 * g.edge_count());
}

TEST(LocalProtocols, MisMatchesCentralizedOnFig8) {
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto distributed = distributed_mis_protocol(g, prio);
  EXPECT_EQ(distributed.selected, distributed_mis(g, prio).in_mis);
}

TEST(LocalProtocols, MisMatchesCentralizedOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi(40, 0.12, rng);
    std::vector<double> prio(40);
    for (auto& p : prio) p = rng.uniform01();
    const auto distributed = distributed_mis_protocol(g, prio);
    EXPECT_EQ(distributed.selected, distributed_mis(g, prio).in_mis) << trial;
    EXPECT_TRUE(is_maximal_independent_set(g, distributed.selected));
  }
}

TEST(LocalProtocols, MisRoundsStayModest) {
  Rng rng(3);
  const Graph g = erdos_renyi(128, 0.08, rng);
  std::vector<double> prio(128);
  for (auto& p : prio) p = rng.uniform01();
  const auto r = distributed_mis_protocol(g, prio);
  // Message latency costs a small constant factor over the log n bound.
  EXPECT_LE(r.rounds, 64u);
}

TEST(LocalProtocols, NominationMatchesCentralized) {
  const Graph g = fig8::build();
  const auto prio = id_priorities(6);
  const auto distributed = neighbor_designated_protocol(g, prio);
  EXPECT_EQ(distributed.selected, neighbor_designated_ds(g, prio));
  // One nomination per node at most (self-nominations are free).
  EXPECT_LE(distributed.messages, g.vertex_count());
}

TEST(LocalProtocols, NominationOnRandomGraphs) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = erdos_renyi(50, 0.1, rng);
    std::vector<double> prio(50);
    for (auto& p : prio) p = rng.uniform01();
    EXPECT_EQ(neighbor_designated_protocol(g, prio).selected,
              neighbor_designated_ds(g, prio))
        << trial;
  }
}

}  // namespace
}  // namespace structnet
