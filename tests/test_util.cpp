// Tests for src/util: rng determinism and distributions, running stats,
// histograms, and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace structnet {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_u64(0, 1'000'000), b.uniform_u64(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.uniform_u64(0, 1 << 30) == b.uniform_u64(0, 1 << 30);
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, IndexBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(13), 13u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMeanApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.5), 3.0);
  }
}

TEST(Rng, ParetoTailExponent) {
  // For alpha = 3, P(X > 2 x_min) = 2^-(alpha-1) = 0.25.
  Rng rng(19);
  int beyond = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) beyond += rng.pareto(1.0, 3.0) > 2.0;
  EXPECT_NEAR(static_cast<double>(beyond) / trials, 0.25, 0.02);
}

TEST(Rng, ZipfInRange) {
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.zipf(50, 1.5);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, 50u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(100, 20);
  EXPECT_EQ(s.size(), 20u);
  auto sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (auto x : s) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(37);
  auto s = rng.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(CountHistogram, BasicCounts) {
  CountHistogram h;
  h.add(3);
  h.add(3);
  h.add(5);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count_of(3), 2u);
  EXPECT_EQ(h.count_of(4), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 2.0 / 3.0);
  EXPECT_EQ(h.max_value(), 5u);
  EXPECT_NEAR(h.mean(), 11.0 / 3.0, 1e-12);
}

TEST(CountHistogram, Ccdf) {
  CountHistogram h;
  for (std::uint64_t v : {1, 1, 2, 3, 5}) h.add(v);
  EXPECT_DOUBLE_EQ(h.ccdf(0), 1.0);
  EXPECT_DOUBLE_EQ(h.ccdf(2), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(h.ccdf(6), 0.0);
}

TEST(LogHistogram, BinsGrowGeometrically) {
  LogHistogram h(1.0, 2.0);
  h.add(1.5);   // [1, 2)
  h.add(3.0);   // [2, 4)
  h.add(3.9);   // [2, 4)
  h.add(10.0);  // [8, 16)
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_NEAR(bins[1].lo, 2.0, 1e-9);
  EXPECT_NEAR(bins[1].hi, 4.0, 1e-9);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace structnet
