// Tests for the paper's "challenge" extensions: probabilistic trimming
// (Sec. III-A), stale-view structure evaluation (Sec. IV-C), and
// multi-destination DAG maintenance (Sec. III-B).
#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "layering/multi_dag.hpp"
#include "mobility/edge_markovian.hpp"
#include "sim/stale_views.hpp"
#include "temporal/fig2_example.hpp"
#include "trimming/probabilistic.hpp"

namespace structnet {
namespace {

// ------------------------------------------------ probabilistic trimming

TEST(ProbabilisticTrimming, CertainContactsMatchDeterministicRule) {
  // All probabilities 1: the Monte Carlo rule must agree with the
  // deterministic Fig. 2 verdicts.
  const auto det = fig2::build();
  ProbabilisticTemporalGraph eg(det.vertex_count(), det.horizon());
  for (const auto& edge : det.edges()) {
    for (TimeUnit t : edge.labels) eg.add_contact(edge.u, edge.v, t, 1.0);
  }
  const std::vector<double> prio{6, 5, 4, 3, 2, 1};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(
      ignore_neighbor_probability(eg, fig2::A, fig2::D, prio, 20, rng), 1.0);
  EXPECT_DOUBLE_EQ(
      ignore_neighbor_probability(eg, fig2::D, fig2::A, prio, 20, rng), 0.0);
}

TEST(ProbabilisticTrimming, SampleRealizationRespectsProbabilities) {
  ProbabilisticTemporalGraph eg(2, 4);
  eg.add_contact(0, 1, 0, 1.0);
  eg.add_contact(0, 1, 1, 0.0);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const auto real = sample_realization(eg, rng);
    EXPECT_TRUE(real.has_contact(0, 1, 0));
    EXPECT_FALSE(real.has_contact(0, 1, 1));
  }
}

TEST(ProbabilisticTrimming, ProbabilityMatchesHandComputation) {
  // Path 0 -1-> 2 -2-> 1 through banned node 2, with replacement
  // 0 -1-> 1 direct existing w.p. p. The 2-hop path exists w.p. 1; the
  // rule holds iff the replacement exists => probability p.
  ProbabilisticTemporalGraph eg(3, 5);
  eg.add_contact(0, 2, 1, 1.0);
  eg.add_contact(2, 1, 2, 1.0);
  eg.add_contact(0, 1, 2, 0.7);  // replacement: depart 2 >= 1, arrive 2 <= 2
  const std::vector<double> prio{3, 2, 1};
  Rng rng(3);
  const double p =
      ignore_neighbor_probability(eg, 0, 2, prio, 4000, rng);
  EXPECT_NEAR(p, 0.7, 0.03);
}

TEST(ProbabilisticTrimming, ConfidenceThreshold) {
  ProbabilisticTemporalGraph eg(3, 5);
  eg.add_contact(0, 2, 1, 1.0);
  eg.add_contact(2, 1, 2, 1.0);
  eg.add_contact(0, 1, 2, 0.7);
  const std::vector<double> prio{3, 2, 1};
  Rng rng(4);
  EXPECT_TRUE(
      can_ignore_neighbor_probabilistic(eg, 0, 2, prio, 0.5, 1500, rng));
  Rng rng2(5);
  EXPECT_FALSE(
      can_ignore_neighbor_probabilistic(eg, 0, 2, prio, 0.9, 1500, rng2));
}

TEST(ProbabilisticTrimming, DegradationZeroForRedundantLink) {
  // A link whose journeys always have equal-time alternatives degrades
  // nothing when ignored.
  ProbabilisticTemporalGraph eg(3, 4);
  eg.add_contact(0, 1, 1, 1.0);
  eg.add_contact(1, 2, 1, 1.0);
  eg.add_contact(0, 2, 1, 1.0);  // triangle at the same unit
  Rng rng(6);
  EXPECT_DOUBLE_EQ(trim_degradation(eg, 0, 2, 10, rng), 0.0);
}

TEST(ProbabilisticTrimming, DegradationPositiveForBridge) {
  ProbabilisticTemporalGraph eg(2, 4);
  eg.add_contact(0, 1, 1, 1.0);  // the only link
  Rng rng(7);
  EXPECT_GT(trim_degradation(eg, 0, 1, 5, rng), 0.0);
}

// --------------------------------------------------------- stale views

TEST(StaleViews, ZeroDelayIsPerfect) {
  Rng rng(8);
  EdgeMarkovianParams p;
  p.nodes = 24;
  p.horizon = 30;
  p.death_probability = 0.3;
  p.birth_probability = 0.1;
  const auto eg = edge_markovian_graph(p, rng);
  std::vector<double> prio(p.nodes);
  for (auto& x : prio) x = rng.uniform01();
  const auto report = evaluate_stale_structures(eg, 0, prio);
  EXPECT_GT(report.evaluations, 0u);
  EXPECT_DOUBLE_EQ(report.domination_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.independence_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.maximality_rate, 1.0);
}

TEST(StaleViews, StalenessDegradesQuality) {
  // Dense enough that the fresh structures are valid (marking needs
  // two unconnected neighbors to fire), fast-churning enough that a
  // 12-unit-old view is badly wrong.
  Rng rng(9);
  EdgeMarkovianParams p;
  p.nodes = 24;
  p.horizon = 80;
  p.death_probability = 0.3;
  p.birth_probability = 0.1;
  const auto eg = edge_markovian_graph(p, rng);
  std::vector<double> prio(p.nodes);
  for (auto& x : prio) x = rng.uniform01();
  const auto fresh = evaluate_stale_structures(eg, 0, prio);
  const auto stale = evaluate_stale_structures(eg, 12, prio);
  EXPECT_DOUBLE_EQ(fresh.domination_rate, 1.0);
  EXPECT_DOUBLE_EQ(fresh.independence_rate, 1.0);
  EXPECT_DOUBLE_EQ(fresh.maximality_rate, 1.0);
  // The asymmetry is the finding: domination is redundancy-backed and
  // survives stale views nearly intact, while independence is a
  // *negative* constraint that any newly appeared edge violates — it
  // collapses almost immediately.
  EXPECT_GT(stale.domination_rate, 0.9);
  EXPECT_LT(stale.independence_rate, 0.5);
  EXPECT_LT(stale.maximality_rate, 0.5);
  EXPECT_LE(stale.connectivity_rate, fresh.connectivity_rate);
}

TEST(StaleViews, StaticGraphImmuneToStaleness) {
  // A graph that never changes cannot be hurt by stale views.
  TemporalGraph eg(6, 10);
  for (TimeUnit t = 0; t < 10; ++t) {
    eg.add_contact(0, 1, t);
    eg.add_contact(1, 2, t);
    eg.add_contact(2, 3, t);
    eg.add_contact(3, 4, t);
    eg.add_contact(4, 5, t);
  }
  std::vector<double> prio{6, 5, 4, 3, 2, 1};
  const auto report = evaluate_stale_structures(eg, 5, prio);
  EXPECT_DOUBLE_EQ(report.domination_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.connectivity_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.independence_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.maximality_rate, 1.0);
}

// ------------------------------------------------------- multi-dest DAGs

TEST(MultiDag, InitialDagsAllValid) {
  Rng rng(10);
  Graph g = erdos_renyi(30, 0.15, rng);
  for (VertexId v = 0; v + 1 < 30; ++v) g.add_edge_unique(v, v + 1);
  MultiDestinationDags dags(g, {0, 7, 19});
  EXPECT_EQ(dags.destination_count(), 3u);
  EXPECT_TRUE(dags.all_valid());
}

TEST(MultiDag, LinkFailureRepairsEveryDag) {
  Rng rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = erdos_renyi(24, 0.2, rng);
    for (VertexId v = 0; v + 1 < 24; ++v) g.add_edge_unique(v, v + 1);
    MultiDestinationDags dags(g, {0, 5, 11, 17});
    // Fail a non-bridge edge (last path edge is safe to keep: fail a
    // random ER edge whose removal keeps connectivity likely; retry).
    const auto& edge = dags.graph().edge(
        static_cast<EdgeId>(rng.index(dags.graph().edge_count())));
    const VertexId u = edge.u, v = edge.v;
    const auto stats = dags.fail_link(u, v);
    if (!stats.converged) continue;  // rare partition: skip
    EXPECT_TRUE(dags.all_valid()) << "trial " << trial;
  }
}

TEST(MultiDag, UntouchedDagsCostNothing) {
  // A leaf edge failure only disturbs DAGs whose flow used it.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 2);  // alternative route
  MultiDestinationDags dags(g, {0});
  const auto stats = dags.fail_link(0, 1);
  EXPECT_TRUE(stats.converged);
  EXPECT_TRUE(dags.all_valid());
  // Node 1 still reaches 0 through 2: exactly one DAG needed repair at
  // most.
  EXPECT_LE(stats.dags_touched, 1u);
}

TEST(MultiDag, RepairWorkGrowsWithDestinations) {
  Rng rng(12);
  Graph base = grid_graph(5, 5);
  auto run = [&](std::size_t k) {
    std::vector<VertexId> dests;
    for (std::size_t i = 0; i < k; ++i) {
      dests.push_back(static_cast<VertexId>(i * 24 / std::max<std::size_t>(k - 1, 1)));
    }
    MultiDestinationDags dags(base, dests);
    std::size_t total = 0;
    // Fail a few interior edges (grid stays connected).
    const std::pair<VertexId, VertexId> failures[] = {{6, 7}, {12, 13},
                                                      {17, 18}};
    for (const auto& [u, v] : failures) {
      total += dags.fail_link(u, v).total_node_reversals;
    }
    EXPECT_TRUE(dags.all_valid());
    return total;
  };
  const auto one = run(1);
  const auto four = run(4);
  EXPECT_GE(four, one);  // more DAGs, at least as much repair work
}

}  // namespace
}  // namespace structnet
